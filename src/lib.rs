//! **lazydram** — a from-scratch Rust reproduction of *“Exploiting Latency
//! and Error Tolerance of GPGPU Applications for an Energy-Efficient DRAM”*
//! (Wang & Jog, DSN 2019).
//!
//! This facade re-exports the workspace crates under stable names:
//!
//! * [`common`] — configuration (Table I), address mapping, statistics;
//! * [`dram`] — the cycle-level GDDR5 channel/bank model and protocol auditor;
//! * [`core`] — the lazy memory scheduler (FR-FCFS + DMS + AMS), the paper's
//!   contribution;
//! * [`gpu`] — the execution-driven GPU substrate (SMs, caches, interconnect,
//!   value prediction, trace capture/replay);
//! * [`workloads`] — the 20-application evaluation suite of Table II;
//! * [`energy`] — the GPUWattch-style DRAM energy model;
//! * [`bench`] — the parallel sweep runner and the content-addressed
//!   result store shared by the figure harnesses and the CLI.
//!
//! The crate root also re-exports the high-level entry points — the
//! [`SimBuilder`] facade, the [`Scheme`] constructors, the
//! checkpoint/resume types, and the trace capture/replay types
//! ([`Trace`], [`TraceSim`], [`TracePolicy`]) — so most users never need
//! to reach into the sub-crates:
//!
//! # Example
//!
//! ```no_run
//! use lazydram::workloads::by_name;
//! use lazydram::{Scheme, SimBuilder};
//!
//! let app = by_name("SCP").expect("known app");
//! let lazy = SimBuilder::new(&app).scheme(Scheme::DynCombo).scale(1.0).build().run();
//! println!("activations: {}", lazy.stats.dram.activations);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use lazydram_bench as bench;
pub use lazydram_common as common;
pub use lazydram_core as core;
pub use lazydram_dram as dram;
pub use lazydram_energy as energy;
pub use lazydram_gpu as gpu;
pub use lazydram_workloads as workloads;

pub use lazydram_common::Scheme;
pub use lazydram_gpu::{
    Checkpoint, ReplayReport, RunOutcome, Trace, TraceError, TraceSim,
};
pub use lazydram_workloads::{
    parse_checkpoint_every, parse_trace_mode, CheckpointPolicy, SimBuilder, SimRun, TraceMode,
    TracePolicy, DEFAULT_CHECKPOINT_EVERY,
};
