//! `lazydram` — command-line front end for the simulator.
//!
//! ```text
//! lazydram apps                         list the 20 workloads and groups
//! lazydram run <APP> [--scheme S] [--scale F] [--backend B]
//! lazydram sweep <APP> [--scale F] [--backend B]      DMS delay sweep for one app
//! lazydram schemes <APP> [--scale F] [--backend B]    all six paper schemes side by side
//! lazydram capture <APP> <FILE> [--scale F]   record the baseline request trace
//! lazydram replay <FILE> [--scheme S] [--backend B]   open-loop MC+DRAM replay of a trace
//!
//! `--backend` picks a memory model from the backend matrix (`lazydram
//! backends` lists the labels); the default is the paper's GDDR5 machine.
//! lazydram cache <stats | ls | gc --max-bytes N | clear>
//!                                       administer the result store (LAZYDRAM_CACHE_DIR)
//! ```

use lazydram::bench::{CacheMode, EntryInfo, Store};
use lazydram::common::{DmsMode, DramPreset, GpuConfig, SchedConfig};
use lazydram::energy::{EnergyModel, MemoryTech};
use lazydram::gpu::{application_error, Trace, TraceSim};
use lazydram::workloads::{all_apps, by_name, AppSpec};
use lazydram::{Scheme, SimBuilder};
use std::path::Path;

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn app_or_exit(name: &str) -> AppSpec {
    by_name(name).unwrap_or_else(|| {
        eprintln!("unknown app {name:?}; run `lazydram apps` for the list");
        std::process::exit(2);
    })
}

fn backend_or_exit(args: &[String]) -> DramPreset {
    let Some(label) = parse_flag(args, "--backend") else { return DramPreset::Gddr5 };
    DramPreset::by_label(&label).unwrap_or_else(|| {
        eprintln!(
            "unknown backend {label:?}; valid labels: {}",
            DramPreset::labels().join(", ")
        );
        std::process::exit(2);
    })
}

fn cmd_backends() {
    println!("{:<8} {:>4}  {:>6}  {:>5}  {:>6}  model", "label", "ch", "MHz", "banks", "rowB");
    for p in DramPreset::ALL {
        let c = p.gpu_config();
        println!(
            "{:<8} {:>4}  {:>6}  {:>5}  {:>6}  {:?}",
            p.label(),
            c.num_channels,
            c.mem_clock_mhz,
            c.banks_per_channel,
            c.row_bytes,
            c.backend,
        );
    }
}

fn cmd_apps() {
    println!("{:<14} {:>5}  description", "app", "group");
    for a in all_apps() {
        println!("{:<14} {:>5}  {}", a.name, a.group, a.description);
    }
    println!("\ngroups 1-3 are error tolerant (AMS applies); group 4 is delay-only");
}

fn cmd_run(app: &AppSpec, scheme: &str, scale: f64, preset: DramPreset) {
    let scheme = Scheme::by_label(scheme).unwrap_or_else(|| {
        eprintln!("unknown scheme {scheme:?} (baseline, Static-DMS, Dyn-DMS, Static-AMS, Dyn-AMS, Static-DMS+Static-AMS, Dyn-DMS+Dyn-AMS)");
        std::process::exit(2);
    });
    let run = SimBuilder::new(app).preset(preset).scheme(scheme).scale(scale).build();
    let exact = run.exact_output();
    let r = run.run();
    let e = EnergyModel::new(MemoryTech::for_preset(preset)).breakdown(&r.stats.dram);
    println!("{} under {} (scale {scale}, backend {preset})", app.name, scheme.label());
    println!("  core cycles      {:>12}", r.stats.core_cycles);
    println!("  IPC              {:>12.3}", r.stats.ipc());
    println!("  DRAM activations {:>12}", r.stats.dram.activations);
    println!("  Avg-RBL          {:>12.2}", r.stats.dram.avg_rbl());
    println!("  row energy       {:>12.1} µJ", e.row_energy_pj / 1e6);
    println!("  coverage         {:>11.1}%", 100.0 * r.stats.dram.coverage());
    println!("  app error        {:>11.2}%", 100.0 * application_error(&exact, &r.output));
}

fn cmd_sweep(app: &AppSpec, scale: f64, preset: DramPreset) {
    let base =
        SimBuilder::new(app).preset(preset).scheme(Scheme::Baseline).scale(scale).build().run();
    println!("{}: DMS delay sweep (scale {scale}, backend {preset})", app.name);
    println!("{:>7} {:>10} {:>9}", "delay", "norm acts", "norm IPC");
    for d in [0u32, 64, 128, 256, 512, 1024, 2048] {
        let sched = SchedConfig {
            dms: if d == 0 { DmsMode::Off } else { DmsMode::Static(d) },
            ..SchedConfig::baseline()
        };
        let r = SimBuilder::new(app)
            .preset(preset)
            .sched(sched, format!("DMS({d})"))
            .scale(scale)
            .build()
            .run();
        println!(
            "{d:>7} {:>10.3} {:>9.3}",
            r.stats.dram.activations as f64 / base.stats.dram.activations.max(1) as f64,
            r.stats.ipc() / base.stats.ipc().max(1e-9),
        );
    }
}

fn cmd_schemes(app: &AppSpec, scale: f64, preset: DramPreset) {
    let base_run =
        SimBuilder::new(app).preset(preset).scheme(Scheme::Baseline).scale(scale).build();
    let exact = base_run.exact_output();
    let base = base_run.run();
    println!("{}: all schemes (scale {scale}, backend {preset})", app.name);
    println!("{:>24} {:>10} {:>9} {:>9} {:>9}", "scheme", "norm acts", "norm IPC", "coverage", "error");
    for scheme in Scheme::PAPER {
        let r = SimBuilder::new(app).preset(preset).scheme(scheme).scale(scale).build().run();
        println!(
            "{:>24} {:>10.3} {:>9.3} {:>8.1}% {:>8.2}%",
            scheme.label(),
            r.stats.dram.activations as f64 / base.stats.dram.activations.max(1) as f64,
            r.stats.ipc() / base.stats.ipc().max(1e-9),
            100.0 * r.stats.dram.coverage(),
            100.0 * application_error(&exact, &r.output),
        );
    }
}

fn cmd_capture(app: &AppSpec, path: &Path, scale: f64) {
    let run = SimBuilder::new(app).scheme(Scheme::Baseline).scale(scale).trace(true).build().run();
    let trace = run.trace.expect("capture enabled");
    trace.save_file(path, &GpuConfig::default()).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    println!(
        "captured {} requests from {} (scale {scale}) -> {}",
        trace.len(),
        app.name,
        path.display()
    );
}

fn cmd_replay(path: &Path, scheme: &str, preset: DramPreset) {
    let scheme = Scheme::by_label(scheme).unwrap_or_else(|| {
        eprintln!("unknown scheme {scheme:?}");
        std::process::exit(2);
    });
    let cfg = preset.gpu_config();
    let trace = Trace::load_file(path, &cfg).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let report = TraceSim::new(&cfg, &scheme.sched()).replay(&trace).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let e = EnergyModel::new(MemoryTech::for_preset(preset)).breakdown(&report.stats.dram);
    println!(
        "{} under {} (open-loop replay, MC+DRAM only, backend {preset})",
        path.display(),
        scheme.label()
    );
    println!("  served           {:>12} / {}", report.served, trace.len());
    println!("  DRAM activations {:>12}", report.stats.dram.activations);
    println!("  Avg-RBL          {:>12.2}", report.stats.dram.avg_rbl());
    println!("  row energy       {:>12.1} µJ", e.row_energy_pj / 1e6);
    println!("  coverage         {:>11.1}%", 100.0 * report.stats.dram.coverage());
    if report.unserved > 0 {
        eprintln!("REPLAY INCOMPLETE: {} requests unserved", report.unserved);
        std::process::exit(1);
    }
}

/// Opens the result store named by `LAZYDRAM_CACHE_DIR` for administration
/// (the mode knob only affects sweeps, not `cache` subcommands).
fn cache_store() -> Store {
    let dir = std::env::var("LAZYDRAM_CACHE_DIR")
        .ok()
        .filter(|s| !s.trim().is_empty())
        .unwrap_or_else(|| {
            eprintln!("LAZYDRAM_CACHE_DIR is not set; point it at the result store to administer");
            std::process::exit(2);
        });
    Store::open(&dir, CacheMode::Auto).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    })
}

fn entry_age(e: &EntryInfo) -> String {
    match e.used.and_then(|t| t.elapsed().ok()) {
        Some(d) => format!("{}s ago", d.as_secs()),
        None => "-".to_string(),
    }
}

fn cmd_cache(args: &[String]) {
    let store = cache_store();
    let entries = |msg: &str| -> Vec<EntryInfo> {
        store.entries().unwrap_or_else(|e| {
            eprintln!("{msg}: {e}");
            std::process::exit(1);
        })
    };
    match args.get(1).map(String::as_str) {
        Some("stats") => {
            let es = entries("cannot stat store");
            let bytes: u64 = es.iter().map(|e| e.bytes).sum();
            let invalid = es.iter().filter(|e| e.identity.is_err()).count();
            println!("store {}", store.dir().display());
            println!("  entries {:>12}", es.len());
            println!("  invalid {:>12}", invalid);
            println!("  bytes   {:>12}", bytes);
        }
        Some("ls") => {
            for e in entries("cannot list store") {
                let what = match &e.identity {
                    Ok((app, scheme)) => format!("{app}/{scheme}"),
                    Err(err) => format!("INVALID ({err})"),
                };
                let name = e.path.file_name().map_or_else(
                    || e.path.display().to_string(),
                    |n| n.to_string_lossy().into_owned(),
                );
                println!("{:>10}  {:>12}  {:<28} {}", e.bytes, entry_age(&e), what, name);
            }
        }
        Some("gc") => {
            let max_bytes: u64 = parse_flag(args, "--max-bytes")
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("usage: lazydram cache gc --max-bytes N (a byte budget, e.g. 104857600)");
                    std::process::exit(2);
                });
            let evicted = store.gc(max_bytes).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            let freed: u64 = evicted.iter().map(|e| e.bytes).sum();
            for e in &evicted {
                println!("evicted {}", e.path.display());
            }
            println!("gc: evicted {} entries, freed {freed} bytes", evicted.len());
        }
        Some("clear") => {
            let n = store.clear().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            println!("cleared {n} files from {}", store.dir().display());
        }
        _ => {
            eprintln!("usage: lazydram cache <stats | ls | gc --max-bytes N | clear>");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = parse_flag(&args, "--scale").and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let preset = backend_or_exit(&args);
    match args.first().map(String::as_str) {
        Some("apps") => cmd_apps(),
        Some("backends") => cmd_backends(),
        Some("run") if args.len() >= 2 => {
            let scheme = parse_flag(&args, "--scheme").unwrap_or_else(|| "Dyn-DMS+Dyn-AMS".into());
            cmd_run(&app_or_exit(&args[1]), &scheme, scale, preset);
        }
        Some("sweep") if args.len() >= 2 => cmd_sweep(&app_or_exit(&args[1]), scale, preset),
        Some("schemes") if args.len() >= 2 => cmd_schemes(&app_or_exit(&args[1]), scale, preset),
        Some("capture") if args.len() >= 3 => {
            cmd_capture(&app_or_exit(&args[1]), Path::new(&args[2]), scale);
        }
        Some("replay") if args.len() >= 2 => {
            let scheme = parse_flag(&args, "--scheme").unwrap_or_else(|| "baseline".into());
            cmd_replay(Path::new(&args[1]), &scheme, preset);
        }
        Some("cache") => cmd_cache(&args),
        _ => {
            eprintln!(
                "usage: lazydram <apps | backends | run APP [--scheme S] | sweep APP | \
                 schemes APP | capture APP FILE | replay FILE [--scheme S] | \
                 cache <stats|ls|gc --max-bytes N|clear>> [--scale F] [--backend B]"
            );
            std::process::exit(2);
        }
    }
}
