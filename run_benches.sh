#!/bin/bash
# Prioritized reproduction sweep; tee everything into bench_output.txt.
#
# The harnesses run on the parallel sweep runner by default (LAZYDRAM_JOBS
# workers, one per core unless set). Build failures and harness panics are
# fatal and land in the log — nothing is discarded.
set -euo pipefail
cd /root/repo
export LAZYDRAM_SCALE=${LAZYDRAM_SCALE:-0.5}
export LAZYDRAM_JOBS=${LAZYDRAM_JOBS:-$(nproc)}

# Fail loudly (and cheaply) on compile errors before the sweep starts.
cargo build --release -p lazydram-bench --benches

{
echo "### lazydram reproduction sweep — LAZYDRAM_SCALE=$LAZYDRAM_SCALE, LAZYDRAM_JOBS=$LAZYDRAM_JOBS"
for b in tab01_config fig08_drop_accuracy fig12_main fig04_delay_sweep tab02_classify \
         fig02_queue_size fig13_queue_dms fig05_rbl_shift fig06_cdf fig07_case_studies \
         fig10_bwutil_ipc fig11_thrbl fig14_laplacian fig15_group4 \
         abl_baselines abl_reuse abl_window abl_timing abl_hbm; do
  echo; echo "##### bench: $b"
  cargo bench -q -p lazydram-bench --bench "$b"
done
echo; echo "##### bench: micro_structs"
cargo bench -q -p lazydram-bench --bench micro_structs | head -60
echo "### sweep complete"
} > /root/repo/bench_output.txt 2>&1
