#!/bin/bash
# Prioritized reproduction sweep; tee everything into bench_output.txt.
#
# The harnesses run on the parallel sweep runner by default (LAZYDRAM_JOBS
# workers, one per core unless set). Build failures and harness panics are
# fatal and land in the log — nothing is discarded.
set -euo pipefail
cd /root/repo
export LAZYDRAM_SCALE=${LAZYDRAM_SCALE:-0.5}
export LAZYDRAM_JOBS=${LAZYDRAM_JOBS:-$(nproc)}
# Share one content-addressed result store across all 19 harnesses: the
# baselines (and any repeated cell) simulate once in the first harness that
# needs them and come back as cache hits everywhere else. Point
# LAZYDRAM_CACHE_DIR at a persistent directory to carry the store across
# whole sweep invocations too.
export LAZYDRAM_CACHE_DIR=${LAZYDRAM_CACHE_DIR:-$(mktemp -d /tmp/lazydram-cache.XXXXXX)}
export LAZYDRAM_CACHE_MODE=${LAZYDRAM_CACHE_MODE:-auto}

# Fail loudly (and cheaply) on compile errors before the sweep starts.
# The root binary rides along for the `lazydram cache stats` report below.
cargo build --release -p lazydram-bench --benches -p lazydram

{
echo "### lazydram reproduction sweep — LAZYDRAM_SCALE=$LAZYDRAM_SCALE, LAZYDRAM_JOBS=$LAZYDRAM_JOBS"
for b in tab01_config fig08_drop_accuracy fig12_main fig04_delay_sweep tab02_classify \
         fig02_queue_size fig13_queue_dms fig05_rbl_shift fig06_cdf fig07_case_studies \
         fig10_bwutil_ipc fig11_thrbl fig14_laplacian fig15_group4 \
         abl_baselines abl_reuse abl_window abl_timing abl_hbm; do
  echo; echo "##### bench: $b"
  cargo bench -q -p lazydram-bench --bench "$b"
done
echo; echo "##### bench: micro_structs"
cargo bench -q -p lazydram-bench --bench micro_structs | head -60
echo; echo "##### result store"
LAZYDRAM_CACHE_DIR="$LAZYDRAM_CACHE_DIR" ./target/release/lazydram cache stats
echo "### sweep complete"
} > /root/repo/bench_output.txt 2>&1
