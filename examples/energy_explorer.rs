//! Sweep the static DMS delay for one application and print the
//! activation / IPC / energy trade-off curve (a per-app slice of Figure 4),
//! with the GDDR5 / HBM1 / HBM2 energy projections.
//!
//! ```text
//! cargo run --release --example energy_explorer [APP] [SCALE]
//! ```

use lazydram::common::{DmsMode, GpuConfig, SchedConfig};
use lazydram::energy::{EnergyModel, MemoryTech};
use lazydram::workloads::{by_name, run_app};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).cloned().unwrap_or_else(|| "SCP".into());
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let app = by_name(&name).expect("known app");
    let cfg = GpuConfig::default();

    let base = run_app(&app, &cfg, &SchedConfig::baseline(), scale);
    let base_acts = base.stats.dram.activations.max(1) as f64;
    let base_ipc = base.stats.ipc().max(1e-9);
    println!("{name}: baseline {} activations, IPC {:.2}\n", base.stats.dram.activations, base_ipc);
    println!("{:>9} {:>10} {:>9} {:>11} {:>11} {:>11}",
             "delay", "norm acts", "norm IPC", "GDDR5 -E%", "HBM1 -E%", "HBM2 -E%");
    for delay in [0u32, 64, 128, 256, 512, 1024, 2048] {
        let sched = SchedConfig {
            dms: if delay == 0 { DmsMode::Off } else { DmsMode::Static(delay) },
            ..SchedConfig::baseline()
        };
        let r = run_app(&app, &cfg, &sched, scale);
        let na = r.stats.dram.activations as f64 / base_acts;
        let ni = r.stats.ipc() / base_ipc;
        let mut cells = format!("{delay:>9} {na:>10.3} {ni:>9.3}");
        for tech in [MemoryTech::Gddr5, MemoryTech::Hbm1, MemoryTech::Hbm2] {
            let red = EnergyModel::new(tech).system_energy_reduction(na);
            cells += &format!(" {:>10.1}%", 100.0 * red);
        }
        println!("{cells}");
    }
    println!("\n(-E% = projected memory-system energy reduction from the row-energy ratio)");
}
