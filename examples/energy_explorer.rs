//! Sweep the static DMS delay for one application and print the
//! activation / IPC / energy trade-off curve (a per-app slice of Figure 4),
//! with the GDDR5 / HBM1 / HBM2 energy projections.
//!
//! The delay points run in parallel on the sweep runner (`LAZYDRAM_JOBS`
//! workers, default: all cores).
//!
//! ```text
//! cargo run --release --example energy_explorer [APP] [SCALE]
//! ```

use lazydram::common::{DmsMode, GpuConfig, SchedConfig};
use lazydram::energy::{EnergyModel, MemoryTech};
use lazydram::workloads::by_name;
use lazydram_bench::{MeasureSpec, SimBuilder, SweepRunner};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).cloned().unwrap_or_else(|| "SCP".into());
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let app = by_name(&name).expect("known app");
    let cfg = GpuConfig::default();
    let runner = SweepRunner::from_env();

    let base = runner.baseline(&app, &cfg, scale);
    let base_acts = base.measurement.activations.max(1) as f64;
    let base_ipc = base.measurement.ipc.max(1e-9);
    let delays = [64u32, 128, 256, 512, 1024, 2048]; // delay = 0 is the baseline
    let specs = delays
        .iter()
        .map(|&delay| {
            MeasureSpec::new(
                SimBuilder::new(&app)
                    .gpu(cfg.clone())
                    .sched(
                        SchedConfig { dms: DmsMode::Static(delay), ..SchedConfig::baseline() },
                        format!("DMS({delay})"),
                    )
                    .scale(scale),
                base.exact.clone(),
            )
        })
        .collect();
    let results = runner.measure_all(specs);

    println!("{name}: baseline {} activations, IPC {base_ipc:.2}\n",
             base.measurement.activations);
    println!("{:>9} {:>10} {:>9} {:>11} {:>11} {:>11}",
             "delay", "norm acts", "norm IPC", "GDDR5 -E%", "HBM1 -E%", "HBM2 -E%");
    let print_point = |delay: u32, na: f64, ni: f64| {
        let mut cells = format!("{delay:>9} {na:>10.3} {ni:>9.3}");
        for tech in [MemoryTech::Gddr5, MemoryTech::Hbm1, MemoryTech::Hbm2] {
            let red = EnergyModel::new(tech).system_energy_reduction(na);
            cells += &format!(" {:>10.1}%", 100.0 * red);
        }
        println!("{cells}");
    };
    print_point(0, 1.0, 1.0);
    for (&delay, r) in delays.iter().zip(&results) {
        match r {
            Ok(m) => print_point(
                delay,
                m.activations as f64 / base_acts,
                m.ipc / base_ipc,
            ),
            Err(f) => println!("{delay:>9} FAILED: {}", f.message),
        }
    }
    println!("\n(-E% = projected memory-system energy reduction from the row-energy ratio)");
}
