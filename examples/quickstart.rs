//! Quickstart: run one GPGPU workload under the baseline FR-FCFS scheduler
//! and under the paper's headline `Dyn-DMS + Dyn-AMS` lazy scheduler, and
//! compare row energy, performance and output quality.
//!
//! ```text
//! cargo run --release --example quickstart [APP] [SCALE]
//! ```

use lazydram::energy::{EnergyModel, MemoryTech};
use lazydram::gpu::application_error;
use lazydram::workloads::by_name;
use lazydram::{Scheme, SimBuilder};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).cloned().unwrap_or_else(|| "meanfilter".into());
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let app = by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown app {name:?}; try GEMM, SCP, meanfilter, LPS, RAY …");
        std::process::exit(1);
    });
    let energy = EnergyModel::new(MemoryTech::Gddr5);

    println!("app {name} (group {}), scale {scale}\n", app.group);
    let base_run = SimBuilder::new(&app).scheme(Scheme::Baseline).scale(scale).build();
    let exact = base_run.exact_output();

    let base = base_run.run();
    let base_row = energy.breakdown(&base.stats.dram).row_energy_pj;
    println!("baseline         : {:>8} activations, Avg-RBL {:.2}, IPC {:.2}",
             base.stats.dram.activations, base.stats.dram.avg_rbl(), base.stats.ipc());

    let lazy = SimBuilder::new(&app).scheme(Scheme::DynCombo).scale(scale).build().run();
    let lazy_row = energy.breakdown(&lazy.stats.dram).row_energy_pj;
    let err = application_error(&exact, &lazy.output);
    println!("Dyn-DMS+Dyn-AMS  : {:>8} activations, Avg-RBL {:.2}, IPC {:.2}",
             lazy.stats.dram.activations, lazy.stats.dram.avg_rbl(), lazy.stats.ipc());

    if lazy.stats.dram.coverage() == 0.0 {
        println!("\nnote: no requests were approximated — at small scales the run ends");
        println!("      inside the AMS warm-up / Dyn-DMS sampling windows; try scale ≥ 0.5");
    }
    println!("\nrow energy       : {:.1}% of baseline", 100.0 * lazy_row / base_row.max(1e-9));
    println!("performance      : {:.1}% of baseline IPC", 100.0 * lazy.stats.ipc() / base.stats.ipc().max(1e-9));
    println!("coverage         : {:.1}% of global reads approximated", 100.0 * lazy.stats.dram.coverage());
    println!("application error: {:.2}%", 100.0 * err);
}
