//! Run the `laplacian` image-sharpening workload with approximate memory
//! scheduling and write before/after images (the Figure 14 experiment as a
//! library consumer would run it).
//!
//! ```text
//! cargo run --release --example approximate_image [SCALE] [OUT_DIR]
//! ```

use lazydram::gpu::application_error;
use lazydram::workloads::by_name;
use lazydram::{Scheme, SimBuilder};
use std::io::Write;

fn write_pgm(path: &str, pixels: &[f32], w: usize) -> std::io::Result<()> {
    let h = pixels.len() / w;
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "P5\n{w} {h}\n255")?;
    f.write_all(&pixels.iter().map(|&v| (v.clamp(0.0, 1.0) * 255.0) as u8).collect::<Vec<_>>())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let out = args.get(2).cloned().unwrap_or_else(|| "target".into());
    let app = by_name("laplacian").expect("app");

    let lazy_run = SimBuilder::new(&app).scheme(Scheme::DynCombo).scale(scale).build();
    let exact = lazy_run.exact_output();
    let lazy = lazy_run.run();
    let err = application_error(&exact, &lazy.output);
    let w = (exact.len() as f64).sqrt().round() as usize;

    write_pgm(&format!("{out}/laplacian_exact.pgm"), &exact, w).expect("write exact");
    write_pgm(&format!("{out}/laplacian_approx.pgm"), &lazy.output, w).expect("write approx");
    println!("laplacian {w}x{} sharpened image", exact.len() / w);
    println!("coverage {:.1}%, application error {:.2}%",
             100.0 * lazy.stats.dram.coverage(), 100.0 * err);
    println!("row energy {:.1}% of baseline activations equivalent",
             100.0 * lazy.stats.dram.activations as f64
                 / SimBuilder::new(&app).scheme(Scheme::Baseline).scale(scale).build().run()
                     .stats.dram.activations.max(1) as f64);
    println!("images: {out}/laplacian_exact.pgm, {out}/laplacian_approx.pgm");
}
