//! A pedagogical walk through the paper's two illustrative examples using
//! the memory controller directly (no GPU substrate):
//!
//! * Figure 3 — delaying lets the controller coalesce two bursts of
//!   requests to the same four rows into half the activations;
//! * Figure 8 — with DMS, AMS drops the *right* (truly low-RBL) request.
//!
//! ```text
//! cargo run --release --example scheduler_traces
//! ```

use lazydram::common::{AccessKind, AddressMap, AmsMode, DmsMode, GpuConfig, MemSpace, Request,
                       RequestId, SchedConfig};
use lazydram::core::MemoryController;
use lazydram::gpu::{Trace, TraceEntry, TraceSim};

fn request(map: &AddressMap, id: u64, row: u32, col: u16) -> Request {
    let g = GpuConfig::default();
    let region_bytes = (g.row_bytes * g.num_channels) as u64;
    let rows_span = (g.banks_per_channel as u64) * region_bytes;
    let col_off = (u64::from(col) / 2) * (256 * 6) + (u64::from(col) % 2) * 128;
    let addr = map.line_of(u64::from(row) * rows_span + col_off);
    Request {
        id: RequestId(id),
        addr,
        loc: map.decompose(addr),
        kind: AccessKind::Read,
        space: MemSpace::Global,
        approximable: true,
        arrival: 0,
    }
}

fn drive(mc: &mut MemoryController, cycles: u64) -> Vec<(u64, bool)> {
    let mut served = Vec::new();
    let mut out = Vec::new();
    for _ in 0..cycles {
        out.clear();
        mc.tick(&mut out);
        for r in &out {
            served.push((r.id.0, r.approximated));
        }
    }
    served
}

fn fig3(delay: DmsMode, label: &str) {
    let cfg = GpuConfig::default();
    let map = AddressMap::new(&cfg);
    let mut mc = MemoryController::new(&cfg, &SchedConfig { dms: delay, ..SchedConfig::baseline() });
    // First burst: one request to each of R1..R4.
    for row in 1..=4u32 {
        mc.enqueue(request(&map, u64::from(row), row, 0)).unwrap();
    }
    let mut served = drive(&mut mc, 150);
    // Second burst, 150 memory cycles later, to the same rows.
    for row in 1..=4u32 {
        mc.enqueue(request(&map, u64::from(row) + 4, row, 1)).unwrap();
    }
    for _ in 0..30_000 {
        let mut out = Vec::new();
        mc.tick(&mut out);
        served.extend(out.into_iter().map(|r| (r.id.0, r.approximated)));
        if mc.is_idle() {
            break;
        }
    }
    let _ = mc.drain();
    let st = mc.stats();
    println!("  {label:<18} activations {} (8 requests)  Avg-RBL {:.2}  order {:?}",
             st.activations, st.rbl.avg_rbl(), served.iter().map(|s| s.0).collect::<Vec<_>>());
}

fn main() {
    println!("=== Figure 3: timely vs delayed scheduling of two request bursts ===");
    fig3(DmsMode::Off, "baseline FR-FCFS:");
    fig3(DmsMode::Static(256), "DMS(256):");
    println!("  → the delayed scheduler opens each row once instead of twice\n");

    println!("=== Figure 8: which request does AMS drop? ===");
    for (dms, label) in [(DmsMode::Off, "AMS(1) alone"), (DmsMode::Static(64), "AMS(1) + DMS(64)")] {
        let cfg = GpuConfig::default();
        let map = AddressMap::new(&cfg);
        let sched = SchedConfig {
            dms,
            ams: AmsMode::Static(1),
            ams_warmup_requests: 0,
            coverage_cap: 0.11,
            ..SchedConfig::baseline()
        };
        let mut mc = MemoryController::new(&cfg, &sched);
        for row in 1..=5u32 {
            mc.enqueue(request(&map, u64::from(row), row, 0)).unwrap();
        }
        let mut served = drive(&mut mc, 20);
        for row in 1..=4u32 {
            mc.enqueue(request(&map, u64::from(row) + 5, row, 1)).unwrap();
        }
        for _ in 0..30_000 {
            let mut out = Vec::new();
            mc.tick(&mut out);
            served.extend(out.into_iter().map(|r| (r.id.0, r.approximated)));
            if mc.is_idle() {
                break;
            }
        }
        let _ = mc.drain();
        let dropped: Vec<u64> = served.iter().filter(|s| s.1).map(|s| s.0).collect();
        let st = mc.stats();
        println!("  {label:<18} dropped req {dropped:?}  activations {}  Avg-RBL {:.2}",
                 st.activations, st.rbl.avg_rbl());
    }
    println!("  → delaying makes the approximation decision accurate (R5, the true RBL(1) row)");

    // The same Figure-3 story, replayed open-loop: record the two bursts as
    // a Trace (the file format sweeps use, DESIGN.md §11) and push it
    // through the MC+DRAM-only replayer under both policies.
    println!("\n=== Figure 3 again, as an open-loop trace replay ===");
    let cfg = GpuConfig::default();
    let map = AddressMap::new(&cfg);
    let mut trace = Trace::new();
    for row in 1..=4u32 {
        let req = request(&map, u64::from(row), row, 0);
        trace.push(TraceEntry { cycle: 0, channel: map.channel_of(req.addr) as u16, request: req });
    }
    for row in 1..=4u32 {
        let req = request(&map, u64::from(row) + 4, row, 1);
        trace.push(TraceEntry { cycle: 150, channel: map.channel_of(req.addr) as u16, request: req });
    }
    for (dms, label) in [(DmsMode::Off, "baseline FR-FCFS:"), (DmsMode::Static(256), "DMS(256):")] {
        let sched = SchedConfig { dms, ..SchedConfig::baseline() };
        let report = TraceSim::new(&cfg, &sched).replay(&trace).expect("valid trace");
        assert_eq!(report.unserved, 0);
        println!(
            "  {label:<18} activations {} ({} requests served in {} memory cycles)",
            report.stats.dram.activations, report.served, report.replay_cycles
        );
    }
    println!("  → the replayer reproduces the activation savings without any GPU substrate");
}
