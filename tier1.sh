#!/bin/bash
# Tier-1 gate: everything a clean offline checkout must pass.
#
#   ./tier1.sh
#
# Runs entirely from vendored/path dependencies — no network access needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier1: cargo build --release =="
cargo build --release --workspace

echo "== tier1: cargo test =="
cargo test -q --workspace

echo "== tier1: cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier1: timed smoke sweep (BENCH_PR2.json) =="
# Per-app wall clock, fast-forward speedup and skipped-cycle fraction at a
# small scale; writes the repo's perf-trajectory record. The pre-PR baseline
# columns come from crates/bench/baselines/pre_pr2.tsv.
LAZYDRAM_SCALE="${LAZYDRAM_SCALE:-0.1}" \
LAZYDRAM_BENCH_OUT="${LAZYDRAM_BENCH_OUT:-$PWD/BENCH_PR2.json}" \
    cargo bench -q -p lazydram-bench --bench perf_smoke

echo "== tier1: OK =="
