#!/bin/bash
# Tier-1 gate: everything a clean offline checkout must pass.
#
#   ./tier1.sh
#
# Runs entirely from vendored/path dependencies — no network access needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier1: cargo build --release =="
cargo build --release --workspace

echo "== tier1: cargo test =="
cargo test -q --workspace

echo "== tier1: allocation gate (steady-state zero-alloc emission) =="
# The PR 4 perf claim as a regression gate: a counting global allocator
# asserts the warm next+issue cycle never touches the heap.
cargo test -q --release -p lazydram-workloads --test alloc_gate

echo "== tier1: cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier1: prof-feature build =="
# The self-profiler is compiled out by default; build (and unit-test) the
# gated implementation so it cannot rot unnoticed.
cargo build --release -p lazydram-bench --benches --features prof
cargo test -q -p lazydram-common --features prof
cargo clippy -p lazydram-common --features prof -- -D warnings
cargo clippy -p lazydram-bench --all-targets --features prof -- -D warnings

echo "== tier1: checkpoint crash-recovery smoke =="
# Bit-identical restore, end to end through a real harness: the same
# fig04/SCP sweep must produce byte-identical JSONL (a) plain, (b) with
# periodic checkpointing enabled, and (c) re-run against the kept final
# checkpoints (which resumes each job instead of recomputing it).
CKPT_TMP="$(mktemp -d)"
trap 'rm -rf "$CKPT_TMP"' EXIT
LAZYDRAM_APPS=SCP LAZYDRAM_SCALE=0.05 LAZYDRAM_QUIET=1 \
LAZYDRAM_RESULTS="$CKPT_TMP/a.jsonl" \
    cargo bench -q -p lazydram-bench --bench fig04_delay_sweep > /dev/null
LAZYDRAM_APPS=SCP LAZYDRAM_SCALE=0.05 LAZYDRAM_QUIET=1 \
LAZYDRAM_RESULTS="$CKPT_TMP/b.jsonl" \
LAZYDRAM_CHECKPOINT_DIR="$CKPT_TMP/ckpts" LAZYDRAM_CHECKPOINT_EVERY=2000 \
    cargo bench -q -p lazydram-bench --bench fig04_delay_sweep > /dev/null
LAZYDRAM_APPS=SCP LAZYDRAM_SCALE=0.05 LAZYDRAM_QUIET=1 \
LAZYDRAM_RESULTS="$CKPT_TMP/c.jsonl" \
LAZYDRAM_CHECKPOINT_DIR="$CKPT_TMP/ckpts" LAZYDRAM_CHECKPOINT_EVERY=2000 \
    cargo bench -q -p lazydram-bench --bench fig04_delay_sweep > /dev/null
cmp "$CKPT_TMP/a.jsonl" "$CKPT_TMP/b.jsonl"
cmp "$CKPT_TMP/a.jsonl" "$CKPT_TMP/c.jsonl"
echo "checkpointed + resumed sweeps byte-identical to plain run"

echo "== tier1: trace capture/replay smoke =="
# Capture-once-replay-many through a real harness: the same fig04/SCP sweep
# runs twice against a trace store — first in auto mode (baseline captures,
# cells replay), then in strict replay mode (store must already hold the
# trace). Both runs must be byte-identical (replay is deterministic and the
# baseline, the normalisation anchor, stays execution-driven), every cell
# must actually have replayed, and nothing may fail or drop requests
# (unserved requests fail the job, which would surface as a failure record).
LAZYDRAM_APPS=SCP LAZYDRAM_SCALE=0.05 LAZYDRAM_QUIET=1 \
LAZYDRAM_RESULTS="$CKPT_TMP/t1.jsonl" \
LAZYDRAM_TRACE_DIR="$CKPT_TMP/traces" \
    cargo bench -q -p lazydram-bench --bench fig04_delay_sweep > /dev/null
LAZYDRAM_APPS=SCP LAZYDRAM_SCALE=0.05 LAZYDRAM_QUIET=1 \
LAZYDRAM_RESULTS="$CKPT_TMP/t2.jsonl" \
LAZYDRAM_TRACE_DIR="$CKPT_TMP/traces" LAZYDRAM_TRACE_MODE=replay \
    cargo bench -q -p lazydram-bench --bench fig04_delay_sweep > /dev/null
cmp "$CKPT_TMP/t1.jsonl" "$CKPT_TMP/t2.jsonl"
grep -q '"replayed":true' "$CKPT_TMP/t1.jsonl"
if grep -q '"record":"failure"' "$CKPT_TMP/t1.jsonl"; then
    echo "trace smoke produced failure records" >&2; exit 1
fi
ls "$CKPT_TMP/traces"/*.trace > /dev/null
echo "captured + replayed sweeps byte-identical; replay cells present"

echo "== tier1: multi-core determinism smoke =="
# The phased parallel tick must be result-invisible: the same fig04/SCP
# sweep at LAZYDRAM_CORES=1 and LAZYDRAM_CORES=4 must produce byte-identical
# stdout and JSONL. (On a 1-CPU host cores=4 degrades to the inline path —
# the same phased code, minus threads; tests/pool_threads.rs covers real
# workers. On a multi-core host this exercises genuine cross-thread staging.)
LAZYDRAM_APPS=SCP LAZYDRAM_SCALE=0.05 LAZYDRAM_QUIET=1 LAZYDRAM_CORES=1 \
LAZYDRAM_RESULTS="$CKPT_TMP/cores1.jsonl" \
    cargo bench -q -p lazydram-bench --bench fig04_delay_sweep > "$CKPT_TMP/cores1.out"
LAZYDRAM_APPS=SCP LAZYDRAM_SCALE=0.05 LAZYDRAM_QUIET=1 LAZYDRAM_CORES=4 \
LAZYDRAM_RESULTS="$CKPT_TMP/cores4.jsonl" \
    cargo bench -q -p lazydram-bench --bench fig04_delay_sweep > "$CKPT_TMP/cores4.out"
cmp "$CKPT_TMP/cores1.jsonl" "$CKPT_TMP/cores4.jsonl"
cmp "$CKPT_TMP/cores1.out" "$CKPT_TMP/cores4.out"
echo "cores=1 and cores=4 sweeps byte-identical (stdout + JSONL)"

echo "== tier1: compute-skip byte-identity smoke =="
# The analytic compute-burst fast-forward must be result-invisible: the same
# fig04/SCP sweep in the three loop modes — full skip (default), idle-only
# skip (LAZYDRAM_NO_COMPUTE_SKIP=1), naive loop (LAZYDRAM_NO_SKIP=1) — must
# produce byte-identical stdout. The JSONL rows additionally embed the
# loop-instrumentation counters (cycles_skipped / compute_cycles_skipped /
# ticks_executed), which legitimately differ between loop modes, so those
# keys are stripped before comparison; everything else must match byte for
# byte. A cores=4 run with compute-skip on closes the loop on the
# skip × parallel-tick interaction.
strip_loop_counters() {
    sed -E 's/"(cycles_skipped|compute_cycles_skipped|ticks_executed)":[0-9]+,//g' "$1"
}
LAZYDRAM_APPS=SCP LAZYDRAM_SCALE=0.05 LAZYDRAM_QUIET=1 \
LAZYDRAM_RESULTS="$CKPT_TMP/cs_full.jsonl" \
    cargo bench -q -p lazydram-bench --bench fig04_delay_sweep > "$CKPT_TMP/cs_full.out"
LAZYDRAM_APPS=SCP LAZYDRAM_SCALE=0.05 LAZYDRAM_QUIET=1 LAZYDRAM_NO_COMPUTE_SKIP=1 \
LAZYDRAM_RESULTS="$CKPT_TMP/cs_idle.jsonl" \
    cargo bench -q -p lazydram-bench --bench fig04_delay_sweep > "$CKPT_TMP/cs_idle.out"
LAZYDRAM_APPS=SCP LAZYDRAM_SCALE=0.05 LAZYDRAM_QUIET=1 LAZYDRAM_NO_SKIP=1 \
LAZYDRAM_RESULTS="$CKPT_TMP/cs_naive.jsonl" \
    cargo bench -q -p lazydram-bench --bench fig04_delay_sweep > "$CKPT_TMP/cs_naive.out"
LAZYDRAM_APPS=SCP LAZYDRAM_SCALE=0.05 LAZYDRAM_QUIET=1 LAZYDRAM_CORES=4 \
LAZYDRAM_RESULTS="$CKPT_TMP/cs_wide.jsonl" \
    cargo bench -q -p lazydram-bench --bench fig04_delay_sweep > "$CKPT_TMP/cs_wide.out"
cmp "$CKPT_TMP/cs_full.out" "$CKPT_TMP/cs_idle.out"
cmp "$CKPT_TMP/cs_full.out" "$CKPT_TMP/cs_naive.out"
cmp "$CKPT_TMP/cs_full.out" "$CKPT_TMP/cs_wide.out"
strip_loop_counters "$CKPT_TMP/cs_full.jsonl" > "$CKPT_TMP/cs_full.norm"
strip_loop_counters "$CKPT_TMP/cs_idle.jsonl" > "$CKPT_TMP/cs_idle.norm"
strip_loop_counters "$CKPT_TMP/cs_naive.jsonl" > "$CKPT_TMP/cs_naive.norm"
cmp "$CKPT_TMP/cs_full.norm" "$CKPT_TMP/cs_idle.norm"
cmp "$CKPT_TMP/cs_full.norm" "$CKPT_TMP/cs_naive.norm"
# cores=4 with compute-skip on is bit-identical *including* the counters.
cmp "$CKPT_TMP/cs_full.jsonl" "$CKPT_TMP/cs_wide.jsonl"
echo "full / idle-only / naive loop modes byte-identical (cores=1 and 4)"

echo "== tier1: result-cache smoke =="
# Cross-sweep caching must be invisible in the results: the same fig04/SCP
# sweep runs cold (populating the store) and warm (served from it); stdout
# and JSONL must be byte-identical, the warm run must actually hit (the
# end-of-sweep summary reports the counters), and nothing may fail. A
# require-mode pass proves the store alone can serve the whole sweep.
LAZYDRAM_APPS=SCP LAZYDRAM_SCALE=0.05 LAZYDRAM_QUIET=1 \
LAZYDRAM_RESULTS="$CKPT_TMP/cc.jsonl" \
LAZYDRAM_CACHE_DIR="$CKPT_TMP/cache" \
    cargo bench -q -p lazydram-bench --bench fig04_delay_sweep > "$CKPT_TMP/cc.out"
LAZYDRAM_APPS=SCP LAZYDRAM_SCALE=0.05 \
LAZYDRAM_RESULTS="$CKPT_TMP/cw.jsonl" \
LAZYDRAM_CACHE_DIR="$CKPT_TMP/cache" \
    cargo bench -q -p lazydram-bench --bench fig04_delay_sweep > "$CKPT_TMP/cw.out" 2> "$CKPT_TMP/cw.err"
cmp "$CKPT_TMP/cc.jsonl" "$CKPT_TMP/cw.jsonl"
cmp "$CKPT_TMP/cc.out" "$CKPT_TMP/cw.out"
grep -E 'cache: [1-9][0-9]* hits' "$CKPT_TMP/cw.err" > /dev/null || {
    echo "warm sweep reported no cache hits" >&2; cat "$CKPT_TMP/cw.err" >&2; exit 1; }
if grep -q '"record":"failure"' "$CKPT_TMP/cw.jsonl"; then
    echo "cache smoke produced failure records" >&2; exit 1
fi
LAZYDRAM_APPS=SCP LAZYDRAM_SCALE=0.05 LAZYDRAM_QUIET=1 \
LAZYDRAM_RESULTS="$CKPT_TMP/cr.jsonl" \
LAZYDRAM_CACHE_DIR="$CKPT_TMP/cache" LAZYDRAM_CACHE_MODE=require \
    cargo bench -q -p lazydram-bench --bench fig04_delay_sweep > /dev/null
cmp "$CKPT_TMP/cc.jsonl" "$CKPT_TMP/cr.jsonl"
echo "cold + warm + require-mode sweeps byte-identical; warm run hit the store"

echo "== tier1: memory-backend matrix smoke =="
# The MemoryBackend trait (PR 10) must be (a) sweepable: the fig04/SCP
# sweep runs green under every LAZYDRAM_BACKEND label; (b) invisible by
# default: an explicit LAZYDRAM_BACKEND=gddr5 run is byte-identical to an
# unset-env run; (c) byte-identical to the pre-trait model: the full fig04
# and fig12 harnesses reproduce the stdout + JSONL captured at the revision
# before the trait extraction (crates/bench/captures/pre_pr10/).
for backend in gddr5 hbm1 hbm2 ddr4 lpddr4 naive flex; do
    LAZYDRAM_APPS=SCP LAZYDRAM_SCALE=0.05 LAZYDRAM_QUIET=1 \
    LAZYDRAM_BACKEND="$backend" \
    LAZYDRAM_RESULTS="$CKPT_TMP/be_$backend.jsonl" \
        cargo bench -q -p lazydram-bench --bench fig04_delay_sweep \
        > "$CKPT_TMP/be_$backend.out"
    if grep -q '"record":"failure"' "$CKPT_TMP/be_$backend.jsonl"; then
        echo "backend $backend produced failure records" >&2; exit 1
    fi
done
LAZYDRAM_APPS=SCP LAZYDRAM_SCALE=0.05 LAZYDRAM_QUIET=1 \
LAZYDRAM_RESULTS="$CKPT_TMP/be_default.jsonl" \
    cargo bench -q -p lazydram-bench --bench fig04_delay_sweep \
    > "$CKPT_TMP/be_default.out"
cmp "$CKPT_TMP/be_default.jsonl" "$CKPT_TMP/be_gddr5.jsonl"
cmp "$CKPT_TMP/be_default.out" "$CKPT_TMP/be_gddr5.out"
LAZYDRAM_SCALE=0.05 LAZYDRAM_QUIET=1 \
LAZYDRAM_RESULTS="$CKPT_TMP/pre10_fig04.jsonl" \
    cargo bench -q -p lazydram-bench --bench fig04_delay_sweep \
    > "$CKPT_TMP/pre10_fig04.out"
cmp "$CKPT_TMP/pre10_fig04.out" crates/bench/captures/pre_pr10/fig04.out
cmp "$CKPT_TMP/pre10_fig04.jsonl" crates/bench/captures/pre_pr10/fig04.jsonl
LAZYDRAM_SCALE=0.05 LAZYDRAM_QUIET=1 \
LAZYDRAM_RESULTS="$CKPT_TMP/pre10_fig12.jsonl" \
    cargo bench -q -p lazydram-bench --bench fig12_main \
    > "$CKPT_TMP/pre10_fig12.out"
cmp "$CKPT_TMP/pre10_fig12.out" crates/bench/captures/pre_pr10/fig12.out
cmp "$CKPT_TMP/pre10_fig12.jsonl" crates/bench/captures/pre_pr10/fig12.jsonl
echo "all 7 backends green; GDDR5 default byte-identical to pre-trait captures"

echo "== tier1: divergence-bisection smoke =="
# The bisection tool must find a concrete first divergent cycle between two
# Static-DMS delays on SLA (it exercises run_until/resume_until chaining).
cargo run -q --release -p lazydram-bench --bin dbg_diverge -- SLA 128 256 0.05 4096 \
    | grep "first divergent cycle:"

echo "== tier1: timed smoke sweep (BENCH_PR4.json) =="
# Per-app wall clock with profiler phase breakdown, checked against the
# pre-PR baseline (crates/bench/baselines/pre_pr9.tsv, recorded at
# LAZYDRAM_SCALE=0.2). Fails loudly when any app runs slower than 2x its
# pre-PR wall clock — an order-of-magnitude-style cap (matching perf_smoke's
# stated purpose) because host CPU steal on shared 1-vCPU containers can
# shift even min-of-5 wall clocks by 50% between back-to-back runs.
# The perf_smoke run also times the trace fast path (BENCH_PR6.json): a
# fig04-style delay sweep per app, executed vs replayed, gated on the PR 6
# acceptance floor — at least one app's sweep must replay >= 5x faster
# than execution-driven — and on a zero-unserved-requests assertion
# inside the bench.
# It then times the phased parallel tick (BENCH_PR7.json): cores=1 vs
# cores=4 on the same run, asserting identical statistics. On this 1-CPU
# container the pool degrades to the inline path, so the gate is an
# overhead cap — cores=4 must stay within 1.15x of cores=1; on a real
# multi-core host the run must additionally scale >= 2x at 4 cores.
# It then times the content-addressed result store (BENCH_PR8.json):
# the same delay sweep cold (populating a fresh store) vs warm (served
# entirely from disk by a fresh runner), asserting identical measurements
# and gating on the PR 8 acceptance floor — the warm sweep must run at
# least 10x faster than the cold one.
# Finally it distils the PR 9 trajectory (BENCH_PR9.json): per-app ratios
# vs pre_pr9.tsv, the idle/compute skip split, and the sm_issue phase
# wall clock against the pre-PR column recorded in the baseline file.
# The PR 10 gate (BENCH_PR10.json) compares the same rows against
# pre_pr10.tsv — recorded immediately before the MemoryBackend trait — with
# a tight 1.15x cap: static enum dispatch is supposed to be free.
if [ "$(nproc 2>/dev/null || echo 1)" -gt 1 ]; then
    export LAZYDRAM_MIN_CORES_SPEEDUP="${LAZYDRAM_MIN_CORES_SPEEDUP:-2.0}"
fi
LAZYDRAM_SCALE="${LAZYDRAM_SCALE:-0.2}" \
LAZYDRAM_BENCH_OUT="${LAZYDRAM_BENCH_OUT:-$PWD/BENCH_PR4.json}" \
LAZYDRAM_MAX_REGRESSION="${LAZYDRAM_MAX_REGRESSION:-2.0}" \
LAZYDRAM_TRACE_BENCH_OUT="${LAZYDRAM_TRACE_BENCH_OUT:-$PWD/BENCH_PR6.json}" \
LAZYDRAM_MIN_TRACE_SPEEDUP="${LAZYDRAM_MIN_TRACE_SPEEDUP:-5.0}" \
LAZYDRAM_CORES_BENCH_OUT="${LAZYDRAM_CORES_BENCH_OUT:-$PWD/BENCH_PR7.json}" \
LAZYDRAM_MAX_CORES_OVERHEAD="${LAZYDRAM_MAX_CORES_OVERHEAD:-1.15}" \
LAZYDRAM_CACHE_BENCH_OUT="${LAZYDRAM_CACHE_BENCH_OUT:-$PWD/BENCH_PR8.json}" \
LAZYDRAM_MIN_CACHE_SPEEDUP="${LAZYDRAM_MIN_CACHE_SPEEDUP:-10}" \
LAZYDRAM_PR9_BENCH_OUT="${LAZYDRAM_PR9_BENCH_OUT:-$PWD/BENCH_PR9.json}" \
LAZYDRAM_PR10_BENCH_OUT="${LAZYDRAM_PR10_BENCH_OUT:-$PWD/BENCH_PR10.json}" \
LAZYDRAM_MAX_PR10_REGRESSION="${LAZYDRAM_MAX_PR10_REGRESSION:-1.15}" \
    cargo bench -q -p lazydram-bench --bench perf_smoke --features prof

echo "== tier1: OK =="
