#!/bin/bash
# Tier-1 gate: everything a clean offline checkout must pass.
#
#   ./tier1.sh
#
# Runs entirely from vendored/path dependencies — no network access needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier1: cargo build --release =="
cargo build --release --workspace

echo "== tier1: cargo test =="
cargo test -q --workspace

echo "== tier1: cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier1: prof-feature build =="
# The self-profiler is compiled out by default; build (and unit-test) the
# gated implementation so it cannot rot unnoticed.
cargo build --release -p lazydram-bench --benches --features prof
cargo test -q -p lazydram-common --features prof

echo "== tier1: timed smoke sweep (BENCH_PR3.json) =="
# Per-app wall clock with profiler phase breakdown, checked against the
# pre-PR baseline (crates/bench/baselines/pre_pr3.tsv, recorded at
# LAZYDRAM_SCALE=0.2). Fails loudly when any app runs slower than 1.15x its
# pre-PR wall clock.
LAZYDRAM_SCALE="${LAZYDRAM_SCALE:-0.2}" \
LAZYDRAM_BENCH_OUT="${LAZYDRAM_BENCH_OUT:-$PWD/BENCH_PR3.json}" \
LAZYDRAM_MAX_REGRESSION="${LAZYDRAM_MAX_REGRESSION:-1.15}" \
    cargo bench -q -p lazydram-bench --bench perf_smoke --features prof

echo "== tier1: OK =="
