#!/bin/bash
# Tier-1 gate: everything a clean offline checkout must pass.
#
#   ./tier1.sh
#
# Runs entirely from vendored/path dependencies — no network access needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier1: cargo build --release =="
cargo build --release --workspace

echo "== tier1: cargo test =="
cargo test -q --workspace

echo "== tier1: cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier1: OK =="
