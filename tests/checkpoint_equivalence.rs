//! Checkpoint/resume must be invisible in results: interrupting any
//! application at an arbitrary cycle and resuming from the serialized
//! checkpoint must produce a **byte-identical** [`RunResult`] — output,
//! statistics (including the executed/skipped cycle accounting), limit
//! flag, and DRAM trace — to the uninterrupted run.
//!
//! The full `(app × scheme × skip-mode)` cross at tiny scale is covered by
//! the fast skip-on sweep plus a rotating naive-loop sweep; the exhaustive
//! skip-off cross is available behind `--ignored` for acceptance runs.

use lazydram::common::SchedConfig;
use lazydram::gpu::{Checkpoint, RunOutcome, RunResult, SimLimits};
use lazydram::workloads::{all_apps, by_name, AppSpec};
use lazydram::{SimBuilder, SimRun};

const SCALE: f64 = 0.02;

fn sim(app: &AppSpec, sched: &SchedConfig, skip: bool) -> SimRun {
    SimBuilder::new(app)
        .sched(sched.clone(), "ckpt")
        .scale(SCALE)
        .limits(SimLimits::default())
        .trace(true)
        .cycle_skipping(skip)
        .build()
}

fn schemes() -> Vec<(&'static str, SchedConfig)> {
    vec![
        ("baseline", SchedConfig::baseline()),
        ("Static-DMS", SchedConfig::static_dms()),
        ("Dyn-DMS", SchedConfig::dyn_dms()),
        ("Static-AMS", SchedConfig::static_ams()),
        ("Dyn-AMS", SchedConfig::dyn_ams()),
        ("Dyn-DMS+Dyn-AMS", SchedConfig::dyn_combo()),
    ]
}

fn assert_identical(name: &str, scheme: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.hit_cycle_limit, b.hit_cycle_limit, "{name}/{scheme}: limit flag");
    assert_eq!(a.output, b.output, "{name}/{scheme}: outputs differ");
    assert!(a.trace == b.trace, "{name}/{scheme}: DRAM traces differ");
    assert_eq!(a.stats, b.stats, "{name}/{scheme}: statistics differ");
}

/// Runs `app` uninterrupted, then interrupted at `frac` of its total cycles
/// with the checkpoint round-tripped through bytes, and asserts the two
/// results are byte-identical. Returns the pause cycle actually used.
fn assert_resume_identical(
    app: &AppSpec,
    scheme: &str,
    sched: &SchedConfig,
    skip: bool,
    frac: u64,
) -> u64 {
    let name = app.name;
    let run = sim(app, sched, skip);
    let reference = run.run();
    let pause_at = reference.stats.core_cycles * frac / 100;
    let ck = match run.run_until(pause_at) {
        RunOutcome::Paused(ck) => ck,
        RunOutcome::Done(r) => {
            // Rounding can land the pause on the final cycle; the completed
            // run must still match the reference.
            assert_identical(name, scheme, &reference, &r);
            return pause_at;
        }
    };
    // Round-trip through bytes — the on-disk crash-recovery path.
    let ck = Checkpoint::from_bytes(ck.into_bytes())
        .unwrap_or_else(|e| panic!("{name}/{scheme}: checkpoint reload failed: {e:?}"));
    let resumed = run
        .resume(&ck)
        .unwrap_or_else(|e| panic!("{name}/{scheme}: resume failed: {e:?}"));
    assert_identical(name, scheme, &reference, &resumed);
    pause_at
}

#[test]
fn whole_suite_all_schemes_resume_identically() {
    // Skip-on (the default loop): full app × scheme cross, with the pause
    // fraction rotating so early, middle and late interrupts all occur.
    let schemes = schemes();
    for (i, app) in all_apps().into_iter().enumerate() {
        for (j, (label, sched)) in schemes.iter().enumerate() {
            let frac = [13, 37, 50, 73, 91][(i + j) % 5];
            assert_resume_identical(&app, label, sched, true, frac);
        }
    }
}

#[test]
fn naive_loop_resume_rotation_is_identical() {
    // Skip-off (naive cycle-by-cycle loop): rotate schemes across the suite
    // so every app resumes once and every scheme is exercised several times.
    let schemes = schemes();
    for (i, app) in all_apps().into_iter().enumerate() {
        let (label, sched) = &schemes[i % schemes.len()];
        assert_resume_identical(&app, label, sched, false, 20 + 7 * (i as u64 % 9));
    }
}

#[test]
fn multi_launch_sequence_resumes_inside_later_launch() {
    // 3MM runs three dependent launches; pausing at 80% of the total lands
    // inside a later launch, exercising launch-index bookkeeping and the
    // scratch-image kernel rebuild on resume.
    let app = by_name("3MM").expect("app");
    let run = sim(&app, &SchedConfig::dyn_combo(), true);
    let reference = run.run();
    let pause_at = reference.stats.core_cycles * 4 / 5;
    let ck = run.run_until(pause_at).expect_paused("3MM at 80% must still be running");
    assert!(ck.launch_idx() > 0, "pause should land past the first launch");
    let resumed = run.resume(&ck).expect("resume failed");
    assert_identical("3MM", "Dyn-DMS+Dyn-AMS", &reference, &resumed);
}

#[test]
fn chained_checkpoints_reach_the_same_result() {
    // Pause, resume-until a later pause, resume again: crash recovery may
    // restart a job several times, and every hop must stay on the exact
    // trajectory.
    let app = by_name("SCP").expect("app");
    let run = sim(&app, &SchedConfig::static_dms(), true);
    let reference = run.run();
    let total = reference.stats.core_cycles;
    let ck1 = run.run_until(total / 4).expect_paused("SCP at 25%");
    let ck2 = run
        .resume_until(&ck1, total / 2)
        .expect("resume_until failed")
        .expect_paused("SCP at 50%");
    assert!(ck2.cycle() > ck1.cycle());
    // The second checkpoint must equal a direct pause at the same cycle.
    let direct = run.run_until(total / 2).expect_paused("SCP at 50% direct");
    assert_eq!(ck2.digest(), direct.digest(), "checkpoint trajectory diverged");
    let resumed = run.resume(&ck2).expect("final resume failed");
    assert_identical("SCP", "Static-DMS", &reference, &resumed);
}

#[test]
#[ignore = "exhaustive acceptance cross (slow): run with --ignored"]
fn exhaustive_cross_including_naive_loop() {
    let schemes = schemes();
    for (i, app) in all_apps().into_iter().enumerate() {
        for (j, (label, sched)) in schemes.iter().enumerate() {
            for (k, skip) in [true, false].into_iter().enumerate() {
                let frac = [13, 37, 50, 73, 91][(i + j + k) % 5];
                assert_resume_identical(&app, label, sched, skip, frac);
            }
        }
    }
}
