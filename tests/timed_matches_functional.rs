//! The timed simulator without approximation must produce bit-identical
//! outputs to the functional reference executor: timing must never change
//! values.

use lazydram::common::{GpuConfig, SchedConfig};
use lazydram::workloads::{by_name, exact_output, run_app};

fn check(name: &str, scale: f64) {
    let app = by_name(name).expect("app");
    let exact = exact_output(&app, scale);
    let timed = run_app(&app, &GpuConfig::default(), &SchedConfig::baseline(), scale);
    assert!(!timed.hit_cycle_limit, "{name} hit the cycle limit");
    assert_eq!(exact.len(), timed.output.len(), "{name}: shape");
    for (i, (e, t)) in exact.iter().zip(&timed.output).enumerate() {
        assert_eq!(e, t, "{name}: output[{i}] differs: {e} vs {t}");
    }
}

#[test]
fn gemm_timed_equals_functional() {
    check("GEMM", 0.05);
}

#[test]
fn stencils_timed_equal_functional() {
    check("meanfilter", 0.05);
    check("LPS", 0.05);
    check("CONS", 0.05);
}

#[test]
fn multi_launch_apps_timed_equal_functional() {
    check("2MM", 0.05);
    check("ATAX", 0.05);
    check("MVT", 0.05);
}

#[test]
fn map_apps_timed_equal_functional() {
    check("blackscholes", 0.05);
    check("jmeint", 0.05);
}

#[test]
fn inplace_apps_timed_equal_functional() {
    check("FWT", 0.05);
    check("SLA", 0.05);
}

#[test]
fn delay_does_not_change_values() {
    // DMS reorders and delays but must never alter data.
    let app = by_name("SCP").expect("app");
    let exact = exact_output(&app, 0.05);
    let sched = SchedConfig::static_dms();
    let timed = run_app(&app, &GpuConfig::default(), &sched, 0.05);
    assert_eq!(exact, timed.output, "DMS changed output values");
}
