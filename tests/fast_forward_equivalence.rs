//! Event-driven fast-forward must be invisible in results: for every
//! application and scheme, a run with cycle skipping enabled must produce
//! bit-identical output, statistics, and DRAM trace to the naive
//! cycle-by-cycle loop. Only `cycles_skipped` / `ticks_executed` (the
//! instrumentation of the skipping itself) may differ, so those are
//! normalized before comparison.

use lazydram::common::{SchedConfig, SimStats};
use lazydram::gpu::{RunResult, SimLimits};
use lazydram::workloads::{all_apps, AppSpec};
use lazydram::SimBuilder;

fn run(app: &AppSpec, sched: &SchedConfig, scale: f64, limits: SimLimits, skip: bool) -> RunResult {
    SimBuilder::new(app)
        .sched(sched.clone(), "equiv")
        .scale(scale)
        .limits(limits)
        .trace(true)
        .cycle_skipping(skip)
        .build()
        .run()
}

/// Strips the loop-instrumentation counters that legitimately differ
/// between the two loop modes.
fn normalized(stats: &SimStats) -> SimStats {
    let mut s = stats.clone();
    s.cycles_skipped = 0;
    s.ticks_executed = 0;
    s
}

/// Runs `app` both ways and asserts full equivalence; returns the number of
/// core cycles the fast run skipped.
fn assert_equivalent(app: &AppSpec, sched: &SchedConfig, scale: f64, limits: SimLimits) -> u64 {
    let fast = run(app, sched, scale, limits, true);
    let slow = run(app, sched, scale, limits, false);
    let name = app.name;
    assert_eq!(slow.stats.cycles_skipped, 0, "{name}: naive loop must not skip");
    if !slow.hit_cycle_limit {
        // On a limit hit the final counted cycle is never executed, so the
        // exact partition below only holds for completed runs.
        assert_eq!(
            slow.stats.ticks_executed, slow.stats.core_cycles,
            "{name}: naive loop must execute every counted cycle"
        );
    }
    assert_eq!(fast.hit_cycle_limit, slow.hit_cycle_limit, "{name}: limit flag");
    assert_eq!(fast.output, slow.output, "{name}: outputs differ");
    assert!(fast.trace == slow.trace, "{name}: DRAM traces differ");
    assert_eq!(
        normalized(&fast.stats),
        normalized(&slow.stats),
        "{name}: statistics differ"
    );
    if !fast.hit_cycle_limit {
        assert_eq!(
            fast.stats.ticks_executed + fast.stats.cycles_skipped,
            fast.stats.core_cycles,
            "{name}: skip accounting must partition the core cycles"
        );
    }
    fast.stats.cycles_skipped
}

#[test]
fn whole_suite_static_dms_is_equivalent() {
    // Static-DMS creates the longest idle epochs — the adversarial case for
    // fast-forward correctness and the headline case for its speedup.
    let mut total_skipped = 0u64;
    for app in all_apps() {
        total_skipped +=
            assert_equivalent(&app, &SchedConfig::static_dms(), 0.02, SimLimits::default());
    }
    assert!(total_skipped > 0, "fast-forward never engaged across the suite");
}

#[test]
fn scheme_rotation_is_equivalent() {
    // Rotate every other scheme across the suite so each scheme sees
    // several apps and each app sees a second scheme.
    let schemes = [
        SchedConfig::baseline(),
        SchedConfig::dyn_dms(),
        SchedConfig::static_ams(),
        SchedConfig::dyn_ams(),
        SchedConfig::static_combo(),
        SchedConfig::dyn_combo(),
    ];
    for (i, app) in all_apps().into_iter().enumerate() {
        let sched = &schemes[i % schemes.len()];
        assert_equivalent(&app, sched, 0.02, SimLimits::default());
    }
}

#[test]
fn cycle_limit_hit_is_equivalent() {
    // A tight limit exercises the skip-past-the-limit clamp: both loops must
    // report the same truncated statistics and the limit flag.
    let app = lazydram::workloads::by_name("GEMM").expect("app");
    let limits = SimLimits { max_core_cycles: 2_000 };
    let fast = run(&app, &SchedConfig::static_dms(), 0.3, limits, true);
    assert!(fast.hit_cycle_limit, "limit chosen too high for this check");
    assert_equivalent(&app, &SchedConfig::static_dms(), 0.3, limits);
}
