//! Fast-forward must be invisible in results: for every application and
//! scheme, a run with the full skipper (idle + analytic compute bursts), a
//! run with only the idle skipper (`LAZYDRAM_NO_COMPUTE_SKIP`'s effect), and
//! the naive cycle-by-cycle loop (`LAZYDRAM_NO_SKIP`'s effect) must produce
//! bit-identical output, statistics, and DRAM trace. Only `cycles_skipped` /
//! `compute_cycles_skipped` / `ticks_executed` (the instrumentation of the
//! skipping itself) may differ, so those are normalized before comparison.

use lazydram::common::{SchedConfig, SimStats};
use lazydram::gpu::{RunResult, SimLimits};
use lazydram::workloads::{all_apps, AppSpec};
use lazydram::SimBuilder;

/// The three loop modes under test, mirroring the env-var escape hatches.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Mode {
    /// Idle skip + analytic compute-burst skip (the default).
    Full,
    /// Idle skip only — `LAZYDRAM_NO_COMPUTE_SKIP=1`.
    IdleOnly,
    /// Naive cycle-by-cycle loop — `LAZYDRAM_NO_SKIP=1`.
    Naive,
}

fn run(app: &AppSpec, sched: &SchedConfig, scale: f64, limits: SimLimits, mode: Mode) -> RunResult {
    SimBuilder::new(app)
        .sched(sched.clone(), "equiv")
        .scale(scale)
        .limits(limits)
        .trace(true)
        .cycle_skipping(mode != Mode::Naive)
        .compute_skipping(mode == Mode::Full)
        .build()
        .run()
}

/// Strips the loop-instrumentation counters that legitimately differ
/// between the loop modes.
fn normalized(stats: &SimStats) -> SimStats {
    let mut s = stats.clone();
    s.cycles_skipped = 0;
    s.compute_cycles_skipped = 0;
    s.ticks_executed = 0;
    s
}

/// Runs `app` in all three loop modes and asserts full equivalence; returns
/// `(cycles_skipped, compute_cycles_skipped)` of the full-skip run.
fn assert_equivalent(
    app: &AppSpec,
    sched: &SchedConfig,
    scale: f64,
    limits: SimLimits,
) -> (u64, u64) {
    let full = run(app, sched, scale, limits, Mode::Full);
    let idle = run(app, sched, scale, limits, Mode::IdleOnly);
    let slow = run(app, sched, scale, limits, Mode::Naive);
    let name = app.name;
    assert_eq!(slow.stats.cycles_skipped, 0, "{name}: naive loop must not skip");
    assert_eq!(
        idle.stats.compute_cycles_skipped, 0,
        "{name}: idle-only mode must not take compute skips"
    );
    if !slow.hit_cycle_limit {
        // On a limit hit the final counted cycle is never executed, so the
        // exact partition below only holds for completed runs.
        assert_eq!(
            slow.stats.ticks_executed, slow.stats.core_cycles,
            "{name}: naive loop must execute every counted cycle"
        );
    }
    for (label, fast) in [("full", &full), ("idle-only", &idle)] {
        assert_eq!(fast.hit_cycle_limit, slow.hit_cycle_limit, "{name}/{label}: limit flag");
        assert_eq!(fast.output, slow.output, "{name}/{label}: outputs differ");
        assert!(fast.trace == slow.trace, "{name}/{label}: DRAM traces differ");
        assert_eq!(
            normalized(&fast.stats),
            normalized(&slow.stats),
            "{name}/{label}: statistics differ"
        );
        assert!(
            fast.stats.compute_cycles_skipped <= fast.stats.cycles_skipped,
            "{name}/{label}: compute skips must be a subset of all skips"
        );
        if !fast.hit_cycle_limit {
            assert_eq!(
                fast.stats.ticks_executed + fast.stats.cycles_skipped,
                fast.stats.core_cycles,
                "{name}/{label}: skip accounting must partition the core cycles"
            );
        }
    }
    assert_eq!(idle.stats.compute_skip_fraction(), 0.0, "{name}: idle-only fraction");
    let f = full.stats.compute_skip_fraction();
    assert!((0.0..=1.0).contains(&f), "{name}: fraction {f} out of range");
    (full.stats.cycles_skipped, full.stats.compute_cycles_skipped)
}

#[test]
fn whole_suite_static_dms_is_equivalent() {
    // Static-DMS creates the longest idle epochs — the adversarial case for
    // fast-forward correctness and the headline case for its speedup.
    let mut total_skipped = 0u64;
    let mut total_compute = 0u64;
    for app in all_apps() {
        let (skipped, compute) =
            assert_equivalent(&app, &SchedConfig::static_dms(), 0.02, SimLimits::default());
        total_skipped += skipped;
        total_compute += compute;
    }
    assert!(total_skipped > 0, "fast-forward never engaged across the suite");
    assert!(
        total_compute > 0,
        "the analytic compute-burst skipper never engaged across the suite"
    );
}

#[test]
fn scheme_rotation_is_equivalent() {
    // Rotate every other scheme across the suite so each scheme sees
    // several apps and each app sees a second scheme.
    let schemes = [
        SchedConfig::baseline(),
        SchedConfig::dyn_dms(),
        SchedConfig::static_ams(),
        SchedConfig::dyn_ams(),
        SchedConfig::static_combo(),
        SchedConfig::dyn_combo(),
    ];
    for (i, app) in all_apps().into_iter().enumerate() {
        let sched = &schemes[i % schemes.len()];
        assert_equivalent(&app, sched, 0.02, SimLimits::default());
    }
}

#[test]
fn cycle_limit_hit_is_equivalent() {
    // A tight limit exercises the skip-past-the-limit clamp: all loops must
    // report the same truncated statistics and the limit flag.
    let app = lazydram::workloads::by_name("GEMM").expect("app");
    let limits = SimLimits { max_core_cycles: 2_000 };
    let fast = run(&app, &SchedConfig::static_dms(), 0.3, limits, Mode::Full);
    assert!(fast.hit_cycle_limit, "limit chosen too high for this check");
    assert_equivalent(&app, &SchedConfig::static_dms(), 0.3, limits);
}
