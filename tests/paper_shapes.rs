//! Coarse paper-shape assertions, small scale: the qualitative results the
//! reproduction stands on, checked in CI fashion.

use lazydram::common::{AmsMode, DmsMode, GpuConfig, SchedConfig};
use lazydram::workloads::{by_name, run_app};

const SCALE: f64 = 0.2;

/// Figure 4(a) shape: for a delay-sensitive app, a large static delay must
/// not *increase* activations materially, and some delay reduces them.
#[test]
fn delay_reduces_or_preserves_activations_for_sensitive_apps() {
    let cfg = GpuConfig::default();
    for name in ["MVT", "SCP"] {
        let app = by_name(name).expect("app");
        let base = run_app(&app, &cfg, &SchedConfig::baseline(), SCALE);
        let mut best = u64::MAX;
        for d in [128u32, 256, 512] {
            let r = run_app(
                &app,
                &cfg,
                &SchedConfig { dms: DmsMode::Static(d), ..SchedConfig::baseline() },
                SCALE,
            );
            best = best.min(r.stats.dram.activations);
        }
        assert!(
            (best as f64) < 1.02 * base.stats.dram.activations as f64,
            "{name}: best delayed acts {best} vs baseline {}",
            base.stats.dram.activations
        );
    }
}

/// Figure 12 shape: AMS reduces activations and does not hurt IPC.
#[test]
fn ams_reduces_activations_without_ipc_loss() {
    let cfg = GpuConfig::default();
    for name in ["MVT", "SCP"] {
        let app = by_name(name).expect("app");
        let base = run_app(&app, &cfg, &SchedConfig::baseline(), SCALE);
        let sched = SchedConfig { ams_warmup_requests: 100, ..SchedConfig::static_ams() };
        let ams = run_app(&app, &cfg, &sched, SCALE);
        assert!(
            ams.stats.dram.activations < base.stats.dram.activations,
            "{name}: AMS acts {} !< base {}",
            ams.stats.dram.activations,
            base.stats.dram.activations
        );
        assert!(
            ams.stats.ipc() > 0.97 * base.stats.ipc(),
            "{name}: AMS IPC fell to {:.2} of baseline",
            ams.stats.ipc() / base.stats.ipc()
        );
    }
}

/// Dyn-DMS shape: respects the BWUTIL-derived performance floor better than
/// an aggressive static delay on a delay-intolerant app.
#[test]
fn dyn_dms_protects_ipc_better_than_large_static_delay() {
    let cfg = GpuConfig::default();
    let app = by_name("3MM").expect("app");
    let base = run_app(&app, &cfg, &SchedConfig::baseline(), SCALE);
    let aggressive = run_app(
        &app,
        &cfg,
        &SchedConfig { dms: DmsMode::Static(1024), ..SchedConfig::baseline() },
        SCALE,
    );
    let dynd = run_app(&app, &cfg, &SchedConfig::dyn_dms(), SCALE);
    let ipc_static = aggressive.stats.ipc() / base.stats.ipc();
    let ipc_dyn = dynd.stats.ipc() / base.stats.ipc();
    assert!(
        ipc_dyn > ipc_static,
        "Dyn-DMS IPC ratio {ipc_dyn:.3} must beat Static(1024) {ipc_static:.3}"
    );
}

/// Figure 11 direction: every threshold reduces SCP activations (the
/// magnitude ordering across thresholds is scale-sensitive and measured by
/// the `fig11_thrbl` harness at evaluation scale instead).
#[test]
fn every_threshold_reduces_scp_activations() {
    let cfg = GpuConfig::default();
    let app = by_name("SCP").expect("app");
    let base = run_app(&app, &cfg, &SchedConfig::baseline(), SCALE);
    for th in [8u32, 4, 1] {
        let sched = SchedConfig {
            ams: AmsMode::Static(th),
            ams_warmup_requests: 100,
            ..SchedConfig::baseline()
        };
        let r = run_app(&app, &cfg, &sched, SCALE);
        assert!(
            r.stats.dram.activations < base.stats.dram.activations,
            "Th={th}: acts {} !< base {}",
            r.stats.dram.activations,
            base.stats.dram.activations
        );
        assert!(r.stats.dram.coverage() > 0.0, "Th={th}: no drops");
    }
}

/// Figure 2 shape: shrinking the pending queue to 16 entries costs row
/// locality on a thrashing app.
#[test]
fn tiny_queue_increases_activations() {
    let app = by_name("CONS").expect("app");
    let big = run_app(&app, &GpuConfig::default(), &SchedConfig::baseline(), SCALE);
    let small_cfg = GpuConfig { pending_queue_size: 16, ..GpuConfig::default() };
    let small = run_app(&app, &small_cfg, &SchedConfig::baseline(), SCALE);
    assert!(
        small.stats.dram.activations as f64 > 0.98 * big.stats.dram.activations as f64,
        "queue 16 acts {} vs queue 128 acts {}",
        small.stats.dram.activations,
        big.stats.dram.activations
    );
}
