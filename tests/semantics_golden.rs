//! Pins the simulation semantics behind the result cache.
//!
//! The content-addressed store (`lazydram::bench::store`) folds
//! [`lazydram::common::SEMANTICS_VERSION`] into every cache key, trusting
//! that two builds with the same version compute identical measurements.
//! This test makes that contract enforceable: it runs a small fixed set of
//! cells and digests their exact stored bytes.
//!
//! * **If this test fails and you changed simulator behavior on purpose**
//!   (timing, scheduling, energy, workload inputs, statistics): bump
//!   `SEMANTICS_VERSION` in `crates/common/src/lib.rs` — invalidating every
//!   existing cache entry — and re-pin `PINNED` below with the printed
//!   values.
//! * **If you did not mean to change behavior**: this is a regression; the
//!   digest caught results drifting. Fix the code, not the pin.
//! * Speed-only changes (fast-forward, parallelism, allocation) must NOT
//!   trip this test — if one does, it changed results, not just speed.
//! * **Wire-format changes** (a new serialized statistics field, a `snap`
//!   frame version bump) change the stored *bytes* without changing the
//!   measured results. Those re-pin the digest here and bump
//!   `STORE_VERSION` in `crates/bench/src/store.rs`, but leave
//!   `SEMANTICS_VERSION` alone — prove results are untouched via the
//!   bit-identity suites (`tests/fast_forward_equivalence.rs` and the
//!   tier1 figure captures) before re-pinning.

use lazydram::bench::store::encode_entry;
use lazydram::bench::{measure, Measurement};
use lazydram::common::snap::{digest, fold};
use lazydram::common::{DramPreset, SEMANTICS_VERSION};
use lazydram::workloads::by_name;
use lazydram::{Scheme, SimBuilder};

/// `(SEMANTICS_VERSION, golden digest)` — see the module docs for the
/// re-pin protocol. (The digest covers stored bytes, so `STORE_VERSION`
/// bumps re-pin it too; v3 re-pin carried no behavior change — the
/// default-machine cells were byte-identical across the bump.)
const PINNED: (u64, u64) = (1, 0xd2c685aaa0c7f114);

/// One golden cell per non-default memory backend: SCP under the headline
/// scheme on each new backend model. A drifting digest here with a clean
/// [`PINNED`] means only the new backends changed behavior — same re-pin
/// protocol, scoped to the named backend.
const PINNED_BACKENDS: [(DramPreset, u64); 4] = [
    (DramPreset::Naive, 0x9b3eea56c5980d17),
    (DramPreset::Ddr4, 0x7a077a259977b513),
    (DramPreset::Lpddr4, 0x0b8861394b8dd44f),
    (DramPreset::Flex, 0x4584e5a18ecf97d0),
];

fn cell(app: &str, scheme: Scheme) -> Measurement {
    preset_cell(app, scheme, DramPreset::Gddr5)
}

fn preset_cell(app: &str, scheme: Scheme, preset: DramPreset) -> Measurement {
    let app = by_name(app).expect("known app");
    let run = SimBuilder::new(&app).preset(preset).scheme(scheme).scale(0.05).build();
    let exact = run.exact_output();
    measure(&run, &exact)
}

#[test]
fn semantics_version_pins_golden_outputs() {
    // A small cross-section: the baseline path, the full combined scheme
    // (DMS delay + AMS approximation + value prediction), and a pure-DMS
    // cell on a second app. Digested over the exact bytes the store would
    // serve, so anything the cache can possibly return is covered.
    let mut h = 0u64;
    for m in [
        cell("SCP", Scheme::Baseline),
        cell("SCP", Scheme::DynCombo),
        cell("GEMM", Scheme::DynDms),
    ] {
        h = fold(h, digest(&encode_entry(0, &m)));
    }
    assert_eq!(
        (SEMANTICS_VERSION, h),
        PINNED,
        "simulation semantics drifted from the pinned golden outputs \
         (got version {SEMANTICS_VERSION}, digest {h:#018x}). If the behavior change is \
         intentional, bump SEMANTICS_VERSION in crates/common/src/lib.rs (this \
         invalidates all cached results) and re-pin PINNED in this test; \
         otherwise find and fix the regression."
    );
}

#[test]
fn backend_semantics_pin_golden_outputs() {
    for (preset, pinned) in PINNED_BACKENDS {
        let m = preset_cell("SCP", Scheme::DynCombo, preset);
        let h = digest(&encode_entry(0, &m));
        assert_eq!(
            h, pinned,
            "backend {preset} drifted from its pinned golden cell              (got digest {h:#018x}); follow the re-pin protocol in the              module docs"
        );
    }
}
