//! Trace capture + replay at the application level.

use lazydram::common::{AccessKind, GpuConfig, SchedConfig};
use lazydram::workloads::by_name;
use lazydram::{Scheme, SimBuilder, Trace, TraceSim};

#[test]
fn captured_trace_replays_with_matching_request_counts() {
    let app = by_name("CONS").expect("app");
    let cfg = GpuConfig::default();
    let run = SimBuilder::new(&app)
        .scheme(Scheme::Baseline)
        .scale(0.05)
        .trace(true)
        .build()
        .run();
    let trace = run.trace.expect("capture enabled");
    assert_eq!(
        trace.len() as u64,
        run.stats.dram.requests_received,
        "trace records every controller request"
    );
    // Replay through a fresh scheduler: same requests served.
    let stats = trace.replay(&cfg, &SchedConfig::baseline());
    assert_eq!(stats.dram.requests_received, run.stats.dram.requests_received);
    assert_eq!(
        stats.dram.reads + stats.dram.writes,
        run.stats.dram.reads + run.stats.dram.writes
    );
    // Open-loop replay sees the same address stream: activation counts land
    // in the same ballpark as the closed-loop run.
    let a = stats.dram.activations as f64;
    let b = run.stats.dram.activations as f64;
    assert!(a / b > 0.5 && a / b < 2.0, "replay acts {a} vs run acts {b}");
}

#[test]
fn trace_capture_off_by_default() {
    let app = by_name("CONS").expect("app");
    let run = SimBuilder::new(&app).scheme(Scheme::Baseline).scale(0.05).build().run();
    assert!(run.trace.is_none());
}

#[test]
fn trace_replay_responds_to_dms() {
    let app = by_name("SCP").expect("app");
    let cfg = GpuConfig::default();
    let run = SimBuilder::new(&app)
        .scheme(Scheme::Baseline)
        .scale(0.1)
        .trace(true)
        .build()
        .run();
    let trace = run.trace.expect("capture enabled");
    let base = trace.replay(&cfg, &SchedConfig::baseline());
    let dms = trace.replay(&cfg, &SchedConfig {
        dms: lazydram::common::DmsMode::Static(512),
        ..SchedConfig::baseline()
    });
    // The delayed replay must not lose requests and should not *increase*
    // activations by more than noise.
    assert_eq!(dms.dram.reads + dms.dram.writes, base.dram.reads + base.dram.writes);
    assert!(
        (dms.dram.activations as f64) < 1.15 * base.dram.activations as f64,
        "DMS replay acts {} vs {}",
        dms.dram.activations,
        base.dram.activations
    );
}

fn capture(app_name: &str, scale: f64) -> Trace {
    let app = by_name(app_name).expect("app");
    SimBuilder::new(&app)
        .scheme(Scheme::Baseline)
        .scale(scale)
        .trace(true)
        .build()
        .run()
        .trace
        .expect("capture enabled")
}

/// The full persistence path: save to an actual file, load it back, and
/// check the replay is byte-identical in its DRAM statistics.
#[test]
fn trace_survives_a_file_round_trip_with_identical_replay_stats() {
    let cfg = GpuConfig::default();
    let trace = capture("SCP", 0.05);
    let path = std::env::temp_dir().join(format!(
        "lazydram-roundtrip-{}-{}.trace",
        std::process::id(),
        trace.len()
    ));
    trace.save_file(&path, &cfg).expect("save");
    let loaded = Trace::load_file(&path, &cfg).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, trace, "file round-trip preserves every entry");
    let sched = SchedConfig {
        dms: lazydram::common::DmsMode::Static(256),
        ..SchedConfig::baseline()
    };
    let a = TraceSim::new(&cfg, &sched).replay(&trace).expect("replay original");
    let b = TraceSim::new(&cfg, &sched).replay(&loaded).expect("replay loaded");
    assert_eq!(a.stats.dram, b.stats.dram, "replayed stats are byte-identical");
    assert_eq!((a.served, a.unserved), (b.served, b.unserved));
    assert_eq!(a.unserved, 0);
}

/// Write requests must survive capture and replay — the original replayer
/// was only ever exercised on read-dominated streams.
#[test]
fn write_requests_replay_fully() {
    let cfg = GpuConfig::default();
    let trace = capture("CONS", 0.05);
    let writes_recorded =
        trace.iter().filter(|e| e.request.kind == AccessKind::Write).count() as u64;
    assert!(writes_recorded > 0, "CONS's trace must contain write requests");
    let report = TraceSim::new(&cfg, &SchedConfig::baseline()).replay(&trace).expect("replay");
    assert_eq!(report.unserved, 0, "no request may be dropped");
    assert_eq!(report.stats.dram.writes, writes_recorded, "every write is served");
    assert_eq!(
        report.stats.dram.reads + report.stats.dram.writes,
        trace.len() as u64
    );
}

/// Approximable lines must keep their annotation through the persistence
/// path so an AMS replay can drop them — and dropped-by-AMS still counts
/// as served, not lost.
#[test]
fn approximable_lines_replay_under_ams() {
    let cfg = GpuConfig::default();
    let trace = capture("SCP", 0.05);
    assert!(
        trace.iter().any(|e| e.request.approximable),
        "SCP's trace must carry approximable lines"
    );
    let sched = SchedConfig {
        ams: lazydram::common::AmsMode::Static(4),
        ams_warmup_requests: 0,
        ..SchedConfig::baseline()
    };
    let report = TraceSim::new(&cfg, &sched).replay(&trace).expect("replay");
    assert!(report.stats.dram.dropped > 0, "AMS must approximate some lines");
    assert_eq!(report.unserved, 0, "AMS drops count as served, not unserved");
    assert_eq!(
        report.served,
        report.stats.dram.reads + report.stats.dram.writes + report.stats.dram.dropped
    );
}
