//! Trace capture + replay at the application level.

use lazydram::common::{GpuConfig, SchedConfig};
use lazydram::workloads::by_name;
use lazydram::{Scheme, SimBuilder};

#[test]
fn captured_trace_replays_with_matching_request_counts() {
    let app = by_name("CONS").expect("app");
    let cfg = GpuConfig::default();
    let run = SimBuilder::new(&app)
        .scheme(Scheme::Baseline)
        .scale(0.05)
        .trace(true)
        .build()
        .run();
    let trace = run.trace.expect("capture enabled");
    assert_eq!(
        trace.len() as u64,
        run.stats.dram.requests_received,
        "trace records every controller request"
    );
    // Replay through a fresh scheduler: same requests served.
    let stats = trace.replay(&cfg, &SchedConfig::baseline());
    assert_eq!(stats.dram.requests_received, run.stats.dram.requests_received);
    assert_eq!(
        stats.dram.reads + stats.dram.writes,
        run.stats.dram.reads + run.stats.dram.writes
    );
    // Open-loop replay sees the same address stream: activation counts land
    // in the same ballpark as the closed-loop run.
    let a = stats.dram.activations as f64;
    let b = run.stats.dram.activations as f64;
    assert!(a / b > 0.5 && a / b < 2.0, "replay acts {a} vs run acts {b}");
}

#[test]
fn trace_capture_off_by_default() {
    let app = by_name("CONS").expect("app");
    let run = SimBuilder::new(&app).scheme(Scheme::Baseline).scale(0.05).build().run();
    assert!(run.trace.is_none());
}

#[test]
fn trace_replay_responds_to_dms() {
    let app = by_name("SCP").expect("app");
    let cfg = GpuConfig::default();
    let run = SimBuilder::new(&app)
        .scheme(Scheme::Baseline)
        .scale(0.1)
        .trace(true)
        .build()
        .run();
    let trace = run.trace.expect("capture enabled");
    let base = trace.replay(&cfg, &SchedConfig::baseline());
    let dms = trace.replay(&cfg, &SchedConfig {
        dms: lazydram::common::DmsMode::Static(512),
        ..SchedConfig::baseline()
    });
    // The delayed replay must not lose requests and should not *increase*
    // activations by more than noise.
    assert_eq!(dms.dram.reads + dms.dram.writes, base.dram.reads + base.dram.writes);
    assert!(
        (dms.dram.activations as f64) < 1.15 * base.dram.activations as f64,
        "DMS replay acts {} vs {}",
        dms.dram.activations,
        base.dram.activations
    );
}
