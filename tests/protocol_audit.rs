//! DRAM protocol compliance: mirror randomized (guard-checked) command
//! streams into the independent `Auditor` and assert no timing rule breaks.

use lazydram::common::{AccessKind, DramTimings, GpuConfig};
use lazydram::dram::{Auditor, Channel, Command};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Act { bank: u8, row: u8 },
    Pre { bank: u8 },
    Read { bank: u8 },
    Write { bank: u8 },
    Wait { cycles: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16, 0u8..8).prop_map(|(bank, row)| Op::Act { bank, row }),
        (0u8..16).prop_map(|bank| Op::Pre { bank }),
        (0u8..16).prop_map(|bank| Op::Read { bank }),
        (0u8..16).prop_map(|bank| Op::Write { bank }),
        (1u8..24).prop_map(|cycles| Op::Wait { cycles }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn random_guarded_streams_obey_the_protocol(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let cfg = GpuConfig::default();
        let mut ch = Channel::new(&cfg);
        let mut aud = Auditor::new(DramTimings::default());
        let mut now = 0u64;
        for op in ops {
            match op {
                Op::Act { bank, row } => {
                    let (bank, row) = (bank as usize, u32::from(row));
                    if ch.can_activate(bank, now) {
                        ch.activate(bank, row, now);
                        aud.observe(Command::Act { bank, row, at: now });
                        now += 1;
                    }
                }
                Op::Pre { bank } => {
                    let bank = bank as usize;
                    if ch.can_precharge(bank, now) {
                        ch.precharge(bank, now);
                        aud.observe(Command::Pre { bank, at: now });
                        now += 1;
                    }
                }
                Op::Read { bank } => {
                    let bank = bank as usize;
                    if ch.can_cas(bank, AccessKind::Read, now) {
                        ch.cas(bank, AccessKind::Read, true, now);
                        aud.observe(Command::Read { bank, at: now });
                        now += 1;
                    }
                }
                Op::Write { bank } => {
                    let bank = bank as usize;
                    if ch.can_cas(bank, AccessKind::Write, now) {
                        ch.cas(bank, AccessKind::Write, false, now);
                        aud.observe(Command::Write { bank, at: now });
                        now += 1;
                    }
                }
                Op::Wait { cycles } => now += u64::from(cycles),
            }
        }
        prop_assert!(aud.check().is_ok(), "protocol violation: {:?}", aud.violations().first());
    }
}
