//! Memory-technology presets and alternative scheduler baselines, end to end.

use lazydram::common::{Arbiter, DramPreset, GpuConfig, RowPolicy, SchedConfig};
use lazydram::workloads::{by_name, run_app};

const SCALE: f64 = 0.05;

#[test]
fn backend_presets_run_and_preserve_outputs() {
    let app = by_name("meanfilter").expect("app");
    let exact = lazydram::workloads::exact_output(&app, SCALE);
    for preset in DramPreset::ALL {
        let r = run_app(&app, &preset.gpu_config(), &SchedConfig::baseline(), SCALE);
        assert!(!r.hit_cycle_limit, "{preset}");
        assert_eq!(r.output, exact, "{preset}: memory model must not change values");
        assert!(r.stats.dram.activations > 0, "{preset}");
    }
}

#[test]
fn extended_timing_profile_runs() {
    use lazydram::common::DramTimings;
    let app = by_name("CONS").expect("app");
    let cfg = GpuConfig { timings: DramTimings::gddr5_extended(), ..GpuConfig::default() };
    let r = run_app(&app, &cfg, &SchedConfig::baseline(), SCALE);
    assert!(!r.hit_cycle_limit, "refresh/tFAW must not deadlock");
    assert!(r.stats.dram.activations > 0);
}

#[test]
fn fcfs_baseline_is_no_better_than_frfcfs() {
    let app = by_name("CONS").expect("app");
    let cfg = GpuConfig::default();
    let frfcfs = run_app(&app, &cfg, &SchedConfig::baseline(), SCALE);
    let fcfs = run_app(
        &app,
        &cfg,
        &SchedConfig { arbiter: Arbiter::Fcfs, ..SchedConfig::baseline() },
        SCALE,
    );
    assert_eq!(fcfs.output, frfcfs.output);
    assert!(
        fcfs.stats.dram.activations >= frfcfs.stats.dram.activations,
        "FCFS {} must not beat FR-FCFS {} on activations",
        fcfs.stats.dram.activations,
        frfcfs.stats.dram.activations
    );
}

#[test]
fn closed_page_never_beats_open_page_on_activations() {
    let app = by_name("meanfilter").expect("app");
    let cfg = GpuConfig::default();
    let open = run_app(&app, &cfg, &SchedConfig::baseline(), SCALE);
    let closed = run_app(
        &app,
        &cfg,
        &SchedConfig { row_policy: RowPolicy::Closed, ..SchedConfig::baseline() },
        SCALE,
    );
    assert_eq!(closed.output, open.output);
    assert!(closed.stats.dram.activations >= open.stats.dram.activations);
}
