//! Shared conformance suite for every [`MemoryBackend`] in the matrix.
//!
//! The execute-and-stall contract (DESIGN.md §15) lets the controller stay
//! backend-agnostic only if every backend honors the same obligations.
//! Three are checked here, each over all presets:
//!
//! 1. **Snapshot fidelity** — a backend save/load round-tripped mid-stream
//!    must be observationally identical to the original for the rest of
//!    the stream (guard answers, CAS completion cycles, statistics).
//! 2. **Monotone wake-up** — `refresh_due_at` never overshoots: a refresh
//!    is never due strictly before the advertised cycle, and is due at it
//!    (refresh-free backends advertise `u64::MAX`).
//! 3. **Engine invariance** — end to end per preset, the phased parallel
//!    tick (`cores(4)`) and the fast-forward engine (`cycle_skipping`)
//!    must be bit-identical to the reference interpreter, and a
//!    checkpoint/resume run must match an uninterrupted one.

use lazydram::common::{AccessKind, DramPreset, SimStats};
use lazydram::common::snap::{Loader, Saver};
use lazydram::dram::{DramBackend, MemoryBackend};
use lazydram::workloads::by_name;
use lazydram::{Scheme, SimBuilder};
use proptest::prelude::*;

const SCALE: f64 = 0.02;

#[derive(Debug, Clone, Copy)]
enum Op {
    Act { bank: u8, row: u8 },
    Pre { bank: u8 },
    Cas { bank: u8, write: bool },
    Refresh,
    Wait { cycles: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16, 0u8..8).prop_map(|(bank, row)| Op::Act { bank, row }),
        (0u8..16).prop_map(|bank| Op::Pre { bank }),
        (0u8..16, any::<bool>()).prop_map(|(bank, write)| Op::Cas { bank, write }),
        Just(Op::Refresh),
        (1u8..32).prop_map(|cycles| Op::Wait { cycles }),
    ]
}

/// Applies one guarded op to `b` at `now`, returning an observation trace
/// entry (guard outcome + any CAS completion cycle) for equality checks.
fn step(b: &mut DramBackend, nbanks: usize, op: Op, now: &mut u64) -> (bool, u64) {
    b.advance_to(*now);
    match op {
        Op::Act { bank, row } => {
            let bank = bank as usize % nbanks;
            let legal = b.open_row(bank).is_none() && b.can_activate(bank, *now);
            if legal {
                b.activate(bank, u32::from(row), *now);
            }
            (legal, 0)
        }
        Op::Pre { bank } => {
            let bank = bank as usize % nbanks;
            let legal = b.open_row(bank).is_some() && b.can_precharge(bank, *now);
            if legal {
                b.precharge(bank, *now);
            }
            (legal, 0)
        }
        Op::Cas { bank, write } => {
            let bank = bank as usize % nbanks;
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            let legal = b.open_row(bank).is_some() && b.can_cas(bank, kind, *now);
            if legal {
                let done = b.cas(bank, kind, !write, *now);
                assert!(done > *now, "CAS completion must be in the future");
                return (true, done);
            }
            (false, 0)
        }
        Op::Refresh => {
            let legal = b.refresh_due(*now) && b.can_refresh(*now);
            if legal {
                b.refresh(*now);
            }
            (legal, 0)
        }
        Op::Wait { cycles } => {
            *now += u64::from(cycles);
            (true, 0)
        }
    }
}

fn roundtrip(b: &DramBackend, preset: DramPreset) -> DramBackend {
    let mut s = Saver::new();
    b.save_state(&mut s);
    let bytes = s.finish();
    let mut fresh = DramBackend::new(&preset.gpu_config());
    let mut l = Loader::new(&bytes);
    fresh.load_state(&mut l).expect("snapshot round-trip");
    fresh
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn snapshot_roundtrip_is_observationally_identical(
        ops in prop::collection::vec(op_strategy(), 1..200),
        split in 0usize..200,
    ) {
        for preset in DramPreset::ALL {
            let cfg = preset.gpu_config();
            let nbanks = cfg.banks_per_channel;
            let mut a = DramBackend::new(&cfg);
            let mut now = 0u64;
            let split = split.min(ops.len());
            for &op in &ops[..split] {
                step(&mut a, nbanks, op, &mut now);
            }
            let mut b = roundtrip(&a, preset);
            let mut now_b = now;
            for &op in &ops[split..] {
                let oa = step(&mut a, nbanks, op, &mut now);
                let ob = step(&mut b, nbanks, op, &mut now_b);
                prop_assert_eq!(oa, ob, "{} diverged after round-trip", preset);
            }
            prop_assert_eq!(now, now_b);
            prop_assert_eq!(a.open_banks(), b.open_banks(), "{}", preset);
            a.drain();
            b.drain();
            prop_assert!(a.stats() == b.stats(), "{}: stats diverged", preset);
            prop_assert_eq!(a.refreshes(), b.refreshes(), "{}", preset);
        }
    }

    #[test]
    fn refresh_due_at_never_overshoots(
        ops in prop::collection::vec(op_strategy(), 1..150),
    ) {
        for preset in DramPreset::ALL {
            let cfg = preset.gpu_config();
            let nbanks = cfg.banks_per_channel;
            let mut b = DramBackend::new(&cfg);
            let mut now = 0u64;
            for &op in &ops {
                let due_at = b.refresh_due_at();
                if due_at == u64::MAX {
                    prop_assert!(
                        !b.refresh_due(now.saturating_add(1 << 20)),
                        "{}: refresh-free backend reported a due refresh",
                        preset
                    );
                } else {
                    prop_assert!(
                        due_at == 0 || !b.refresh_due(due_at - 1),
                        "{}: refresh due before advertised wake-up {due_at}",
                        preset
                    );
                    prop_assert!(
                        b.refresh_due(due_at),
                        "{}: refresh not due at advertised wake-up {due_at}",
                        preset
                    );
                }
                step(&mut b, nbanks, op, &mut now);
            }
        }
    }
}

/// Strips the skip-engine instrumentation (`cycles_skipped` etc.) that is
/// *supposed* to differ between loop modes — everything else must match.
fn normalized(stats: &SimStats) -> SimStats {
    let mut s = stats.clone();
    s.cycles_skipped = 0;
    s.compute_cycles_skipped = 0;
    s.ticks_executed = 0;
    s
}

#[test]
fn engines_are_bit_identical_on_every_backend() {
    let app = by_name("SCP").expect("app");
    for preset in DramPreset::ALL {
        let build = || {
            SimBuilder::new(&app).preset(preset).scheme(Scheme::DynCombo).scale(SCALE)
        };
        let reference = build().cycle_skipping(false).cores(1).build().run();
        assert!(!reference.hit_cycle_limit, "{preset}");
        for (label, run) in [
            ("cycle_skipping", build().cycle_skipping(true).build().run()),
            ("cores(4)", build().cores(4).build().run()),
        ] {
            assert_eq!(run.output, reference.output, "{preset}/{label}: outputs");
            assert_eq!(
                normalized(&run.stats),
                normalized(&reference.stats),
                "{preset}/{label}: statistics"
            );
        }
    }
}

#[test]
fn checkpoint_resume_is_invisible_on_every_backend() {
    let app = by_name("meanfilter").expect("app");
    for preset in DramPreset::ALL {
        let build = || SimBuilder::new(&app).preset(preset).scheme(Scheme::DynCombo).scale(SCALE);
        let reference = build().build().run();
        let pause_at = reference.stats.core_cycles / 2;
        let run = build().build();
        let ck = match run.run_until(pause_at) {
            lazydram::gpu::RunOutcome::Paused(ck) => ck,
            lazydram::gpu::RunOutcome::Done(_) => {
                panic!("{preset}: finished before the midpoint pause")
            }
        };
        let bytes = ck.into_bytes();
        let ck = lazydram::gpu::Checkpoint::from_bytes(bytes)
            .unwrap_or_else(|e| panic!("{preset}: checkpoint decode: {e}"));
        let resumed = build().build().resume(&ck).expect("resume");
        assert_eq!(resumed.output, reference.output, "{preset}: outputs");
        assert_eq!(resumed.stats, reference.stats, "{preset}: statistics");
    }
}
