//! The facade crate re-exports every subsystem under stable names.

#[test]
fn facade_reexports_compile_and_link() {
    use lazydram::common::GpuConfig;
    use lazydram::core::PendingQueue;
    use lazydram::dram::Channel;
    use lazydram::energy::{EnergyModel, MemoryTech};
    use lazydram::gpu::MemoryImage;
    use lazydram::workloads::all_apps;

    let cfg = GpuConfig::default();
    let _q = PendingQueue::new(8, cfg.banks_per_channel, 4);
    let _c = Channel::new(&cfg);
    let _m = MemoryImage::new();
    let _e = EnergyModel::new(MemoryTech::Gddr5);
    assert_eq!(all_apps().len(), 20);
}
