//! The facade crate re-exports every subsystem under stable names.

#[test]
fn facade_reexports_compile_and_link() {
    use lazydram::common::GpuConfig;
    use lazydram::core::PendingQueue;
    use lazydram::dram::Channel;
    use lazydram::energy::{EnergyModel, MemoryTech};
    use lazydram::gpu::MemoryImage;
    use lazydram::workloads::all_apps;

    let cfg = GpuConfig::default();
    let _q = PendingQueue::new(8, cfg.banks_per_channel, 4);
    let _c = Channel::new(&cfg);
    let _m = MemoryImage::new();
    let _e = EnergyModel::new(MemoryTech::Gddr5);
    assert_eq!(all_apps().len(), 20);
}

#[test]
fn facade_exports_the_builder_entry_points() {
    use lazydram::{CheckpointPolicy, Scheme, SimBuilder, DEFAULT_CHECKPOINT_EVERY};

    // The root crate is the one-stop shop: scheme lookup, builder
    // construction and checkpoint-policy parsing all resolve from `lazydram`.
    assert_eq!(Scheme::by_label("dyn-dms+dyn-ams"), Some(Scheme::DynCombo));
    assert_eq!(Scheme::ALL.len(), 7);
    assert_eq!(Scheme::PAPER.len(), 6);
    // Touch the re-exported constant so a broken re-export fails to compile.
    let _default_every: u64 = DEFAULT_CHECKPOINT_EVERY;
    let policy = CheckpointPolicy::new("/tmp/ckpts", 1000);
    let app = lazydram::workloads::by_name("SCP").expect("app");
    let run = SimBuilder::new(&app)
        .scheme(Scheme::StaticDms)
        .scale(0.02)
        .checkpoints(Some(policy))
        .build();
    assert_eq!(run.scheme_label(), "Static-DMS");
    assert!(run.checkpoint_path().expect("policy attached").to_string_lossy().ends_with(".ckpt"));
}
