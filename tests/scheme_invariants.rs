//! End-to-end invariants of the lazy scheduler across apps and schemes.

use lazydram::common::{GpuConfig, SchedConfig};
use lazydram::workloads::{all_apps, by_name, run_app};

const SCALE: f64 = 0.05;

#[test]
fn coverage_never_exceeds_cap_by_more_than_one_row() {
    // The cap is checked before each drop decision; one decision drops a
    // whole row (≤ Th_RBL requests), so the overshoot is bounded.
    let cfg = GpuConfig::default();
    for app in all_apps() {
        if !app.error_tolerant() {
            continue;
        }
        let sched = SchedConfig { ams_warmup_requests: 50, ..SchedConfig::static_ams() };
        let r = run_app(&app, &cfg, &sched, SCALE);
        let d = &r.stats.dram;
        let slack = 6.0 * 8.0 / d.global_reads_received.max(1) as f64; // 6 controllers × Th 8
        assert!(
            d.coverage() <= sched.coverage_cap + slack + 1e-9,
            "{}: coverage {:.3} exceeds cap",
            app.name,
            d.coverage()
        );
    }
}

#[test]
fn runs_are_deterministic() {
    let app = by_name("LPS").expect("app");
    let cfg = GpuConfig::default();
    let sched = SchedConfig::dyn_combo();
    let a = run_app(&app, &cfg, &sched, SCALE);
    let b = run_app(&app, &cfg, &sched, SCALE);
    assert_eq!(a.stats.core_cycles, b.stats.core_cycles);
    assert_eq!(a.stats.dram.activations, b.stats.dram.activations);
    assert_eq!(a.stats.dram.dropped, b.stats.dram.dropped);
    assert_eq!(a.output, b.output);
}

#[test]
fn activations_equal_row_misses() {
    // Every activation serves exactly the requests counted as its row's
    // first access: activations == row misses (open-row policy).
    let cfg = GpuConfig::default();
    for name in ["GEMM", "SCP", "meanfilter"] {
        let app = by_name(name).expect("app");
        let r = run_app(&app, &cfg, &SchedConfig::baseline(), SCALE);
        assert_eq!(
            r.stats.dram.activations, r.stats.dram.row_misses,
            "{name}: activations vs misses"
        );
    }
}

#[test]
fn rbl_histogram_accounts_every_served_request() {
    let cfg = GpuConfig::default();
    let app = by_name("CONS").expect("app");
    let r = run_app(&app, &cfg, &SchedConfig::baseline(), SCALE);
    let d = &r.stats.dram;
    assert_eq!(d.rbl.requests(), d.served(), "histogram covers all requests");
    assert_eq!(d.rbl.activations(), d.activations, "histogram covers all activations");
}

#[test]
fn dropped_requests_are_never_served_by_dram() {
    let cfg = GpuConfig::default();
    let app = by_name("MVT").expect("app");
    let sched = SchedConfig { ams_warmup_requests: 0, ..SchedConfig::static_ams() };
    let r = run_app(&app, &cfg, &sched, SCALE);
    let d = &r.stats.dram;
    assert!(d.dropped > 0, "expected drops");
    assert_eq!(
        d.reads + d.writes + d.dropped,
        d.requests_received,
        "every request is either served or dropped"
    );
}

#[test]
fn baseline_never_approximates() {
    let cfg = GpuConfig::default();
    let app = by_name("RAY").expect("app");
    let r = run_app(&app, &cfg, &SchedConfig::baseline(), SCALE);
    assert_eq!(r.stats.dram.dropped, 0);
    assert_eq!(r.stats.approximated_loads, 0);
    assert_eq!(r.stats.ams_accepts, 0);
}

#[test]
fn dyn_dms_delay_stays_in_bounds() {
    // Indirect check: Dyn-DMS must not blow IPC below the controller's
    // design envelope on a delay-sensitive app.
    let cfg = GpuConfig::default();
    let app = by_name("3MM").expect("app");
    let base = run_app(&app, &cfg, &SchedConfig::baseline(), 0.1);
    let dynd = run_app(&app, &cfg, &SchedConfig::dyn_dms(), 0.1);
    let ratio = dynd.stats.ipc() / base.stats.ipc().max(1e-9);
    assert!(ratio > 0.80, "Dyn-DMS degraded IPC to {ratio:.2} of baseline");
}

#[test]
fn group4_apps_run_under_delay_only() {
    let cfg = GpuConfig::default();
    for app in lazydram::workloads::group(4).into_iter().take(3) {
        let r = run_app(&app, &cfg, &SchedConfig::static_dms(), SCALE);
        assert!(!r.hit_cycle_limit, "{} truncated", app.name);
        assert_eq!(r.stats.dram.dropped, 0, "{}: delay-only must not drop", app.name);
    }
}
