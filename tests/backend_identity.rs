//! The default (GDDR5) backend must be **byte-identical** to the pre-trait
//! hard-wired channel model.
//!
//! `crates/bench/captures/pre_pr10/` holds `LAZYDRAM_RESULTS` JSONL from
//! the fig04/fig12 harnesses captured at the commit *before* the
//! [`MemoryBackend`] extraction (`LAZYDRAM_SCALE=0.05`). This test re-runs
//! a cross-section of those cells through today's trait-dispatched
//! [`Gddr5Backend`] and compares [`Measurement::to_json`] byte-for-byte
//! against the captured lines — any drift in timing, statistics, energy or
//! float formatting fails here before it reaches the tier-1 figure diff
//! (which compares the *full* 140/77-record files).

use lazydram::bench::{measure, Measurement};
use lazydram::common::{DmsMode, SchedConfig};
use lazydram::workloads::by_name;
use lazydram::{Scheme, SimBuilder};

const SCALE: f64 = 0.05;

fn captured(file: &str, app: &str, scheme: &str) -> String {
    let path = format!("crates/bench/captures/pre_pr10/{file}");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing pre-PR capture {path}: {e}"));
    text.lines()
        .find(|l| l.contains(&format!("\"app\":\"{app}\"")) && l.contains(&format!("\"scheme\":\"{scheme}\"")))
        .unwrap_or_else(|| panic!("no {app}/{scheme} record in {path}"))
        .to_string()
}

fn assert_cell_matches(file: &str, m: &Measurement) {
    let want = captured(file, &m.app, &m.scheme);
    assert_eq!(
        m.to_json(),
        want,
        "{}/{}: GDDR5 backend drifted from the pre-trait capture",
        m.app,
        m.scheme
    );
}

#[test]
fn gddr5_matches_pre_trait_fig12_cells() {
    let app = by_name("SCP").expect("app");
    let exact = lazydram::workloads::exact_output(&app, SCALE);
    for scheme in [Scheme::Baseline, Scheme::DynDms, Scheme::DynCombo] {
        let run = SimBuilder::new(&app).scheme(scheme).scale(SCALE).build();
        let m = measure(&run, &exact);
        assert_cell_matches("fig12.jsonl", &m);
    }
}

#[test]
fn gddr5_matches_pre_trait_fig04_cells() {
    let app = by_name("SCP").expect("app");
    let exact = lazydram::workloads::exact_output(&app, SCALE);
    for delay in [64u32, 512] {
        let run = SimBuilder::new(&app)
            .sched(
                SchedConfig { dms: DmsMode::Static(delay), ..SchedConfig::baseline() },
                format!("DMS({delay})"),
            )
            .scale(SCALE)
            .build();
        let m = measure(&run, &exact);
        assert_cell_matches("fig04.jsonl", &m);
    }
}
