//! A self-contained, offline mini implementation of the `proptest` 1.x API
//! surface this workspace uses.
//!
//! The real `proptest` crate cannot be fetched in the offline build
//! environment, so this shim provides the same macros and strategy
//! combinators with a deterministic SplitMix64 generator. There is no input
//! shrinking: on failure the test panics with the case number, the seed and
//! the `Debug` rendering of every generated input, which is enough to
//! reproduce the case (seeds are derived deterministically from the test
//! name and case index).

#![deny(missing_docs)]

use std::fmt::Debug;

/// Deterministic generator behind every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % bound
    }
}

/// Error type returned by `prop_assert!` family; carries the failure text.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::{Debug, TestRng};

    /// A generator of test inputs.
    pub trait Strategy {
        /// The generated value type.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy mapped through a function (`prop_map`).
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Type-erased strategy (used by `prop_oneof!`).
    pub struct BoxedStrategy<T> {
        gen_fn: Box<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen_fn)(rng)
        }
    }

    /// Conversion into a [`BoxedStrategy`]; blanket-implemented.
    pub trait IntoBoxed<T> {
        /// Boxes the strategy.
        fn into_boxed(self) -> BoxedStrategy<T>;
    }

    impl<S: Strategy + 'static> IntoBoxed<S::Value> for S {
        fn into_boxed(self) -> BoxedStrategy<S::Value> {
            BoxedStrategy {
                gen_fn: Box::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128 - lo as u128 + 1) as u64;
                    lo + (rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use super::{Debug, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec`).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::TestRng;

        /// Size specification for collection strategies.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self { lo: r.start, hi: r.end }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        /// Strategy generating `Vec`s of another strategy's values.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let n = self.size.lo + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `vec(element, len_range)`: vectors with length drawn from the range.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }
}

/// Derives a stable 64-bit seed from a test path string.
pub fn seed_of(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in prop::collection::vec(any::<bool>(), 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let seed = $crate::seed_of(concat!(module_path!(), "::", stringify!($name)), case);
                    let mut __proptest_rng = $crate::TestRng::new(seed);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    let mut __case_desc = String::new();
                    $(__case_desc.push_str(&format!("  {} = {:?}\n", stringify!($arg), $arg));)+
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::TestCaseError> { $body Ok(()) },
                    ));
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => panic!(
                            "property {} failed at case {case} (seed {seed:#x}): {e}\ninputs:\n{}",
                            stringify!($name), __case_desc
                        ),
                        Err(payload) => {
                            eprintln!(
                                "property {} panicked at case {case} (seed {seed:#x})\ninputs:\n{}",
                                stringify!($name), __case_desc
                            );
                            std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])+ fn $name:ident($($args:tt)*) $body:block)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($(#[$meta])+ fn $name($($args)*) $body)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "format", args…)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!("assertion failed: ", stringify!($cond))));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional context message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` ({} == {})",
                l, r, stringify!($left), stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::IntoBoxed::into_boxed($arm)),+])
    };
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5, "y was {y}");
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_and_map_compose(op in prop_oneof![
            (0u8..4).prop_map(|b| (b, false)),
            Just((9, true)),
        ]) {
            let (v, tagged) = op;
            prop_assert!(tagged == (v == 9));
        }
    }
}
