//! One DRAM channel: banks + shared command/data buses + statistics.

use crate::bank::{Bank, BankState};
use lazydram_common::snap::{Loader, Saver, SnapError, SnapResult};
use lazydram_common::{AccessKind, DramStats, DramTimings, GpuConfig};

/// A GDDR5 channel with `banks_per_channel` banks in `bank_groups` groups.
///
/// The channel enforces the *inter*-bank and bus-level constraints; per-bank
/// constraints live in [`Bank`]. All times are memory cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    timings: DramTimings,
    /// Per-bank timing overrides (Flexible-Latency DRAM). Empty means every
    /// bank uses `timings`; when non-empty it holds one entry per bank.
    /// Derived from the configuration at construction time, never
    /// serialized.
    bank_timings: Vec<DramTimings>,
    banks: Vec<Bank>,
    banks_per_group: usize,
    /// Bit `b` set iff bank `b` has an open row. Derived from `banks`
    /// (maintained by `activate`/`precharge`/`drain`, rebuilt on restore,
    /// never serialized); lets per-cycle scans visit only open banks.
    open_banks: u64,
    /// Earliest cycle the next `ACT` to *any* bank is legal (tRRD).
    next_act_ok: u64,
    /// Cycle of the most recent command, for the 1-command/cycle bus.
    last_cmd_cycle: Option<u64>,
    /// First cycle at which the data bus is free again.
    bus_free: u64,
    /// End cycle of the most recent write burst (for the tCDLR turnaround).
    last_write_data_end: Option<u64>,
    /// Ring buffer of the four most recent `ACT` times (tFAW extension);
    /// `act_ring_idx` points at the oldest entry (next to be overwritten).
    act_ring: [u64; 4],
    act_ring_idx: usize,
    acts_seen: u64,
    /// Most recent CAS `(cycle, bank_group)` for the tCCDL extension.
    last_cas: Option<(u64, usize)>,
    /// Next cycle an all-bank refresh falls due (tREFI extension; `u64::MAX`
    /// when refresh is disabled).
    refresh_due: u64,
    /// End of an in-progress refresh; all commands stall until then.
    refresh_until: u64,
    /// All-bank refreshes performed.
    refreshes: u64,
    stats: DramStats,
}

impl Channel {
    /// Creates an idle channel per the GPU configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        assert!(
            cfg.banks_per_channel <= 64,
            "the open-bank bitmask caps a channel at 64 banks"
        );
        Self {
            timings: cfg.timings,
            bank_timings: Vec::new(),
            banks: (0..cfg.banks_per_channel).map(|_| Bank::new()).collect(),
            banks_per_group: cfg.banks_per_channel / cfg.bank_groups,
            open_banks: 0,
            next_act_ok: 0,
            last_cmd_cycle: None,
            bus_free: 0,
            last_write_data_end: None,
            act_ring: [0; 4],
            act_ring_idx: 0,
            acts_seen: 0,
            last_cas: None,
            refresh_due: if cfg.timings.t_refi > 0 {
                u64::from(cfg.timings.t_refi)
            } else {
                u64::MAX
            },
            refresh_until: 0,
            refreshes: 0,
            stats: DramStats::new(),
        }
    }

    /// Number of banks in this channel.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// Banks per bank group.
    pub fn banks_per_group(&self) -> usize {
        self.banks_per_group
    }

    /// Installs per-bank timing overrides (Flexible-Latency DRAM). `over`
    /// must hold exactly one entry per bank. Call right after construction,
    /// before any command is issued.
    ///
    /// Channel-global constraints (tRRD, tFAW, tCCD/tCCDL gaps, tCDLR,
    /// refresh) keep using the configuration's base timings; only the
    /// per-bank command timings (tCL/tRCD/tRP/tRAS/tRC/tWL/tWR) vary.
    ///
    /// # Panics
    ///
    /// Panics if `over.len()` differs from the bank count.
    pub fn set_bank_timings(&mut self, over: Vec<DramTimings>) {
        assert_eq!(over.len(), self.banks.len(), "one timing set per bank");
        self.bank_timings = over;
    }

    /// The timing parameters in force for `bank`.
    fn bt(&self, bank: usize) -> &DramTimings {
        if self.bank_timings.is_empty() {
            &self.timings
        } else {
            &self.bank_timings[bank]
        }
    }

    /// The row currently open in `bank`, if any.
    pub fn open_row(&self, bank: usize) -> Option<u32> {
        self.banks[bank].open_row()
    }

    /// Bitmask of banks with an open row (bit `b` ⇔ `open_row(b).is_some()`).
    pub fn open_banks(&self) -> u64 {
        self.open_banks
    }

    /// Read-only view of a bank.
    pub fn bank(&self, bank: usize) -> &Bank {
        &self.banks[bank]
    }

    /// Accumulated channel statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Mutable statistics handle, used by the memory controller to account
    /// controller-side events (requests received, drops) in the same record.
    pub fn stats_mut(&mut self) -> &mut DramStats {
        &mut self.stats
    }

    /// Advances the channel's notion of elapsed time (sets
    /// [`DramStats::mem_cycles`]); call once per memory cycle.
    pub fn advance_to(&mut self, now: u64) {
        self.stats.mem_cycles = self.stats.mem_cycles.max(now);
    }

    fn cmd_bus_free(&self, now: u64) -> bool {
        self.last_cmd_cycle.is_none_or(|c| c < now)
    }

    /// Is an `ACT` of any row of `bank` legal at `now`?
    pub fn can_activate(&self, bank: usize, now: u64) -> bool {
        if now < self.refresh_until {
            return false;
        }
        if self.timings.t_faw > 0 && self.acts_seen >= 4 {
            // At most four ACTs per rolling tFAW window: the fifth must wait
            // until tFAW past the fourth-most-recent one.
            let oldest = self.act_ring[self.act_ring_idx];
            if now < oldest + u64::from(self.timings.t_faw) {
                return false;
            }
        }
        self.cmd_bus_free(now) && now >= self.next_act_ok && self.banks[bank].can_activate(now)
    }

    /// Issues `ACT bank,row` at `now`.
    ///
    /// # Panics
    ///
    /// Debug-panics if [`Channel::can_activate`] is false at `now`.
    pub fn activate(&mut self, bank: usize, row: u32, now: u64) {
        debug_assert!(self.can_activate(bank, now), "illegal ACT at {now}");
        let t = *self.bt(bank);
        self.banks[bank].activate(row, now, &t);
        self.open_banks |= 1 << bank;
        self.next_act_ok = now + u64::from(self.timings.t_rrd);
        self.last_cmd_cycle = Some(now);
        // Rotate the tFAW ring: overwrite the oldest entry.
        self.act_ring[self.act_ring_idx] = now;
        self.act_ring_idx = (self.act_ring_idx + 1) % 4;
        self.acts_seen += 1;
        self.stats.activations += 1;
    }

    /// Is a `PRE` of `bank` legal at `now`?
    pub fn can_precharge(&self, bank: usize, now: u64) -> bool {
        self.cmd_bus_free(now) && self.banks[bank].can_precharge(now)
    }

    /// Issues `PRE bank` at `now`, recording the finished activation's RBL.
    ///
    /// # Panics
    ///
    /// Debug-panics if [`Channel::can_precharge`] is false at `now`.
    pub fn precharge(&mut self, bank: usize, now: u64) {
        debug_assert!(self.can_precharge(bank, now), "illegal PRE at {now}");
        let t = *self.bt(bank);
        let rec = self.banks[bank].precharge(now, &t);
        self.open_banks &= !(1 << bank);
        self.last_cmd_cycle = Some(now);
        self.stats.precharges += 1;
        self.record_closed(rec.served, rec.read_only);
    }

    fn record_closed(&mut self, served: u32, read_only: bool) {
        if served > 0 {
            self.stats.rbl.record(served);
            if read_only {
                self.stats.rbl_read_only.record(served);
            }
        }
    }

    /// Is a CAS (`RD`/`WR`) to the open row of `bank` legal at `now`?
    ///
    /// Checks per-bank tRCD, the command bus, the shared data bus, and the
    /// write→read tCDLR turnaround.
    pub fn can_cas(&self, bank: usize, kind: AccessKind, now: u64) -> bool {
        if now < self.refresh_until {
            return false;
        }
        if !self.cmd_bus_free(now) || !self.banks[bank].can_cas(now) {
            return false;
        }
        if self.timings.t_ccdl > 0 {
            if let Some((t, group)) = self.last_cas {
                let same_group = group == bank / self.banks_per_group;
                let gap = if same_group {
                    u64::from(self.timings.t_ccdl)
                } else {
                    u64::from(self.timings.t_ccd)
                };
                if now < t + gap {
                    return false;
                }
            }
        }
        let data_start = now + self.cas_latency(bank, kind);
        if data_start < self.bus_free {
            return false;
        }
        if kind == AccessKind::Read {
            if let Some(wend) = self.last_write_data_end {
                if now < wend + u64::from(self.timings.t_cdlr) {
                    return false;
                }
            }
        }
        true
    }

    fn cas_latency(&self, bank: usize, kind: AccessKind) -> u64 {
        let t = self.bt(bank);
        match kind {
            AccessKind::Read => u64::from(t.t_cl),
            AccessKind::Write => u64::from(t.t_wl),
        }
    }

    /// Issues a CAS at `now`; returns the cycle at which the data burst
    /// completes (data available to the controller for reads; write retired
    /// for writes). `global_read` marks requests that keep an activation in
    /// AMS's read-only population.
    ///
    /// # Panics
    ///
    /// Debug-panics if [`Channel::can_cas`] is false at `now`.
    pub fn cas(&mut self, bank: usize, kind: AccessKind, global_read: bool, now: u64) -> u64 {
        debug_assert!(self.can_cas(bank, kind, now), "illegal CAS at {now}");
        // Row hit iff this activation already served at least one request.
        let first = self.banks[bank]
            .activation()
            .map(|r| r.served == 0)
            .unwrap_or(true);
        if first {
            self.stats.row_misses += 1;
        } else {
            self.stats.row_hits += 1;
        }
        let t = *self.bt(bank);
        self.banks[bank].cas(kind, global_read, now, &t);
        self.last_cmd_cycle = Some(now);
        let data_start = now + self.cas_latency(bank, kind);
        let data_end = data_start + u64::from(self.timings.t_ccd);
        self.bus_free = data_end;
        self.last_cas = Some((now, bank / self.banks_per_group));
        self.stats.bus_busy_cycles += u64::from(self.timings.t_ccd);
        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => {
                self.stats.writes += 1;
                self.last_write_data_end = Some(data_end);
            }
        }
        data_end
    }

    /// `true` when an all-bank refresh is due (the refresh extension is
    /// enabled and tREFI has elapsed since the previous refresh).
    pub fn refresh_due(&self, now: u64) -> bool {
        now >= self.refresh_due
    }

    /// The absolute memory cycle at which the next refresh falls due
    /// (`u64::MAX` when the refresh extension is disabled). Used by the
    /// event-driven loop as a wake-up point.
    pub fn refresh_due_at(&self) -> u64 {
        self.refresh_due
    }

    /// Is an all-bank `REF` legal at `now`? All banks must be precharged.
    pub fn can_refresh(&self, now: u64) -> bool {
        now >= self.refresh_until
            && self.cmd_bus_free(now)
            && self.banks.iter().all(|b| b.state() == BankState::Closed)
    }

    /// Issues an all-bank refresh at `now`; every command stalls for tRFC.
    ///
    /// # Panics
    ///
    /// Debug-panics if [`Channel::can_refresh`] is false at `now`.
    pub fn refresh(&mut self, now: u64) {
        debug_assert!(self.can_refresh(now), "illegal REF at {now}");
        self.last_cmd_cycle = Some(now);
        self.refresh_until = now + u64::from(self.timings.t_rfc);
        self.refresh_due = now + u64::from(self.timings.t_refi).max(1);
        self.refreshes += 1;
    }

    /// All-bank refreshes performed so far.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Serializes the full channel state (banks, bus bookkeeping, refresh
    /// FSM, statistics) into a snapshot. Timings and geometry are *not*
    /// serialized — they come from the configuration at restore time.
    pub fn save_state(&self, s: &mut Saver) {
        s.seq("banks", self.banks.len());
        for (i, b) in self.banks.iter().enumerate() {
            s.frame("bank", i as u32, |s| b.save_state(s));
        }
        s.u64("next_act_ok", self.next_act_ok);
        s.bool("has_last_cmd", self.last_cmd_cycle.is_some());
        s.u64("last_cmd_cycle", self.last_cmd_cycle.unwrap_or(0));
        s.u64("bus_free", self.bus_free);
        s.bool("has_last_write_end", self.last_write_data_end.is_some());
        s.u64("last_write_data_end", self.last_write_data_end.unwrap_or(0));
        s.u64s("act_ring", &self.act_ring);
        s.usize("act_ring_idx", self.act_ring_idx);
        s.u64("acts_seen", self.acts_seen);
        match self.last_cas {
            None => s.bool("has_last_cas", false),
            Some((t, group)) => {
                s.bool("has_last_cas", true);
                s.u64("last_cas_cycle", t);
                s.usize("last_cas_group", group);
            }
        }
        s.u64("refresh_due", self.refresh_due);
        s.u64("refresh_until", self.refresh_until);
        s.u64("refreshes", self.refreshes);
        s.frame("stat", 0, |s| self.stats.save_state(s));
    }

    /// Restores the channel state from a snapshot. The channel must have
    /// been constructed with the same configuration that produced the
    /// snapshot (bank count is validated).
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed or the bank
    /// count differs from this channel's geometry.
    pub fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        let n = l.seq("banks", 1)?;
        if n != self.banks.len() {
            return Err(SnapError::Malformed {
                label: "banks".into(),
                why: format!("snapshot has {n} banks, channel has {}", self.banks.len()),
            });
        }
        for (i, b) in self.banks.iter_mut().enumerate() {
            l.frame("bank", i as u32, |l| b.load_state(l))?;
        }
        // Rebuild the derived open-bank mask (never serialized).
        self.open_banks = 0;
        for (i, b) in self.banks.iter().enumerate() {
            if b.open_row().is_some() {
                self.open_banks |= 1 << i;
            }
        }
        self.next_act_ok = l.u64("next_act_ok")?;
        let has_last_cmd = l.bool("has_last_cmd")?;
        let last_cmd = l.u64("last_cmd_cycle")?;
        self.last_cmd_cycle = has_last_cmd.then_some(last_cmd);
        self.bus_free = l.u64("bus_free")?;
        let has_wend = l.bool("has_last_write_end")?;
        let wend = l.u64("last_write_data_end")?;
        self.last_write_data_end = has_wend.then_some(wend);
        l.u64_array("act_ring", &mut self.act_ring)?;
        self.act_ring_idx = l.usize("act_ring_idx")?;
        if self.act_ring_idx >= 4 {
            return Err(SnapError::Malformed {
                label: "act_ring_idx".into(),
                why: format!("index {} out of range", self.act_ring_idx),
            });
        }
        self.acts_seen = l.u64("acts_seen")?;
        self.last_cas = if l.bool("has_last_cas")? {
            Some((l.u64("last_cas_cycle")?, l.usize("last_cas_group")?))
        } else {
            None
        };
        self.refresh_due = l.u64("refresh_due")?;
        self.refresh_until = l.u64("refresh_until")?;
        self.refreshes = l.u64("refreshes")?;
        l.frame("stat", 0, |l| self.stats.load_state(l))
    }

    /// Closes every open row *without* timing checks, flushing their RBL into
    /// the histograms. Call exactly once, at the end of a simulation.
    pub fn drain(&mut self) {
        for i in 0..self.banks.len() {
            if matches!(self.banks[i].state(), BankState::Open { .. }) {
                // Bypass timing: the simulation is over; we only need stats.
                let rec = {
                    let bank = &mut self.banks[i];
                    // Force-precharge by rebuilding the bank closed.
                    let rec = *bank.activation().expect("open bank has record");
                    *bank = Bank::new();
                    rec
                };
                self.stats.precharges += 1;
                self.record_closed(rec.served, rec.read_only);
            }
        }
        self.open_banks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> Channel {
        Channel::new(&GpuConfig::default())
    }

    #[test]
    fn trrd_blocks_back_to_back_acts_across_banks() {
        let mut c = ch();
        c.activate(0, 1, 0);
        assert!(!c.can_activate(1, 5), "tRRD=6 must block");
        assert!(c.can_activate(1, 6));
        c.activate(1, 1, 6);
        assert_eq!(c.stats().activations, 2);
    }

    #[test]
    fn command_bus_allows_one_command_per_cycle() {
        let mut c = ch();
        c.activate(0, 1, 10);
        // Same cycle: even an otherwise-legal PRE/ACT elsewhere must wait.
        assert!(!c.can_activate(1, 10));
        assert!(!c.can_cas(0, AccessKind::Read, 10));
    }

    #[test]
    fn data_bus_serializes_bursts() {
        let mut c = ch();
        c.activate(0, 1, 0);
        c.activate(4, 1, 6); // different bank group
        let t1 = c.cas(0, AccessKind::Read, true, 18); // both banks past tRCD
        assert_eq!(t1, 18 + 12 + 2);
        // Next CAS's data (now + tCL) must not start before bus_free (32):
        // legal from now = 20 on.
        assert!(!c.can_cas(4, AccessKind::Read, 19));
        assert!(c.can_cas(4, AccessKind::Read, 20));
    }

    #[test]
    fn write_to_read_turnaround_enforced() {
        let mut c = ch();
        c.activate(0, 1, 0);
        c.cas(0, AccessKind::Write, false, 12); // data 16..18
        // Read CAS must wait until 18 + tCDLR(5) = 23.
        assert!(!c.can_cas(0, AccessKind::Read, 22));
        assert!(c.can_cas(0, AccessKind::Read, 23));
    }

    #[test]
    fn row_hit_miss_accounting() {
        let mut c = ch();
        c.activate(0, 1, 0);
        c.cas(0, AccessKind::Read, true, 12);
        c.cas(0, AccessKind::Read, true, 14);
        c.cas(0, AccessKind::Read, true, 16);
        assert_eq!(c.stats().row_misses, 1);
        assert_eq!(c.stats().row_hits, 2);
    }

    #[test]
    fn precharge_records_rbl() {
        let mut c = ch();
        c.activate(0, 1, 0);
        c.cas(0, AccessKind::Read, true, 12);
        c.cas(0, AccessKind::Read, true, 14);
        c.precharge(0, 28);
        assert_eq!(c.stats().rbl.count(2), 1);
        assert_eq!(c.stats().rbl_read_only.count(2), 1);
        assert_eq!(c.stats().precharges, 1);
    }

    #[test]
    fn write_activation_not_in_read_only_histogram() {
        let mut c = ch();
        c.activate(0, 1, 0);
        c.cas(0, AccessKind::Write, false, 12);
        c.precharge(0, 30);
        assert_eq!(c.stats().rbl.count(1), 1);
        assert_eq!(c.stats().rbl_read_only.activations(), 0);
    }

    #[test]
    fn drain_flushes_open_rows() {
        let mut c = ch();
        c.activate(0, 1, 0);
        c.cas(0, AccessKind::Read, true, 12);
        c.drain();
        assert_eq!(c.stats().rbl.count(1), 1);
        assert_eq!(c.open_row(0), None);
        assert_eq!(c.stats().precharges, 1);
    }

    #[test]
    fn bus_busy_cycles_track_bursts() {
        let mut c = ch();
        c.activate(0, 1, 0);
        c.cas(0, AccessKind::Read, true, 12);
        c.cas(0, AccessKind::Read, true, 14);
        assert_eq!(c.stats().bus_busy_cycles, 4); // 2 bursts × tCCD(2)
    }

    #[test]
    fn tfaw_blocks_fifth_activation_in_window() {
        // A tFAW large enough to dominate the tRRD chain (4 × 6 = 24).
        let g = GpuConfig {
            timings: DramTimings { t_faw: 60, ..DramTimings::default() },
            ..GpuConfig::default()
        };
        let mut c = Channel::new(&g);
        let mut now = 0;
        for bank in 0..4 {
            while !c.can_activate(bank, now) {
                now += 1;
            }
            c.activate(bank, 1, now);
        }
        assert_eq!(now, 18, "four ACTs land at 0, 6, 12, 18 under tRRD");
        let fifth_earliest = {
            let mut t = now + 1;
            while !c.can_activate(4, t) {
                t += 1;
            }
            t
        };
        // First ACT at cycle 0 → the window opens at tFAW = 60.
        assert_eq!(fifth_earliest, 60, "tFAW must gate the fifth ACT");
    }

    #[test]
    fn tccdl_separates_same_group_bursts() {
        let g = GpuConfig {
            timings: DramTimings { t_ccdl: 4, ..DramTimings::default() },
            ..GpuConfig::default()
        };
        let mut c = Channel::new(&g);
        c.activate(0, 1, 0); // group 0
        c.activate(1, 1, 6); // bank 1 is also group 0 (banks 0-3)
        c.activate(4, 1, 12); // group 1
        c.cas(0, AccessKind::Read, true, 18);
        // Same group: must wait t_ccdl (4); other group: t_ccd (2)… but the
        // shared data bus also enforces 2, so test the same-group gap.
        assert!(!c.can_cas(1, AccessKind::Read, 20), "tCCDL gap");
        assert!(c.can_cas(1, AccessKind::Read, 22));
    }

    #[test]
    fn refresh_stalls_and_recurs() {
        let g = GpuConfig {
            timings: DramTimings { t_refi: 100, t_rfc: 20, ..DramTimings::default() },
            ..GpuConfig::default()
        };
        let mut c = Channel::new(&g);
        assert!(!c.refresh_due(99));
        assert!(c.refresh_due(100));
        assert!(c.can_refresh(100));
        c.refresh(100);
        assert_eq!(c.refreshes(), 1);
        // Everything stalls during tRFC.
        assert!(!c.can_activate(0, 110));
        assert!(c.can_activate(0, 120));
        // Next refresh due one tREFI later.
        assert!(!c.refresh_due(150));
        assert!(c.refresh_due(200));
    }

    #[test]
    fn refresh_requires_closed_banks() {
        let g = GpuConfig {
            timings: DramTimings { t_refi: 10, t_rfc: 20, ..DramTimings::default() },
            ..GpuConfig::default()
        };
        let mut c = Channel::new(&g);
        c.activate(0, 1, 0);
        assert!(!c.can_refresh(10), "open bank blocks refresh");
        c.precharge(0, 28);
        assert!(c.can_refresh(29));
    }

    #[test]
    fn advance_to_is_monotone() {
        let mut c = ch();
        c.advance_to(10);
        c.advance_to(5);
        assert_eq!(c.stats().mem_cycles, 10);
    }
}
