//! An independent DRAM-protocol checker.
//!
//! [`Auditor`] re-implements the GDDR5 timing rules *separately* from the
//! [`Channel`](crate::Channel) state machine, so tests can feed it the command
//! stream a channel (or a whole memory controller) produced and catch any
//! protocol violation. It is deliberately written as a trace checker — it
//! keeps full per-bank command history — rather than sharing code with the
//! fast path.

use lazydram_common::DramTimings;
use std::collections::HashMap;

/// One DRAM command, as observed on the command bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Activate `row` in `bank` at cycle `at`.
    Act {
        /// Target bank (flat index within the channel).
        bank: usize,
        /// Row to open.
        row: u32,
        /// Issue cycle.
        at: u64,
    },
    /// Precharge `bank` at cycle `at`.
    Pre {
        /// Target bank.
        bank: usize,
        /// Issue cycle.
        at: u64,
    },
    /// Read burst from the open row of `bank` at cycle `at`.
    Read {
        /// Target bank.
        bank: usize,
        /// Issue cycle.
        at: u64,
    },
    /// Write burst to the open row of `bank` at cycle `at`.
    Write {
        /// Target bank.
        bank: usize,
        /// Issue cycle.
        at: u64,
    },
}

impl Command {
    /// Issue cycle of the command.
    pub fn at(&self) -> u64 {
        match *self {
            Command::Act { at, .. }
            | Command::Pre { at, .. }
            | Command::Read { at, .. }
            | Command::Write { at, .. } => at,
        }
    }

    /// Target bank of the command.
    pub fn bank(&self) -> usize {
        match *self {
            Command::Act { bank, .. }
            | Command::Pre { bank, .. }
            | Command::Read { bank, .. }
            | Command::Write { bank, .. } => bank,
        }
    }
}

/// A detected violation of the DRAM protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolViolation {
    /// The offending command.
    pub command: Command,
    /// Human-readable rule description, e.g. `"tRCD"` or `"command bus"`.
    pub rule: String,
}

impl std::fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} violated by {:?}", self.rule, self.command)
    }
}

impl std::error::Error for ProtocolViolation {}

#[derive(Debug, Clone, Default)]
struct BankTrace {
    open_row: Option<u32>,
    last_act: Option<u64>,
    last_pre: Option<u64>,
    /// End of the last write data burst to this bank (for tWR).
    last_write_end: Option<u64>,
}

/// Replays a command stream and checks every timing rule.
#[derive(Debug, Clone)]
pub struct Auditor {
    t: DramTimings,
    banks: HashMap<usize, BankTrace>,
    last_cmd: Option<u64>,
    last_act_any: Option<u64>,
    bus_free: u64,
    last_write_data_end: Option<u64>,
    violations: Vec<ProtocolViolation>,
}

impl Auditor {
    /// Creates an auditor for the given timing parameters.
    pub fn new(t: DramTimings) -> Self {
        Self {
            t,
            banks: HashMap::new(),
            last_cmd: None,
            last_act_any: None,
            bus_free: 0,
            last_write_data_end: None,
            violations: Vec::new(),
        }
    }

    /// Violations found so far.
    pub fn violations(&self) -> &[ProtocolViolation] {
        &self.violations
    }

    /// Returns `Ok(())` if no violations were recorded.
    ///
    /// # Errors
    ///
    /// Returns the first violation if any rule was broken.
    pub fn check(&self) -> Result<(), ProtocolViolation> {
        match self.violations.first() {
            None => Ok(()),
            Some(v) => Err(v.clone()),
        }
    }

    fn flag(&mut self, command: Command, rule: &str) {
        self.violations.push(ProtocolViolation {
            command,
            rule: rule.to_string(),
        });
    }

    /// Observes the next command. Commands must be fed in non-decreasing
    /// cycle order.
    pub fn observe(&mut self, cmd: Command) {
        let at = cmd.at();
        if let Some(prev) = self.last_cmd {
            if at < prev {
                self.flag(cmd, "command order (non-decreasing time)");
            } else if at == prev {
                self.flag(cmd, "command bus (one command per cycle)");
            }
        }
        self.last_cmd = Some(at);

        let t = self.t;
        match cmd {
            Command::Act { bank, row, at } => {
                if let Some(last) = self.last_act_any {
                    if at < last + u64::from(t.t_rrd) {
                        self.flag(cmd, "tRRD");
                    }
                }
                let b = self.banks.entry(bank).or_default();
                if b.open_row.is_some() {
                    self.violations.push(ProtocolViolation {
                        command: cmd,
                        rule: "ACT to open bank".into(),
                    });
                }
                if let Some(last) = b.last_act {
                    if at < last + u64::from(t.t_rc) {
                        self.violations.push(ProtocolViolation {
                            command: cmd,
                            rule: "tRC".into(),
                        });
                    }
                }
                if let Some(pre) = b.last_pre {
                    if at < pre + u64::from(t.t_rp) {
                        self.violations.push(ProtocolViolation {
                            command: cmd,
                            rule: "tRP".into(),
                        });
                    }
                }
                let b = self.banks.entry(bank).or_default();
                b.open_row = Some(row);
                b.last_act = Some(at);
                self.last_act_any = Some(at);
            }
            Command::Pre { bank, at } => {
                let b = self.banks.entry(bank).or_default();
                match (b.open_row, b.last_act) {
                    (Some(_), Some(act)) => {
                        if at < act + u64::from(t.t_ras) {
                            self.violations.push(ProtocolViolation {
                                command: cmd,
                                rule: "tRAS".into(),
                            });
                        }
                    }
                    _ => self.violations.push(ProtocolViolation {
                        command: cmd,
                        rule: "PRE to closed bank".into(),
                    }),
                }
                if let Some(wend) = b.last_write_end {
                    if at < wend + u64::from(t.t_wr) {
                        self.violations.push(ProtocolViolation {
                            command: cmd,
                            rule: "tWR".into(),
                        });
                    }
                }
                let b = self.banks.entry(bank).or_default();
                b.open_row = None;
                b.last_pre = Some(at);
            }
            Command::Read { bank, at } => {
                self.check_cas(cmd, bank, at, u64::from(t.t_cl));
                if let Some(wend) = self.last_write_data_end {
                    if at < wend + u64::from(t.t_cdlr) {
                        self.flag(cmd, "tCDLR");
                    }
                }
                self.bus_free = at + u64::from(t.t_cl) + u64::from(t.t_ccd);
            }
            Command::Write { bank, at } => {
                self.check_cas(cmd, bank, at, u64::from(t.t_wl));
                let end = at + u64::from(t.t_wl) + u64::from(t.t_ccd);
                self.bus_free = end;
                self.last_write_data_end = Some(end);
                self.banks.entry(bank).or_default().last_write_end = Some(end);
            }
        }
    }

    fn check_cas(&mut self, cmd: Command, bank: usize, at: u64, latency: u64) {
        let t = self.t;
        let b = self.banks.entry(bank).or_default();
        match (b.open_row, b.last_act) {
            (Some(_), Some(act)) => {
                if at < act + u64::from(t.t_rcd) {
                    self.violations.push(ProtocolViolation {
                        command: cmd,
                        rule: "tRCD".into(),
                    });
                }
            }
            _ => self.violations.push(ProtocolViolation {
                command: cmd,
                rule: "CAS to closed bank".into(),
            }),
        }
        if at + latency < self.bus_free {
            self.flag(cmd, "data bus overlap");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aud() -> Auditor {
        Auditor::new(DramTimings::default())
    }

    #[test]
    fn clean_sequence_passes() {
        let mut a = aud();
        a.observe(Command::Act { bank: 0, row: 1, at: 0 });
        a.observe(Command::Read { bank: 0, at: 12 });
        a.observe(Command::Read { bank: 0, at: 14 });
        a.observe(Command::Pre { bank: 0, at: 28 });
        a.observe(Command::Act { bank: 0, row: 2, at: 40 });
        assert!(a.check().is_ok(), "{:?}", a.violations());
    }

    #[test]
    fn detects_trcd_violation() {
        let mut a = aud();
        a.observe(Command::Act { bank: 0, row: 1, at: 0 });
        a.observe(Command::Read { bank: 0, at: 11 });
        assert_eq!(a.violations()[0].rule, "tRCD");
    }

    #[test]
    fn detects_tras_violation() {
        let mut a = aud();
        a.observe(Command::Act { bank: 0, row: 1, at: 0 });
        a.observe(Command::Pre { bank: 0, at: 27 });
        assert_eq!(a.violations()[0].rule, "tRAS");
    }

    #[test]
    fn detects_trrd_violation() {
        let mut a = aud();
        a.observe(Command::Act { bank: 0, row: 1, at: 0 });
        a.observe(Command::Act { bank: 1, row: 1, at: 5 });
        assert_eq!(a.violations()[0].rule, "tRRD");
    }

    #[test]
    fn detects_command_bus_conflict() {
        let mut a = aud();
        a.observe(Command::Act { bank: 0, row: 1, at: 0 });
        a.observe(Command::Act { bank: 1, row: 1, at: 0 });
        assert!(a.violations().iter().any(|v| v.rule.contains("command bus")));
    }

    #[test]
    fn detects_cas_to_closed_bank() {
        let mut a = aud();
        a.observe(Command::Read { bank: 0, at: 5 });
        assert_eq!(a.violations()[0].rule, "CAS to closed bank");
    }

    #[test]
    fn detects_data_bus_overlap() {
        let mut a = aud();
        a.observe(Command::Act { bank: 0, row: 1, at: 0 });
        a.observe(Command::Act { bank: 1, row: 1, at: 6 });
        a.observe(Command::Read { bank: 0, at: 18 });
        a.observe(Command::Read { bank: 1, at: 19 }); // data would overlap
        assert!(a.violations().iter().any(|v| v.rule == "data bus overlap"));
    }

    #[test]
    fn detects_tcdlr_violation() {
        let mut a = aud();
        a.observe(Command::Act { bank: 0, row: 1, at: 0 });
        a.observe(Command::Write { bank: 0, at: 12 }); // data 16..18
        a.observe(Command::Read { bank: 0, at: 20 }); // < 18 + 5
        assert!(a.violations().iter().any(|v| v.rule == "tCDLR"));
    }

    #[test]
    fn detects_twr_violation() {
        let mut a = aud();
        a.observe(Command::Act { bank: 0, row: 1, at: 0 });
        a.observe(Command::Write { bank: 0, at: 12 }); // data end 18, +tWR=30
        a.observe(Command::Pre { bank: 0, at: 29 });
        assert!(a.violations().iter().any(|v| v.rule == "tWR"));
    }

    #[test]
    fn violation_displays_rule() {
        let mut a = aud();
        a.observe(Command::Read { bank: 0, at: 5 });
        let err = a.check().unwrap_err();
        assert!(err.to_string().contains("CAS to closed bank"));
    }
}
