//! Cycle-level DRAM channel models behind the [`MemoryBackend`] trait.
//!
//! The banked model: one [`Channel`] owns a set of banks organized in bank
//! groups, a shared
//! command bus (one command per memory cycle) and a shared data bus (one burst
//! per [`t_ccd`](lazydram_common::DramTimings::t_ccd) cycles). The memory
//! controller (in `lazydram-core`) decides *which* request to serve; this
//! crate answers *whether* the necessary command is legal right now, applies
//! it, and accounts for:
//!
//! * row activations / precharges (the paper's *row energy* drivers),
//! * row-buffer hits vs misses,
//! * per-activation **row-buffer locality** (RBL) histograms, including the
//!   separate histogram over *read-only* activations that AMS targets,
//! * data-bus busy cycles (the BWUTIL signal used by `Dyn-DMS`).
//!
//! The model follows the open-row policy: rows stay open until a conflicting
//! access (or [`Channel::drain`]) closes them.
//!
//! # Example
//!
//! ```
//! use lazydram_common::{AccessKind, GpuConfig};
//! use lazydram_dram::Channel;
//!
//! let cfg = GpuConfig::default();
//! let mut ch = Channel::new(&cfg);
//! // Open row 5 of bank 0 and read one line from it.
//! assert!(ch.can_activate(0, 0));
//! ch.activate(0, 5, 0);
//! let t = u64::from(cfg.timings.t_rcd);
//! assert!(ch.can_cas(0, AccessKind::Read, t));
//! let done = ch.cas(0, AccessKind::Read, true, t);
//! assert!(done > t);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod auditor;
mod backend;
mod bank;
mod channel;

pub use auditor::{Auditor, Command, ProtocolViolation};
pub use backend::{
    Ddr4Backend, DramBackend, FlexBackend, Gddr5Backend, Lpddr4Backend, MemoryBackend,
    NaiveBackend,
};
pub use bank::{ActivationRecord, Bank, BankState};
pub use channel::Channel;
