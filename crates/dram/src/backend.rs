//! The [`MemoryBackend`] trait and the backend matrix behind it.
//!
//! The memory controller (`lazydram-core`) is written against this trait
//! instead of a concrete channel model, so one scheduler implementation can
//! drive any memory technology. The contract is **execute-and-stall**: the
//! controller *asks* whether a command is legal right now (`can_*`), then
//! *applies* it (`activate`/`precharge`/`cas`/`refresh`), and the backend
//! owns every piece of timing state behind those answers. There is
//! deliberately no side-effect-free "how long would this take?" query —
//! against a stateful model (shared buses, tFAW windows, refresh FSMs) a
//! latency oracle either duplicates the state machine or silently diverges
//! from it; see DESIGN.md §15.
//!
//! The matrix (selected by [`BackendKind`] in the configuration):
//!
//! * [`Gddr5Backend`] — the cycle-level banked [`Channel`] model, the
//!   paper's baseline. Bit-identical to the pre-trait hard-wired wiring.
//! * [`NaiveBackend`] — fixed-latency, bank-state-free functional tier.
//! * [`Ddr4Backend`] / [`Lpddr4Backend`] — the banked model under the
//!   DDR4-class / LPDDR4-class timing packages ([`DramTimings::ddr4`] /
//!   [`DramTimings::lpddr4`]), tagged so their checkpoints and cache cells
//!   can never be confused with GDDR5 ones.
//! * [`FlexBackend`] — Flexible-Latency DRAM: the banked model with
//!   deterministic per-bank tCL/tRCD/tRP variation seeded from the config
//!   digest.

use crate::channel::Channel;
use lazydram_common::snap::{Loader, Saver, SnapResult};
use lazydram_common::{snap, AccessKind, BackendKind, DramStats, DramTimings, GpuConfig, SplitMix64};

/// One memory channel as seen by the memory controller.
///
/// Execute-and-stall: `can_*` answers "is this command legal at `now`?",
/// the paired imperative applies it, and the backend advances its own
/// timing state. Commands must only be applied when the matching `can_*`
/// returned `true` at the same cycle (backends may debug-assert this).
///
/// Contract obligations every implementation must uphold (the conformance
/// suite in `tests/backend_conformance.rs` checks them end to end):
///
/// * **Determinism** — identical command sequences produce identical state,
///   statistics, and [`MemoryBackend::cas`] completion times.
/// * **Monotone completions** — successive `cas` return values never
///   decrease (responses retire in issue order).
/// * **Stall persistence** — once `can_*` is true at cycle `t` it stays
///   true at `t+1` unless a command or refresh intervenes; the controller's
///   `next_event_cycle` fast-forward depends on this.
/// * **Snapshot fidelity** — `save_state` → `load_state` into a freshly
///   constructed backend of the same kind and configuration reproduces
///   behavior bit-for-bit.
pub trait MemoryBackend {
    /// Which model this is; tags checkpoint frames and cache cells.
    fn kind(&self) -> BackendKind;

    /// Advances the backend's notion of elapsed time (statistics only);
    /// call once per memory cycle.
    fn advance_to(&mut self, now: u64);

    /// Accumulated channel statistics.
    fn stats(&self) -> &DramStats;

    /// Mutable statistics handle, used by the memory controller to account
    /// controller-side events (requests received, drops) in the same record.
    fn stats_mut(&mut self) -> &mut DramStats;

    /// Bitmask of banks with an open row (bit `b` ⇔ bank `b` open).
    fn open_banks(&self) -> u64;

    /// The row currently open in `bank`, if any.
    fn open_row(&self, bank: usize) -> Option<u32>;

    /// Is an `ACT` of any row of `bank` legal at `now`?
    fn can_activate(&self, bank: usize, now: u64) -> bool;

    /// Issues `ACT bank,row` at `now`.
    fn activate(&mut self, bank: usize, row: u32, now: u64);

    /// Is a `PRE` of `bank` legal at `now`?
    fn can_precharge(&self, bank: usize, now: u64) -> bool;

    /// Issues `PRE bank` at `now`, recording the finished activation's RBL.
    fn precharge(&mut self, bank: usize, now: u64);

    /// Is a CAS (`RD`/`WR`) to the open row of `bank` legal at `now`?
    fn can_cas(&self, bank: usize, kind: AccessKind, now: u64) -> bool;

    /// Issues a CAS at `now`; returns the cycle at which the data burst
    /// completes. `global_read` marks requests that keep an activation in
    /// AMS's read-only population.
    fn cas(&mut self, bank: usize, kind: AccessKind, global_read: bool, now: u64) -> u64;

    /// `true` when an all-bank refresh is due at `now`.
    fn refresh_due(&self, now: u64) -> bool;

    /// The absolute cycle at which the next refresh falls due (`u64::MAX`
    /// when the backend never refreshes). Event-loop wake-up point.
    fn refresh_due_at(&self) -> u64;

    /// Is an all-bank `REF` legal at `now`?
    fn can_refresh(&self, now: u64) -> bool;

    /// Issues an all-bank refresh at `now`.
    fn refresh(&mut self, now: u64);

    /// All-bank refreshes performed so far.
    fn refreshes(&self) -> u64;

    /// Closes every open row *without* timing checks, flushing their RBL
    /// into the histograms. Call exactly once, at the end of a simulation.
    fn drain(&mut self);

    /// Serializes the full backend state into a snapshot.
    fn save_state(&self, s: &mut Saver);

    /// Restores the backend state from a snapshot taken by a backend of the
    /// same kind and configuration.
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed or were taken
    /// under a different geometry.
    fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()>;
}

macro_rules! banked_backend {
    ($(#[$doc:meta])* $name:ident, $kind:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq)]
        pub struct $name(Channel);

        impl $name {
            /// Creates an idle backend per the GPU configuration.
            pub fn new(cfg: &GpuConfig) -> Self {
                Self(Channel::new(cfg))
            }
        }

        impl MemoryBackend for $name {
            fn kind(&self) -> BackendKind {
                $kind
            }
            fn advance_to(&mut self, now: u64) {
                self.0.advance_to(now);
            }
            fn stats(&self) -> &DramStats {
                self.0.stats()
            }
            fn stats_mut(&mut self) -> &mut DramStats {
                self.0.stats_mut()
            }
            fn open_banks(&self) -> u64 {
                self.0.open_banks()
            }
            fn open_row(&self, bank: usize) -> Option<u32> {
                self.0.open_row(bank)
            }
            fn can_activate(&self, bank: usize, now: u64) -> bool {
                self.0.can_activate(bank, now)
            }
            fn activate(&mut self, bank: usize, row: u32, now: u64) {
                self.0.activate(bank, row, now);
            }
            fn can_precharge(&self, bank: usize, now: u64) -> bool {
                self.0.can_precharge(bank, now)
            }
            fn precharge(&mut self, bank: usize, now: u64) {
                self.0.precharge(bank, now);
            }
            fn can_cas(&self, bank: usize, kind: AccessKind, now: u64) -> bool {
                self.0.can_cas(bank, kind, now)
            }
            fn cas(&mut self, bank: usize, kind: AccessKind, global_read: bool, now: u64) -> u64 {
                self.0.cas(bank, kind, global_read, now)
            }
            fn refresh_due(&self, now: u64) -> bool {
                self.0.refresh_due(now)
            }
            fn refresh_due_at(&self) -> u64 {
                self.0.refresh_due_at()
            }
            fn can_refresh(&self, now: u64) -> bool {
                self.0.can_refresh(now)
            }
            fn refresh(&mut self, now: u64) {
                self.0.refresh(now);
            }
            fn refreshes(&self) -> u64 {
                self.0.refreshes()
            }
            fn drain(&mut self) {
                self.0.drain();
            }
            fn save_state(&self, s: &mut Saver) {
                self.0.save_state(s);
            }
            fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
                self.0.load_state(l)
            }
        }
    };
}

banked_backend!(
    /// The cycle-level banked channel model under the configuration's
    /// timings — the paper's GDDR5 baseline (and, with the HBM presets'
    /// timing packages, the HBM variants).
    Gddr5Backend,
    BackendKind::Gddr5
);

banked_backend!(
    /// The banked channel model tagged DDR4-class. [`DramPreset::Ddr4`]
    /// pairs it with [`DramTimings::ddr4`] and a DDR4 energy profile; the
    /// distinct kind keeps its checkpoints and cache cells apart from
    /// GDDR5 ones.
    ///
    /// [`DramPreset::Ddr4`]: lazydram_common::DramPreset::Ddr4
    Ddr4Backend,
    BackendKind::Ddr4
);

banked_backend!(
    /// The banked channel model tagged LPDDR4-class; see [`Ddr4Backend`].
    ///
    /// [`DramPreset::Lpddr4`]: lazydram_common::DramPreset::Lpddr4
    Lpddr4Backend,
    BackendKind::Lpddr4
);

/// Flexible-Latency DRAM: the banked channel model with per-bank
/// tCL/tRCD/tRP reductions, modelling the real-chip latency variation of
/// FLY-DRAM (PAPERS.md). The per-bank timing vector is drawn once at
/// construction from a [`SplitMix64`] stream seeded with the digest of the
/// configuration's debug encoding, so a given machine always gets the same
/// bank binning — across runs, checkpoint restores, and trace replays —
/// without serializing it.
#[derive(Debug, Clone, PartialEq)]
pub struct FlexBackend(Channel);

impl FlexBackend {
    /// Largest per-bank reduction drawn for tCL/tRCD/tRP, in cycles.
    const MAX_REDUCTION: u32 = 4;

    /// Creates an idle backend with deterministically varied bank timings.
    pub fn new(cfg: &GpuConfig) -> Self {
        let mut ch = Channel::new(cfg);
        let seed = snap::digest(format!("{cfg:?}").as_bytes());
        let mut rng = SplitMix64::new(seed);
        let base = cfg.timings;
        // Fast bins keep a floor of 2 cycles on every reduced parameter.
        let floor = |t: u32, r: u64| t.saturating_sub(r as u32).max(2);
        let over: Vec<DramTimings> = (0..cfg.banks_per_channel)
            .map(|_| {
                let r = u64::from(Self::MAX_REDUCTION) + 1;
                DramTimings {
                    t_cl: floor(base.t_cl, rng.below(r)),
                    t_rcd: floor(base.t_rcd, rng.below(r)),
                    t_rp: floor(base.t_rp, rng.below(r)),
                    ..base
                }
            })
            .collect();
        ch.set_bank_timings(over);
        Self(ch)
    }
}

impl MemoryBackend for FlexBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Flex
    }
    fn advance_to(&mut self, now: u64) {
        self.0.advance_to(now);
    }
    fn stats(&self) -> &DramStats {
        self.0.stats()
    }
    fn stats_mut(&mut self) -> &mut DramStats {
        self.0.stats_mut()
    }
    fn open_banks(&self) -> u64 {
        self.0.open_banks()
    }
    fn open_row(&self, bank: usize) -> Option<u32> {
        self.0.open_row(bank)
    }
    fn can_activate(&self, bank: usize, now: u64) -> bool {
        self.0.can_activate(bank, now)
    }
    fn activate(&mut self, bank: usize, row: u32, now: u64) {
        self.0.activate(bank, row, now);
    }
    fn can_precharge(&self, bank: usize, now: u64) -> bool {
        self.0.can_precharge(bank, now)
    }
    fn precharge(&mut self, bank: usize, now: u64) {
        self.0.precharge(bank, now);
    }
    fn can_cas(&self, bank: usize, kind: AccessKind, now: u64) -> bool {
        self.0.can_cas(bank, kind, now)
    }
    fn cas(&mut self, bank: usize, kind: AccessKind, global_read: bool, now: u64) -> u64 {
        self.0.cas(bank, kind, global_read, now)
    }
    fn refresh_due(&self, now: u64) -> bool {
        self.0.refresh_due(now)
    }
    fn refresh_due_at(&self) -> u64 {
        self.0.refresh_due_at()
    }
    fn can_refresh(&self, now: u64) -> bool {
        self.0.can_refresh(now)
    }
    fn refresh(&mut self, now: u64) {
        self.0.refresh(now);
    }
    fn refreshes(&self) -> u64 {
        self.0.refreshes()
    }
    fn drain(&mut self) {
        self.0.drain();
    }
    fn save_state(&self, s: &mut Saver) {
        self.0.save_state(s);
    }
    fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.0.load_state(l)
    }
}

/// One bank's worth of functional state in the [`NaiveBackend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NaiveRow {
    row: u32,
    served: u32,
    read_only: bool,
}

/// Fixed-latency, bank-state-free functional tier.
///
/// Every command is always legal; a CAS completes a constant
/// tRCD + tCL + tCCD cycles later regardless of bank or bus state. Open
/// rows are still tracked functionally so the scheduler sees row hits,
/// row-buffer-locality histograms, and the BWUTIL signal it needs — but no
/// timing constraint ever stalls a command. Useful as the fast tier for
/// functional runs and as the "what if DRAM were free?" bound.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBackend {
    /// Constant CAS completion latency in memory cycles.
    latency: u64,
    /// Data-bus beats accounted per burst (keeps BWUTIL meaningful).
    t_ccd: u64,
    open: Vec<Option<NaiveRow>>,
    open_banks: u64,
    stats: DramStats,
}

impl NaiveBackend {
    /// Creates an idle backend per the GPU configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        assert!(
            cfg.banks_per_channel <= 64,
            "the open-bank bitmask caps a channel at 64 banks"
        );
        let t = cfg.timings;
        Self {
            latency: u64::from(t.t_rcd) + u64::from(t.t_cl) + u64::from(t.t_ccd),
            t_ccd: u64::from(t.t_ccd),
            open: vec![None; cfg.banks_per_channel],
            open_banks: 0,
            stats: DramStats::new(),
        }
    }

    fn record_closed(&mut self, rec: NaiveRow) {
        self.stats.precharges += 1;
        if rec.served > 0 {
            self.stats.rbl.record(rec.served);
            if rec.read_only {
                self.stats.rbl_read_only.record(rec.served);
            }
        }
    }
}

impl MemoryBackend for NaiveBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Naive
    }
    fn advance_to(&mut self, now: u64) {
        self.stats.mem_cycles = self.stats.mem_cycles.max(now);
    }
    fn stats(&self) -> &DramStats {
        &self.stats
    }
    fn stats_mut(&mut self) -> &mut DramStats {
        &mut self.stats
    }
    fn open_banks(&self) -> u64 {
        self.open_banks
    }
    fn open_row(&self, bank: usize) -> Option<u32> {
        self.open[bank].map(|r| r.row)
    }
    fn can_activate(&self, bank: usize, _now: u64) -> bool {
        self.open[bank].is_none()
    }
    fn activate(&mut self, bank: usize, row: u32, _now: u64) {
        debug_assert!(self.open[bank].is_none(), "ACT on open bank");
        self.open[bank] = Some(NaiveRow { row, served: 0, read_only: true });
        self.open_banks |= 1 << bank;
        self.stats.activations += 1;
    }
    fn can_precharge(&self, bank: usize, _now: u64) -> bool {
        self.open[bank].is_some()
    }
    fn precharge(&mut self, bank: usize, _now: u64) {
        let rec = self.open[bank].take().expect("PRE on closed bank");
        self.open_banks &= !(1 << bank);
        self.record_closed(rec);
    }
    fn can_cas(&self, bank: usize, _kind: AccessKind, _now: u64) -> bool {
        self.open[bank].is_some()
    }
    fn cas(&mut self, bank: usize, kind: AccessKind, global_read: bool, now: u64) -> u64 {
        let rec = self.open[bank].as_mut().expect("CAS on closed bank");
        if rec.served == 0 {
            self.stats.row_misses += 1;
        } else {
            self.stats.row_hits += 1;
        }
        rec.served += 1;
        if !global_read {
            rec.read_only = false;
        }
        self.stats.bus_busy_cycles += self.t_ccd;
        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        now + self.latency
    }
    fn refresh_due(&self, _now: u64) -> bool {
        false
    }
    fn refresh_due_at(&self) -> u64 {
        u64::MAX
    }
    fn can_refresh(&self, _now: u64) -> bool {
        false
    }
    fn refresh(&mut self, _now: u64) {
        unreachable!("the naive backend never refreshes");
    }
    fn refreshes(&self) -> u64 {
        0
    }
    fn drain(&mut self) {
        for bank in 0..self.open.len() {
            if let Some(rec) = self.open[bank].take() {
                self.record_closed(rec);
            }
        }
        self.open_banks = 0;
    }
    fn save_state(&self, s: &mut Saver) {
        s.seq("nbanks", self.open.len());
        for rec in &self.open {
            match rec {
                None => s.bool("open", false),
                Some(r) => {
                    s.bool("open", true);
                    s.u32("row", r.row);
                    s.u32("served", r.served);
                    s.bool("read_only", r.read_only);
                }
            }
        }
        s.frame("stat", 0, |s| self.stats.save_state(s));
    }
    fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        use lazydram_common::SnapError;
        let n = l.seq("nbanks", 1)?;
        if n != self.open.len() {
            return Err(SnapError::Malformed {
                label: "nbanks".into(),
                why: format!("snapshot has {n} banks, backend has {}", self.open.len()),
            });
        }
        self.open_banks = 0;
        for bank in 0..n {
            self.open[bank] = if l.bool("open")? {
                self.open_banks |= 1 << bank;
                Some(NaiveRow {
                    row: l.u32("row")?,
                    served: l.u32("served")?,
                    read_only: l.bool("read_only")?,
                })
            } else {
                None
            };
        }
        l.frame("stat", 0, |l| self.stats.load_state(l))
    }
}

/// The backend matrix: one variant per [`BackendKind`], dispatched
/// statically so the GDDR5 hot path stays monomorphic (and byte-identical
/// to the pre-trait wiring).
#[derive(Debug, Clone, PartialEq)]
pub enum DramBackend {
    /// See [`Gddr5Backend`].
    Gddr5(Gddr5Backend),
    /// See [`NaiveBackend`].
    Naive(NaiveBackend),
    /// See [`Ddr4Backend`].
    Ddr4(Ddr4Backend),
    /// See [`Lpddr4Backend`].
    Lpddr4(Lpddr4Backend),
    /// See [`FlexBackend`].
    Flex(FlexBackend),
}

impl DramBackend {
    /// Creates the backend the configuration selects.
    pub fn new(cfg: &GpuConfig) -> Self {
        match cfg.backend {
            BackendKind::Gddr5 => DramBackend::Gddr5(Gddr5Backend::new(cfg)),
            BackendKind::Naive => DramBackend::Naive(NaiveBackend::new(cfg)),
            BackendKind::Ddr4 => DramBackend::Ddr4(Ddr4Backend::new(cfg)),
            BackendKind::Lpddr4 => DramBackend::Lpddr4(Lpddr4Backend::new(cfg)),
            BackendKind::Flex => DramBackend::Flex(FlexBackend::new(cfg)),
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $b:ident => $e:expr) => {
        match $self {
            DramBackend::Gddr5($b) => $e,
            DramBackend::Naive($b) => $e,
            DramBackend::Ddr4($b) => $e,
            DramBackend::Lpddr4($b) => $e,
            DramBackend::Flex($b) => $e,
        }
    };
}

impl MemoryBackend for DramBackend {
    fn kind(&self) -> BackendKind {
        dispatch!(self, b => b.kind())
    }
    fn advance_to(&mut self, now: u64) {
        dispatch!(self, b => b.advance_to(now))
    }
    fn stats(&self) -> &DramStats {
        dispatch!(self, b => b.stats())
    }
    fn stats_mut(&mut self) -> &mut DramStats {
        dispatch!(self, b => b.stats_mut())
    }
    fn open_banks(&self) -> u64 {
        dispatch!(self, b => b.open_banks())
    }
    fn open_row(&self, bank: usize) -> Option<u32> {
        dispatch!(self, b => b.open_row(bank))
    }
    fn can_activate(&self, bank: usize, now: u64) -> bool {
        dispatch!(self, b => b.can_activate(bank, now))
    }
    fn activate(&mut self, bank: usize, row: u32, now: u64) {
        dispatch!(self, b => b.activate(bank, row, now))
    }
    fn can_precharge(&self, bank: usize, now: u64) -> bool {
        dispatch!(self, b => b.can_precharge(bank, now))
    }
    fn precharge(&mut self, bank: usize, now: u64) {
        dispatch!(self, b => b.precharge(bank, now))
    }
    fn can_cas(&self, bank: usize, kind: AccessKind, now: u64) -> bool {
        dispatch!(self, b => b.can_cas(bank, kind, now))
    }
    fn cas(&mut self, bank: usize, kind: AccessKind, global_read: bool, now: u64) -> u64 {
        dispatch!(self, b => b.cas(bank, kind, global_read, now))
    }
    fn refresh_due(&self, now: u64) -> bool {
        dispatch!(self, b => b.refresh_due(now))
    }
    fn refresh_due_at(&self) -> u64 {
        dispatch!(self, b => b.refresh_due_at())
    }
    fn can_refresh(&self, now: u64) -> bool {
        dispatch!(self, b => b.can_refresh(now))
    }
    fn refresh(&mut self, now: u64) {
        dispatch!(self, b => b.refresh(now))
    }
    fn refreshes(&self) -> u64 {
        dispatch!(self, b => b.refreshes())
    }
    fn drain(&mut self) {
        dispatch!(self, b => b.drain())
    }
    fn save_state(&self, s: &mut Saver) {
        dispatch!(self, b => b.save_state(s))
    }
    fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        dispatch!(self, b => b.load_state(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gddr5_backend_mirrors_channel() {
        let cfg = GpuConfig::default();
        let mut b = Gddr5Backend::new(&cfg);
        let mut c = Channel::new(&cfg);
        assert!(b.can_activate(0, 0) && c.can_activate(0, 0));
        b.activate(0, 7, 0);
        c.activate(0, 7, 0);
        assert_eq!(
            b.cas(0, AccessKind::Read, true, 12),
            c.cas(0, AccessKind::Read, true, 12)
        );
        assert_eq!(b.stats(), c.stats());
        assert_eq!(b.open_row(0), Some(7));
        assert_eq!(b.kind(), BackendKind::Gddr5);
    }

    #[test]
    fn naive_backend_is_always_ready_with_fixed_latency() {
        let cfg = GpuConfig::default();
        let mut b = NaiveBackend::new(&cfg);
        let lat = u64::from(cfg.timings.t_rcd) + u64::from(cfg.timings.t_cl)
            + u64::from(cfg.timings.t_ccd);
        assert!(b.can_activate(5, 0));
        b.activate(5, 3, 0);
        // No tRCD stall: a CAS is legal on the very next cycle…
        assert!(b.can_cas(5, AccessKind::Read, 1));
        assert_eq!(b.cas(5, AccessKind::Read, true, 1), 1 + lat);
        // …and so is an immediate precharge (no tRAS).
        assert!(b.can_precharge(5, 2));
        b.precharge(5, 2);
        assert_eq!(b.stats().rbl.count(1), 1);
        assert_eq!(b.stats().row_misses, 1);
        assert!(!b.refresh_due(u64::MAX - 1));
        assert_eq!(b.refresh_due_at(), u64::MAX);
    }

    #[test]
    fn naive_backend_snapshot_round_trips() {
        let cfg = GpuConfig::default();
        let mut b = NaiveBackend::new(&cfg);
        b.activate(3, 9, 0);
        b.cas(3, AccessKind::Write, false, 1);
        b.advance_to(10);
        let mut s = Saver::new();
        b.save_state(&mut s);
        let bytes = s.finish();
        let mut b2 = NaiveBackend::new(&cfg);
        let mut l = Loader::new(&bytes);
        b2.load_state(&mut l).expect("round trip");
        assert_eq!(b, b2);
    }

    #[test]
    fn flex_backend_is_deterministic_and_distinct_per_config() {
        let cfg = lazydram_common::DramPreset::Flex.gpu_config();
        let a = FlexBackend::new(&cfg);
        let b = FlexBackend::new(&cfg);
        assert_eq!(a, b, "same config must draw the same bank binning");
        // A different machine draws a different binning (with overwhelming
        // probability); compare behavior through a CAS completion time.
        let mut fast = FlexBackend::new(&cfg);
        let mut base = Gddr5Backend::new(&GpuConfig::default());
        fast.activate(0, 1, 0);
        base.activate(0, 1, 0);
        // Flex tRCD ≤ base tRCD: the flex CAS is legal no later than base.
        let t = u64::from(cfg.timings.t_rcd);
        assert!(fast.can_cas(0, AccessKind::Read, t));
        assert!(base.can_cas(0, AccessKind::Read, t));
    }

    #[test]
    fn dispatch_enum_selects_by_config() {
        for preset in lazydram_common::DramPreset::ALL {
            let cfg = preset.gpu_config();
            let b = DramBackend::new(&cfg);
            assert_eq!(b.kind(), cfg.backend, "{preset}");
        }
    }
}
