//! Per-bank row-buffer state machine and timing bookkeeping.

use lazydram_common::snap::{Loader, Saver, SnapError, SnapResult};
use lazydram_common::{AccessKind, DramTimings};

/// The row-buffer state of one DRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// No row in the row buffer; the bank may accept an `ACT`.
    Closed,
    /// A row's data is (or is being fetched) in the row buffer.
    Open {
        /// The open row index.
        row: u32,
    },
}

/// Bookkeeping for the activation currently in progress, used to compute the
/// RBL of the activation when the row is eventually closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivationRecord {
    /// Row that was activated.
    pub row: u32,
    /// Requests served from this activation so far.
    pub served: u32,
    /// `true` while every request served so far was a global read.
    pub read_only: bool,
}

/// One DRAM bank: state machine plus the earliest-legal-time bookkeeping for
/// each command class.
#[derive(Debug, Clone, PartialEq)]
pub struct Bank {
    state: BankState,
    /// Activation bookkeeping; `Some` iff `state` is `Open`.
    current: Option<ActivationRecord>,
    /// Cycle of the last `ACT` (for tRC).
    last_act: u64,
    /// Earliest cycle a CAS to this bank is legal (tRCD after ACT).
    cas_ready: u64,
    /// Earliest cycle a PRE to this bank is legal (tRAS after ACT, tWR after
    /// the last write burst).
    pre_ready: u64,
    /// Earliest cycle an ACT to this bank is legal (tRP after PRE, tRC after
    /// the previous ACT).
    act_ready: u64,
    /// Whether any ACT has ever been issued (so tRC does not bind at t=0).
    ever_activated: bool,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// Creates a closed, immediately usable bank.
    pub fn new() -> Self {
        Self {
            state: BankState::Closed,
            current: None,
            last_act: 0,
            cas_ready: 0,
            pre_ready: 0,
            act_ready: 0,
            ever_activated: false,
        }
    }

    /// Current row-buffer state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The open row, if any.
    pub fn open_row(&self) -> Option<u32> {
        match self.state {
            BankState::Open { row } => Some(row),
            BankState::Closed => None,
        }
    }

    /// The in-progress activation record, if the bank is open.
    pub fn activation(&self) -> Option<&ActivationRecord> {
        self.current.as_ref()
    }

    /// Is an `ACT` legal at `now` (bank closed, tRP and tRC satisfied)?
    pub fn can_activate(&self, now: u64) -> bool {
        self.state == BankState::Closed && now >= self.act_ready
    }

    /// Is a CAS (`RD`/`WR`) to the open row legal at `now` (tRCD satisfied)?
    ///
    /// Channel-level constraints (data bus, turnaround, command bus) are
    /// checked by [`crate::Channel`], not here.
    pub fn can_cas(&self, now: u64) -> bool {
        matches!(self.state, BankState::Open { .. }) && now >= self.cas_ready
    }

    /// Is a `PRE` legal at `now` (bank open, tRAS and tWR satisfied)?
    pub fn can_precharge(&self, now: u64) -> bool {
        matches!(self.state, BankState::Open { .. }) && now >= self.pre_ready
    }

    /// Applies an `ACT` for `row` at `now`.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if the command is illegal at `now`; callers
    /// must check [`Bank::can_activate`] first.
    pub fn activate(&mut self, row: u32, now: u64, t: &DramTimings) {
        debug_assert!(self.can_activate(now), "illegal ACT at {now}");
        self.state = BankState::Open { row };
        self.current = Some(ActivationRecord {
            row,
            served: 0,
            read_only: true,
        });
        self.last_act = now;
        self.ever_activated = true;
        self.cas_ready = now + u64::from(t.t_rcd);
        self.pre_ready = now + u64::from(t.t_ras);
        self.act_ready = now + u64::from(t.t_rc);
    }

    /// Applies a CAS at `now`; `global_read` feeds the read-only-activation
    /// tracking. Returns the updated activation record.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if no row is open or tRCD is not satisfied.
    pub fn cas(&mut self, kind: AccessKind, global_read: bool, now: u64, t: &DramTimings) {
        debug_assert!(self.can_cas(now), "illegal CAS at {now}");
        let rec = self.current.as_mut().expect("open bank must have a record");
        rec.served += 1;
        if !global_read {
            rec.read_only = false;
        }
        if kind == AccessKind::Write {
            // PRE must wait for write recovery after the last write data beat.
            let data_end = now + u64::from(t.t_wl) + u64::from(t.t_ccd);
            self.pre_ready = self.pre_ready.max(data_end + u64::from(t.t_wr));
        }
    }

    /// Serializes the full bank state into a snapshot.
    pub fn save_state(&self, s: &mut Saver) {
        match self.state {
            BankState::Closed => s.u8("state", 0),
            BankState::Open { row } => {
                s.u8("state", 1);
                s.u32("open_row", row);
            }
        }
        match &self.current {
            None => s.bool("has_activation", false),
            Some(rec) => {
                s.bool("has_activation", true);
                s.u32("act_row", rec.row);
                s.u32("act_served", rec.served);
                s.bool("act_read_only", rec.read_only);
            }
        }
        s.u64("last_act", self.last_act);
        s.u64("cas_ready", self.cas_ready);
        s.u64("pre_ready", self.pre_ready);
        s.u64("act_ready", self.act_ready);
        s.bool("ever_activated", self.ever_activated);
    }

    /// Restores the bank state from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed.
    pub fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.state = match l.u8("state")? {
            0 => BankState::Closed,
            1 => BankState::Open { row: l.u32("open_row")? },
            b => {
                return Err(SnapError::Malformed {
                    label: "state".into(),
                    why: format!("bank state discriminant {b}"),
                })
            }
        };
        self.current = if l.bool("has_activation")? {
            Some(ActivationRecord {
                row: l.u32("act_row")?,
                served: l.u32("act_served")?,
                read_only: l.bool("act_read_only")?,
            })
        } else {
            None
        };
        self.last_act = l.u64("last_act")?;
        self.cas_ready = l.u64("cas_ready")?;
        self.pre_ready = l.u64("pre_ready")?;
        self.act_ready = l.u64("act_ready")?;
        self.ever_activated = l.bool("ever_activated")?;
        Ok(())
    }

    /// Applies a `PRE` at `now`, closing the row. Returns the finished
    /// activation record so the channel can record its RBL.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if the bank is closed or tRAS/tWR not met.
    pub fn precharge(&mut self, now: u64, t: &DramTimings) -> ActivationRecord {
        debug_assert!(self.can_precharge(now), "illegal PRE at {now}");
        self.state = BankState::Closed;
        self.act_ready = self
            .act_ready
            .max(now + u64::from(t.t_rp));
        self.current
            .take()
            .expect("open bank must have a record")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTimings {
        DramTimings::default()
    }

    #[test]
    fn fresh_bank_is_closed_and_ready() {
        let b = Bank::new();
        assert_eq!(b.state(), BankState::Closed);
        assert!(b.can_activate(0));
        assert!(!b.can_cas(0));
        assert!(!b.can_precharge(0));
        assert_eq!(b.open_row(), None);
    }

    #[test]
    fn act_enforces_trcd_before_cas() {
        let mut b = Bank::new();
        b.activate(3, 0, &t());
        assert_eq!(b.open_row(), Some(3));
        assert!(!b.can_cas(11));
        assert!(b.can_cas(12)); // tRCD = 12
    }

    #[test]
    fn act_enforces_tras_before_pre() {
        let mut b = Bank::new();
        b.activate(3, 0, &t());
        assert!(!b.can_precharge(27));
        assert!(b.can_precharge(28)); // tRAS = 28
    }

    #[test]
    fn pre_enforces_trp_before_next_act() {
        let mut b = Bank::new();
        b.activate(3, 0, &t());
        let rec = b.precharge(28, &t());
        assert_eq!(rec.row, 3);
        assert!(!b.can_activate(39)); // PRE at 28 + tRP 12 = 40
        assert!(b.can_activate(40));
    }

    #[test]
    fn trc_binds_between_activates() {
        let mut b = Bank::new();
        b.activate(3, 0, &t());
        b.precharge(28, &t()); // act_ready = max(40, 28+12) = 40 = tRC exactly
        b.activate(4, 40, &t());
        // Close as early as possible: PRE at 40+28=68, tRP -> 80; tRC from 40 -> 80.
        b.precharge(68, &t());
        assert!(!b.can_activate(79));
        assert!(b.can_activate(80));
    }

    #[test]
    fn write_extends_precharge_window() {
        let mut b = Bank::new();
        let tm = t();
        b.activate(1, 0, &tm);
        b.cas(AccessKind::Write, false, 12, &tm);
        // data end = 12 + tWL(4) + tCCD(2) = 18; +tWR(12) = 30 > tRAS(28)
        assert!(!b.can_precharge(29));
        assert!(b.can_precharge(30));
    }

    #[test]
    fn activation_record_tracks_rbl_and_read_only() {
        let mut b = Bank::new();
        let tm = t();
        b.activate(9, 0, &tm);
        b.cas(AccessKind::Read, true, 12, &tm);
        b.cas(AccessKind::Read, true, 14, &tm);
        assert_eq!(b.activation().unwrap().served, 2);
        assert!(b.activation().unwrap().read_only);
        b.cas(AccessKind::Write, false, 16, &tm);
        assert!(!b.activation().unwrap().read_only);
        let rec = b.precharge(40, &tm);
        assert_eq!(rec.served, 3);
        assert!(!rec.read_only);
        assert!(b.activation().is_none());
    }

    #[test]
    fn non_global_read_clears_read_only() {
        let mut b = Bank::new();
        let tm = t();
        b.activate(9, 0, &tm);
        // A read that is not a *global* read (e.g. an instruction fetch)
        // still disqualifies the activation from AMS's read-only population.
        b.cas(AccessKind::Read, false, 12, &tm);
        assert!(!b.activation().unwrap().read_only);
    }
}
