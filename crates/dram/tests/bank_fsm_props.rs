//! Property tests of the bank FSM: guarded random walks always terminate in
//! legal states and preserve RBL accounting.

use lazydram_common::{AccessKind, DramTimings, GpuConfig};
use lazydram_dram::{Bank, BankState, Channel};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bank_counts_served_requests_exactly(
        rows in prop::collection::vec((0u32..8, 1u8..6), 1..30)
    ) {
        let t = DramTimings::default();
        let mut b = Bank::new();
        let mut now = 0u64;
        for (row, serves) in rows {
            while !b.can_activate(now) {
                now += 1;
            }
            b.activate(row, now, &t);
            for _ in 0..serves {
                while !b.can_cas(now) {
                    now += 1;
                }
                b.cas(AccessKind::Read, true, now, &t);
                now += 2;
            }
            prop_assert_eq!(b.activation().unwrap().served, u32::from(serves));
            while !b.can_precharge(now) {
                now += 1;
            }
            let rec = b.precharge(now, &t);
            prop_assert_eq!(rec.served, u32::from(serves));
            prop_assert_eq!(rec.row, row);
            prop_assert_eq!(b.state(), BankState::Closed);
        }
    }

    #[test]
    fn channel_histogram_requests_match_cas_count(
        plan in prop::collection::vec((0u8..16, 0u32..4, 1u8..5), 1..40)
    ) {
        let cfg = GpuConfig::default();
        let mut ch = Channel::new(&cfg);
        let mut now = 0u64;
        let mut cas_issued = 0u64;
        for (bank, row, serves) in plan {
            let bank = bank as usize;
            // Close the bank's current row if it differs.
            if let Some(open) = ch.open_row(bank) {
                if open != row {
                    while !ch.can_precharge(bank, now) {
                        now += 1;
                    }
                    ch.precharge(bank, now);
                    now += 1;
                }
            }
            if ch.open_row(bank).is_none() {
                while !ch.can_activate(bank, now) {
                    now += 1;
                }
                ch.activate(bank, row, now);
                now += 1;
            }
            for _ in 0..serves {
                while !ch.can_cas(bank, AccessKind::Read, now) {
                    now += 1;
                }
                ch.cas(bank, AccessKind::Read, true, now);
                cas_issued += 1;
                now += 1;
            }
        }
        ch.drain();
        let st = ch.stats();
        prop_assert_eq!(st.rbl.requests(), cas_issued);
        prop_assert_eq!(st.rbl.activations(), st.activations);
        prop_assert_eq!(st.row_hits + st.row_misses, cas_issued);
    }
}
