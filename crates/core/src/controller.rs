//! One per-channel memory controller running the lazy memory scheduler.
//!
//! Each memory cycle ([`MemoryController::tick`]) the controller:
//!
//! 1. completes finished DRAM bursts and returns their responses,
//! 2. advances the `Dyn-DMS` / `Dyn-AMS` window profilers,
//! 3. continues an in-progress AMS drop sequence (one request per cycle),
//! 4. issues at most one DRAM command, chosen FR-FCFS:
//!    * a CAS for the oldest pending row-buffer hit, if any is legal;
//!    * otherwise row management (PRE / ACT) for the oldest pending request
//!      that needs a new row — gated by the DMS delay criterion, and
//!      intercepted by AMS when the row qualifies for dropping.
//!
//! Rows are managed open-page: an open row is only precharged when a pending
//! request needs a different row in the same bank *and* no pending request
//! still targets the open row.

use crate::ams::AmsUnit;
use crate::dms::DmsUnit;
use crate::queue::{PendingQueue, QueueFull};
use lazydram_common::prof::{self, Phase};
use lazydram_common::snap::{Loader, Saver, SnapResult};
use lazydram_common::{AccessKind, Arbiter, GpuConfig, Request, RequestId, RowPolicy, SchedConfig};
use lazydram_dram::{DramBackend, MemoryBackend};
use std::collections::VecDeque;

/// A completed memory request returned to the reply network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Id of the originating request.
    pub id: RequestId,
    /// Line-aligned address of the request.
    pub addr: u64,
    /// `true` when the request was dropped by AMS and its value must be
    /// supplied by the value-prediction unit.
    pub approximated: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Inflight {
    ready_at: u64,
    resp: Response,
}

/// The lazy memory scheduler for one channel.
#[derive(Debug, Clone)]
pub struct MemoryController {
    queue: PendingQueue,
    backend: DramBackend,
    banks_per_group: usize,
    arbiter: Arbiter,
    row_policy: RowPolicy,
    dms: DmsUnit,
    ams: AmsUnit,
    /// Read bursts in flight inside DRAM (ready_at, response). Data bursts
    /// serialize on the shared bus, so `ready_at` is strictly increasing in
    /// insertion order: the front is always the earliest completion, which
    /// doubles as this controller's next-event source.
    inflight: VecDeque<Inflight>,
    /// Row currently being drop-sequenced by AMS: (flat bank, row,
    /// remaining requests). Bounded by the pending set at decision time so
    /// newly arriving same-row requests are not swept past the coverage cap.
    dropping: Option<(usize, u32, u32)>,
    now: u64,
}

impl MemoryController {
    /// Creates a controller for one channel.
    pub fn new(cfg: &GpuConfig, sched: &SchedConfig) -> Self {
        Self {
            queue: PendingQueue::new(
                cfg.pending_queue_size,
                cfg.banks_per_channel,
                cfg.banks_per_channel / cfg.bank_groups,
            ),
            backend: DramBackend::new(cfg),
            banks_per_group: cfg.banks_per_channel / cfg.bank_groups,
            arbiter: sched.arbiter,
            row_policy: sched.row_policy,
            dms: DmsUnit::new(sched.dms),
            ams: AmsUnit::new(sched.ams, sched.coverage_cap, sched.ams_warmup_requests),
            inflight: VecDeque::new(),
            dropping: None,
            now: 0,
        }
    }

    /// Current memory-cycle time of this controller.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending requests.
    pub fn pending_len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when the pending queue can accept another request.
    pub fn can_accept(&self) -> bool {
        !self.queue.is_full()
    }

    /// `true` when no request is pending, in flight, or being dropped.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.inflight.is_empty() && self.dropping.is_none()
    }

    /// The DMS delay currently in force (memory cycles).
    pub fn current_delay(&self) -> u32 {
        self.dms.current_delay()
    }

    /// The AMS RBL threshold currently in force.
    pub fn current_th_rbl(&self) -> u32 {
        self.ams.th_rbl()
    }

    /// The AMS unit (diagnostics).
    pub fn ams(&self) -> &AmsUnit {
        &self.ams
    }

    fn queue_banks_per_group(&self) -> usize {
        self.banks_per_group
    }

    /// Accumulated DRAM statistics of this controller's backend.
    pub fn stats(&self) -> &lazydram_common::DramStats {
        self.backend.stats()
    }

    /// All-bank refreshes performed by the backend so far.
    pub fn refreshes(&self) -> u64 {
        self.backend.refreshes()
    }

    /// Enqueues a request; its arrival stamp is set to the current cycle.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the pending queue is at capacity; the
    /// caller must retry later (backpressure).
    pub fn enqueue(&mut self, mut req: Request) -> Result<(), QueueFull> {
        if self.queue.is_full() {
            return Err(QueueFull);
        }
        req.arrival = self.now;
        let stats = self.backend.stats_mut();
        stats.requests_received += 1;
        if req.is_global_read() {
            stats.global_reads_received += 1;
        }
        self.queue.push(req)
    }

    /// Advances one memory cycle, pushing completed responses into `out`.
    ///
    /// The buffer is caller-owned so the hot loop can reuse one allocation
    /// across all controllers and cycles; `tick` only appends, it never
    /// clears.
    pub fn tick(&mut self, out: &mut Vec<Response>) {
        self.now += 1;
        let now = self.now;
        // Not worth a profiler tag: `advance_to` is a single max(), and a
        // per-tick prof guard would cost more than the work it measures.
        self.backend.advance_to(now);

        // Window profilers.
        let busy = self.backend.stats().bus_busy_cycles;
        self.dms.tick(now, busy);
        let (dropped, reads) = {
            let s = self.backend.stats();
            (s.dropped, s.global_reads_received)
        };
        self.ams.tick(now, dropped, reads);

        // Completions: ready_at is monotone, so ready bursts sit at the front.
        while let Some(f) = self.inflight.front() {
            if f.ready_at > now {
                break;
            }
            out.push(f.resp);
            self.inflight.pop_front();
        }

        // Continue an AMS drop sequence: one request per cycle, at most the
        // number that were pending when the decision was made.
        if let Some((bank, row, remaining)) = self.dropping {
            let victim = self
                .queue
                .oldest_for_row(bank, row)
                .map(|(_, r)| r.id)
                .and_then(|id| self.queue.remove(id));
            match victim {
                Some(req) if remaining > 0 => {
                    self.backend.stats_mut().dropped += 1;
                    out.push(Response {
                        id: req.id,
                        addr: req.addr,
                        approximated: true,
                    });
                    self.dropping = if remaining > 1 {
                        Some((bank, row, remaining - 1))
                    } else {
                        None
                    };
                }
                _ => self.dropping = None,
            }
        }

        // Refresh extension: when an all-bank refresh falls due, close open
        // rows (one per cycle) and issue the refresh before normal work.
        if self.backend.refresh_due(now) {
            if self.backend.can_refresh(now) {
                self.backend.refresh(now);
                return;
            }
            let mut open = self.backend.open_banks();
            while open != 0 {
                let bank = open.trailing_zeros() as usize;
                open &= open - 1;
                if self.backend.can_precharge(bank, now) {
                    self.backend.precharge(bank, now);
                    return;
                }
            }
            // Banks still within tRAS: fall through and keep serving.
        }

        self.schedule(out);
    }

    /// The earliest future memory cycle at which ticking this controller
    /// could have any effect, or `None` when no tick ever will (idle, no
    /// refresh pending, no profiler windows). Between `now` and the returned
    /// cycle (exclusive), every [`MemoryController::tick`] is a pure no-op,
    /// so the event-driven loop may replace those ticks with one
    /// [`MemoryController::advance_idle`] call.
    ///
    /// Conservative: returns `now + 1` ("busy") whenever the next effect
    /// depends on short-horizon DRAM timing rather than a computable event.
    pub fn next_event_cycle(&mut self) -> Option<u64> {
        let now = self.now;
        // A drop sequence emits one response per cycle; the refresh
        // machinery may issue PRE/REF any cycle once the refresh is due.
        if self.dropping.is_some() || self.backend.refresh_due(now) {
            return Some(now + 1);
        }
        // Closed-page policy precharges open rows as soon as tRAS allows,
        // even with an empty queue — tick until they are closed.
        if self.row_policy == RowPolicy::Closed && self.backend.open_banks() != 0 {
            return Some(now + 1);
        }
        if !self.queue.is_empty() {
            // A pending row-buffer hit can legalize on bus/bank timing
            // alone (never DMS-gated) — treat as imminent. Only banks that
            // are both open and have pending requests can host one.
            let mut scan = self.backend.open_banks() & self.queue.bank_mask();
            while scan != 0 {
                let bank = scan.trailing_zeros() as usize;
                scan &= scan - 1;
                let row = self.backend.open_row(bank).expect("bank in open mask");
                if self.queue.any_for_row(bank, row) {
                    return Some(now + 1);
                }
            }
            // Row misses only: nothing can issue until the DMS delay
            // criterion is met (the paper's deliberately created stall
            // epochs — the dominant skippable span).
            let arrival = self.queue.oldest().map(|r| r.arrival).expect("non-empty");
            let gate = arrival + u64::from(self.dms.current_delay());
            if gate <= now {
                return Some(now + 1);
            }
            let mut next = gate;
            if let Some(f) = self.inflight.front() {
                next = next.min(f.ready_at);
            }
            next = next.min(self.backend.refresh_due_at());
            if let Some(b) = self.dms.next_window_boundary() {
                next = next.min(b);
            }
            if let Some(b) = self.ams.next_window_boundary() {
                next = next.min(b);
            }
            return Some(next.max(now + 1));
        }
        // Empty queue: wake for in-flight completions, the next refresh,
        // or a Dyn-DMS / Dyn-AMS window boundary.
        let mut next = u64::MAX;
        if let Some(f) = self.inflight.front() {
            next = next.min(f.ready_at);
        }
        next = next.min(self.backend.refresh_due_at());
        if let Some(b) = self.dms.next_window_boundary() {
            next = next.min(b);
        }
        if let Some(b) = self.ams.next_window_boundary() {
            next = next.min(b);
        }
        (next != u64::MAX).then(|| next.max(now + 1))
    }

    /// Jumps the controller's clock to `to`, standing in for `to - now`
    /// consecutive no-op ticks. Only legal when
    /// [`MemoryController::next_event_cycle`] proved every skipped tick a
    /// no-op (i.e. `to` is at most the next event cycle).
    pub fn advance_idle(&mut self, to: u64) {
        debug_assert!(to >= self.now, "advance_idle must not move backwards");
        self.now = to;
        let _t = prof::enter(Phase::Dram);
        self.backend.advance_to(to);
    }

    /// FR-FCFS + DMS + AMS scheduling: issues at most one DRAM command.
    ///
    /// All selection queries are O(banks) thanks to the indexed queue.
    fn schedule(&mut self, out: &mut Vec<Response>) {
        let now = self.now;

        // Pass 1: a CAS for an open row. FR-FCFS picks the oldest hit across
        // all banks; strict FCFS only serves the globally oldest request
        // (no reordering past it).
        let mut best: Option<(u64, RequestId, usize)> = None;
        match self.arbiter {
            Arbiter::FrFcfs => {
                // A hit needs an open row and pending work in that bank:
                // scan only the intersection of the two occupancy masks.
                let mut scan = self.backend.open_banks() & self.queue.bank_mask();
                while scan != 0 {
                    let bank = scan.trailing_zeros() as usize;
                    scan &= scan - 1;
                    let row = self.backend.open_row(bank).expect("bank in open mask");
                    let Some((seq, req)) = self.queue.oldest_for_row(bank, row) else {
                        continue;
                    };
                    if best.is_some_and(|(s, _, _)| s <= seq) {
                        continue;
                    }
                    if self.backend.can_cas(bank, req.kind, now) {
                        best = Some((seq, req.id, bank));
                    }
                }
            }
            Arbiter::Fcfs => {
                if let Some(req) = self.queue.oldest().copied() {
                    let bank = req.loc.flat_bank(self.queue_banks_per_group());
                    if self.backend.open_row(bank) == Some(req.loc.row)
                        && self.backend.can_cas(bank, req.kind, now)
                    {
                        best = Some((0, req.id, bank));
                    }
                }
            }
        }
        if let Some((_, id, bank)) = best {
            let req = self.queue.remove(id).expect("candidate still queued");
            let done = self.backend.cas(bank, req.kind, req.is_global_read(), now);
            if req.kind == AccessKind::Read {
                self.inflight.push_back(Inflight {
                    ready_at: done,
                    resp: Response {
                        id: req.id,
                        addr: req.addr,
                        approximated: false,
                    },
                });
            }
            return;
        }

        // Closed-page policy: precharge any open row that has no pending
        // requests left, immediately (not gated by DMS — closing is not a
        // new row opening), even when the queue is empty.
        if self.row_policy == RowPolicy::Closed {
            let mut scan = self.backend.open_banks();
            while scan != 0 {
                let bank = scan.trailing_zeros() as usize;
                scan &= scan - 1;
                let open = self.backend.open_row(bank).expect("bank in open mask");
                if !self.queue.any_for_row(bank, open) && self.backend.can_precharge(bank, now) {
                    self.backend.precharge(bank, now);
                    return;
                }
            }
        }

        // Pass 2: row management for requests that need a new row.
        let Some(oldest_age) = self.queue.oldest().map(|r| r.age(now)) else {
            return;
        };
        let oldest_age_ok = self.dms.row_miss_allowed(oldest_age);
        // The DMS gate holds back every new-row command (and, via criterion
        // 2, every AMS drop). Checked before the per-candidate work so a
        // gated cycle is a pure no-op — the property the event-driven loop
        // relies on to fast-forward stall epochs wholesale.
        if !oldest_age_ok {
            return;
        }
        let halted = self.dms.sampling_baseline();

        // Per-bank candidates, FCFS-ordered: the oldest request of a bank
        // whose row is closed (→ ACT) or whose open row has no pending
        // requests left (→ PRE, open-row policy). Under strict FCFS only
        // the globally oldest request is a candidate.
        // Stack-allocated: `nbanks` ≤ 64 (asserted at construction), and the
        // scheduler runs every busy memory cycle — no heap traffic here.
        let mut cands = [(0u64, 0usize, false); 64];
        let mut ncands = 0;
        match self.arbiter {
            Arbiter::FrFcfs => {
                // Only banks with pending requests can produce a candidate
                // (`oldest_for_bank` is None for the rest).
                let mut scan = self.queue.bank_mask();
                while scan != 0 {
                    let bank = scan.trailing_zeros() as usize;
                    scan &= scan - 1;
                    let needs_pre = match self.backend.open_row(bank) {
                        Some(open) => {
                            if self.queue.any_for_row(bank, open) {
                                continue; // row hits pending (maybe timing-blocked)
                            }
                            true
                        }
                        None => false,
                    };
                    if let Some((seq, _)) = self.queue.oldest_for_bank(bank) {
                        cands[ncands] = (seq, bank, needs_pre);
                        ncands += 1;
                    }
                }
                cands[..ncands].sort_unstable();
            }
            Arbiter::Fcfs => {
                // Strict FCFS manages rows only for the globally oldest
                // request — and closes an open row even if younger requests
                // still want it (that is exactly why FCFS wastes row energy).
                if let Some(req) = self.queue.oldest().copied() {
                    let bank = req.loc.flat_bank(self.queue_banks_per_group());
                    match self.backend.open_row(bank) {
                        Some(open) if open == req.loc.row => {} // hit pending timing
                        Some(_) => {
                            cands[0] = (0, bank, true);
                            ncands = 1;
                        }
                        None => {
                            cands[0] = (0, bank, false);
                            ncands = 1;
                        }
                    }
                }
            }
        }

        for (i, &(_, bank, needs_pre)) in cands[..ncands].iter().enumerate() {
            if i == 0 {
                // AMS inspects only the oldest row-management candidate
                // (the request about to cause the next activation).
                let req = *self
                    .queue
                    .oldest_for_bank(bank)
                    .expect("candidate exists")
                    .1;
                let (dropped, reads) = {
                    let s = self.backend.stats();
                    (s.dropped, s.global_reads_received)
                };
                if self.ams.should_drop(
                    &req,
                    &self.queue,
                    bank,
                    dropped,
                    reads,
                    oldest_age_ok,
                    halted,
                ) {
                    let pending_now = self.queue.visible_rbl(bank, req.loc.row);
                    if let Some(victim) = self
                        .queue
                        .oldest_for_row(bank, req.loc.row)
                        .map(|(_, r)| r.id)
                        .and_then(|id| self.queue.remove(id))
                    {
                        self.backend.stats_mut().dropped += 1;
                        out.push(Response {
                            id: victim.id,
                            addr: victim.addr,
                            approximated: true,
                        });
                    }
                    // The rest of the row's pending set follows, one per
                    // cycle (Section IV-C).
                    self.dropping = pending_now
                        .checked_sub(2)
                        .map(|rem| (bank, req.loc.row, rem + 1));
                    return;
                }
            }
            if needs_pre {
                if self.backend.can_precharge(bank, now) {
                    self.backend.precharge(bank, now);
                    return;
                }
            } else {
                let row = self
                    .queue
                    .oldest_for_bank(bank)
                    .expect("candidate exists")
                    .1
                    .loc
                    .row;
                if self.backend.can_activate(bank, now) {
                    self.backend.activate(bank, row, now);
                    return;
                }
            }
        }
    }

    /// Finishes the simulation: closes all open rows so their RBL is
    /// recorded. Returns any still-inflight responses (flushed immediately).
    pub fn drain(&mut self) -> Vec<Response> {
        self.backend.drain();
        let out: Vec<Response> = self.inflight.drain(..).map(|f| f.resp).collect();
        out
    }

    /// Serializes the controller's complete state (pending queue, DRAM
    /// channel, policy units, in-flight bursts, drop sequence, clock) into a
    /// snapshot. Configuration-derived fields (geometry, arbiter, row
    /// policy, modes) are not serialized — the restoring controller must be
    /// constructed from the same configuration.
    pub fn save_state(&self, s: &mut Saver) {
        s.frame("pq", 0, |s| self.queue.save_state(s));
        // The frame index carries the backend's stable wire tag, so a
        // checkpoint taken under one backend can never be restored into
        // another (the loader validates tag and index together).
        s.frame("chan", self.backend.kind().tag(), |s| self.backend.save_state(s));
        s.frame("dms", 0, |s| self.dms.save_state(s));
        s.frame("ams", 0, |s| self.ams.save_state(s));
        // The remaining scalars live in their own frame so the whole payload
        // is a sequence of frames — the divergence tool walks snapshot
        // regions frame-by-frame (and skips policy-unit frames when
        // comparing architectural state across configurations).
        s.frame("rest", 0, |s| {
            s.seq("inflight", self.inflight.len());
            for f in &self.inflight {
                s.u64("ready_at", f.ready_at);
                s.u64("resp_id", f.resp.id.0);
                s.u64("resp_addr", f.resp.addr);
                s.bool("resp_approx", f.resp.approximated);
            }
            match self.dropping {
                None => s.bool("has_dropping", false),
                Some((bank, row, remaining)) => {
                    s.bool("has_dropping", true);
                    s.usize("drop_bank", bank);
                    s.u32("drop_row", row);
                    s.u32("drop_remaining", remaining);
                }
            }
            s.u64("now", self.now);
        });
    }

    /// Restores the controller state from a snapshot written by
    /// [`MemoryController::save_state`].
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed or the
    /// snapshot geometry disagrees with this controller's configuration.
    pub fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        l.frame("pq", 0, |l| self.queue.load_state(l))?;
        l.frame("chan", self.backend.kind().tag(), |l| self.backend.load_state(l))?;
        l.frame("dms", 0, |l| self.dms.load_state(l))?;
        l.frame("ams", 0, |l| self.ams.load_state(l))?;
        l.frame("rest", 0, |l| {
            let n = l.seq("inflight", 25)?;
            self.inflight.clear();
            for _ in 0..n {
                let ready_at = l.u64("ready_at")?;
                let id = RequestId(l.u64("resp_id")?);
                let addr = l.u64("resp_addr")?;
                let approximated = l.bool("resp_approx")?;
                self.inflight.push_back(Inflight {
                    ready_at,
                    resp: Response { id, addr, approximated },
                });
            }
            self.dropping = if l.bool("has_dropping")? {
                Some((l.usize("drop_bank")?, l.u32("drop_row")?, l.u32("drop_remaining")?))
            } else {
                None
            };
            self.now = l.u64("now")?;
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydram_common::config::{AmsMode, DmsMode};
    use lazydram_common::{AddressMap, MemSpace};

    fn cfg() -> GpuConfig {
        GpuConfig::default()
    }

    /// Builds a channel-0 request for `(bank_linear_region, row, col)` by
    /// composing a real address, so location decomposition stays honest.
    fn mkreq(map: &AddressMap, id: u64, region: u64, row: u32, col: u16, kind: AccessKind) -> Request {
        // region selects the bank via the mapping's region rotation.
        let g = cfg();
        let region_bytes = (g.row_bytes * g.num_channels) as u64;
        let rows_span = (g.banks_per_channel as u64) * region_bytes;
        // Column `col` counts lines within the row: lines alternate within a
        // 256 B chunk, chunks stride across the 6-way channel interleave.
        let col_off = (u64::from(col) / 2) * (256 * 6) + (u64::from(col) % 2) * 128;
        let addr = map.line_of(u64::from(row) * rows_span + region * region_bytes + col_off);
        Request {
            id: RequestId(id),
            addr,
            loc: map.decompose(addr),
            kind,
            space: MemSpace::Global,
            approximable: true,
            arrival: 0,
        }
    }

    fn baseline_mc() -> MemoryController {
        MemoryController::new(&cfg(), &SchedConfig::baseline())
    }

    /// One tick into a fresh caller-owned buffer (the sink API `tick`
    /// exposes; tests trade the allocation for brevity).
    fn tick1(mc: &mut MemoryController) -> Vec<Response> {
        let mut out = Vec::new();
        mc.tick(&mut out);
        out
    }

    fn run_until_idle(mc: &mut MemoryController, max: u64) -> Vec<Response> {
        let mut out = Vec::new();
        for _ in 0..max {
            mc.tick(&mut out);
            if mc.is_idle() {
                break;
            }
        }
        assert!(mc.is_idle(), "controller did not go idle in {max} cycles");
        out
    }

    #[test]
    fn serves_single_read() {
        let map = AddressMap::new(&cfg());
        let mut mc = baseline_mc();
        mc.enqueue(mkreq(&map, 1, 0, 0, 0, AccessKind::Read)).unwrap();
        let out = run_until_idle(&mut mc, 200);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, RequestId(1));
        assert!(!out[0].approximated);
        let st = mc.stats();
        assert_eq!(st.activations, 1);
        assert_eq!(st.reads, 1);
        assert_eq!(st.row_misses, 1);
    }

    #[test]
    fn row_hits_are_prioritized_over_older_misses() {
        let map = AddressMap::new(&cfg());
        let mut mc = baseline_mc();
        // Open row 0 via request 1, then queue a miss (row 1) and a hit (row 0).
        mc.enqueue(mkreq(&map, 1, 0, 0, 0, AccessKind::Read)).unwrap();
        for _ in 0..30 {
            tick1(&mut mc);
        }
        mc.enqueue(mkreq(&map, 2, 0, 1, 0, AccessKind::Read)).unwrap(); // miss, older
        mc.enqueue(mkreq(&map, 3, 0, 0, 1, AccessKind::Read)).unwrap(); // hit, younger
        let out = run_until_idle(&mut mc, 500);
        let pos = |id: u64| out.iter().position(|r| r.id == RequestId(id)).unwrap();
        assert!(pos(3) < pos(2), "row hit must be served before older miss");
        assert_eq!(mc.stats().row_hits, 1);
    }

    #[test]
    fn writes_produce_no_response() {
        let map = AddressMap::new(&cfg());
        let mut mc = baseline_mc();
        mc.enqueue(mkreq(&map, 1, 0, 0, 0, AccessKind::Write)).unwrap();
        let out = run_until_idle(&mut mc, 200);
        assert!(out.is_empty());
        assert_eq!(mc.stats().writes, 1);
    }

    #[test]
    fn static_dms_delays_row_opening() {
        let map = AddressMap::new(&cfg());
        let mut nodelay = baseline_mc();
        let mut delayed = MemoryController::new(&cfg(), &SchedConfig::static_dms());
        for mc in [&mut nodelay, &mut delayed] {
            mc.enqueue(mkreq(&map, 1, 0, 0, 0, AccessKind::Read)).unwrap();
        }
        let t_nodelay = {
            let mut t = 0;
            for i in 1..500 {
                if !tick1(&mut nodelay).is_empty() {
                    t = i;
                    break;
                }
            }
            t
        };
        let t_delayed = {
            let mut t = 0;
            for i in 1..500 {
                if !tick1(&mut delayed).is_empty() {
                    t = i;
                    break;
                }
            }
            t
        };
        assert!(t_delayed >= t_nodelay + 120, "{t_delayed} vs {t_nodelay}");
    }

    #[test]
    fn dms_improves_rbl_when_same_row_requests_arrive_late() {
        // Figure 3 scenario: requests to rows R1..R4 arrive, then a second
        // batch to the same rows arrives slightly later. Without DMS the
        // controller opens each row twice; with a large enough delay each
        // row is opened once.
        let map = AddressMap::new(&cfg());
        let run = |sched: SchedConfig, gap: u64| {
            let mut mc = MemoryController::new(&cfg(), &sched);
            let mut id = 0;
            for row in 0..4u32 {
                id += 1;
                mc.enqueue(mkreq(&map, id, 0, row, 0, AccessKind::Read)).unwrap();
            }
            for _ in 0..gap {
                tick1(&mut mc);
            }
            for row in 0..4u32 {
                id += 1;
                mc.enqueue(mkreq(&map, id, 0, row, 1, AccessKind::Read)).unwrap();
            }
            let _ = run_until_idle(&mut mc, 5_000);
            let _ = mc.drain();
            mc.stats().clone()
        };
        let base = run(SchedConfig::baseline(), 150);
        let dms = run(SchedConfig { dms: DmsMode::Static(256), ..SchedConfig::baseline() }, 150);
        // Baseline: rows R0..R2 are re-opened for the second batch; only the
        // still-open R3 gets a row hit → 4 + 3 = 7 activations.
        assert_eq!(base.activations, 7, "baseline re-opens three rows");
        assert_eq!(dms.activations, 4, "DMS coalesces both batches");
        assert!(dms.rbl.avg_rbl() > base.rbl.avg_rbl());
    }

    #[test]
    fn ams_drops_low_rbl_read_only_rows() {
        let map = AddressMap::new(&cfg());
        let sched = SchedConfig {
            ams: AmsMode::Static(8),
            ams_warmup_requests: 0,
            coverage_cap: 0.5,
            ..SchedConfig::baseline()
        };
        let mut mc = MemoryController::new(&cfg(), &sched);
        mc.enqueue(mkreq(&map, 1, 0, 0, 0, AccessKind::Read)).unwrap();
        let out = run_until_idle(&mut mc, 200);
        assert_eq!(out.len(), 1);
        assert!(out[0].approximated, "isolated low-RBL read should be dropped");
        assert_eq!(mc.stats().activations, 0);
        assert_eq!(mc.stats().dropped, 1);
    }

    #[test]
    fn ams_never_drops_rows_with_writes() {
        let map = AddressMap::new(&cfg());
        let sched = SchedConfig {
            ams: AmsMode::Static(8),
            ams_warmup_requests: 0,
            coverage_cap: 0.5,
            ..SchedConfig::baseline()
        };
        let mut mc = MemoryController::new(&cfg(), &sched);
        mc.enqueue(mkreq(&map, 1, 0, 0, 0, AccessKind::Read)).unwrap();
        mc.enqueue(mkreq(&map, 2, 0, 0, 1, AccessKind::Write)).unwrap();
        let out = run_until_idle(&mut mc, 500);
        assert_eq!(out.len(), 1);
        assert!(!out[0].approximated);
        assert_eq!(mc.stats().dropped, 0);
        assert_eq!(mc.stats().activations, 1);
    }

    #[test]
    fn ams_respects_coverage_cap() {
        let map = AddressMap::new(&cfg());
        let sched = SchedConfig {
            ams: AmsMode::Static(8),
            ams_warmup_requests: 0,
            coverage_cap: 0.10,
            ..SchedConfig::baseline()
        };
        let mut mc = MemoryController::new(&cfg(), &sched);
        // 30 isolated reads to distinct rows; cap 10 % → at most 3 dropped.
        for i in 0..30u64 {
            mc.enqueue(mkreq(&map, i + 1, 0, i as u32, 0, AccessKind::Read)).unwrap();
            for _ in 0..60 {
                tick1(&mut mc);
            }
        }
        run_until_idle(&mut mc, 10_000);
        let st = mc.stats();
        assert!(st.dropped <= 3 + 8, "cap plus one bounded drop sequence");
        assert!(st.coverage() <= 0.10 + 8.0 / 30.0);
        assert!(st.dropped >= 1, "some drops must happen");
    }

    #[test]
    fn drop_sequence_drops_whole_row_one_per_cycle() {
        let map = AddressMap::new(&cfg());
        let sched = SchedConfig {
            ams: AmsMode::Static(8),
            ams_warmup_requests: 0,
            coverage_cap: 1.0,
            ..SchedConfig::baseline()
        };
        let mut mc = MemoryController::new(&cfg(), &sched);
        for i in 0..3u64 {
            mc.enqueue(mkreq(&map, i + 1, 0, 0, i as u16, AccessKind::Read)).unwrap();
        }
        let out = run_until_idle(&mut mc, 100);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| r.approximated));
        assert_eq!(mc.stats().activations, 0);
        assert_eq!(mc.stats().dropped, 3);
    }

    /// Figure 8: DMS makes AMS drop the *right* request.
    ///
    /// Nine requests target rows R1..R5 of one bank: two each to R1..R4 and
    /// one to R5, but the second batch (one more to each of R1..R4) arrives
    /// late. AMS alone (Th_RBL = 1) sees five RBL(1) rows and wrongly drops
    /// the oldest (R1). With DMS the gate holds until the second batch is
    /// visible, so only R5 still has RBL(1) and gets dropped.
    #[test]
    fn fig8_dms_helps_ams_drop_accuracy() {
        let map = AddressMap::new(&cfg());
        let run = |dms: DmsMode| {
            let sched = SchedConfig {
                dms,
                ams: AmsMode::Static(1),
                ams_warmup_requests: 0,
                coverage_cap: 0.11, // one drop in nine requests
                ..SchedConfig::baseline()
            };
            let mut mc = MemoryController::new(&cfg(), &sched);
            let mut id = 0;
            for row in 1..=5u32 {
                id += 1;
                mc.enqueue(mkreq(&map, id, 0, row, 0, AccessKind::Read)).unwrap();
            }
            // Let AMS-alone act before the second batch arrives, but keep
            // the gap short enough that rows opened for the first batch are
            // still open when the second batch lands (as in Figure 8).
            let mut out = Vec::new();
            for _ in 0..20 {
                out.extend(tick1(&mut mc));
            }
            for row in 1..=4u32 {
                id += 1;
                mc.enqueue(mkreq(&map, id, 0, row, 1, AccessKind::Read)).unwrap();
            }
            out.extend(run_until_idle(&mut mc, 5_000));
            let dropped: Vec<u64> = out.iter().filter(|r| r.approximated).map(|r| r.id.0).collect();
            (dropped, mc.stats().clone())
        };

        let (dropped_ams, st_ams) = run(DmsMode::Off);
        assert_eq!(dropped_ams, vec![1], "AMS alone drops oldest (R1)");
        // R1's second request still activates R1: activations stay at 5.
        assert_eq!(st_ams.activations, 5);

        let (dropped_both, st_both) = run(DmsMode::Static(64));
        assert_eq!(dropped_both, vec![5], "with DMS the RBL(1) row R5 is dropped");
        assert_eq!(st_both.activations, 4);
        assert!(st_both.rbl.avg_rbl() > st_ams.rbl.avg_rbl());
    }

    #[test]
    fn queue_full_applies_backpressure() {
        let map = AddressMap::new(&cfg());
        let g = GpuConfig { pending_queue_size: 4, ..cfg() };
        let mut mc = MemoryController::new(&g, &SchedConfig::baseline());
        for i in 0..4u64 {
            mc.enqueue(mkreq(&map, i + 1, 0, i as u32, 0, AccessKind::Read)).unwrap();
        }
        assert!(!mc.can_accept());
        assert!(mc.enqueue(mkreq(&map, 99, 0, 9, 0, AccessKind::Read)).is_err());
    }

    #[test]
    fn fcfs_arbiter_serves_strictly_in_order() {
        use lazydram_common::Arbiter;
        let map = AddressMap::new(&cfg());
        let sched = SchedConfig { arbiter: Arbiter::Fcfs, ..SchedConfig::baseline() };
        let mut mc = MemoryController::new(&cfg(), &sched);
        // Open row 0 via request 1, then queue a miss (row 1) and a would-be
        // hit (row 0). Strict FCFS must serve the older miss first.
        mc.enqueue(mkreq(&map, 1, 0, 0, 0, AccessKind::Read)).unwrap();
        for _ in 0..30 {
            tick1(&mut mc);
        }
        mc.enqueue(mkreq(&map, 2, 0, 1, 0, AccessKind::Read)).unwrap(); // miss, older
        mc.enqueue(mkreq(&map, 3, 0, 0, 1, AccessKind::Read)).unwrap(); // hit, younger
        let out = run_until_idle(&mut mc, 2_000);
        let pos = |id: u64| out.iter().position(|r| r.id == RequestId(id)).unwrap();
        assert!(pos(2) < pos(3), "FCFS must not reorder the hit past the miss");
    }

    #[test]
    fn closed_page_precharges_idle_rows() {
        use lazydram_common::RowPolicy;
        let map = AddressMap::new(&cfg());
        let sched = SchedConfig { row_policy: RowPolicy::Closed, ..SchedConfig::baseline() };
        let mut mc = MemoryController::new(&cfg(), &sched);
        mc.enqueue(mkreq(&map, 1, 0, 0, 0, AccessKind::Read)).unwrap();
        run_until_idle(&mut mc, 500);
        // Give the policy time to close the row.
        for _ in 0..80 {
            tick1(&mut mc);
        }
        // A second request to the same row must re-activate it.
        mc.enqueue(mkreq(&map, 2, 0, 0, 1, AccessKind::Read)).unwrap();
        run_until_idle(&mut mc, 500);
        // Let the policy close the second activation too (tRAS must pass).
        for _ in 0..80 {
            tick1(&mut mc);
        }
        let st = mc.stats();
        assert_eq!(st.activations, 2, "closed-page must have closed the idle row");
        assert_eq!(st.precharges, 2);
    }

    #[test]
    fn open_page_keeps_idle_rows_open() {
        let map = AddressMap::new(&cfg());
        let mut mc = baseline_mc();
        mc.enqueue(mkreq(&map, 1, 0, 0, 0, AccessKind::Read)).unwrap();
        run_until_idle(&mut mc, 500);
        for _ in 0..80 {
            tick1(&mut mc);
        }
        mc.enqueue(mkreq(&map, 2, 0, 0, 1, AccessKind::Read)).unwrap();
        run_until_idle(&mut mc, 500);
        assert_eq!(mc.stats().activations, 1, "open-page keeps the row");
        assert_eq!(mc.stats().row_hits, 1);
    }

    #[test]
    fn refresh_extension_interleaves_with_service() {
        use lazydram_common::DramTimings;
        let map = AddressMap::new(&cfg());
        let g = GpuConfig {
            timings: DramTimings { t_refi: 200, t_rfc: 40, ..DramTimings::default() },
            ..cfg()
        };
        let mut mc = MemoryController::new(&g, &SchedConfig::baseline());
        let mut out = Vec::new();
        let mut id = 0;
        for t in 0..2_000u64 {
            if t % 37 == 0 && mc.can_accept() {
                id += 1;
                mc.enqueue(mkreq(&map, id, id % 4, (id % 3) as u32, 0, AccessKind::Read))
                    .unwrap();
            }
            out.extend(tick1(&mut mc));
        }
        while !mc.is_idle() {
            out.extend(tick1(&mut mc));
        }
        assert_eq!(out.len() as u64, id, "all reads answered despite refreshes");
        assert!(mc.refreshes() >= 5, "refreshes kept recurring");
    }

    #[test]
    fn drain_records_open_row_rbl() {
        let map = AddressMap::new(&cfg());
        let mut mc = baseline_mc();
        mc.enqueue(mkreq(&map, 1, 0, 0, 0, AccessKind::Read)).unwrap();
        run_until_idle(&mut mc, 200);
        assert_eq!(mc.stats().rbl.activations(), 0, "row still open");
        mc.drain();
        assert_eq!(mc.stats().rbl.count(1), 1);
    }
}
