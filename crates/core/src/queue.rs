//! The FR-FCFS re-order pending request queue (indexed implementation).
//!
//! Requests are stored once, keyed by id, with three light-weight orderings:
//!
//! * a global arrival (FCFS) order — for "the oldest request" (DMS gate),
//! * a per-bank FIFO — for the oldest request of each bank (row management),
//! * a per-(bank, row) FIFO + counters — for row-hit selection, *visible
//!   RBL* and AMS's all-global-reads safety check, all in O(1).
//!
//! Orderings hold (seq, id) pairs and are cleaned lazily: entries whose id
//! is no longer live are discarded when they reach a front. This keeps every
//! scheduler query O(banks) instead of O(queue length), which is what makes
//! whole-suite simulation tractable.

use lazydram_common::{FastMap, Request, RequestId};
use std::collections::VecDeque;

/// Error returned when enqueueing into a full pending queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("pending queue is full")
    }
}

impl std::error::Error for QueueFull {}

#[derive(Debug, Clone, Copy, Default)]
struct RowStat {
    count: u32,
    global_reads: u32,
}

/// Bounded FCFS-ordered pending queue of one memory controller.
#[derive(Debug, Clone)]
pub struct PendingQueue {
    capacity: usize,
    banks_per_group: usize,
    next_seq: u64,
    /// Live requests with their arrival sequence number.
    reqs: FastMap<RequestId, (u64, Request)>,
    /// Global FCFS order (lazily cleaned).
    arrival: VecDeque<(u64, RequestId)>,
    /// Per-flat-bank FCFS order (lazily cleaned).
    bank_fifo: Vec<VecDeque<(u64, RequestId)>>,
    /// Per-(bank, row) FCFS order (lazily cleaned).
    row_fifo: FastMap<(usize, u32), VecDeque<(u64, RequestId)>>,
    /// Per-(bank, row) live counts.
    row_stats: FastMap<(usize, u32), RowStat>,
}

impl PendingQueue {
    /// Creates an empty queue with the given capacity, for a channel with
    /// `banks` banks grouped in `banks_per_group`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `banks` is zero.
    pub fn new(capacity: usize, banks: usize, banks_per_group: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(banks > 0, "need at least one bank");
        Self {
            capacity,
            banks_per_group,
            next_seq: 0,
            reqs: FastMap::default(),
            arrival: VecDeque::with_capacity(capacity),
            bank_fifo: vec![VecDeque::new(); banks],
            row_fifo: FastMap::default(),
            row_stats: FastMap::default(),
        }
    }

    /// Maximum number of pending requests.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of pending requests.
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// `true` when no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// `true` when the queue cannot accept another request.
    pub fn is_full(&self) -> bool {
        self.reqs.len() >= self.capacity
    }

    fn flat_bank(&self, req: &Request) -> usize {
        req.loc.flat_bank(self.banks_per_group)
    }

    /// Appends a request in FCFS order.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the queue is at capacity; the caller must
    /// apply backpressure (the request stays in the interconnect).
    pub fn push(&mut self, req: Request) -> Result<(), QueueFull> {
        if self.is_full() {
            return Err(QueueFull);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let bank = self.flat_bank(&req);
        let row = req.loc.row;
        self.arrival.push_back((seq, req.id));
        self.bank_fifo[bank].push_back((seq, req.id));
        self.row_fifo.entry((bank, row)).or_default().push_back((seq, req.id));
        let stat = self.row_stats.entry((bank, row)).or_default();
        stat.count += 1;
        if req.is_global_read() {
            stat.global_reads += 1;
        }
        self.reqs.insert(req.id, (seq, req));
        Ok(())
    }

    fn clean_front(live: &FastMap<RequestId, (u64, Request)>, q: &mut VecDeque<(u64, RequestId)>) {
        while let Some(&(seq, id)) = q.front() {
            match live.get(&id) {
                Some(&(s, _)) if s == seq => return,
                _ => {
                    q.pop_front();
                }
            }
        }
    }

    /// The oldest pending request, if any.
    pub fn oldest(&mut self) -> Option<&Request> {
        Self::clean_front(&self.reqs, &mut self.arrival);
        let &(_, id) = self.arrival.front()?;
        self.reqs.get(&id).map(|(_, r)| r)
    }

    /// The oldest pending request destined to `bank`, with its sequence
    /// number.
    pub fn oldest_for_bank(&mut self, bank: usize) -> Option<(u64, &Request)> {
        Self::clean_front(&self.reqs, &mut self.bank_fifo[bank]);
        let &(seq, id) = self.bank_fifo[bank].front()?;
        self.reqs.get(&id).map(|(_, r)| (seq, r))
    }

    /// The oldest pending request destined to `(bank, row)`, with its
    /// sequence number.
    pub fn oldest_for_row(&mut self, bank: usize, row: u32) -> Option<(u64, &Request)> {
        let q = self.row_fifo.get_mut(&(bank, row))?;
        Self::clean_front(&self.reqs, q);
        let &(seq, id) = q.front()?;
        self.reqs.get(&id).map(|(_, r)| (seq, r))
    }

    /// Removes and returns the request with `id`.
    pub fn remove(&mut self, id: RequestId) -> Option<Request> {
        let (_, req) = self.reqs.remove(&id)?;
        let bank = self.flat_bank(&req);
        let key = (bank, req.loc.row);
        if let Some(stat) = self.row_stats.get_mut(&key) {
            stat.count -= 1;
            if req.is_global_read() {
                stat.global_reads -= 1;
            }
            if stat.count == 0 {
                self.row_stats.remove(&key);
                self.row_fifo.remove(&key);
            }
        }
        Some(req)
    }

    /// Visible RBL of a row: how many pending requests target `(bank, row)`.
    pub fn visible_rbl(&self, bank: usize, row: u32) -> u32 {
        self.row_stats.get(&(bank, row)).map_or(0, |s| s.count)
    }

    /// `true` when every pending request destined to `(bank, row)` is a
    /// global read (AMS safety criterion). Vacuously true for empty rows.
    pub fn row_is_all_global_reads(&self, bank: usize, row: u32) -> bool {
        self.row_stats
            .get(&(bank, row))
            .is_none_or(|s| s.count == s.global_reads)
    }

    /// `true` when at least one pending request targets `(bank, row)`.
    pub fn any_for_row(&self, bank: usize, row: u32) -> bool {
        self.visible_rbl(bank, row) > 0
    }

    /// Iterates live requests in FCFS (oldest-first) order. O(n); intended
    /// for tests and statistics, not the per-cycle scheduler path.
    pub fn iter(&self) -> impl Iterator<Item = &Request> {
        self.arrival
            .iter()
            .filter_map(move |&(seq, id)| match self.reqs.get(&id) {
                Some(&(s, ref r)) if s == seq => Some(r),
                _ => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydram_common::{AccessKind, Location, MemSpace};

    fn req(id: u64, bank_in_group: u16, row: u32, kind: AccessKind) -> Request {
        Request {
            id: RequestId(id),
            addr: id * 128,
            loc: Location {
                channel: 0,
                bank_group: 0,
                bank_in_group,
                row,
                col: 0,
            },
            kind,
            space: MemSpace::Global,
            approximable: true,
            arrival: id,
        }
    }

    fn q() -> PendingQueue {
        PendingQueue::new(128, 16, 4)
    }

    #[test]
    fn fifo_order_and_capacity() {
        let mut q = PendingQueue::new(2, 16, 4);
        assert!(q.is_empty());
        q.push(req(1, 0, 0, AccessKind::Read)).unwrap();
        q.push(req(2, 0, 0, AccessKind::Read)).unwrap();
        assert!(q.is_full());
        assert_eq!(q.push(req(3, 0, 0, AccessKind::Read)), Err(QueueFull));
        assert_eq!(q.oldest().unwrap().id, RequestId(1));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn remove_keeps_order_consistent() {
        let mut q = q();
        for i in 1..=4 {
            q.push(req(i, 0, 0, AccessKind::Read)).unwrap();
        }
        assert!(q.remove(RequestId(2)).is_some());
        assert!(q.remove(RequestId(99)).is_none());
        let ids: Vec<u64> = q.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![1, 3, 4]);
        // Remove the front; oldest must lazily advance.
        q.remove(RequestId(1));
        assert_eq!(q.oldest().unwrap().id, RequestId(3));
    }

    #[test]
    fn per_bank_and_per_row_fronts() {
        let mut q = q();
        q.push(req(1, 0, 6, AccessKind::Read)).unwrap();
        q.push(req(2, 0, 5, AccessKind::Read)).unwrap();
        q.push(req(3, 0, 5, AccessKind::Read)).unwrap();
        q.push(req(4, 1, 5, AccessKind::Read)).unwrap(); // flat bank 1
        assert_eq!(q.oldest_for_bank(0).unwrap().1.id, RequestId(1));
        assert_eq!(q.oldest_for_bank(1).unwrap().1.id, RequestId(4));
        assert!(q.oldest_for_bank(2).is_none());
        assert_eq!(q.oldest_for_row(0, 5).unwrap().1.id, RequestId(2));
        assert!(q.oldest_for_row(0, 9).is_none());
        // Sequence numbers order correctly across banks.
        let s0 = q.oldest_for_bank(0).unwrap().0;
        let s1 = q.oldest_for_bank(1).unwrap().0;
        assert!(s0 < s1);
    }

    #[test]
    fn visible_rbl_counts_and_updates_on_remove() {
        let mut q = q();
        q.push(req(1, 0, 5, AccessKind::Read)).unwrap();
        q.push(req(2, 0, 5, AccessKind::Read)).unwrap();
        q.push(req(3, 0, 6, AccessKind::Read)).unwrap();
        assert_eq!(q.visible_rbl(0, 5), 2);
        assert_eq!(q.visible_rbl(0, 6), 1);
        assert_eq!(q.visible_rbl(3, 5), 0);
        q.remove(RequestId(1));
        assert_eq!(q.visible_rbl(0, 5), 1);
        q.remove(RequestId(2));
        assert_eq!(q.visible_rbl(0, 5), 0);
        assert!(!q.any_for_row(0, 5));
        assert!(q.any_for_row(0, 6));
    }

    #[test]
    fn all_global_reads_tracks_mix() {
        let mut q = q();
        q.push(req(1, 0, 5, AccessKind::Read)).unwrap();
        assert!(q.row_is_all_global_reads(0, 5));
        q.push(req(2, 0, 5, AccessKind::Write)).unwrap();
        assert!(!q.row_is_all_global_reads(0, 5));
        q.remove(RequestId(2));
        assert!(q.row_is_all_global_reads(0, 5));
        assert!(q.row_is_all_global_reads(0, 99), "vacuous for empty rows");
    }

    #[test]
    fn lazy_cleaning_survives_heavy_churn() {
        let mut q = q();
        for round in 0..50u64 {
            for i in 0..10u64 {
                q.push(req(round * 10 + i + 1, (i % 4) as u16, (i % 3) as u32, AccessKind::Read))
                    .unwrap();
            }
            for i in 0..10u64 {
                assert!(q.remove(RequestId(round * 10 + i + 1)).is_some());
            }
            assert!(q.is_empty());
            assert!(q.oldest().is_none());
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = PendingQueue::new(0, 16, 4);
    }
}
