//! The FR-FCFS re-order pending request queue (indexed implementation).
//!
//! Requests are stored once, keyed by id, with three light-weight orderings:
//!
//! * a global arrival (FCFS) order — for "the oldest request" (DMS gate),
//! * a per-bank FIFO — for the oldest request of each bank (row management),
//! * a per-(bank, row) FIFO + counters — for row-hit selection, *visible
//!   RBL* and AMS's all-global-reads safety check, all in O(1).
//!
//! Orderings hold `(seq, request)` pairs and are cleaned lazily: entries
//! whose sequence number is no longer live are discarded when they reach a
//! front. Liveness is a **bitset indexed by sequence number** — sequence
//! numbers are dense and monotone, so validating a front is a bit test, not
//! a hash probe, and the request itself is read straight out of the FIFO
//! entry. The id map is consulted exactly twice per request lifetime (push
//! and remove), never in the per-cycle scheduler queries. This keeps every
//! scheduler query O(banks) instead of O(queue length), which is what makes
//! whole-suite simulation tractable.
//!
//! Row state lives in an **indexed slab**: each live `(bank, row)` owns a
//! slot in `rows`, found through the tiny per-bank `bank_rows` index and
//! recorded per request in the id map, so the row-hit probes the six
//! controllers execute every busy cycle are pointer-chases rather than hash
//! probes. A slot is freed — and its FIFO memory reused — the moment its
//! last request leaves, which also bounds live row state by queue occupancy
//! instead of by the number of rows ever touched.

use lazydram_common::snap::{load_u64_deque, save_u64_deque, Loader, Saver, SnapError, SnapResult};
use lazydram_common::{FastMap, Request, RequestId};
use std::collections::VecDeque;

/// Liveness bitset over arrival sequence numbers. Sequence numbers are
/// handed out densely, marked on push, cleared on remove; the front words
/// are trimmed as all their bits die, so memory tracks the live seq *span*
/// (one bit per request, strictly smaller than any of the FIFOs).
#[derive(Debug, Clone, Default)]
struct SeqLive {
    /// Sequence number of bit 0 of `words[0]`.
    base: u64,
    words: VecDeque<u64>,
}

impl SeqLive {
    /// Marks a freshly issued (monotone) sequence number live.
    fn mark(&mut self, seq: u64) {
        let idx = (seq - self.base) as usize;
        while self.words.len() <= idx / 64 {
            self.words.push_back(0);
        }
        self.words[idx / 64] |= 1 << (idx % 64);
    }

    /// Clears a sequence number (request removed).
    fn clear(&mut self, seq: u64) {
        debug_assert!(seq >= self.base, "live seq below trimmed base");
        let idx = (seq - self.base) as usize;
        self.words[idx / 64] &= !(1 << (idx % 64));
    }

    #[inline]
    fn is_live(&self, seq: u64) -> bool {
        if seq < self.base {
            return false;
        }
        let idx = (seq - self.base) as usize;
        self.words
            .get(idx / 64)
            .is_some_and(|w| w & (1 << (idx % 64)) != 0)
    }

    /// Drops leading all-dead words. Only whole words are trimmed, and only
    /// words whose sequence range has already been handed out, so `mark`
    /// (which targets fresh, larger seqs) is never affected.
    fn trim(&mut self) {
        while let Some(&w) = self.words.front() {
            if w != 0 {
                break;
            }
            self.words.pop_front();
            self.base += 64;
        }
    }
}

/// Error returned when enqueueing into a full pending queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("pending queue is full")
    }
}

impl std::error::Error for QueueFull {}

/// Slab slot of one live `(bank, row)`: its FCFS order (lazily cleaned),
/// live count, and global-read count. Freed slots keep their slot (and the
/// FIFO's capacity) for reuse via the free list.
#[derive(Debug, Clone)]
struct RowEntry {
    row: u32,
    fifo: VecDeque<(u64, Request)>,
    count: u32,
    global_reads: u32,
}

/// Bounded FCFS-ordered pending queue of one memory controller.
#[derive(Debug, Clone)]
pub struct PendingQueue {
    capacity: usize,
    banks_per_group: usize,
    next_seq: u64,
    /// Seq number and row-slab slot per live request id — consulted only on
    /// push and remove, so removal never searches for the row.
    reqs: FastMap<RequestId, (u64, u32)>,
    /// One liveness bit per sequence number: the per-cycle front validation.
    live: SeqLive,
    /// Global FCFS order (lazily cleaned).
    arrival: VecDeque<(u64, Request)>,
    /// Per-flat-bank FCFS order (lazily cleaned).
    bank_fifo: Vec<VecDeque<(u64, Request)>>,
    /// Row slab; live slots are exactly those reachable from `bank_rows`.
    rows: Vec<RowEntry>,
    /// Recycled slab slots.
    free_rows: Vec<u32>,
    /// Per-flat-bank list of live slab slots — a handful of entries, scanned
    /// linearly.
    bank_rows: Vec<Vec<u32>>,
    /// Live request count per flat bank. Derived (maintained by
    /// `push`/`remove`, rebuilt on restore, never serialized).
    bank_live: Vec<u32>,
    /// Bit `b` set iff `bank_live[b] > 0` — lets the scheduler's per-cycle
    /// scans visit only banks that actually have pending work.
    bank_mask: u64,
}

impl PendingQueue {
    /// Creates an empty queue with the given capacity, for a channel with
    /// `banks` banks grouped in `banks_per_group`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `banks` is zero.
    pub fn new(capacity: usize, banks: usize, banks_per_group: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(banks > 0, "need at least one bank");
        assert!(banks <= 64, "the bank bitmask caps a channel at 64 banks");
        Self {
            capacity,
            banks_per_group,
            next_seq: 0,
            reqs: FastMap::default(),
            live: SeqLive::default(),
            arrival: VecDeque::with_capacity(capacity),
            bank_fifo: vec![VecDeque::new(); banks],
            rows: Vec::new(),
            free_rows: Vec::new(),
            bank_rows: vec![Vec::new(); banks],
            bank_live: vec![0; banks],
            bank_mask: 0,
        }
    }

    /// Bitmask of flat banks with at least one pending request.
    pub fn bank_mask(&self) -> u64 {
        self.bank_mask
    }

    /// Slab slot of `(bank, row)` if that row has live requests.
    #[inline]
    fn find_row(&self, bank: usize, row: u32) -> Option<u32> {
        self.bank_rows[bank]
            .iter()
            .copied()
            .find(|&s| self.rows[s as usize].row == row)
    }

    /// Slab slot of `(bank, row)`, allocating (or recycling) one if needed.
    fn find_or_alloc_row(&mut self, bank: usize, row: u32) -> u32 {
        if let Some(slot) = self.find_row(bank, row) {
            return slot;
        }
        let slot = match self.free_rows.pop() {
            Some(s) => {
                let e = &mut self.rows[s as usize];
                debug_assert!(e.fifo.is_empty() && e.count == 0);
                e.row = row;
                s
            }
            None => {
                self.rows.push(RowEntry {
                    row,
                    fifo: VecDeque::new(),
                    count: 0,
                    global_reads: 0,
                });
                (self.rows.len() - 1) as u32
            }
        };
        self.bank_rows[bank].push(slot);
        slot
    }

    /// Number of `(bank, row)` groups currently holding live requests.
    /// Bounded by queue occupancy — emptied rows free their slot at once.
    pub fn live_rows(&self) -> usize {
        self.rows.len() - self.free_rows.len()
    }

    /// Total slab slots ever allocated (live + recycled). Bounded by the
    /// peak number of simultaneously live rows, never by rows-ever-touched.
    pub fn row_slab_len(&self) -> usize {
        self.rows.len()
    }

    /// Maximum number of pending requests.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of pending requests.
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// `true` when no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// `true` when the queue cannot accept another request.
    pub fn is_full(&self) -> bool {
        self.reqs.len() >= self.capacity
    }

    fn flat_bank(&self, req: &Request) -> usize {
        req.loc.flat_bank(self.banks_per_group)
    }

    /// Appends a request in FCFS order.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the queue is at capacity; the caller must
    /// apply backpressure (the request stays in the interconnect).
    pub fn push(&mut self, req: Request) -> Result<(), QueueFull> {
        if self.is_full() {
            return Err(QueueFull);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let bank = self.flat_bank(&req);
        let row = req.loc.row;
        self.live.mark(seq);
        self.live.trim();
        self.arrival.push_back((seq, req));
        self.bank_fifo[bank].push_back((seq, req));
        self.bank_live[bank] += 1;
        self.bank_mask |= 1 << bank;
        let slot = self.find_or_alloc_row(bank, row);
        let entry = &mut self.rows[slot as usize];
        entry.fifo.push_back((seq, req));
        entry.count += 1;
        if req.is_global_read() {
            entry.global_reads += 1;
        }
        self.reqs.insert(req.id, (seq, slot));
        Ok(())
    }

    #[inline]
    fn clean_front(live: &SeqLive, q: &mut VecDeque<(u64, Request)>) {
        while let Some(&(seq, _)) = q.front() {
            if live.is_live(seq) {
                return;
            }
            q.pop_front();
        }
    }

    /// The oldest pending request, if any.
    pub fn oldest(&mut self) -> Option<&Request> {
        Self::clean_front(&self.live, &mut self.arrival);
        self.arrival.front().map(|(_, r)| r)
    }

    /// The oldest pending request destined to `bank`, with its sequence
    /// number.
    pub fn oldest_for_bank(&mut self, bank: usize) -> Option<(u64, &Request)> {
        Self::clean_front(&self.live, &mut self.bank_fifo[bank]);
        self.bank_fifo[bank].front().map(|&(seq, ref r)| (seq, r))
    }

    /// The oldest pending request destined to `(bank, row)`, with its
    /// sequence number.
    pub fn oldest_for_row(&mut self, bank: usize, row: u32) -> Option<(u64, &Request)> {
        let slot = self.find_row(bank, row)?;
        let q = &mut self.rows[slot as usize].fifo;
        Self::clean_front(&self.live, q);
        q.front().map(|&(seq, ref r)| (seq, r))
    }

    /// Removes and returns the request with `id`.
    pub fn remove(&mut self, id: RequestId) -> Option<Request> {
        let (seq, slot) = self.reqs.remove(&id)?;
        self.live.clear(seq);
        let entry = &mut self.rows[slot as usize];
        // The scheduler removes row-FIFO fronts (FR-FCFS serves the oldest
        // of a row), so pop eagerly when possible; otherwise find the entry
        // to return the request, leaving lazy cleaning to do the removal.
        let req = match entry.fifo.front() {
            Some(&(s, r)) if s == seq => {
                entry.fifo.pop_front();
                r
            }
            _ => {
                entry
                    .fifo
                    .iter()
                    .find(|&&(s, _)| s == seq)
                    .expect("live request is in its row FIFO")
                    .1
            }
        };
        entry.count -= 1;
        if req.is_global_read() {
            entry.global_reads -= 1;
        }
        let row_emptied = entry.count == 0;
        let bank = self.flat_bank(&req);
        self.bank_live[bank] -= 1;
        if self.bank_live[bank] == 0 {
            self.bank_mask &= !(1 << bank);
        }
        if row_emptied {
            // Free the slot immediately: drop the FIFO's stale entries now
            // (the capacity is kept for reuse) and unlink it from the bank.
            let entry = &mut self.rows[slot as usize];
            debug_assert_eq!(entry.global_reads, 0);
            entry.fifo.clear();
            let pos = self.bank_rows[bank]
                .iter()
                .position(|&s| s == slot)
                .expect("live slot is linked from its bank");
            self.bank_rows[bank].swap_remove(pos);
            self.free_rows.push(slot);
        }
        Some(req)
    }

    /// Visible RBL of a row: how many pending requests target `(bank, row)`.
    pub fn visible_rbl(&self, bank: usize, row: u32) -> u32 {
        self.find_row(bank, row)
            .map_or(0, |s| self.rows[s as usize].count)
    }

    /// `true` when every pending request destined to `(bank, row)` is a
    /// global read (AMS safety criterion). Vacuously true for empty rows.
    pub fn row_is_all_global_reads(&self, bank: usize, row: u32) -> bool {
        self.find_row(bank, row).is_none_or(|s| {
            let e = &self.rows[s as usize];
            e.count == e.global_reads
        })
    }

    /// `true` when at least one pending request targets `(bank, row)`.
    pub fn any_for_row(&self, bank: usize, row: u32) -> bool {
        self.visible_rbl(bank, row) > 0
    }

    /// Iterates live requests in FCFS (oldest-first) order. O(n); intended
    /// for tests and statistics, not the per-cycle scheduler path.
    pub fn iter(&self) -> impl Iterator<Item = &Request> {
        self.arrival
            .iter()
            .filter(|&&(seq, _)| self.live.is_live(seq))
            .map(|(_, r)| r)
    }

    fn save_seq_fifo(s: &mut Saver, label: &str, q: &VecDeque<(u64, Request)>) {
        s.seq(label, q.len());
        for (seq, r) in q {
            s.u64("seq", *seq);
            r.save_state(s);
        }
    }

    fn load_seq_fifo(l: &mut Loader<'_>, label: &str) -> SnapResult<VecDeque<(u64, Request)>> {
        let len = l.seq(label, 16)?;
        let mut q = VecDeque::with_capacity(len);
        for _ in 0..len {
            let seq = l.u64("seq")?;
            q.push_back((seq, Request::load_state(l)?));
        }
        Ok(q)
    }

    /// Serializes the queue's complete state — including lazily-cleaned
    /// (dead) FIFO entries and the exact slab/free-list layout, which affect
    /// future cleaning and slot-recycling order and therefore must survive a
    /// checkpoint bit-exactly. Capacity and geometry are *not* serialized;
    /// they come from the configuration at restore time.
    pub fn save_state(&self, s: &mut Saver) {
        s.u64("next_seq", self.next_seq);
        // Id map in canonical (sorted-by-id) order; FastMap iteration order
        // is never otherwise observed, so sorting keeps snapshots canonical.
        let mut ids: Vec<(&RequestId, &(u64, u32))> = self.reqs.iter().collect();
        ids.sort_unstable_by_key(|(id, _)| **id);
        s.seq("reqs", ids.len());
        for (id, (seq, slot)) in ids {
            s.u64("id", id.0);
            s.u64("seq", *seq);
            s.u32("slot", *slot);
        }
        s.u64("live_base", self.live.base);
        save_u64_deque(s, "live_words", &self.live.words);
        Self::save_seq_fifo(s, "arrival", &self.arrival);
        s.seq("bank_fifo", self.bank_fifo.len());
        for q in &self.bank_fifo {
            Self::save_seq_fifo(s, "bank", q);
        }
        s.seq("rows", self.rows.len());
        for e in &self.rows {
            s.u32("row", e.row);
            Self::save_seq_fifo(s, "row_fifo", &e.fifo);
            s.u32("count", e.count);
            s.u32("global_reads", e.global_reads);
        }
        s.seq("free_rows", self.free_rows.len());
        for &slot in &self.free_rows {
            s.u32("slot", slot);
        }
        s.seq("bank_rows", self.bank_rows.len());
        for slots in &self.bank_rows {
            s.seq("bank_slots", slots.len());
            for &slot in slots {
                s.u32("slot", slot);
            }
        }
    }

    /// Restores the queue state from a snapshot. The queue must have been
    /// constructed with the same capacity/geometry that produced it.
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed or the bank
    /// count differs from this queue's geometry.
    pub fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.next_seq = l.u64("next_seq")?;
        let n = l.seq("reqs", 20)?;
        self.reqs = FastMap::default();
        self.reqs.reserve(n);
        for _ in 0..n {
            let id = RequestId(l.u64("id")?);
            let seq = l.u64("seq")?;
            let slot = l.u32("slot")?;
            self.reqs.insert(id, (seq, slot));
        }
        self.live.base = l.u64("live_base")?;
        self.live.words = load_u64_deque(l, "live_words")?;
        self.arrival = Self::load_seq_fifo(l, "arrival")?;
        let banks = l.seq("bank_fifo", 8)?;
        if banks != self.bank_fifo.len() {
            return Err(SnapError::Malformed {
                label: "bank_fifo".into(),
                why: format!("snapshot has {banks} banks, queue has {}", self.bank_fifo.len()),
            });
        }
        for q in self.bank_fifo.iter_mut() {
            *q = Self::load_seq_fifo(l, "bank")?;
        }
        let rows = l.seq("rows", 20)?;
        self.rows.clear();
        self.rows.reserve(rows);
        for _ in 0..rows {
            let row = l.u32("row")?;
            let fifo = Self::load_seq_fifo(l, "row_fifo")?;
            let count = l.u32("count")?;
            let global_reads = l.u32("global_reads")?;
            self.rows.push(RowEntry { row, fifo, count, global_reads });
        }
        let free = l.seq("free_rows", 4)?;
        self.free_rows.clear();
        for _ in 0..free {
            self.free_rows.push(l.u32("slot")?);
        }
        let nbr = l.seq("bank_rows", 8)?;
        if nbr != self.bank_rows.len() {
            return Err(SnapError::Malformed {
                label: "bank_rows".into(),
                why: format!("snapshot has {nbr} banks, queue has {}", self.bank_rows.len()),
            });
        }
        for slots in self.bank_rows.iter_mut() {
            let k = l.seq("bank_slots", 4)?;
            slots.clear();
            for _ in 0..k {
                slots.push(l.u32("slot")?);
            }
        }
        // Rebuild the derived per-bank occupancy (never serialized): each
        // bank's live count is the sum of its linked rows' counts.
        self.bank_mask = 0;
        for (bank, slots) in self.bank_rows.iter().enumerate() {
            let live: u32 = slots.iter().map(|&s| self.rows[s as usize].count).sum();
            self.bank_live[bank] = live;
            if live > 0 {
                self.bank_mask |= 1 << bank;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydram_common::{AccessKind, Location, MemSpace};

    fn req(id: u64, bank_in_group: u16, row: u32, kind: AccessKind) -> Request {
        Request {
            id: RequestId(id),
            addr: id * 128,
            loc: Location {
                channel: 0,
                bank_group: 0,
                bank_in_group,
                row,
                col: 0,
            },
            kind,
            space: MemSpace::Global,
            approximable: true,
            arrival: id,
        }
    }

    fn q() -> PendingQueue {
        PendingQueue::new(128, 16, 4)
    }

    #[test]
    fn fifo_order_and_capacity() {
        let mut q = PendingQueue::new(2, 16, 4);
        assert!(q.is_empty());
        q.push(req(1, 0, 0, AccessKind::Read)).unwrap();
        q.push(req(2, 0, 0, AccessKind::Read)).unwrap();
        assert!(q.is_full());
        assert_eq!(q.push(req(3, 0, 0, AccessKind::Read)), Err(QueueFull));
        assert_eq!(q.oldest().unwrap().id, RequestId(1));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn remove_keeps_order_consistent() {
        let mut q = q();
        for i in 1..=4 {
            q.push(req(i, 0, 0, AccessKind::Read)).unwrap();
        }
        assert!(q.remove(RequestId(2)).is_some());
        assert!(q.remove(RequestId(99)).is_none());
        let ids: Vec<u64> = q.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![1, 3, 4]);
        // Remove the front; oldest must lazily advance.
        q.remove(RequestId(1));
        assert_eq!(q.oldest().unwrap().id, RequestId(3));
    }

    #[test]
    fn per_bank_and_per_row_fronts() {
        let mut q = q();
        q.push(req(1, 0, 6, AccessKind::Read)).unwrap();
        q.push(req(2, 0, 5, AccessKind::Read)).unwrap();
        q.push(req(3, 0, 5, AccessKind::Read)).unwrap();
        q.push(req(4, 1, 5, AccessKind::Read)).unwrap(); // flat bank 1
        assert_eq!(q.oldest_for_bank(0).unwrap().1.id, RequestId(1));
        assert_eq!(q.oldest_for_bank(1).unwrap().1.id, RequestId(4));
        assert!(q.oldest_for_bank(2).is_none());
        assert_eq!(q.oldest_for_row(0, 5).unwrap().1.id, RequestId(2));
        assert!(q.oldest_for_row(0, 9).is_none());
        // Sequence numbers order correctly across banks.
        let s0 = q.oldest_for_bank(0).unwrap().0;
        let s1 = q.oldest_for_bank(1).unwrap().0;
        assert!(s0 < s1);
    }

    #[test]
    fn visible_rbl_counts_and_updates_on_remove() {
        let mut q = q();
        q.push(req(1, 0, 5, AccessKind::Read)).unwrap();
        q.push(req(2, 0, 5, AccessKind::Read)).unwrap();
        q.push(req(3, 0, 6, AccessKind::Read)).unwrap();
        assert_eq!(q.visible_rbl(0, 5), 2);
        assert_eq!(q.visible_rbl(0, 6), 1);
        assert_eq!(q.visible_rbl(3, 5), 0);
        q.remove(RequestId(1));
        assert_eq!(q.visible_rbl(0, 5), 1);
        q.remove(RequestId(2));
        assert_eq!(q.visible_rbl(0, 5), 0);
        assert!(!q.any_for_row(0, 5));
        assert!(q.any_for_row(0, 6));
    }

    #[test]
    fn all_global_reads_tracks_mix() {
        let mut q = q();
        q.push(req(1, 0, 5, AccessKind::Read)).unwrap();
        assert!(q.row_is_all_global_reads(0, 5));
        q.push(req(2, 0, 5, AccessKind::Write)).unwrap();
        assert!(!q.row_is_all_global_reads(0, 5));
        q.remove(RequestId(2));
        assert!(q.row_is_all_global_reads(0, 5));
        assert!(q.row_is_all_global_reads(0, 99), "vacuous for empty rows");
    }

    #[test]
    fn lazy_cleaning_survives_heavy_churn() {
        let mut q = q();
        for round in 0..50u64 {
            for i in 0..10u64 {
                q.push(req(round * 10 + i + 1, (i % 4) as u16, (i % 3) as u32, AccessKind::Read))
                    .unwrap();
            }
            for i in 0..10u64 {
                assert!(q.remove(RequestId(round * 10 + i + 1)).is_some());
            }
            assert!(q.is_empty());
            assert!(q.oldest().is_none());
        }
    }

    #[test]
    fn row_state_stays_bounded_under_long_runs() {
        // Regression test for the row-lifecycle leak: streaming through many
        // distinct rows must not accumulate per-row state. Live row slots
        // are bounded by queue occupancy and the slab by its peak, not by
        // the number of rows ever touched.
        let mut q = PendingQueue::new(32, 16, 4);
        let mut peak_live = 0;
        for i in 0..10_000u64 {
            // A fresh row for (almost) every request: worst-case row churn.
            q.push(req(i + 1, (i % 16) as u16, i as u32, AccessKind::Read)).unwrap();
            peak_live = peak_live.max(q.live_rows());
            if i >= 7 {
                // Keep 8 requests in flight.
                assert!(q.remove(RequestId(i - 6)).is_some());
            }
        }
        assert!(q.live_rows() <= q.len(), "live rows bounded by occupancy");
        assert!(
            q.row_slab_len() <= q.capacity(),
            "slab bounded by capacity ({} > {})",
            q.row_slab_len(),
            q.capacity()
        );
        assert!(peak_live <= q.capacity());
        // Draining everything frees every slot.
        let ids: Vec<u64> = q.iter().map(|r| r.id.0).collect();
        for id in ids {
            q.remove(RequestId(id)).unwrap();
        }
        assert_eq!(q.live_rows(), 0);
    }

    #[test]
    fn recycled_row_slot_starts_clean() {
        let mut q = q();
        q.push(req(1, 0, 5, AccessKind::Write)).unwrap();
        q.remove(RequestId(1)).unwrap();
        assert_eq!(q.live_rows(), 0);
        // Reuse the slot for a different row of a different bank; the old
        // row's counters and FIFO must be gone.
        q.push(req(2, 1, 9, AccessKind::Read)).unwrap();
        assert_eq!(q.live_rows(), 1);
        assert_eq!(q.visible_rbl(0, 5), 0);
        assert!(q.oldest_for_row(0, 5).is_none());
        assert_eq!(q.visible_rbl(1, 9), 1);
        assert!(q.row_is_all_global_reads(1, 9));
        assert_eq!(q.oldest_for_row(1, 9).unwrap().1.id, RequestId(2));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = PendingQueue::new(0, 16, 4);
    }
}
