//! The **lazy memory scheduler** — the paper's primary contribution.
//!
//! A GPU memory controller built on FR-FCFS with a 128-entry re-order pending
//! queue and two cooperating relaxations of the baseline's "aggressive and
//! strict" scheduling:
//!
//! * **Delayed memory scheduling** ([`DmsUnit`]) trades request latency for
//!   row-buffer locality: new rows open only once the oldest pending request
//!   has aged past a (static or dynamically profiled) threshold, so more
//!   same-row requests accumulate and are co-scheduled back-to-back.
//! * **Approximate memory scheduling** ([`AmsUnit`]) trades output quality for
//!   row energy: pending rows with low *visible RBL* that contain only
//!   annotated global reads are dropped from the queue and their values are
//!   approximated by a value predictor on the way back to the cores.
//!
//! [`MemoryController`] integrates both units with the FR-FCFS scheduler and
//! the [`lazydram_dram::Channel`] timing model.
//!
//! # Example
//!
//! ```
//! use lazydram_common::{AccessKind, AddressMap, GpuConfig, MemSpace, Request, RequestId, SchedConfig};
//! use lazydram_core::MemoryController;
//!
//! let cfg = GpuConfig::default();
//! let map = AddressMap::new(&cfg);
//! let mut mc = MemoryController::new(&cfg, &SchedConfig::baseline());
//! let addr = 0x4000;
//! mc.enqueue(Request {
//!     id: RequestId(1),
//!     addr: map.line_of(addr),
//!     loc: map.decompose(addr),
//!     kind: AccessKind::Read,
//!     space: MemSpace::Global,
//!     approximable: false,
//!     arrival: 0,
//! })?;
//! let mut responses = Vec::new();
//! while !mc.is_idle() {
//!     mc.tick(&mut responses);
//! }
//! assert_eq!(responses.len(), 1);
//! # Ok::<(), lazydram_core::QueueFull>(())
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod ams;
mod controller;
mod dms;
mod queue;

pub use ams::{AmsDecline, AmsUnit};
pub use controller::{MemoryController, Response};
pub use dms::DmsUnit;
pub use queue::{PendingQueue, QueueFull};
