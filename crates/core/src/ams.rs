//! The Approximate-Memory-Scheduling (AMS) unit — Section IV-C of the paper.
//!
//! AMS inspects the oldest pending request when it is about to cause a row
//! activation. If the request is an annotated (approximable) global read, its
//! row's pending set contains only global reads, the row's *visible RBL* is
//! at most `Th_RBL`, and the prediction coverage is still under the
//! user-defined cap, then the whole row's pending requests are **dropped**
//! (one per memory cycle) instead of being issued, and the value-prediction
//! unit supplies their values on the way back to the cores.
//!
//! `Static-AMS` keeps `Th_RBL` fixed at 8. `Dyn-AMS` walks `Th_RBL` within
//! `[1, 8]` once per 4096-cycle window: down one step while the achieved
//! coverage meets the target (to focus the limited coverage on the
//! lowest-RBL rows), up one step when coverage falls short.

use crate::queue::PendingQueue;
use lazydram_common::config::AmsMode;
use lazydram_common::snap::{Loader, Saver, SnapResult};
use lazydram_common::Request;

/// Why an AMS drop check declined (diagnostic histogram indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmsDecline {
    /// Unit disabled or halted for Dyn-DMS baseline sampling.
    OffOrHalted = 0,
    /// Still warming up the L2.
    Warmup = 1,
    /// Candidate is not an annotated global read.
    NotApproximable = 2,
    /// The DMS delay criterion is not yet met.
    Delay = 3,
    /// Coverage cap reached.
    Coverage = 4,
    /// Row has non-read or non-global pending requests.
    RowHasWrites = 5,
    /// Visible RBL above the threshold.
    AboveThreshold = 6,
}

/// The AMS unit of one memory controller.
#[derive(Debug, Clone, PartialEq)]
pub struct AmsUnit {
    mode: AmsMode,
    /// Threshold currently in force.
    th_rbl: u32,
    /// Coverage cap (fraction of global reads; paper: 0.10).
    coverage_cap: f64,
    /// AMS stays off until this many requests were received (L2 warm-up).
    warmup_requests: u64,
    /// Memory cycle at which the current window started.
    window_start: u64,
    /// Diagnostic histogram of decline reasons (indexed by [`AmsDecline`]).
    pub declines: [u64; 7],
    /// Diagnostic count of accepted drops (decision points, not requests).
    pub accepts: u64,
}

impl AmsUnit {
    /// Creates the unit for a scheduling mode.
    pub fn new(mode: AmsMode, coverage_cap: f64, warmup_requests: u64) -> Self {
        let th_rbl = match mode {
            AmsMode::Off => 0,
            AmsMode::Static(th) => th,
            AmsMode::Dynamic(d) => d.max_th,
        };
        Self {
            mode,
            th_rbl,
            coverage_cap,
            warmup_requests,
            window_start: 0,
            declines: [0; 7],
            accepts: 0,
        }
    }

    /// Whether AMS is enabled at all.
    pub fn is_enabled(&self) -> bool {
        self.mode.is_enabled()
    }

    /// The RBL threshold currently in force.
    pub fn th_rbl(&self) -> u32 {
        self.th_rbl
    }

    /// The coverage cap.
    pub fn coverage_cap(&self) -> f64 {
        self.coverage_cap
    }

    /// Decides whether the oldest pending request `req` (which is about to
    /// open a new row) should instead start a drop sequence.
    ///
    /// `halted` is raised by the controller while `Dyn-DMS` samples its
    /// baseline BWUTIL (Section IV-B).
    #[allow(clippy::too_many_arguments)]
    pub fn should_drop(
        &mut self,
        req: &Request,
        queue: &PendingQueue,
        bank: usize,
        dropped: u64,
        global_reads_received: u64,
        oldest_age_ok: bool,
        halted: bool,
    ) -> bool {
        if !self.is_enabled() || halted {
            self.declines[AmsDecline::OffOrHalted as usize] += 1;
            return false;
        }
        // Warm-up: let the L2 fill before the VP starts predicting.
        if global_reads_received < self.warmup_requests {
            self.declines[AmsDecline::Warmup as usize] += 1;
            return false;
        }
        // Criterion 1: the request itself must be an annotated global read.
        if !req.is_global_read() || !req.approximable {
            self.declines[AmsDecline::NotApproximable as usize] += 1;
            return false;
        }
        // Criterion 2: the delay criterion determined by DMS.
        if !oldest_age_ok {
            self.declines[AmsDecline::Delay as usize] += 1;
            return false;
        }
        // Criterion 3: coverage below the user-defined cap.
        if global_reads_received == 0
            || (dropped as f64 / global_reads_received as f64) >= self.coverage_cap
        {
            self.declines[AmsDecline::Coverage as usize] += 1;
            return false;
        }
        // Criterion 4: visible RBL ≤ Th_RBL and the whole pending row set is
        // global reads (no write or non-global access to the same row).
        let row = req.loc.row;
        if !queue.row_is_all_global_reads(bank, row) {
            self.declines[AmsDecline::RowHasWrites as usize] += 1;
            return false;
        }
        if queue.visible_rbl(bank, row) > self.th_rbl {
            self.declines[AmsDecline::AboveThreshold as usize] += 1;
            return false;
        }
        self.accepts += 1;
        true
    }

    /// Serializes the unit's dynamic state (mode, cap and warm-up come from
    /// the configuration at restore time).
    pub fn save_state(&self, s: &mut Saver) {
        s.u32("th_rbl", self.th_rbl);
        s.u64("window_start", self.window_start);
        s.u64s("declines", &self.declines);
        s.u64("accepts", self.accepts);
    }

    /// Restores the unit's dynamic state from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed.
    pub fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.th_rbl = l.u32("th_rbl")?;
        self.window_start = l.u64("window_start")?;
        l.u64_array("declines", &mut self.declines)?;
        self.accepts = l.u64("accepts")?;
        Ok(())
    }

    /// The absolute memory cycle of the next `Dyn-AMS` window boundary
    /// (where [`AmsUnit::tick`] stops being a no-op), or `None` for the
    /// static/off modes whose `tick` never does anything. The event-driven
    /// loop must not fast-forward past this cycle.
    pub fn next_window_boundary(&self) -> Option<u64> {
        match self.mode {
            AmsMode::Dynamic(cfg) => Some(self.window_start + u64::from(cfg.window)),
            _ => None,
        }
    }

    /// Advances the `Dyn-AMS` window controller; call once per memory cycle
    /// with the running totals.
    pub fn tick(&mut self, now: u64, dropped: u64, global_reads_received: u64) {
        let AmsMode::Dynamic(cfg) = self.mode else {
            return;
        };
        if now.saturating_sub(self.window_start) < u64::from(cfg.window) {
            return;
        }
        self.window_start = now;
        if global_reads_received < self.warmup_requests {
            return;
        }
        let coverage = if global_reads_received == 0 {
            0.0
        } else {
            dropped as f64 / global_reads_received as f64
        };
        if coverage + 1e-12 >= self.coverage_cap {
            // Coverage target met: focus on lower-RBL rows.
            self.th_rbl = self.th_rbl.saturating_sub(1).max(cfg.min_th);
        } else {
            // Short on coverage: widen the candidate set.
            self.th_rbl = (self.th_rbl + 1).min(cfg.max_th);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydram_common::config::DynAmsConfig;
    use lazydram_common::{AccessKind, Location, MemSpace, RequestId};

    fn req(id: u64, row: u32, kind: AccessKind, approximable: bool) -> Request {
        Request {
            id: RequestId(id),
            addr: id * 128,
            loc: Location {
                channel: 0,
                bank_group: 0,
                bank_in_group: 0,
                row,
                col: 0,
            },
            kind,
            space: MemSpace::Global,
            approximable,
            arrival: 0,
        }
    }

    fn unit() -> AmsUnit {
        AmsUnit::new(AmsMode::Static(8), 0.10, 0)
    }

    /// `should_drop` takes `&mut self` (diagnostics); tests use a throwaway.
    fn unit_mut() -> AmsUnit {
        unit()
    }

    fn queue_with(reqs: &[Request]) -> PendingQueue {
        let mut q = PendingQueue::new(128, 16, 4);
        for r in reqs {
            q.push(*r).unwrap();
        }
        q
    }

    #[test]
    fn drops_low_rbl_read_only_row() {
        let r = req(1, 5, AccessKind::Read, true);
        let q = queue_with(&[r, req(2, 5, AccessKind::Read, true)]);
        assert!(unit_mut().should_drop(&r, &q, 0, 0, 1000, true, false));
    }

    #[test]
    fn refuses_when_row_has_a_write() {
        let r = req(1, 5, AccessKind::Read, true);
        let q = queue_with(&[r, req(2, 5, AccessKind::Write, false)]);
        assert!(!unit_mut().should_drop(&r, &q, 0, 0, 1000, true, false));
    }

    #[test]
    fn refuses_unannotated_request() {
        let r = req(1, 5, AccessKind::Read, false);
        let q = queue_with(&[r]);
        assert!(!unit_mut().should_drop(&r, &q, 0, 0, 1000, true, false));
    }

    #[test]
    fn refuses_above_threshold() {
        let r = req(1, 5, AccessKind::Read, true);
        let reqs: Vec<Request> = (1..=9).map(|i| req(i, 5, AccessKind::Read, true)).collect();
        let q = queue_with(&reqs);
        // Visible RBL is 9 > Th_RBL = 8.
        assert!(!unit_mut().should_drop(&r, &q, 0, 0, 1000, true, false));
    }

    #[test]
    fn refuses_at_coverage_cap() {
        let r = req(1, 5, AccessKind::Read, true);
        let q = queue_with(&[r]);
        assert!(!unit_mut().should_drop(&r, &q, 0, 100, 1000, true, false));
        assert!(unit_mut().should_drop(&r, &q, 0, 99, 1000, true, false));
    }

    #[test]
    fn refuses_before_delay_criterion() {
        let r = req(1, 5, AccessKind::Read, true);
        let q = queue_with(&[r]);
        assert!(!unit_mut().should_drop(&r, &q, 0, 0, 1000, false, false));
    }

    #[test]
    fn refuses_while_halted_or_warming() {
        let r = req(1, 5, AccessKind::Read, true);
        let q = queue_with(&[r]);
        assert!(!unit_mut().should_drop(&r, &q, 0, 0, 1000, true, true));
        let mut cold = AmsUnit::new(AmsMode::Static(8), 0.10, 5_000);
        assert!(!cold.should_drop(&r, &q, 0, 0, 1000, true, false));
    }

    #[test]
    fn off_mode_never_drops() {
        let r = req(1, 5, AccessKind::Read, true);
        let q = queue_with(&[r]);
        let mut off = AmsUnit::new(AmsMode::Off, 0.10, 0);
        assert!(!off.should_drop(&r, &q, 0, 0, 1000, true, false));
    }

    #[test]
    fn dynamic_walks_threshold_down_then_up() {
        let mut a = AmsUnit::new(AmsMode::Dynamic(DynAmsConfig::default()), 0.10, 0);
        assert_eq!(a.th_rbl(), 8);
        // Coverage met → step down each window.
        a.tick(4096, 100, 1000);
        assert_eq!(a.th_rbl(), 7);
        a.tick(8192, 200, 2000);
        assert_eq!(a.th_rbl(), 6);
        // Coverage short → step back up.
        a.tick(12288, 200, 4000);
        assert_eq!(a.th_rbl(), 7);
    }

    #[test]
    fn dynamic_threshold_stays_in_bounds() {
        let mut a = AmsUnit::new(AmsMode::Dynamic(DynAmsConfig::default()), 0.10, 0);
        for w in 1..=20u64 {
            a.tick(w * 4096, 1000, 1000); // always above target
        }
        assert_eq!(a.th_rbl(), 1);
        for w in 21..=40u64 {
            a.tick(w * 4096, 0, 1000); // always below target
        }
        assert_eq!(a.th_rbl(), 8);
    }

    #[test]
    fn static_threshold_never_moves() {
        let mut a = unit();
        a.tick(4096, 1000, 1000);
        assert_eq!(a.th_rbl(), 8);
    }
}
