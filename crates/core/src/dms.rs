//! The Delayed-Memory-Scheduling (DMS) unit — Section IV-B of the paper.
//!
//! DMS gates the opening of *new rows*: a row-miss request may trigger
//! PRE/ACT only once the **oldest** request in the pending queue has aged at
//! least `X` memory cycles. Row hits are never delayed.
//!
//! `Static-DMS` keeps `X` fixed. `Dyn-DMS` is a profiling controller: at the
//! start of every macro-period it samples the baseline bandwidth utilization
//! (BWUTIL) with the delay forced to zero (and AMS temporarily halted), then
//! raises the delay in steps per window while BWUTIL stays within 95 % of the
//! baseline, backing off one step when it drops.

use lazydram_common::config::{DmsMode, DynDmsConfig};
use lazydram_common::snap::{Loader, Saver, SnapError, SnapResult};

/// Phase of the `Dyn-DMS` profiling state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Measuring baseline BWUTIL with delay = 0 (AMS halted).
    Sampling,
    /// Raising the delay step by step.
    Searching,
    /// Found the knee; holding the recorded delay until restart.
    Holding,
}

/// The DMS unit of one memory controller.
#[derive(Debug, Clone, PartialEq)]
pub struct DmsUnit {
    mode: DmsMode,
    /// Delay currently enforced, in memory cycles.
    current: u32,
    /// Dynamic state (meaningful only for [`DmsMode::Dynamic`]).
    phase: Phase,
    /// Baseline BWUTIL sampled in the current macro-period.
    baseline_bw: f64,
    /// Last delay that kept BWUTIL above threshold ("recorded X").
    recorded: u32,
    /// Windows elapsed in the current macro-period.
    windows_in_period: u32,
    /// Memory cycle at which the current window started.
    window_start: u64,
    /// `bus_busy_cycles` snapshot at window start.
    busy_at_window_start: u64,
}

impl DmsUnit {
    /// Creates the unit for a scheduling mode.
    pub fn new(mode: DmsMode) -> Self {
        let (current, recorded, phase) = match mode {
            DmsMode::Off => (0, 0, Phase::Holding),
            DmsMode::Static(x) => (x, x, Phase::Holding),
            DmsMode::Dynamic(d) => (0, d.start, Phase::Sampling),
        };
        Self {
            mode,
            current,
            phase,
            baseline_bw: 0.0,
            recorded,
            windows_in_period: 0,
            window_start: 0,
            busy_at_window_start: 0,
        }
    }

    /// The delay `X` currently in force, in memory cycles.
    pub fn current_delay(&self) -> u32 {
        self.current
    }

    /// `true` while `Dyn-DMS` is sampling its baseline; the AMS unit must be
    /// halted during this window so the baseline is unpolluted (Section IV-B).
    pub fn sampling_baseline(&self) -> bool {
        matches!(self.mode, DmsMode::Dynamic(_)) && self.phase == Phase::Sampling
    }

    /// May a new row be opened at `now`, given the age of the oldest pending
    /// request? Row hits must *not* consult this.
    pub fn row_miss_allowed(&self, oldest_age: u64) -> bool {
        oldest_age >= u64::from(self.current)
    }

    /// Advances profiling; call once per memory cycle with the running
    /// `bus_busy_cycles` counter of the channel.
    pub fn tick(&mut self, now: u64, bus_busy_cycles: u64) {
        let DmsMode::Dynamic(cfg) = self.mode else {
            return;
        };
        if now.saturating_sub(self.window_start) < u64::from(cfg.window) {
            return;
        }
        // Window boundary.
        let window_len = now - self.window_start;
        let busy = bus_busy_cycles.saturating_sub(self.busy_at_window_start);
        let bw = busy as f64 / window_len.max(1) as f64;
        self.window_start = now;
        self.busy_at_window_start = bus_busy_cycles;
        self.windows_in_period += 1;

        if self.windows_in_period >= cfg.restart_windows {
            // Restart: re-sample the baseline, then search again starting
            // from the recorded delay (quick settling, Section IV-B).
            self.windows_in_period = 0;
            self.phase = Phase::Sampling;
            self.current = 0;
            return;
        }

        match self.phase {
            Phase::Sampling => {
                self.baseline_bw = bw;
                self.phase = Phase::Searching;
                self.current = self.recorded.clamp(cfg.min, cfg.max);
            }
            Phase::Searching => {
                if bw + 1e-12 >= cfg.bw_threshold * self.baseline_bw {
                    // This delay is fine; record it and push further.
                    self.recorded = self.current;
                    if self.current >= cfg.max {
                        self.phase = Phase::Holding;
                    } else {
                        self.current = (self.current + cfg.step).min(cfg.max);
                    }
                } else {
                    // Dropped below threshold: back off to the last good value
                    // and hold until the next restart.
                    self.current = self.current.saturating_sub(cfg.step).max(cfg.min);
                    self.recorded = self.current;
                    self.phase = Phase::Holding;
                }
            }
            Phase::Holding => {}
        }
    }

    /// The absolute memory cycle of the next `Dyn-DMS` window boundary
    /// (where [`DmsUnit::tick`] stops being a no-op), or `None` for the
    /// static/off modes whose `tick` never does anything. The event-driven
    /// loop must not fast-forward past this cycle.
    pub fn next_window_boundary(&self) -> Option<u64> {
        match self.mode {
            DmsMode::Dynamic(cfg) => Some(self.window_start + u64::from(cfg.window)),
            _ => None,
        }
    }

    /// Serializes the unit's dynamic state (the mode comes from the
    /// configuration at restore time).
    pub fn save_state(&self, s: &mut Saver) {
        s.u32("current", self.current);
        s.u8(
            "phase",
            match self.phase {
                Phase::Sampling => 0,
                Phase::Searching => 1,
                Phase::Holding => 2,
            },
        );
        s.f64("baseline_bw", self.baseline_bw);
        s.u32("recorded", self.recorded);
        s.u32("windows_in_period", self.windows_in_period);
        s.u64("window_start", self.window_start);
        s.u64("busy_at_window_start", self.busy_at_window_start);
    }

    /// Restores the unit's dynamic state from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed.
    pub fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.current = l.u32("current")?;
        self.phase = match l.u8("phase")? {
            0 => Phase::Sampling,
            1 => Phase::Searching,
            2 => Phase::Holding,
            b => {
                return Err(SnapError::Malformed {
                    label: "phase".into(),
                    why: format!("DMS phase discriminant {b}"),
                })
            }
        };
        self.baseline_bw = l.f64("baseline_bw")?;
        self.recorded = l.u32("recorded")?;
        self.windows_in_period = l.u32("windows_in_period")?;
        self.window_start = l.u64("window_start")?;
        self.busy_at_window_start = l.u64("busy_at_window_start")?;
        Ok(())
    }

    /// Dynamic configuration, if the unit is dynamic.
    pub fn dynamic_config(&self) -> Option<DynDmsConfig> {
        match self.mode {
            DmsMode::Dynamic(d) => Some(d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_never_delays() {
        let d = DmsUnit::new(DmsMode::Off);
        assert_eq!(d.current_delay(), 0);
        assert!(d.row_miss_allowed(0));
        assert!(!d.sampling_baseline());
    }

    #[test]
    fn static_gate_respects_age() {
        let d = DmsUnit::new(DmsMode::Static(128));
        assert!(!d.row_miss_allowed(0));
        assert!(!d.row_miss_allowed(127));
        assert!(d.row_miss_allowed(128));
    }

    #[test]
    fn dynamic_starts_sampling_with_zero_delay() {
        let d = DmsUnit::new(DmsMode::paper_dynamic());
        assert!(d.sampling_baseline());
        assert_eq!(d.current_delay(), 0);
    }

    /// Drives a `DmsUnit` through whole windows with a synthetic BWUTIL
    /// response: utilization stays high until the delay exceeds `knee`,
    /// then halves. Keeps absolute time across calls.
    struct WindowDriver {
        now: u64,
        busy: u64,
    }

    impl WindowDriver {
        fn new() -> Self {
            Self { now: 0, busy: 0 }
        }

        fn run(&mut self, d: &mut DmsUnit, windows: u32, knee: u32) -> Vec<u32> {
            let cfg = d.dynamic_config().unwrap();
            let mut delays = Vec::new();
            for _ in 0..windows {
                let bw = if d.current_delay() <= knee { 0.8 } else { 0.4 };
                self.now += u64::from(cfg.window);
                self.busy += (bw * f64::from(cfg.window)) as u64;
                d.tick(self.now, self.busy);
                delays.push(d.current_delay());
            }
            delays
        }
    }

    #[test]
    fn dynamic_search_finds_knee_and_holds() {
        let mut d = DmsUnit::new(DmsMode::paper_dynamic());
        let delays = WindowDriver::new().run(&mut d, 10, 512);
        // Window 1 ends sampling → delay 128; then 256, 384, 512;
        // at 640 BW drops → back to 512 and hold.
        assert_eq!(delays[0], 128);
        assert!(delays.contains(&512));
        assert!(delays.iter().all(|&x| x <= 640));
        assert_eq!(*delays.last().unwrap(), 512);
        assert!(!d.sampling_baseline());
    }

    #[test]
    fn dynamic_caps_at_max() {
        let mut d = DmsUnit::new(DmsMode::paper_dynamic());
        let delays = WindowDriver::new().run(&mut d, 31, u32::MAX);
        assert_eq!(*delays.last().unwrap(), 2048);
    }

    #[test]
    fn dynamic_restarts_after_period() {
        let mut d = DmsUnit::new(DmsMode::paper_dynamic());
        let mut drv = WindowDriver::new();
        let delays = drv.run(&mut d, 32, 512);
        // After 32 windows the unit re-enters sampling with delay 0.
        assert_eq!(*delays.last().unwrap(), 0);
        assert!(d.sampling_baseline());
        // The next search starts from the recorded 512, not from scratch.
        let delays2 = drv.run(&mut d, 2, 512);
        assert_eq!(delays2[0], 512);
    }

    #[test]
    fn dynamic_backoff_floor_is_min() {
        let mut d = DmsUnit::new(DmsMode::Dynamic(DynDmsConfig {
            start: 128,
            ..DynDmsConfig::default()
        }));
        // BW immediately bad at any delay > 0 → first search window fails,
        // delay falls back to 0 (min) and holds.
        let delays = WindowDriver::new().run(&mut d, 3, 0);
        assert_eq!(*delays.last().unwrap(), 0);
    }
}
