//! Conservation property: every request enqueued into the controller comes
//! out exactly once — served by DRAM (reads produce responses, writes are
//! counted) or dropped — under random traffic and every scheme.

use lazydram_common::{AccessKind, AddressMap, GpuConfig, MemSpace, Request, RequestId, SchedConfig};
use lazydram_core::MemoryController;
use proptest::prelude::*;
use std::collections::HashSet;

fn run_conservation(seed_reqs: Vec<(u32, u8, bool)>, sched: SchedConfig) -> Result<(), TestCaseError> {
    let cfg = GpuConfig::default();
    let map = AddressMap::new(&cfg);
    let mut mc = MemoryController::new(&cfg, &sched);
    let mut sent: HashSet<u64> = HashSet::new();
    let mut read_ids: HashSet<u64> = HashSet::new();
    let mut responses: Vec<u64> = Vec::new();
    let mut next_id = 0u64;
    let mut pending: Vec<(u32, u8, bool)> = seed_reqs;
    pending.reverse();
    let mut out = Vec::new();

    for _ in 0..2_000_000u64 {
        // Feed one request per cycle while the queue has room.
        if let Some(&(chunk, kind, approx)) = pending.last() {
            if mc.can_accept() {
                pending.pop();
                next_id += 1;
                // Spread addresses over rows/banks of channel 0.
                let addr = map.line_of(u64::from(chunk) * 128 * 7 % (1 << 26));
                let is_write = kind % 3 == 0;
                let req = Request {
                    id: RequestId(next_id),
                    addr,
                    loc: map.decompose(addr),
                    kind: if is_write { AccessKind::Write } else { AccessKind::Read },
                    space: MemSpace::Global,
                    approximable: approx,
                    arrival: 0,
                };
                sent.insert(next_id);
                if !is_write {
                    read_ids.insert(next_id);
                }
                mc.enqueue(req).unwrap();
            }
        }
        out.clear();
        mc.tick(&mut out);
        for r in &out {
            responses.push(r.id.0);
        }
        if pending.is_empty() && mc.is_idle() {
            break;
        }
    }
    prop_assert!(pending.is_empty() && mc.is_idle(), "controller did not drain");
    let _ = mc.drain();

    // Every read answered exactly once; no duplicates; no unknown ids.
    let mut seen = HashSet::new();
    for id in &responses {
        prop_assert!(read_ids.contains(id), "response for non-read {id}");
        prop_assert!(seen.insert(*id), "duplicate response for {id}");
    }
    prop_assert_eq!(seen.len(), read_ids.len(), "missing responses");

    // Served + dropped == received.
    let st = mc.stats();
    prop_assert_eq!(st.reads + st.writes + st.dropped, st.requests_received);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn baseline_conserves_requests(reqs in prop::collection::vec((0u32..5000, any::<u8>(), any::<bool>()), 1..300)) {
        run_conservation(reqs, SchedConfig::baseline())?;
    }

    #[test]
    fn static_combo_conserves_requests(reqs in prop::collection::vec((0u32..5000, any::<u8>(), any::<bool>()), 1..300)) {
        let sched = SchedConfig { ams_warmup_requests: 10, ..SchedConfig::static_combo() };
        run_conservation(reqs, sched)?;
    }

    #[test]
    fn dyn_combo_conserves_requests(reqs in prop::collection::vec((0u32..5000, any::<u8>(), any::<bool>()), 1..300)) {
        let sched = SchedConfig { ams_warmup_requests: 10, ..SchedConfig::dyn_combo() };
        run_conservation(reqs, sched)?;
    }
}
