//! Model-based property test: the indexed pending queue must behave exactly
//! like a naive reference implementation under arbitrary push/remove
//! interleavings.

use lazydram_common::{AccessKind, Location, MemSpace, Request, RequestId};
use lazydram_core::PendingQueue;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Push { bank: u8, row: u8, write: bool },
    RemoveOldest,
    RemoveOldestForBank { bank: u8 },
    RemoveOldestForRow { bank: u8, row: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16, 0u8..6, any::<bool>()).prop_map(|(bank, row, write)| Op::Push { bank, row, write }),
        Just(Op::RemoveOldest),
        (0u8..16).prop_map(|bank| Op::RemoveOldestForBank { bank }),
        (0u8..16, 0u8..6).prop_map(|(bank, row)| Op::RemoveOldestForRow { bank, row }),
    ]
}

fn mk(id: u64, bank: u8, row: u8, write: bool) -> Request {
    Request {
        id: RequestId(id),
        addr: id * 128,
        loc: Location {
            channel: 0,
            bank_group: (bank % 4) as u16,
            bank_in_group: (bank / 4) as u16,
            row: u32::from(row),
            col: 0,
        },
        kind: if write { AccessKind::Write } else { AccessKind::Read },
        space: MemSpace::Global,
        approximable: true,
        arrival: id,
    }
}

/// Naive reference: FCFS Vec.
#[derive(Default)]
struct Model {
    items: Vec<Request>,
}

impl Model {
    fn flat(r: &Request) -> usize {
        r.loc.flat_bank(4)
    }
    fn oldest(&self) -> Option<&Request> {
        self.items.first()
    }
    fn oldest_for_bank(&self, bank: usize) -> Option<&Request> {
        self.items.iter().find(|r| Self::flat(r) == bank)
    }
    fn oldest_for_row(&self, bank: usize, row: u32) -> Option<&Request> {
        self.items
            .iter()
            .find(|r| Self::flat(r) == bank && r.loc.row == row)
    }
    fn visible_rbl(&self, bank: usize, row: u32) -> u32 {
        self.items
            .iter()
            .filter(|r| Self::flat(r) == bank && r.loc.row == row)
            .count() as u32
    }
    fn all_reads(&self, bank: usize, row: u32) -> bool {
        self.items
            .iter()
            .filter(|r| Self::flat(r) == bank && r.loc.row == row)
            .all(|r| r.is_global_read())
    }
    fn remove(&mut self, id: RequestId) -> Option<Request> {
        let pos = self.items.iter().position(|r| r.id == id)?;
        Some(self.items.remove(pos))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn indexed_queue_matches_reference(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut q = PendingQueue::new(256, 16, 4);
        let mut m = Model::default();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                Op::Push { bank, row, write } => {
                    next_id += 1;
                    let r = mk(next_id, bank, row, write);
                    if !q.is_full() {
                        q.push(r).unwrap();
                        m.items.push(r);
                    }
                }
                Op::RemoveOldest => {
                    let expect = m.oldest().map(|r| r.id);
                    let got = q.oldest().map(|r| r.id);
                    prop_assert_eq!(got, expect, "oldest mismatch");
                    if let Some(id) = expect {
                        prop_assert!(q.remove(id).is_some());
                        m.remove(id);
                    }
                }
                Op::RemoveOldestForBank { bank } => {
                    let bank = bank as usize;
                    let expect = m.oldest_for_bank(bank).map(|r| r.id);
                    let got = q.oldest_for_bank(bank).map(|(_, r)| r.id);
                    prop_assert_eq!(got, expect, "oldest_for_bank mismatch");
                    if let Some(id) = expect {
                        q.remove(id);
                        m.remove(id);
                    }
                }
                Op::RemoveOldestForRow { bank, row } => {
                    let (bank, row) = (bank as usize, u32::from(row));
                    let expect = m.oldest_for_row(bank, row).map(|r| r.id);
                    let got = q.oldest_for_row(bank, row).map(|(_, r)| r.id);
                    prop_assert_eq!(got, expect, "oldest_for_row mismatch");
                    if let Some(id) = expect {
                        q.remove(id);
                        m.remove(id);
                    }
                }
            }
            // Cross-check aggregate views after every step.
            prop_assert_eq!(q.len(), m.items.len());
            for bank in 0..16usize {
                for row in 0..6u32 {
                    prop_assert_eq!(q.visible_rbl(bank, row), m.visible_rbl(bank, row));
                    prop_assert_eq!(q.row_is_all_global_reads(bank, row), m.all_reads(bank, row));
                }
            }
        }
        // Final FCFS iteration order must match.
        let got: Vec<u64> = q.iter().map(|r| r.id.0).collect();
        let expect: Vec<u64> = m.items.iter().map(|r| r.id.0).collect();
        prop_assert_eq!(got, expect);
    }
}
