//! GPUWattch-style DRAM energy model with GDDR5 / HBM1 / HBM2 profiles.
//!
//! The paper's headline metric is **row energy** — the energy of the
//! activate / restore / precharge work a bank performs per row cycle — which
//! is directly proportional to the activation count. Access (column/burst)
//! energy and background power complete the per-technology picture, and the
//! HBM profiles reproduce the paper's Section V analysis: row energy is
//! ≈ 50 % of HBM1 memory energy and ≈ 25 % of HBM2 memory energy, so a 44 %
//! row-energy reduction becomes ≈ 22 % / ≈ 11 % memory-energy reduction.
//!
//! # Example
//!
//! ```
//! use lazydram_energy::{EnergyModel, MemoryTech};
//! use lazydram_common::DramStats;
//!
//! let model = EnergyModel::new(MemoryTech::Gddr5);
//! let mut base = DramStats::new();
//! base.activations = 1000;
//! base.reads = 4000;
//! base.mem_cycles = 100_000;
//! let e = model.breakdown(&base);
//! assert!(e.row_energy_pj > 0.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use lazydram_common::{BackendKind, DramPreset, DramStats};

/// Memory technology profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryTech {
    /// The paper's baseline: 6-channel GDDR5 (Hynix timings).
    Gddr5,
    /// First-generation High-Bandwidth Memory: row energy ≈ 50 % of memory
    /// system energy (Chatterjee et al., HPCA'17).
    Hbm1,
    /// Second-generation HBM: row energy ≈ 25 % of total (O'Connor et al.,
    /// MICRO'17).
    Hbm2,
    /// Commodity DDR4: large (8 KB) pages make the row round trip the most
    /// expensive of the matrix, with cheaper terminated I/O than GDDR5.
    Ddr4,
    /// Low-power DDR4: everything scaled down — small row energy, very low
    /// background power (deep power-down states).
    Lpddr4,
}

impl MemoryTech {
    /// The energy profile matching a machine preset of the backend matrix.
    pub fn for_preset(preset: DramPreset) -> Self {
        match preset {
            DramPreset::Gddr5 | DramPreset::Naive | DramPreset::Flex => MemoryTech::Gddr5,
            DramPreset::Hbm1 => MemoryTech::Hbm1,
            DramPreset::Hbm2 => MemoryTech::Hbm2,
            DramPreset::Ddr4 => MemoryTech::Ddr4,
            DramPreset::Lpddr4 => MemoryTech::Lpddr4,
        }
    }

    /// The energy profile matching a configured backend kind. The naive and
    /// flex backends model GDDR5-organized machines, so they account energy
    /// with the GDDR5 profile.
    pub fn for_backend(kind: BackendKind) -> Self {
        match kind {
            BackendKind::Gddr5 | BackendKind::Naive | BackendKind::Flex => MemoryTech::Gddr5,
            BackendKind::Ddr4 => MemoryTech::Ddr4,
            BackendKind::Lpddr4 => MemoryTech::Lpddr4,
        }
    }
}

/// Per-event energies (picojoules) and background power for one technology.
///
/// Absolute values are representative published figures; all of the paper's
/// results are *normalized*, so only the ratios matter for reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy of one ACT + restore + PRE round trip, per activation (pJ).
    pub row_pj_per_act: f64,
    /// Energy of one read burst (pJ).
    pub read_pj: f64,
    /// Energy of one write burst (pJ).
    pub write_pj: f64,
    /// Background energy per memory cycle per channel (pJ).
    pub background_pj_per_cycle: f64,
}

impl EnergyParams {
    /// Parameters for a technology.
    pub fn for_tech(tech: MemoryTech) -> Self {
        match tech {
            // GDDR5: ~2 nJ per row cycle of a 2 KB page, ~500 pJ per 32 B
            // burst access pair, modest background (interface-dominated).
            MemoryTech::Gddr5 => Self {
                row_pj_per_act: 2_000.0,
                read_pj: 520.0,
                write_pj: 540.0,
                background_pj_per_cycle: 60.0,
            },
            // HBM1: cheaper I/O (TSV), row energy dominates (~50 %).
            MemoryTech::Hbm1 => Self {
                row_pj_per_act: 1_600.0,
                read_pj: 180.0,
                write_pj: 190.0,
                background_pj_per_cycle: 25.0,
            },
            // HBM2: larger prefetch amortizes row work (~25 %).
            MemoryTech::Hbm2 => Self {
                row_pj_per_act: 900.0,
                read_pj: 200.0,
                write_pj: 210.0,
                background_pj_per_cycle: 40.0,
            },
            // DDR4: an 8 KB page costs the most row energy per cycle; I/O
            // per burst is cheaper than GDDR5's high-speed interface.
            MemoryTech::Ddr4 => Self {
                row_pj_per_act: 2_600.0,
                read_pj: 350.0,
                write_pj: 370.0,
                background_pj_per_cycle: 30.0,
            },
            // LPDDR4: low-voltage arrays and aggressive power-down.
            MemoryTech::Lpddr4 => Self {
                row_pj_per_act: 1_200.0,
                read_pj: 140.0,
                write_pj: 150.0,
                background_pj_per_cycle: 8.0,
            },
        }
    }
}

/// An energy breakdown for one run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Activate/restore/precharge energy (the paper's *row energy*), pJ.
    pub row_energy_pj: f64,
    /// Read+write burst energy, pJ.
    pub access_energy_pj: f64,
    /// Background energy, pJ.
    pub background_pj: f64,
}

impl EnergyBreakdown {
    /// Total memory energy.
    pub fn total_pj(&self) -> f64 {
        self.row_energy_pj + self.access_energy_pj + self.background_pj
    }

    /// Fraction of total energy spent on row operations.
    pub fn row_fraction(&self) -> f64 {
        let t = self.total_pj();
        if t == 0.0 {
            0.0
        } else {
            self.row_energy_pj / t
        }
    }
}

/// The DRAM energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    tech: MemoryTech,
    params: EnergyParams,
}

impl EnergyModel {
    /// Creates the model for a technology.
    pub fn new(tech: MemoryTech) -> Self {
        Self {
            tech,
            params: EnergyParams::for_tech(tech),
        }
    }

    /// The technology this model describes.
    pub fn tech(&self) -> MemoryTech {
        self.tech
    }

    /// The per-event parameters in force.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Computes the energy breakdown of a run from its DRAM statistics.
    pub fn breakdown(&self, stats: &DramStats) -> EnergyBreakdown {
        EnergyBreakdown {
            row_energy_pj: stats.activations as f64 * self.params.row_pj_per_act,
            access_energy_pj: stats.reads as f64 * self.params.read_pj
                + stats.writes as f64 * self.params.write_pj,
            background_pj: stats.mem_cycles as f64 * self.params.background_pj_per_cycle,
        }
    }

    /// Row energy of a run, normalized to a baseline run (the y-axis of
    /// Figures 12(a) and 15(a)). With a fixed per-activation cost this is
    /// exactly the activation ratio.
    pub fn normalized_row_energy(&self, run: &DramStats, baseline: &DramStats) -> f64 {
        let b = self.breakdown(baseline).row_energy_pj;
        if b == 0.0 {
            return 1.0;
        }
        self.breakdown(run).row_energy_pj / b
    }

    /// Memory-*system* energy reduction implied by a row-energy reduction,
    /// per the paper's Section V method: the row fraction of the technology
    /// times the row-energy saving.
    ///
    /// `row_energy_ratio` is run/baseline (e.g. 0.56 for a 44 % reduction).
    pub fn system_energy_reduction(&self, row_energy_ratio: f64) -> f64 {
        self.nominal_row_fraction() * (1.0 - row_energy_ratio)
    }

    /// The technology's nominal row-energy share of memory system energy
    /// (paper: ≈ 50 % for HBM1, ≈ 25 % for HBM2, ~35 % for GDDR5).
    pub fn nominal_row_fraction(&self) -> f64 {
        match self.tech {
            MemoryTech::Gddr5 => 0.35,
            MemoryTech::Hbm1 => 0.50,
            MemoryTech::Hbm2 => 0.25,
            MemoryTech::Ddr4 => 0.40,
            MemoryTech::Lpddr4 => 0.45,
        }
    }
}

/// The paper's absolute-saving projections for a high-end GPU card
/// (Section V, "Effect on Memory Energy and Peak Bandwidth"): a 60 W memory
/// power budget at peak bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CardBudget {
    /// Memory power budget at peak bandwidth, watts (paper: 60 W).
    pub memory_power_w: f64,
    /// Peak bandwidth at that budget, GB/s.
    pub peak_bandwidth_gbs: f64,
}

impl Default for CardBudget {
    fn default() -> Self {
        Self {
            memory_power_w: 60.0,
            peak_bandwidth_gbs: 670.0,
        }
    }
}

impl CardBudget {
    /// Absolute memory-power saving (watts) at the same peak bandwidth,
    /// given a memory-*system* energy reduction fraction.
    pub fn power_saving_w(&self, system_energy_reduction: f64) -> f64 {
        self.memory_power_w * system_energy_reduction
    }

    /// Extra peak bandwidth (GB/s) achievable in the *same* power budget:
    /// energy per byte shrank by the reduction factor.
    pub fn bandwidth_headroom_gbs(&self, system_energy_reduction: f64) -> f64 {
        if system_energy_reduction >= 1.0 {
            return f64::INFINITY;
        }
        self.peak_bandwidth_gbs * (1.0 / (1.0 - system_energy_reduction) - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(acts: u64, reads: u64, writes: u64, cycles: u64) -> DramStats {
        DramStats {
            activations: acts,
            reads,
            writes,
            mem_cycles: cycles,
            ..DramStats::new()
        }
    }

    #[test]
    fn breakdown_scales_with_counters() {
        let m = EnergyModel::new(MemoryTech::Gddr5);
        let e = m.breakdown(&stats(10, 100, 50, 1000));
        assert_eq!(e.row_energy_pj, 20_000.0);
        assert_eq!(e.access_energy_pj, 100.0 * 520.0 + 50.0 * 540.0);
        assert_eq!(e.background_pj, 60_000.0);
        assert!(e.total_pj() > e.row_energy_pj);
        assert!(e.row_fraction() > 0.0 && e.row_fraction() < 1.0);
    }

    #[test]
    fn normalized_row_energy_is_activation_ratio() {
        let m = EnergyModel::new(MemoryTech::Gddr5);
        let base = stats(1000, 0, 0, 0);
        let run = stats(560, 0, 0, 0);
        assert!((m.normalized_row_energy(&run, &base) - 0.56).abs() < 1e-12);
        // Degenerate baseline.
        assert_eq!(m.normalized_row_energy(&run, &stats(0, 0, 0, 0)), 1.0);
    }

    #[test]
    fn hbm_projections_match_paper_numbers() {
        // Paper: 44 % row-energy reduction → ~22 % on HBM1, ~11 % on HBM2.
        let hbm1 = EnergyModel::new(MemoryTech::Hbm1);
        let hbm2 = EnergyModel::new(MemoryTech::Hbm2);
        assert!((hbm1.system_energy_reduction(0.56) - 0.22).abs() < 1e-12);
        assert!((hbm2.system_energy_reduction(0.56) - 0.11).abs() < 1e-12);
    }

    #[test]
    fn card_budget_reproduces_8w_and_90gbs() {
        // Paper: up to 8 W saving or ~90 GB/s extra peak bandwidth on HBM2.
        let b = CardBudget::default();
        assert!((b.power_saving_w(8.0 / 60.0) - 8.0).abs() < 1e-9);
        let headroom = b.bandwidth_headroom_gbs(0.118);
        assert!(headroom > 85.0 && headroom < 95.0, "{headroom}");
    }

    #[test]
    fn zero_energy_is_sane() {
        let m = EnergyModel::new(MemoryTech::Hbm2);
        let e = m.breakdown(&DramStats::new());
        assert_eq!(e.total_pj(), 0.0);
        assert_eq!(e.row_fraction(), 0.0);
    }

    #[test]
    fn backend_matrix_maps_to_profiles() {
        assert_eq!(MemoryTech::for_preset(DramPreset::Naive), MemoryTech::Gddr5);
        assert_eq!(MemoryTech::for_preset(DramPreset::Flex), MemoryTech::Gddr5);
        assert_eq!(MemoryTech::for_preset(DramPreset::Ddr4), MemoryTech::Ddr4);
        assert_eq!(MemoryTech::for_backend(BackendKind::Lpddr4), MemoryTech::Lpddr4);
        for p in DramPreset::ALL {
            // Every preset's profile agrees with its configured backend,
            // except the HBM presets which refine GDDR5's banked model.
            let by_preset = MemoryTech::for_preset(p);
            let by_backend = MemoryTech::for_backend(p.gpu_config().backend);
            if !matches!(p, DramPreset::Hbm1 | DramPreset::Hbm2) {
                assert_eq!(by_preset, by_backend, "{p}");
            }
        }
    }

    #[test]
    fn tech_profiles_have_expected_row_dominance_order() {
        let f1 = EnergyModel::new(MemoryTech::Hbm1).nominal_row_fraction();
        let fg = EnergyModel::new(MemoryTech::Gddr5).nominal_row_fraction();
        let f2 = EnergyModel::new(MemoryTech::Hbm2).nominal_row_fraction();
        assert!(f1 > fg && fg > f2);
    }
}
