//! An L2 slice: the shared cache bank of one memory partition, its MSHRs,
//! its writeback path, and the value-prediction (VP) unit.
//!
//! The slice sits between the request interconnect and its memory
//! controller. Reads that miss are forwarded to the controller (with MSHR
//! merging); responses flagged `approximated` never touch DRAM data —
//! instead the VP unit searches nearby L2 sets for the resident line with
//! the nearest address and serves *its* values (paper Section IV-D). In the
//! default model approximated lines are not inserted into the cache; with
//! [`approx_reuse`](lazydram_common::SchedConfig::approx_reuse) they are,
//! modeling the paper's footnote-2 "advanced model" including error
//! propagation through reuse.

use crate::cache::{AccessResult, Cache};
use crate::memimg::MemoryImage;
use crate::noc::DelayQueue;
use crate::sm::{Reply, SliceReq};
use crate::trace::{Trace, TraceEntry};
use lazydram_common::snap::{Loader, Saver, SnapError, SnapResult};
use lazydram_common::{AccessKind, AddressMap, GpuConfig, MemSpace, Request, RequestId, SchedConfig};
use lazydram_core::{MemoryController, Response};
use lazydram_common::FastMap;
use std::collections::VecDeque;

/// One L2 slice and its glue to the memory controller.
pub(crate) struct Slice {
    id: usize,
    l2: Cache,
    mshr: FastMap<u64, Vec<usize>>,
    mshr_capacity: usize,
    throughput: usize,
    vp_radius: u32,
    approx_reuse: bool,
    /// Responses delivered by the memory controller during memory ticks.
    pub responses: VecDeque<Response>,
    /// Dirty lines evicted while the controller was full.
    wb_buffer: VecDeque<u64>,
    /// Replies that could not enter the reply NoC yet.
    reply_retry: VecDeque<(usize, Reply)>,
    /// Replies produced this cycle (phase C), merged into the reply NoC at
    /// the phase-D barrier by [`Slice::flush_replies`]. Always empty
    /// between cycles.
    staged_replies: Vec<(usize, Reply)>,
    /// Per-slice request-id counter; ids are globally unique via the
    /// slice-id tag in the low bits (see [`Slice::alloc_id`]), so slices
    /// allocate ids concurrently without coordination.
    next_id: u64,
    /// Approximate contents of L2-resident approximated lines (reuse mode).
    approx_store: FastMap<u64, [f32; 32]>,
    /// Reads that returned VP-predicted values.
    pub approx_replies: u64,
    /// When enabled, every request handed to the controller is recorded.
    pub trace: Option<Trace>,
}

impl Slice {
    pub fn new(id: usize, cfg: &GpuConfig, sched: &SchedConfig) -> Self {
        assert!(id < 8, "slice id {id} does not fit the 3-bit request-id tag");
        Self {
            id,
            l2: Cache::new(cfg.l2_bytes, cfg.l2_ways, cfg.line_bytes),
            mshr: FastMap::default(),
            mshr_capacity: cfg.l2_mshrs,
            throughput: cfg.l2_throughput,
            vp_radius: sched.vp_set_radius,
            approx_reuse: sched.approx_reuse,
            responses: VecDeque::new(),
            wb_buffer: VecDeque::new(),
            reply_retry: VecDeque::new(),
            staged_replies: Vec::new(),
            next_id: 0,
            approx_store: FastMap::default(),
            approx_replies: 0,
            trace: None,
        }
    }

    /// Allocates the next request id: the slice-local counter shifted past
    /// a 3-bit slice tag. Ids are globally unique and monotonic per slice,
    /// and — unlike a machine-global counter — independent of the order in
    /// which slices tick, which is what lets phase C run slices on worker
    /// threads without renumbering requests.
    fn alloc_id(&mut self) -> RequestId {
        self.next_id += 1;
        RequestId((self.next_id << 3) | self.id as u64)
    }

    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// `true` when ticking this slice could do anything beyond serving its
    /// incoming queue: buffered controller responses, pending writebacks, or
    /// replies retrying against a full reply NoC. Unlike [`Slice::is_idle`]
    /// this ignores the MSHRs — outstanding misses wake up via controller
    /// responses, not by ticking the slice. The incoming request queue is
    /// tracked separately (its head ready-time is an exact event).
    pub fn has_work(&self) -> bool {
        !self.responses.is_empty() || !self.wb_buffer.is_empty() || !self.reply_retry.is_empty()
    }

    /// Whether the service loop would make progress on `req` right now,
    /// given controller `mc`. Mirrors the branch structure of
    /// [`Slice::tick`] step 2 exactly: when this returns `false`, ticking
    /// pops `req` and immediately parks it back (`push_front`) with no
    /// observable effect, so a cycle whose only candidate work is a blocked
    /// queue head can be fast-forwarded. Every unblocking condition —
    /// controller acceptance, slice MSHR space (freed by absorbing
    /// controller responses) — changes only on controller events, which the
    /// event-driven loop tracks via
    /// [`MemoryController::next_event_cycle`].
    pub fn would_service(&self, req: &SliceReq, mc: &MemoryController) -> bool {
        if req.write {
            self.l2.probe(req.line) || mc.can_accept()
        } else if self.l2.probe(req.line) || self.mshr.contains_key(&req.line) {
            true
        } else {
            self.mshr.len() < self.mshr_capacity && mc.can_accept()
        }
    }

    /// `true` when the slice holds no outstanding work.
    pub fn is_idle(&self) -> bool {
        self.mshr.is_empty()
            && self.responses.is_empty()
            && self.wb_buffer.is_empty()
            && self.reply_retry.is_empty()
    }

    /// The VP prediction for a dropped line: values of the nearest-address
    /// line resident in this slice's L2, or zeroes when none is in range.
    fn predict(&self, line: u64, image: &MemoryImage) -> [f32; 32] {
        let mut vals = [0.0; 32];
        if let Some(neighbor) = self.l2.nearest_resident(line, self.vp_radius) {
            match self.approx_store.get(&neighbor) {
                Some(v) => vals = *v,
                None => image.read_line_into(neighbor, &mut vals),
            }
        }
        vals
    }

    /// Stages a reply for the phase-D merge into the reply NoC.
    fn send_reply(&mut self, sm: usize, reply: Reply) {
        self.staged_replies.push((sm, reply));
    }

    fn forward_write(&mut self, line: u64, space: MemSpace, map: &AddressMap, mc: &mut MemoryController) -> bool {
        if !mc.can_accept() {
            return false;
        }
        let req = Request {
            id: self.alloc_id(),
            addr: line,
            loc: map.decompose(line),
            kind: AccessKind::Write,
            space,
            approximable: false,
            arrival: 0,
        };
        self.record(mc.now(), &req);
        mc.enqueue(req).expect("can_accept checked");
        true
    }

    fn record(&mut self, cycle: u64, req: &Request) {
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry {
                cycle,
                channel: req.loc.channel,
                request: *req,
            });
        }
    }

    fn fill_l2(&mut self, line: u64, map: &AddressMap, mc: &mut MemoryController) {
        if let Some((victim, dirty)) = self.l2.fill(line, false) {
            self.approx_store.remove(&victim);
            if dirty && !self.forward_write(victim, MemSpace::Other, map, mc) {
                self.wb_buffer.push_back(victim);
            }
        }
    }

    /// One core cycle of slice work (phase C of the phased tick). Touches
    /// only partition-local state — this slice, its controller, its
    /// incoming queue — plus the shared image read-only, so the six
    /// partitions tick concurrently. Replies are staged;
    /// [`Slice::flush_replies`] merges them into the reply NoC at the
    /// phase-D barrier.
    pub fn tick(
        &mut self,
        now: u64,
        incoming: &mut DelayQueue<SliceReq>,
        mc: &mut MemoryController,
        image: &MemoryImage,
        map: &AddressMap,
    ) {
        // 0. Retry stalled writebacks first (oldest work). Stalled replies
        // are retried in flush_replies, ahead of this cycle's.
        while let Some(&line) = self.wb_buffer.front() {
            if self.forward_write(line, MemSpace::Other, map, mc) {
                self.wb_buffer.pop_front();
            } else {
                break;
            }
        }

        // 1. Absorb memory-controller responses.
        while let Some(resp) = self.responses.pop_front() {
            let line = resp.addr;
            let reply = if resp.approximated {
                self.approx_replies += 1;
                let vals = self.predict(line, image);
                if self.approx_reuse {
                    self.fill_l2(line, map, mc);
                    self.approx_store.insert(line, vals);
                }
                Reply { line, values: Some(vals) }
            } else {
                self.fill_l2(line, map, mc);
                self.approx_store.remove(&line);
                Reply { line, values: None }
            };
            if let Some(waiters) = self.mshr.remove(&line) {
                for sm in waiters {
                    self.send_reply(sm, reply);
                }
            }
        }

        // 2. Service incoming requests. One set scan per request: `lookup`
        // answers hit/miss, `commit` applies the recency/counter effects at
        // exactly the points the old probe-then-access pair counted them.
        for _ in 0..self.throughput {
            let Some(req) = incoming.pop_ready(now) else {
                break;
            };
            let slot = self.l2.lookup(req.line);
            if req.write {
                if slot.is_hit() {
                    let r = self.l2.commit(slot, true);
                    debug_assert_eq!(r, AccessResult::Hit);
                    // The store overwrote (part of) the line; if it was an
                    // approximation, the written words are now exact — we
                    // conservatively treat the whole line as corrected.
                    self.approx_store.remove(&req.line);
                } else {
                    // Write-through, no allocate: forward to DRAM. Count the
                    // miss only when the request actually proceeds, so
                    // backpressure retries do not inflate the statistics.
                    if !self.forward_write(req.line, MemSpace::Global, map, mc) {
                        incoming.push_front(now, req);
                        break;
                    }
                    let r = self.l2.commit(slot, true);
                    debug_assert_eq!(r, AccessResult::Miss);
                }
            } else if slot.is_hit() {
                let r = self.l2.commit(slot, false);
                debug_assert_eq!(r, AccessResult::Hit);
                let values = self.approx_store.get(&req.line).copied();
                if values.is_some() {
                    self.approx_replies += 1;
                }
                let reply = Reply { line: req.line, values };
                self.send_reply(req.sm, reply);
            } else if let Some(waiters) = self.mshr.get_mut(&req.line) {
                waiters.push(req.sm);
                let r = self.l2.commit(slot, false); // merged miss
                debug_assert_eq!(r, AccessResult::Miss);
            } else if self.mshr.len() < self.mshr_capacity && mc.can_accept() {
                let r = self.l2.commit(slot, false);
                debug_assert_eq!(r, AccessResult::Miss);
                let dram_req = Request {
                    id: self.alloc_id(),
                    addr: req.line,
                    loc: map.decompose(req.line),
                    kind: AccessKind::Read,
                    space: MemSpace::Global,
                    approximable: req.approximable,
                    arrival: 0,
                };
                self.record(mc.now(), &dram_req);
                mc.enqueue(dram_req).expect("can_accept checked");
                self.mshr.insert(req.line, vec![req.sm]);
            } else {
                incoming.push_front(now, req);
                break;
            }
        }
    }

    /// Phase D: merges this slice's replies into the reply NoC, retries
    /// first (oldest work, matching the sequential loop's step 0), then the
    /// replies staged this cycle. Runs on the coordinating thread in
    /// ascending slice order, so the NoC contents are canonical.
    pub fn flush_replies(&mut self, now: u64, reply_noc: &mut [DelayQueue<Reply>]) {
        while let Some((sm, reply)) = self.reply_retry.pop_front() {
            if reply_noc[sm].push(now, reply).is_err() {
                self.reply_retry.push_front((sm, reply));
                break;
            }
        }
        for (sm, reply) in self.staged_replies.drain(..) {
            if reply_noc[sm].push(now, reply).is_err() {
                self.reply_retry.push_back((sm, reply));
            }
        }
    }

    /// Serializes the slice's dynamic state: L2 contents, MSHR table,
    /// buffered controller responses, writeback and reply-retry queues, the
    /// approximate-line store and (when capturing) the request trace.
    /// Configuration (capacities, VP radius, reuse mode) is not written.
    pub fn save_state(&self, s: &mut Saver) {
        debug_assert!(
            self.staged_replies.is_empty(),
            "checkpoints are taken between cycles, after the phase-D flush"
        );
        s.u64("next_id", self.next_id);
        s.u64("approx_replies", self.approx_replies);
        s.frame("l2", 0, |s| self.l2.save_state(s));
        let mut lines: Vec<u64> = self.mshr.keys().copied().collect();
        lines.sort_unstable();
        s.seq("mshr", lines.len());
        for line in lines {
            s.u64("line", line);
            let waiters = &self.mshr[&line];
            s.seq("waiters", waiters.len());
            for &w in waiters {
                s.usize("waiter", w);
            }
        }
        s.seq("responses", self.responses.len());
        for r in &self.responses {
            s.u64("id", r.id.0);
            s.u64("addr", r.addr);
            s.bool("approximated", r.approximated);
        }
        s.seq("wb_buffer", self.wb_buffer.len());
        for &line in &self.wb_buffer {
            s.u64("line", line);
        }
        s.seq("reply_retry", self.reply_retry.len());
        for (sm, reply) in &self.reply_retry {
            s.usize("sm", *sm);
            s.u64("line", reply.line);
            s.bool("has_values", reply.values.is_some());
            if let Some(vals) = &reply.values {
                s.f32s("values", vals);
            }
        }
        let mut approx_lines: Vec<u64> = self.approx_store.keys().copied().collect();
        approx_lines.sort_unstable();
        s.seq("approx_store", approx_lines.len());
        for line in approx_lines {
            s.u64("line", line);
            s.f32s("vals", &self.approx_store[&line]);
        }
        s.bool("has_trace", self.trace.is_some());
        if let Some(trace) = &self.trace {
            trace.save_state(s);
        }
    }

    /// Restores state written by [`Slice::save_state`] into a slice built
    /// from the same configuration.
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed.
    pub fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.next_id = l.u64("next_id")?;
        self.staged_replies.clear();
        self.approx_replies = l.u64("approx_replies")?;
        l.frame("l2", 0, |l| self.l2.load_state(l))?;
        let n_mshr = l.seq("mshr", 16)?;
        self.mshr.clear();
        self.mshr.reserve(n_mshr);
        for _ in 0..n_mshr {
            let line = l.u64("line")?;
            let n_w = l.seq("waiters", 8)?;
            let mut waiters = Vec::with_capacity(n_w);
            for _ in 0..n_w {
                waiters.push(l.usize("waiter")?);
            }
            if self.mshr.insert(line, waiters).is_some() {
                return Err(SnapError::Malformed {
                    label: "mshr".into(),
                    why: format!("duplicate line {line:#x}"),
                });
            }
        }
        let n_resp = l.seq("responses", 17)?;
        self.responses.clear();
        for _ in 0..n_resp {
            self.responses.push_back(Response {
                id: RequestId(l.u64("id")?),
                addr: l.u64("addr")?,
                approximated: l.bool("approximated")?,
            });
        }
        let n_wb = l.seq("wb_buffer", 8)?;
        self.wb_buffer.clear();
        for _ in 0..n_wb {
            self.wb_buffer.push_back(l.u64("line")?);
        }
        let n_rr = l.seq("reply_retry", 17)?;
        self.reply_retry.clear();
        for _ in 0..n_rr {
            let sm = l.usize("sm")?;
            let line = l.u64("line")?;
            let values = if l.bool("has_values")? {
                let mut vals = [0.0f32; 32];
                l.f32_array("values", &mut vals)?;
                Some(vals)
            } else {
                None
            };
            self.reply_retry.push_back((sm, Reply { line, values }));
        }
        let n_as = l.seq("approx_store", 16)?;
        self.approx_store.clear();
        self.approx_store.reserve(n_as);
        for _ in 0..n_as {
            let line = l.u64("line")?;
            let mut vals = [0.0f32; 32];
            l.f32_array("vals", &mut vals)?;
            if self.approx_store.insert(line, vals).is_some() {
                return Err(SnapError::Malformed {
                    label: "approx_store".into(),
                    why: format!("duplicate line {line:#x}"),
                });
            }
        }
        if l.bool("has_trace")? {
            let mut trace = Trace::new();
            trace.load_state(l)?;
            self.trace = Some(trace);
        } else {
            self.trace = None;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydram_common::GpuConfig;

    /// Ticks the controller once and forwards its responses to the slice.
    fn pump_mc(mc: &mut MemoryController, slice: &mut Slice) {
        let mut out = Vec::new();
        mc.tick(&mut out);
        for resp in out {
            slice.responses.push_back(resp);
        }
    }

    fn setup(sched: SchedConfig) -> (Slice, MemoryController, MemoryImage, AddressMap, DelayQueue<SliceReq>, Vec<DelayQueue<Reply>>) {
        let cfg = GpuConfig::default();
        let slice = Slice::new(0, &cfg, &sched);
        let mc = MemoryController::new(&cfg, &sched);
        let image = MemoryImage::new();
        let map = AddressMap::new(&cfg);
        let incoming = DelayQueue::new(0, 64, 8);
        let replies: Vec<DelayQueue<Reply>> = (0..2).map(|_| DelayQueue::new(0, 64, 8)).collect();
        (slice, mc, image, map, incoming, replies)
    }

    /// Drives the slice + controller until the given SM receives a reply.
    #[allow(clippy::too_many_arguments)]
    fn run_to_reply(
        slice: &mut Slice,
        mc: &mut MemoryController,
        image: &MemoryImage,
        map: &AddressMap,
        incoming: &mut DelayQueue<SliceReq>,
        replies: &mut [DelayQueue<Reply>],
        sm: usize,
        max: u64,
    ) -> Reply {
        for now in 1..max {
            slice.tick(now, incoming, mc, image, map);
            slice.flush_replies(now, replies);
            pump_mc(mc, slice);
            if let Some(r) = replies[sm].pop_ready(now) {
                return r;
            }
        }
        panic!("no reply within {max} cycles");
    }

    #[test]
    fn read_miss_goes_to_dram_and_fills_l2() {
        let (mut slice, mut mc, image, map, mut incoming, mut replies) =
            setup(SchedConfig::baseline());
        incoming
            .push(0, SliceReq { sm: 0, line: 0x10_0000, write: false, approximable: false })
            .unwrap();
        let r = run_to_reply(&mut slice, &mut mc, &image, &map, &mut incoming, &mut replies, 0, 500);
        assert_eq!(r.line, 0x10_0000);
        assert!(r.values.is_none());
        assert!(slice.l2().probe(0x10_0000));
        assert_eq!(mc.stats().reads, 1);
    }

    #[test]
    fn second_read_hits_l2_without_dram() {
        let (mut slice, mut mc, image, map, mut incoming, mut replies) =
            setup(SchedConfig::baseline());
        incoming
            .push(0, SliceReq { sm: 0, line: 0x10_0000, write: false, approximable: false })
            .unwrap();
        run_to_reply(&mut slice, &mut mc, &image, &map, &mut incoming, &mut replies, 0, 500);
        incoming
            .push(500, SliceReq { sm: 1, line: 0x10_0000, write: false, approximable: false })
            .unwrap();
        slice.tick(501, &mut incoming, &mut mc, &image, &map);
        slice.flush_replies(501, &mut replies);
        assert!(replies[1].pop_ready(501).is_some());
        assert_eq!(mc.stats().reads, 1, "L2 hit must not touch DRAM");
    }

    #[test]
    fn write_miss_forwards_to_dram_write() {
        let (mut slice, mut mc, image, map, mut incoming, mut replies) =
            setup(SchedConfig::baseline());
        incoming
            .push(0, SliceReq { sm: 0, line: 0x10_0000, write: true, approximable: false })
            .unwrap();
        slice.tick(1, &mut incoming, &mut mc, &image, &map);
        slice.flush_replies(1, &mut replies);
        while !mc.is_idle() {
            pump_mc(&mut mc, &mut slice);
        }
        assert_eq!(mc.stats().writes, 1);
        assert!(!slice.l2().probe(0x10_0000), "write-no-allocate");
    }

    #[test]
    fn approximated_response_uses_nearest_l2_neighbor() {
        let sched = SchedConfig {
            ams: lazydram_common::AmsMode::Static(8),
            ams_warmup_requests: 0,
            coverage_cap: 1.0,
            ..SchedConfig::baseline()
        };
        let (mut slice, mut mc, mut image, map, mut incoming, mut replies) = setup(sched);
        // Warm a neighbor line into L2 whose image values are known.
        image.write_slice(0x10_0000, &[42.0; 32]);
        incoming
            .push(0, SliceReq { sm: 0, line: 0x10_0000, write: false, approximable: false })
            .unwrap();
        run_to_reply(&mut slice, &mut mc, &image, &map, &mut incoming, &mut replies, 0, 500);
        // Now request the next row of the same bank (+196608 B keeps the
        // same L2 set but a different, closed DRAM row, so the request is a
        // row miss). The AMS controller drops it (single pending low-RBL
        // read) and the VP must serve the neighbor's 42.0s.
        incoming
            .push(600, SliceReq { sm: 1, line: 0x13_0000, write: false, approximable: true })
            .unwrap();
        let r = run_to_reply(&mut slice, &mut mc, &image, &map, &mut incoming, &mut replies, 1, 2_000);
        assert_eq!(r.line, 0x13_0000);
        assert_eq!(r.values.expect("approximated")[0], 42.0);
        assert_eq!(slice.approx_replies, 1);
        assert!(!slice.l2().probe(0x13_0000), "no reuse by default");
    }

    #[test]
    fn approx_reuse_mode_caches_predictions() {
        let sched = SchedConfig {
            ams: lazydram_common::AmsMode::Static(8),
            ams_warmup_requests: 0,
            coverage_cap: 1.0,
            approx_reuse: true,
            ..SchedConfig::baseline()
        };
        let (mut slice, mut mc, mut image, map, mut incoming, mut replies) = setup(sched);
        image.write_slice(0x10_0000, &[42.0; 32]);
        incoming
            .push(0, SliceReq { sm: 0, line: 0x10_0000, write: false, approximable: false })
            .unwrap();
        run_to_reply(&mut slice, &mut mc, &image, &map, &mut incoming, &mut replies, 0, 500);
        incoming
            .push(600, SliceReq { sm: 1, line: 0x13_0000, write: false, approximable: true })
            .unwrap();
        run_to_reply(&mut slice, &mut mc, &image, &map, &mut incoming, &mut replies, 1, 2_000);
        assert!(slice.l2().probe(0x13_0000), "reuse mode caches the line");
        // A subsequent read is an L2 hit that still returns approximate data.
        incoming
            .push(3_000, SliceReq { sm: 0, line: 0x13_0000, write: false, approximable: true })
            .unwrap();
        slice.tick(3_001, &mut incoming, &mut mc, &image, &map);
        slice.flush_replies(3_001, &mut replies);
        let r = replies[0].pop_ready(3_001).expect("hit replies same cycle");
        assert_eq!(r.values.expect("approx data on reuse")[5], 42.0);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let cfg = GpuConfig::default();
        let sched = SchedConfig::baseline();
        let mut slice = Slice::new(0, &cfg, &sched);
        let mut mc = MemoryController::new(&cfg, &sched);
        let image = MemoryImage::new();
        let map = AddressMap::new(&cfg);
        let mut incoming = DelayQueue::new(0, 8192, 8192);
        let mut replies: Vec<DelayQueue<Reply>> = vec![DelayQueue::new(0, 8192, 8192)];
        // Fill one L2 set (8 ways) with dirty lines, then displace them.
        // Lines mapping to set 0: stride = sets(128) * 128 B = 16 KiB.
        let mut now = 0;
        for i in 0..9u64 {
            let line = 0x10_0000 + i * 128 * 128;
            // Make the line present by filling via a read.
            incoming.push(now, SliceReq { sm: 0, line, write: false, approximable: false }).unwrap();
            for _ in 0..400 {
                now += 1;
                slice.tick(now, &mut incoming, &mut mc, &image, &map);
                slice.flush_replies(now, &mut replies);
                pump_mc(&mut mc, &mut slice);
            }
            // Dirty it.
            incoming.push(now, SliceReq { sm: 0, line, write: true, approximable: false }).unwrap();
            now += 1;
            slice.tick(now, &mut incoming, &mut mc, &image, &map);
            slice.flush_replies(now, &mut replies);
        }
        // 9 fills into an 8-way set → at least one dirty eviction → ≥1 write.
        while !mc.is_idle() {
            pump_mc(&mut mc, &mut slice);
        }
        assert!(mc.stats().writes >= 1, "dirty eviction must write back");
    }
}
