//! A streaming multiprocessor: warp slots, warp scheduler, L1 cache, MSHRs.
//!
//! Each SM holds up to `warps_per_sm` resident warps and issues up to
//! `issue_width` warp instructions per core cycle with a loose round-robin
//! scheduler. Loads are coalesced to 128-byte lines, looked up in the
//! (tag-only) L1, merged in the L1 MSHRs, and forwarded to the home L2 slice
//! through the request interconnect. A warp blocks until every line of its
//! load has arrived; values are assembled from the functional memory image —
//! or from value-predictor output for lines whose DRAM request was dropped
//! by AMS.
//!
//! The issue path is allocation-free in steady state: programs emit into the
//! SM's reusable [`OpBuf`], and all per-load / per-store bookkeeping lives in
//! slot-persistent buffers whose capacity survives across ops *and* across
//! the warps that occupy the slot.

use crate::cache::{AccessResult, Cache};
use crate::kernel::{Kernel, OpBuf, OpKind, WarpProgram};
use crate::memimg::{MemoryImage, OverlayView};
use crate::noc::DelayQueue;
use lazydram_common::snap::{Loader, Saver, SnapError, SnapResult};
use lazydram_common::FastMap;
use lazydram_common::{AddressMap, GpuConfig};

/// A request from an SM to an L2 slice (line granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SliceReq {
    /// Originating SM.
    pub sm: usize,
    /// Line-aligned address.
    pub line: u64,
    /// `true` for a write-through store (no reply expected).
    pub write: bool,
    /// `pragma pred_var` annotation for the line.
    pub approximable: bool,
}

/// A reply from an L2 slice to an SM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Reply {
    /// Line-aligned address.
    pub line: u64,
    /// `Some(values)` when the line was approximated by the VP unit; `None`
    /// when exact data should be read from the memory image.
    pub values: Option<[f32; 32]>,
}

/// Blocked-load bookkeeping. Lives permanently in the slot (meaningful only
/// while the warp is `Waiting`) so its buffers are refilled in place instead
/// of reallocated per load.
#[derive(Debug)]
struct LoadWait {
    lane_addrs: Vec<u64>,
    /// Outstanding miss lines; a load coalesces to a handful of lines, so a
    /// flat vector with `swap_remove` beats a hash set.
    pending: Vec<u64>,
    /// Missing lines whose request has not been sent yet (MSHR / NoC
    /// backpressure); drained opportunistically each cycle.
    unsent: Vec<u64>,
    /// Value-predictor data per approximated line, linearly searched — at
    /// most one entry per coalesced line.
    approx: Vec<(u64, [f32; 32])>,
}

impl LoadWait {
    const fn new() -> Self {
        Self {
            lane_addrs: Vec::new(),
            pending: Vec::new(),
            unsent: Vec::new(),
            approx: Vec::new(),
        }
    }
}

enum WarpState {
    /// Can issue its next operation.
    Ready,
    /// Burning through a `Compute(n)` op.
    Computing { left: u32 },
    /// Blocked on an outstanding load (details in the slot's `wait`).
    Waiting,
    /// Retired.
    Done,
}

/// A store's line coalescing and per-slice request counts, computed once at
/// first attempt. On NoC backpressure the plan parks in the slot
/// (`store_parked`) and a retry only re-checks free space (O(#channels))
/// instead of re-deriving the whole plan from the lane writes every cycle.
/// Lives permanently in the slot so its buffers are reused across stores.
struct StorePlan {
    writes: Vec<(u64, f32)>,
    /// Distinct line addresses, in first-touch order.
    lines: Vec<u64>,
    /// `(channel, requests)` pairs the store needs to place atomically.
    per_slice: Vec<(usize, usize)>,
}

impl StorePlan {
    const fn new() -> Self {
        Self { writes: Vec::new(), lines: Vec::new(), per_slice: Vec::new() }
    }
}

/// One warp slot. `program.is_none()` ⇔ the slot is empty; the scratch
/// buffers (`wait`, `store`, `last_loaded`) persist for the SM's lifetime,
/// so successive warps occupying the slot inherit warmed capacity.
struct WarpSlot {
    program: Option<Box<dyn WarpProgram>>,
    /// Warp id the occupying program was built for ([`Kernel::program`]);
    /// meaningless while the slot is empty. Checkpoint restore uses it to
    /// reconstruct the program before loading its dynamic state.
    warp_id: usize,
    state: WarpState,
    /// Blocked-load bookkeeping; valid only while `state` is `Waiting`.
    wait: LoadWait,
    /// The current store's coalescing plan; valid while a store is being
    /// issued or is parked on backpressure.
    store: StorePlan,
    /// `true` while `store` holds a plan that hit a structural hazard and
    /// must be retried before the warp can advance.
    store_parked: bool,
    /// Values delivered by the last load, consumed by the next `next()` call.
    last_loaded: Vec<f32>,
    /// [`Sm::mem_epoch`] value as of this slot's last drain attempt. A
    /// retry with an unchanged epoch cannot probe-hit or merge any unsent
    /// line; combined with `unsent_channels` it makes futile retries O(1).
    /// Derived state — not serialized; restore marks it stale.
    drain_epoch: u64,
    /// Bitmask of request-NoC channels the slot's still-unsent miss lines
    /// target, as of the last drain attempt. Valid only when `drain_epoch`
    /// matches the SM's current `mem_epoch`.
    unsent_channels: u32,
}

impl WarpSlot {
    fn empty() -> Self {
        Self {
            program: None,
            warp_id: 0,
            state: WarpState::Done,
            wait: LoadWait::new(),
            store: StorePlan::new(),
            store_parked: false,
            last_loaded: Vec::new(),
            drain_epoch: u64::MAX,
            unsent_channels: 0,
        }
    }
}

/// Per-SM staging area for one cycle of the phased tick.
///
/// During phase A every SM ticks against a *read-only* memory image and a
/// cycle-start snapshot of the request-NoC occupancy; its side effects —
/// outbound slice requests and functional store writes — accumulate here
/// and are committed at the phase-B barrier in ascending SM order, making
/// the machine state independent of how SMs were scheduled onto threads.
pub(crate) struct SmStage {
    /// `(channel, request)` in stage order; phase B pushes them into the
    /// per-channel `req_noc` queues in exactly this order.
    pub reqs: Vec<(usize, SliceReq)>,
    /// Functional lane writes in program order; phase B commits them to
    /// the shared [`MemoryImage`]. Until then they overlay this SM's own
    /// reads (see [`OverlayView`]).
    pub writes: Vec<(u64, f32)>,
    /// This SM's local view of request-NoC free slots: the cycle-start
    /// snapshot minus what this SM has staged this cycle. Every SM sees
    /// the *same* snapshot, so reservations are interleaving-independent;
    /// the queues absorb the (bounded) oversubscription via
    /// `push_unchecked`.
    free: Vec<usize>,
}

impl SmStage {
    pub fn new(channels: usize) -> Self {
        Self {
            reqs: Vec::new(),
            writes: Vec::new(),
            free: vec![0; channels],
        }
    }

    /// Resets the stage for a new cycle against the given cycle-start
    /// free-slot snapshot (one entry per request-NoC channel).
    pub fn begin_cycle(&mut self, free0: &[usize]) {
        self.reqs.clear();
        self.writes.clear();
        self.free.clear();
        self.free.extend_from_slice(free0);
    }

    /// Free request-NoC slots on `ch` as this SM sees them.
    pub fn free(&self, ch: usize) -> usize {
        self.free[ch]
    }

    /// Stages a request on `ch`, consuming one reserved slot.
    pub fn push_req(&mut self, ch: usize, req: SliceReq) {
        debug_assert!(self.free[ch] > 0, "staging past the reserved snapshot");
        self.free[ch] -= 1;
        self.reqs.push((ch, req));
    }

    /// Stages functional store writes for the phase-B commit.
    pub fn stage_writes(&mut self, writes: &[(u64, f32)]) {
        self.writes.extend_from_slice(writes);
    }
}

/// Context an SM needs while ticking (phase A of the phased tick). The
/// image is shared read-only across concurrently ticking SMs; all side
/// effects go through `stage`.
pub(crate) struct SmCtx<'a> {
    pub image: &'a MemoryImage,
    pub map: &'a AddressMap,
    pub kernel: &'a dyn Kernel,
    /// This SM's staging area for the cycle.
    pub stage: &'a mut SmStage,
}

/// Visits the set bits of `mask` in rotated index order — `start..128`, then
/// `0..start` — calling `f(idx)` for each; stops early when `f` returns
/// `false`. This walks exactly the slots a linear scan from `start` would
/// visit, in the same order, without touching the empty ones.
fn for_each_bit_rotated(mask: u128, start: usize, mut f: impl FnMut(usize) -> bool) {
    let split = u128::MAX << start;
    for mut m in [mask & split, mask & !split] {
        while m != 0 {
            let idx = m.trailing_zeros() as usize;
            if !f(idx) {
                return;
            }
            m &= m - 1;
        }
    }
}

/// Appends the distinct 128-byte lines behind the lane addresses of `it` to
/// `lines` (which starts empty), preserving first-touch order.
///
/// Affine per-lane patterns — `addr = base + lane * stride`, either sign,
/// the overwhelmingly common case — produce a *monotone* line sequence, in
/// which equal lines are always adjacent and first-touch order equals
/// sequence order; dedup then degenerates to collapsing adjacent repeats in
/// one O(lanes) pass. Anything non-monotone falls back to the quadratic
/// membership scan, which is correct for arbitrary patterns.
fn coalesce_lines(lines: &mut Vec<u64>, it: impl Iterator<Item = u64> + Clone) {
    debug_assert!(lines.is_empty(), "coalesce_lines fills a cleared buffer");
    let mut rising = true;
    let mut falling = true;
    let mut probe = it.clone().map(|a| a & !127);
    if let Some(mut prev) = probe.next() {
        for l in probe {
            rising &= prev <= l;
            falling &= prev >= l;
            if !(rising || falling) {
                break;
            }
            prev = l;
        }
    }
    if rising || falling {
        for a in it {
            let l = a & !127;
            if lines.last() != Some(&l) {
                lines.push(l);
            }
        }
    } else {
        for a in it {
            let l = a & !127;
            if !lines.contains(&l) {
                lines.push(l);
            }
        }
    }
}

/// One streaming multiprocessor.
///
/// The warp scheduler is index-based round-robin, but the per-cycle scan
/// runs over two slot bitmasks instead of the slot vector: `issueable`
/// (warps that could issue this cycle) and `unsent` (blocked loads with
/// backpressured miss lines). On stall-heavy cycles — the common case under
/// DMS — both masks are zero and [`Sm::tick`] returns without touching any
/// slot state, which is also what lets [`Sm::has_work`] answer in O(1).
pub(crate) struct Sm {
    id: usize,
    issue_width: usize,
    l1: Cache,
    slots: Vec<WarpSlot>,
    rr: usize,
    mshr: FastMap<u64, Vec<usize>>,
    mshr_capacity: usize,
    /// Round-robin cursor for draining backpressured loads.
    drain_rr: usize,
    /// Bit `i` set ⇔ slot `i` can attempt issue: Ready, Computing, or
    /// retrying a structurally stalled op.
    issueable: u128,
    /// Bit `i` set ⇔ slot `i` is Waiting with a non-empty `unsent` list.
    unsent: u128,
    /// Bit `i` set ⇔ slot `i` holds a parked store plan — issueable, but
    /// only effectful once the request NoC has room for it.
    stalled: u128,
    /// Bit `i` set ⇔ slot `i` is `Computing { .. }`: issueable, but with no
    /// external effect until its burst ends. Disjoint from `stalled` (a
    /// store only parks from `Ready`), so `issueable & !stalled & !computing`
    /// is exactly the slots whose next issue is a real op.
    computing: u128,
    /// Warp instructions retired.
    pub instructions: u64,
    /// Loads whose value was (partly) approximated.
    pub approximated_loads: u64,
    live_warps: usize,
    /// Reusable buffer for miss lines that arrived while unsent (drain path).
    scratch_arrived: Vec<u64>,
    /// Reusable buffer for coalescing lane addresses to distinct lines.
    scratch_lines: Vec<u64>,
    /// The SM's reusable warp-op emission buffer ([`WarpProgram::next`] sink).
    opbuf: OpBuf,
    /// Retired MSHR waiter lists, recycled so a new miss entry does not
    /// allocate.
    waiter_pool: Vec<Vec<usize>>,
    /// Bumped whenever SM-local memory state that can unblock an unsent
    /// miss line changes: an L1 fill (a blocked line may now probe-hit) or
    /// a fresh MSHR entry (a blocked line may now merge). Together with
    /// each slot's `drain_epoch`/`unsent_channels` it proves a drain retry
    /// futile without re-scanning the slot's unsent lines.
    mem_epoch: u64,
    /// `parked_need[ch]`: bit `i` set ⇔ slot `i` holds a parked store whose
    /// plan needs at least one request-NoC slot on channel `ch`. Lets the
    /// issue scan mask out, in O(#channels), every parked retry that is
    /// guaranteed to fail because a needed channel has no free slot at all
    /// — the dominant scan traffic under store backpressure. Maintained on
    /// the park/unpark transitions in [`Sm::commit_store`] (and rebuilt on
    /// snapshot restore); purely an acceleration structure, never consulted
    /// for anything a failed retry's own check would not conclude.
    parked_need: Vec<u128>,
}

impl Sm {
    pub fn new(id: usize, cfg: &GpuConfig) -> Self {
        assert!(
            cfg.warps_per_sm <= 128,
            "warps_per_sm = {} exceeds the 128-slot scheduler bitmask",
            cfg.warps_per_sm
        );
        Self {
            id,
            issue_width: cfg.issue_width,
            l1: Cache::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes),
            slots: (0..cfg.warps_per_sm).map(|_| WarpSlot::empty()).collect(),
            rr: 0,
            mshr: FastMap::default(),
            mshr_capacity: cfg.l1_mshrs,
            drain_rr: 0,
            issueable: 0,
            unsent: 0,
            stalled: 0,
            computing: 0,
            instructions: 0,
            approximated_loads: 0,
            live_warps: 0,
            scratch_arrived: Vec::new(),
            scratch_lines: Vec::new(),
            opbuf: OpBuf::new(),
            waiter_pool: Vec::new(),
            mem_epoch: 0,
            parked_need: vec![0; cfg.num_channels],
        }
    }

    /// Recomputes slot `idx`'s bits in the scheduler masks from its state.
    /// Must be called after any mutation that can change the slot's
    /// issueability or its unsent-miss backlog.
    fn refresh_masks(&mut self, idx: usize) {
        let bit = 1u128 << idx;
        let slot = &self.slots[idx];
        let (issueable, unsent, stalled, computing) = if slot.program.is_none() {
            (false, false, false, false)
        } else {
            (
                slot.store_parked
                    || matches!(slot.state, WarpState::Ready | WarpState::Computing { .. }),
                matches!(slot.state, WarpState::Waiting) && !slot.wait.unsent.is_empty(),
                slot.store_parked,
                matches!(slot.state, WarpState::Computing { .. }),
            )
        };
        self.issueable = if issueable { self.issueable | bit } else { self.issueable & !bit };
        self.unsent = if unsent { self.unsent | bit } else { self.unsent & !bit };
        self.stalled = if stalled { self.stalled | bit } else { self.stalled & !bit };
        self.computing = if computing { self.computing | bit } else { self.computing & !bit };
    }

    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// Number of resident, unfinished warps.
    pub fn live_warps(&self) -> usize {
        self.live_warps
    }

    /// `true` when ticking this SM unconditionally does something this
    /// cycle: a warp can issue (Ready or Computing) or a blocked load still
    /// has unsent miss lines *and* a free MSHR to send one through — with
    /// every MSHR occupied, [`Sm::tick`] never even attempts a drain, so the
    /// cycle is a provable no-op despite the backlog. Two kinds of blocked
    /// warps are deliberately excluded: warps waiting purely on replies wake
    /// via the reply NoC, which the event-driven loop tracks separately, and
    /// warps holding a parked store retry are covered by
    /// [`Sm::stalled_store_ready`] — their retry fails identically every
    /// cycle until the request NoC frees up, which can only happen on a
    /// tracked event. O(1): answered from the scheduler masks.
    pub fn has_work(&self) -> bool {
        (self.issueable & !self.stalled) != 0
            || (self.unsent != 0 && self.mshr.len() < self.mshr_capacity)
    }

    /// `true` when some parked store's retry would succeed right now, i.e.
    /// every `(slice, count)` demand of its plan fits in the request NoC.
    /// While no SM pushes and no slice pops, `free()` is constant, so a
    /// retry that fails now fails the same way every cycle of a skipped
    /// span — only a retry that would succeed constitutes an event.
    pub fn stalled_store_ready(&self, req_noc: &[DelayQueue<SliceReq>]) -> bool {
        let mut ready = false;
        for_each_bit_rotated(self.stalled, 0, |idx| {
            let slot = &self.slots[idx];
            let fits = slot.store_parked
                && slot
                    .store
                    .per_slice
                    .iter()
                    .all(|&(slice, count)| req_noc[slice].free() >= count);
            if fits {
                ready = true;
            }
            !fits
        });
        ready
    }

    /// The earliest core cycle at which this SM needs a real [`Sm::tick`] —
    /// the first cycle its behavior stops being analytically predictable
    /// from the current state. `now` is the last completed cycle.
    ///
    /// * `Some(now + 1)` — a `Ready` warp can issue a real op next cycle,
    ///   or a blocked load has unsent miss lines and a free MSHR to drain
    ///   one through.
    /// * `Some(t)`, `t > now + 1` — every issueable warp is `Computing` (or
    ///   holds a parked store whose retry is a scan no-op): the round-robin
    ///   grant schedule is deterministic, so the earliest burst end — and
    ///   with it the first externally visible issue — is computable in
    ///   closed form. [`Sm::advance_compute`] replays any span ending
    ///   strictly before `t`.
    /// * `None` — nothing on this SM can act without an external stimulus:
    ///   no live warps, or only warps waiting on replies / holding parked
    ///   stores. Those wake via events the master loop already tracks
    ///   (reply-NoC heads, [`Sm::stalled_store_ready`]).
    ///
    /// With `w` computing warps and `g = min(w, issue_width)` grants per
    /// cycle, grants rotate through the computing slots purely cyclically
    /// (parked-store retries fail without consuming an issue slot or moving
    /// `rr`), so the warp at rotated position `o` with `left` grants to go
    /// receives its last grant — global grant index `o + (left-1)*w` — on
    /// cycle `now + (o + (left-1)*w) / g + 1` and can issue a real op the
    /// cycle after.
    pub fn next_external_event(&self, now: u64) -> Option<u64> {
        if self.live_warps == 0 {
            return None;
        }
        if (self.issueable & !self.stalled & !self.computing) != 0
            || (self.unsent != 0 && self.mshr.len() < self.mshr_capacity)
        {
            return Some(now + 1);
        }
        if self.computing == 0 {
            return None;
        }
        let n = self.slots.len();
        let w = u64::from(self.computing.count_ones());
        let g = w.min(self.issue_width as u64);
        let mut pos = 0u64;
        let mut first_end = u64::MAX;
        for_each_bit_rotated(self.computing, self.rr % n, |idx| {
            let WarpState::Computing { left } = self.slots[idx].state else {
                unreachable!("computing mask desynced from slot state");
            };
            debug_assert!(left >= 1, "a Computing warp always has work left");
            let last_grant = pos + (u64::from(left) - 1) * w;
            first_end = first_end.min(last_grant / g + 1);
            pos += 1;
            true
        });
        Some(now + first_end + 1)
    }

    /// Replays `cycles` pure compute-issue cycles of the round-robin
    /// schedule in closed form: decrements each `Computing` warp's `left`
    /// by exactly the grants the naive per-cycle loop would have issued it,
    /// transitions warps whose burst ends to `Ready`, and advances
    /// `instructions` and the `rr` cursor to the loop's values. Returns
    /// whether any compute state was advanced (false for idle spans).
    ///
    /// Callers must keep `cycles` strictly below the distance to
    /// [`Sm::next_external_event`]; the total grant count `cycles * g`
    /// splits as `per_warp = total / w` to everyone plus one extra to the
    /// first `total % w` slots in rotated order, and the cursor resumes
    /// after the slot holding the last grant — exactly where the naive scan
    /// would have left it (debug-asserted against each warp's remaining
    /// burst).
    pub fn advance_compute(&mut self, cycles: u64) -> bool {
        if cycles == 0 || self.computing == 0 {
            return false;
        }
        let n = self.slots.len();
        let w = u64::from(self.computing.count_ones());
        let g = w.min(self.issue_width as u64);
        let total = cycles * g;
        let (per_warp, extra) = (total / w, total % w);
        let last_pos = (total - 1) % w;
        let mut pos = 0u64;
        let mut last_slot = 0usize;
        let snapshot = self.computing;
        for_each_bit_rotated(snapshot, self.rr % n, |idx| {
            if pos == last_pos {
                last_slot = idx;
            }
            let grants = per_warp + u64::from(pos < extra);
            if grants > 0 {
                let WarpState::Computing { left } = &mut self.slots[idx].state else {
                    unreachable!("computing mask desynced from slot state");
                };
                debug_assert!(
                    u64::from(*left) >= grants,
                    "advance_compute overran a warp's burst: {left} left, {grants} grants"
                );
                *left -= grants as u32;
                if *left == 0 {
                    self.slots[idx].state = WarpState::Ready;
                    self.refresh_masks(idx);
                }
            }
            pos += 1;
            true
        });
        self.instructions += total;
        self.rr = (last_slot + 1) % n;
        true
    }

    /// `true` when a new warp can be placed. Slots empty out the instant a
    /// warp retires, so occupancy is exactly `live_warps`.
    pub fn has_free_slot(&self) -> bool {
        self.live_warps < self.slots.len()
    }

    /// Places the program of warp `warp_id` into a free slot.
    ///
    /// # Panics
    ///
    /// Panics if no slot is free; check [`Sm::has_free_slot`] first.
    pub fn dispatch(&mut self, warp_id: usize, program: Box<dyn WarpProgram>) {
        let idx = self
            .slots
            .iter()
            .position(|s| s.program.is_none())
            .expect("dispatch requires a free slot");
        let slot = &mut self.slots[idx];
        slot.program = Some(program);
        slot.warp_id = warp_id;
        slot.state = WarpState::Ready;
        slot.store_parked = false;
        slot.last_loaded.clear();
        self.live_warps += 1;
        self.refresh_masks(idx);
    }

    /// Handles a fill/approximation reply from the memory side.
    pub fn on_reply(&mut self, reply: Reply, image: &MemoryImage) {
        // Any reply can change what a blocked drain retry would find
        // (an L1 fill makes unsent lines probe-hittable) — invalidate
        // the slots' futility proofs.
        self.mem_epoch += 1;
        if reply.values.is_none() {
            // Exact data: cache it in L1 (clean).
            self.l1.fill(reply.line, false);
        }
        let Some(mut waiters) = self.mshr.remove(&reply.line) else {
            return;
        };
        for &idx in &waiters {
            let slot = &mut self.slots[idx];
            if slot.program.is_none() || !matches!(slot.state, WarpState::Waiting) {
                continue;
            }
            let Some(p) = slot.wait.pending.iter().position(|&l| l == reply.line) else {
                continue;
            };
            slot.wait.pending.swap_remove(p);
            if let Some(vals) = reply.values {
                slot.wait.approx.push((reply.line, vals));
            }
            if slot.wait.pending.is_empty() {
                // Replies are delivered before the SM ticks, so no writes
                // of this cycle are staged yet — the plain image is the
                // coherent view.
                Self::complete_load(slot, &OverlayView::new(image, &[]), &mut self.approximated_loads);
                self.refresh_masks(idx);
            }
        }
        waiters.clear();
        self.waiter_pool.push(waiters);
    }

    fn complete_load(slot: &mut WarpSlot, view: &OverlayView<'_>, approx_ctr: &mut u64) {
        debug_assert!(
            matches!(slot.state, WarpState::Waiting),
            "complete_load on non-waiting warp"
        );
        let WarpSlot { state, last_loaded, wait, .. } = slot;
        if wait.approx.is_empty() {
            // Exact load: one line resolution per coalesced line, refilling
            // the slot's buffer in place.
            view.read_lanes_into(&wait.lane_addrs, last_loaded);
        } else {
            // Every approximated line covers at least one lane (pending
            // lines come from the lane coalescing), so reaching this branch
            // means the load used predicted values.
            last_loaded.clear();
            last_loaded.reserve(wait.lane_addrs.len());
            for &addr in &wait.lane_addrs {
                let line = addr & !127;
                match wait.approx.iter().find(|(l, _)| *l == line) {
                    Some((_, vals)) => last_loaded.push(vals[((addr % 128) / 4) as usize]),
                    None => last_loaded.push(view.read_f32(addr)),
                }
            }
            *approx_ctr += 1;
        }
        *state = WarpState::Ready;
    }

    /// Issues up to `issue_width` warp instructions this cycle.
    ///
    /// Both scans iterate a *snapshot* of the relevant mask, so the visit
    /// order is exactly the linear slot scan's: a slot whose bit flips
    /// mid-scan is still visited (or not) precisely as the full scan would
    /// have — within one cycle, slots never wake each other, only
    /// themselves.
    pub fn tick(&mut self, ctx: &mut SmCtx<'_>) {
        let n = self.slots.len();
        if self.live_warps == 0 {
            return;
        }
        // Retry backpressured miss requests of blocked warps. Work is
        // bounded: stop at the first slot that stays blocked (resources are
        // exhausted anyway) and resume there next cycle, so a cycle touches
        // only as many warps as the freed MSHR/NoC space can serve.
        if self.unsent != 0 && self.mshr.len() < self.mshr_capacity {
            // Channels with at least one free staged request slot right
            // now. Free space only shrinks during the tick, so a zero here
            // stays zero for the whole scan.
            let mut avail: u32 = 0;
            for ch in 0..self.parked_need.len() {
                if ctx.stage.free(ch) > 0 {
                    avail |= 1 << ch;
                }
            }
            for_each_bit_rotated(self.unsent, self.drain_rr % n, |idx| {
                if self.mshr.len() >= self.mshr_capacity {
                    return false;
                }
                // A retry is provably futile when nothing changed that
                // could complete (L1 fill), merge (new MSHR entry) or send
                // (channel space) any of the slot's unsent lines. The full
                // attempt would leave every list bit-identical and stop
                // the scan here — do exactly that in O(1).
                let slot = &self.slots[idx];
                if slot.drain_epoch == self.mem_epoch && slot.unsent_channels & avail == 0 {
                    self.drain_rr = idx;
                    return false;
                }
                self.drain_unsent_for(idx, ctx);
                self.refresh_masks(idx);
                if self.unsent & (1u128 << idx) != 0 {
                    self.drain_rr = idx;
                    return false;
                }
                true
            });
        }
        if self.issueable != 0 {
            // Mask out parked stores that provably cannot commit this cycle:
            // a plan needing a channel with zero free request-NoC slots in
            // this SM's staged view fails its structural check at any scan
            // position (staged free space only shrinks within a cycle), and
            // a failed retry has no side effects — visiting it would only
            // burn a scan slot. O(#channels) against the `parked_need`
            // index; parked stores needing a merely-tight channel (free > 0
            // but short of the plan) are still visited and fail normally.
            let mut scan = self.issueable;
            if self.stalled != 0 {
                for (ch, &need) in self.parked_need.iter().enumerate() {
                    if need != 0 && ctx.stage.free(ch) == 0 {
                        scan &= !need;
                    }
                }
            }
            let mut issued = 0;
            for_each_bit_rotated(scan, self.rr % n, |idx| {
                if issued >= self.issue_width {
                    return false;
                }
                if self.try_issue(idx, ctx) {
                    issued += 1;
                    self.rr = (idx + 1) % n;
                }
                self.refresh_masks(idx);
                true
            });
        }
    }

    /// Attempts to issue one instruction from slot `idx`; returns success.
    fn try_issue(&mut self, idx: usize, ctx: &mut SmCtx<'_>) -> bool {
        enum Plan {
            Compute,
            Retry,
            Op,
        }
        let plan = {
            let slot = &mut self.slots[idx];
            if slot.program.is_none() {
                return false;
            }
            match &mut slot.state {
                WarpState::Done | WarpState::Waiting => return false,
                WarpState::Computing { left } => {
                    *left -= 1;
                    let finished = *left == 0;
                    if finished {
                        slot.state = WarpState::Ready;
                    }
                    Plan::Compute
                }
                WarpState::Ready => {
                    if slot.store_parked {
                        Plan::Retry
                    } else {
                        Plan::Op
                    }
                }
            }
        };
        match plan {
            Plan::Compute => {
                self.instructions += 1;
                true
            }
            Plan::Retry => self.commit_store(idx, ctx),
            Plan::Op => {
                // Move the SM's op buffer out to sidestep aliasing with the
                // slot — a `mem::take` of Vec-backed buffers allocates
                // nothing and keeps their capacity.
                let mut buf = std::mem::take(&mut self.opbuf);
                {
                    let slot = &mut self.slots[idx];
                    let program = slot.program.as_mut().expect("occupied slot");
                    program.next(&slot.last_loaded, &mut buf);
                    slot.last_loaded.clear();
                }
                let ok = self.execute_op(idx, &buf, ctx);
                self.opbuf = buf;
                ok
            }
        }
    }

    fn execute_op(&mut self, idx: usize, op: &OpBuf, ctx: &mut SmCtx<'_>) -> bool {
        match op.kind() {
            OpKind::Compute(0) => {
                // Degenerate no-op: retire it without consuming a slot so a
                // buggy kernel cannot stall forever; issue the next op.
                self.slots[idx].state = WarpState::Ready;
                self.instructions += 1;
                true
            }
            OpKind::Compute(n) => {
                // The first of the n instructions issues this cycle.
                self.slots[idx].state = if n == 1 {
                    WarpState::Ready
                } else {
                    WarpState::Computing { left: n - 1 }
                };
                self.instructions += 1;
                true
            }
            OpKind::Load => self.issue_load(idx, op.addrs(), ctx),
            OpKind::Store => self.issue_store(idx, op.writes(), ctx),
            OpKind::Finished => {
                let slot = &mut self.slots[idx];
                slot.state = WarpState::Done;
                slot.program = None;
                self.live_warps -= 1;
                true
            }
        }
    }

    fn issue_load(&mut self, idx: usize, addrs: &[u64], ctx: &mut SmCtx<'_>) -> bool {
        debug_assert!(!addrs.is_empty(), "empty load");
        // Coalesce to distinct lines, preserving first-touch order.
        let mut lines = std::mem::take(&mut self.scratch_lines);
        lines.clear();
        coalesce_lines(&mut lines, addrs.iter().copied());
        // Classify: L1 hits complete immediately; everything else is
        // pending. A load always issues — lines that cannot get an MSHR or
        // a NoC slot right now sit in `unsent` and trickle out. The pending
        // and unsent lists refill the slot's persistent buffers.
        {
            let wait = &mut self.slots[idx].wait;
            wait.pending.clear();
            wait.unsent.clear();
            wait.approx.clear();
        }
        for &l in &lines {
            match self.l1.access(l, false) {
                AccessResult::Hit => {}
                AccessResult::Miss => {
                    self.slots[idx].wait.pending.push(l);
                    if let Some(waiters) = self.mshr.get_mut(&l) {
                        waiters.push(idx); // merge with in-flight miss
                    } else {
                        self.slots[idx].wait.unsent.push(l);
                    }
                }
            }
        }
        self.scratch_lines = lines;
        // One warp-load instruction covers up to 32 lane addresses; larger
        // batches model several back-to-back load instructions kept in
        // flight by the scoreboard (intra-warp MLP).
        self.instructions += addrs.len().div_ceil(32) as u64;
        let WarpSlot { state, wait, last_loaded, .. } = &mut self.slots[idx];
        if wait.pending.is_empty() {
            // Pure L1 hit: values available for the next issue of this warp,
            // assembled line-at-a-time into the slot's reusable buffer. The
            // overlay makes stores staged earlier this cycle visible.
            OverlayView::new(ctx.image, &ctx.stage.writes).read_lanes_into(addrs, last_loaded);
            *state = WarpState::Ready;
        } else {
            wait.lane_addrs.clear();
            wait.lane_addrs.extend_from_slice(addrs);
            *state = WarpState::Waiting;
            self.drain_unsent_for(idx, ctx);
        }
        true
    }

    /// Sends as many of slot `idx`'s unsent miss lines as MSHR capacity and
    /// NoC space allow. Lines that became present in L1 meanwhile complete
    /// immediately.
    fn drain_unsent_for(&mut self, idx: usize, ctx: &mut SmCtx<'_>) {
        // Take the unsent list out to sidestep aliasing with self.mshr/l1;
        // it returns to the slot below, so its capacity is never dropped.
        let mut unsent = {
            let slot = &mut self.slots[idx];
            if !matches!(slot.state, WarpState::Waiting) {
                return;
            }
            std::mem::take(&mut slot.wait.unsent)
        };
        // Lines that stay unsent are compacted in place; arrived lines go
        // to the SM-lifetime scratch buffer — no allocation on this path.
        self.scratch_arrived.clear();
        let mut still_len = 0;
        let mut still_channels: u32 = 0;
        for i in 0..unsent.len() {
            let l = unsent[i];
            if self.l1.probe(l) {
                // Filled by a sibling warp's request while we waited.
                self.scratch_arrived.push(l);
            } else if let Some(waiters) = self.mshr.get_mut(&l) {
                waiters.push(idx);
            } else {
                let ch = ctx.map.channel_of(l);
                if self.mshr.len() < self.mshr_capacity && ctx.stage.free(ch) > 0 {
                    ctx.stage.push_req(
                        ch,
                        SliceReq {
                            sm: self.id,
                            line: l,
                            write: false,
                            approximable: ctx.kernel.approximable(l),
                        },
                    );
                    let mut waiters = self.waiter_pool.pop().unwrap_or_default();
                    waiters.push(idx);
                    self.mshr.insert(l, waiters);
                    // A fresh entry is a merge target for other blocked
                    // lines — invalidate their futility proofs.
                    self.mem_epoch += 1;
                } else {
                    unsent[still_len] = l;
                    still_len += 1;
                    still_channels |= 1 << ch;
                }
            }
        }
        unsent.truncate(still_len);
        let view = OverlayView::new(ctx.image, &ctx.stage.writes);
        let slot = &mut self.slots[idx];
        let wait = &mut slot.wait;
        wait.unsent = unsent;
        slot.drain_epoch = self.mem_epoch;
        slot.unsent_channels = still_channels;
        for &l in &self.scratch_arrived {
            if let Some(p) = wait.pending.iter().position(|&x| x == l) {
                wait.pending.swap_remove(p);
            }
        }
        if wait.pending.is_empty() {
            Self::complete_load(slot, &view, &mut self.approximated_loads);
        }
    }

    fn issue_store(&mut self, idx: usize, writes: &[(u64, f32)], ctx: &mut SmCtx<'_>) -> bool {
        debug_assert!(!writes.is_empty(), "empty store");
        // Build the coalescing plan into the slot's persistent buffers.
        let store = &mut self.slots[idx].store;
        store.writes.clear();
        store.writes.extend_from_slice(writes);
        store.lines.clear();
        coalesce_lines(&mut store.lines, writes.iter().map(|&(a, _)| a));
        store.per_slice.clear();
        for &l in &store.lines {
            let ch = ctx.map.channel_of(l);
            match store.per_slice.iter_mut().find(|&&mut (s, _)| s == ch) {
                Some(&mut (_, ref mut count)) => *count += 1,
                None => store.per_slice.push((ch, 1)),
            }
        }
        self.commit_store(idx, ctx)
    }

    /// Issues the store whose coalescing plan sits in slot `idx`'s `store`
    /// buffers. On backpressure the plan parks in place for a cheap retry
    /// next cycle.
    fn commit_store(&mut self, idx: usize, ctx: &mut SmCtx<'_>) -> bool {
        let sm_id = self.id;
        let slot = &mut self.slots[idx];
        // Structural check before any side effect, against this SM's view
        // of the cycle-start occupancy snapshot.
        if slot
            .store
            .per_slice
            .iter()
            .any(|&(slice, count)| ctx.stage.free(slice) < count)
        {
            // Park, and index the plan's channel demand so the issue scan
            // can skip this retry outright while a needed channel is full.
            let bit = 1u128 << idx;
            for &(slice, _) in &slot.store.per_slice {
                self.parked_need[slice] |= bit;
            }
            slot.store_parked = true;
            return false;
        }
        if slot.store_parked {
            let bit = 1u128 << idx;
            for &(slice, _) in &slot.store.per_slice {
                self.parked_need[slice] &= !bit;
            }
        }
        slot.store_parked = false;
        let store = &slot.store;
        ctx.stage.stage_writes(&store.writes);
        for &l in &store.lines {
            ctx.stage.push_req(
                ctx.map.channel_of(l),
                SliceReq {
                    sm: sm_id,
                    line: l,
                    write: true,
                    approximable: false,
                },
            );
        }
        self.instructions += store.writes.len().div_ceil(32) as u64;
        // Write-through: the warp does not wait for stores.
        true
    }

    /// Serializes the SM's dynamic state: scheduler cursors, counters, L1
    /// contents, MSHR table and every occupied warp slot (including the
    /// resident program's state). Geometry (slot count, cache shape, MSHR
    /// capacity) is configuration and is not written; scratch buffers are
    /// transient and skipped.
    pub fn save_state(&self, s: &mut Saver) {
        s.usize("rr", self.rr);
        s.usize("drain_rr", self.drain_rr);
        s.u64("instructions", self.instructions);
        s.u64("approximated_loads", self.approximated_loads);
        s.frame("l1", 0, |s| self.l1.save_state(s));
        let mut lines: Vec<u64> = self.mshr.keys().copied().collect();
        lines.sort_unstable();
        s.seq("mshr", lines.len());
        for line in lines {
            s.u64("line", line);
            let waiters = &self.mshr[&line];
            s.seq("waiters", waiters.len());
            for &w in waiters {
                s.usize("waiter", w);
            }
        }
        s.seq("slots", self.slots.len());
        for (i, slot) in self.slots.iter().enumerate() {
            s.frame("slot", i as u32, |s| {
                let occupied = slot.program.is_some();
                s.bool("occupied", occupied);
                if !occupied {
                    return;
                }
                s.usize("warp_id", slot.warp_id);
                match slot.state {
                    WarpState::Ready => s.u8("state", 0),
                    WarpState::Computing { left } => {
                        s.u8("state", 1);
                        s.u32("left", left);
                    }
                    WarpState::Waiting => s.u8("state", 2),
                    WarpState::Done => s.u8("state", 3),
                }
                s.bool("store_parked", slot.store_parked);
                s.u64s("lane_addrs", &slot.wait.lane_addrs);
                s.u64s("pending", &slot.wait.pending);
                s.u64s("unsent", &slot.wait.unsent);
                s.seq("approx", slot.wait.approx.len());
                for (line, vals) in &slot.wait.approx {
                    s.u64("line", *line);
                    s.f32s("vals", vals);
                }
                s.seq("writes", slot.store.writes.len());
                for &(a, v) in &slot.store.writes {
                    s.u64("addr", a);
                    s.f32("val", v);
                }
                s.u64s("lines", &slot.store.lines);
                s.seq("per_slice", slot.store.per_slice.len());
                for &(ch, count) in &slot.store.per_slice {
                    s.usize("slice", ch);
                    s.usize("count", count);
                }
                s.f32s("last_loaded", &slot.last_loaded);
                s.frame("prog", 0, |s| {
                    slot.program.as_ref().expect("occupied slot").save_state(s);
                });
            });
        }
    }

    /// Restores state written by [`Sm::save_state`] into an SM built from the
    /// same configuration. `kernel` must be the kernel of the checkpointed
    /// launch: each resident warp's program is rebuilt via
    /// [`Kernel::program`] and then fed its saved dynamic state. Scheduler
    /// masks are recomputed from the restored slots.
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed or the slot
    /// count disagrees with this SM's configuration.
    pub fn load_state(&mut self, l: &mut Loader<'_>, kernel: &dyn Kernel) -> SnapResult<()> {
        self.rr = l.usize("rr")?;
        self.drain_rr = l.usize("drain_rr")?;
        self.instructions = l.u64("instructions")?;
        self.approximated_loads = l.u64("approximated_loads")?;
        l.frame("l1", 0, |l| self.l1.load_state(l))?;
        let n_mshr = l.seq("mshr", 16)?;
        self.mshr.clear();
        self.mshr.reserve(n_mshr);
        for _ in 0..n_mshr {
            let line = l.u64("line")?;
            let n_w = l.seq("waiters", 8)?;
            let mut waiters = self.waiter_pool.pop().unwrap_or_default();
            waiters.clear();
            waiters.reserve(n_w);
            for _ in 0..n_w {
                waiters.push(l.usize("waiter")?);
            }
            if self.mshr.insert(line, waiters).is_some() {
                return Err(SnapError::Malformed {
                    label: "mshr".into(),
                    why: format!("duplicate line {line:#x}"),
                });
            }
        }
        let n_slots = l.seq("slots", 16)?;
        if n_slots != self.slots.len() {
            return Err(SnapError::Malformed {
                label: "slots".into(),
                why: format!("snapshot has {n_slots} slots, SM has {}", self.slots.len()),
            });
        }
        let mut live = 0usize;
        for (i, slot) in self.slots.iter_mut().enumerate() {
            l.frame("slot", i as u32, |l| {
                let occupied = l.bool("occupied")?;
                if !occupied {
                    slot.program = None;
                    slot.warp_id = 0;
                    slot.state = WarpState::Done;
                    slot.store_parked = false;
                    slot.wait.lane_addrs.clear();
                    slot.wait.pending.clear();
                    slot.wait.unsent.clear();
                    slot.wait.approx.clear();
                    slot.store.writes.clear();
                    slot.store.lines.clear();
                    slot.store.per_slice.clear();
                    slot.last_loaded.clear();
                    return Ok(());
                }
                slot.warp_id = l.usize("warp_id")?;
                slot.state = match l.u8("state")? {
                    0 => WarpState::Ready,
                    1 => WarpState::Computing { left: l.u32("left")? },
                    2 => WarpState::Waiting,
                    3 => WarpState::Done,
                    x => {
                        return Err(SnapError::Malformed {
                            label: "state".into(),
                            why: format!("unknown warp state {x}"),
                        })
                    }
                };
                slot.store_parked = l.bool("store_parked")?;
                l.u64s("lane_addrs", &mut slot.wait.lane_addrs)?;
                l.u64s("pending", &mut slot.wait.pending)?;
                l.u64s("unsent", &mut slot.wait.unsent)?;
                let n_a = l.seq("approx", 8)?;
                slot.wait.approx.clear();
                for _ in 0..n_a {
                    let line = l.u64("line")?;
                    let mut vals = [0.0f32; 32];
                    l.f32_array("vals", &mut vals)?;
                    slot.wait.approx.push((line, vals));
                }
                let n_w = l.seq("writes", 12)?;
                slot.store.writes.clear();
                for _ in 0..n_w {
                    let a = l.u64("addr")?;
                    let v = l.f32("val")?;
                    slot.store.writes.push((a, v));
                }
                l.u64s("lines", &mut slot.store.lines)?;
                let n_ps = l.seq("per_slice", 16)?;
                slot.store.per_slice.clear();
                for _ in 0..n_ps {
                    let ch = l.usize("slice")?;
                    let count = l.usize("count")?;
                    slot.store.per_slice.push((ch, count));
                }
                l.f32s("last_loaded", &mut slot.last_loaded)?;
                let mut program = kernel.program(slot.warp_id);
                l.frame("prog", 0, |l| program.load_state(l))?;
                slot.program = Some(program);
                live += 1;
                Ok(())
            })?;
        }
        self.live_warps = live;
        self.scratch_arrived.clear();
        self.scratch_lines.clear();
        for idx in 0..self.slots.len() {
            self.refresh_masks(idx);
        }
        // The drain-futility proofs are derived state: mark every slot
        // stale so the first post-restore drain attempt runs in full.
        self.mem_epoch = 0;
        for slot in self.slots.iter_mut() {
            slot.drain_epoch = u64::MAX;
            slot.unsent_channels = 0;
        }
        // Rebuild the parked-store channel index from the restored plans.
        self.parked_need.iter_mut().for_each(|m| *m = 0);
        for (idx, slot) in self.slots.iter().enumerate() {
            if slot.program.is_some() && slot.store_parked {
                for &(slice, _) in &slot.store.per_slice {
                    self.parked_need[slice] |= 1u128 << idx;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydram_common::GpuConfig;

    /// A trivial kernel: each warp loads 32 consecutive floats and stores
    /// their doubles.
    struct MiniKernel {
        base: u64,
    }

    impl Kernel for MiniKernel {
        fn name(&self) -> &str {
            "mini"
        }
        fn setup(&mut self, mem: &mut MemoryImage) {
            self.base = mem.alloc(64);
            for i in 0..32 {
                mem.write_f32(self.base + i * 4, i as f32);
            }
        }
        fn total_warps(&self) -> usize {
            1
        }
        fn program(&self, _warp: usize) -> Box<dyn WarpProgram> {
            Box::new(MiniProgram { base: self.base, step: 0 })
        }
        fn approximable(&self, _addr: u64) -> bool {
            true
        }
        fn output(&self, mem: &MemoryImage) -> Vec<f32> {
            mem.read_slice(self.base + 128, 32)
        }
    }

    struct MiniProgram {
        base: u64,
        step: u32,
    }

    impl WarpProgram for MiniProgram {
        fn next(&mut self, loaded: &[f32], out: &mut OpBuf) {
            self.step += 1;
            match self.step {
                1 => out.begin_load().extend((0..32u64).map(|i| self.base + i * 4)),
                2 => out.begin_store().extend(
                    loaded
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (self.base + 128 + i as u64 * 4, v * 2.0)),
                ),
                _ => out.set_finished(),
            }
        }

        fn save_state(&self, s: &mut Saver) {
            s.u32("step", self.step);
        }

        fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
            self.step = l.u32("step")?;
            Ok(())
        }
    }

    fn setup() -> (Sm, MemoryImage, AddressMap, MiniKernel, Vec<DelayQueue<SliceReq>>) {
        let cfg = GpuConfig::default();
        let sm = Sm::new(0, &cfg);
        let mut image = MemoryImage::new();
        let mut kernel = MiniKernel { base: 0 };
        kernel.setup(&mut image);
        let map = AddressMap::new(&cfg);
        let noc: Vec<DelayQueue<SliceReq>> =
            (0..6).map(|_| DelayQueue::new(0, 64, 8)).collect();
        (sm, image, map, kernel, noc)
    }

    /// One phased cycle for a single SM: tick against a stage, then commit
    /// the staged writes and requests the way phase B of the master loop
    /// does.
    fn run_cycle(
        sm: &mut Sm,
        now: u64,
        image: &mut MemoryImage,
        map: &AddressMap,
        kernel: &dyn Kernel,
        noc: &mut [DelayQueue<SliceReq>],
    ) {
        let free0: Vec<usize> = noc.iter().map(|q| q.free()).collect();
        let mut stage = SmStage::new(noc.len());
        stage.begin_cycle(&free0);
        {
            let mut ctx = SmCtx { image, map, kernel, stage: &mut stage };
            sm.tick(&mut ctx);
        }
        if !stage.writes.is_empty() {
            image.write_lanes(&stage.writes);
        }
        for &(ch, req) in &stage.reqs {
            noc[ch].push_unchecked(now, req);
        }
    }

    #[test]
    fn load_coalesces_and_blocks_warp() {
        let (mut sm, mut image, map, kernel, mut noc) = setup();
        sm.dispatch(0, kernel.program(0));
        run_cycle(&mut sm, 1, &mut image, &map, &kernel, &mut noc);
        // 32 floats = 128 B = 1 line → 1 request on its home slice.
        let total: usize = noc.iter().map(|q| q.len()).sum();
        assert_eq!(total, 1);
        assert_eq!(sm.instructions, 1);
        // Warp is blocked: nothing more issues.
        run_cycle(&mut sm, 2, &mut image, &map, &kernel, &mut noc);
        assert_eq!(sm.instructions, 1);
    }

    #[test]
    fn reply_unblocks_and_store_writes_image() {
        let (mut sm, mut image, map, kernel, mut noc) = setup();
        let base = kernel.base;
        sm.dispatch(0, kernel.program(0));
        run_cycle(&mut sm, 1, &mut image, &map, &kernel, &mut noc);
        sm.on_reply(Reply { line: base, values: None }, &image);
        run_cycle(&mut sm, 2, &mut image, &map, &kernel, &mut noc); // store issues
        run_cycle(&mut sm, 3, &mut image, &map, &kernel, &mut noc); // finish
        assert_eq!(image.read_f32(base + 128 + 4), 2.0);
        assert_eq!(sm.live_warps(), 0);
        assert_eq!(sm.approximated_loads, 0);
        // L1 was filled by the reply: a fresh probe hits.
        assert!(sm.l1().probe(base));
    }

    #[test]
    fn approximated_reply_supplies_predicted_values() {
        let (mut sm, mut image, map, kernel, mut noc) = setup();
        let base = kernel.base;
        sm.dispatch(0, kernel.program(0));
        run_cycle(&mut sm, 1, &mut image, &map, &kernel, &mut noc);
        sm.on_reply(Reply { line: base, values: Some([7.0; 32]) }, &image);
        run_cycle(&mut sm, 2, &mut image, &map, &kernel, &mut noc);
        run_cycle(&mut sm, 3, &mut image, &map, &kernel, &mut noc);
        // Stored values come from the prediction, not the image.
        assert_eq!(image.read_f32(base + 128), 14.0);
        assert_eq!(sm.approximated_loads, 1);
        // Approximated lines are not cached in L1 (no-reuse model).
        assert!(!sm.l1().probe(base));
    }

    #[test]
    fn mshr_merges_same_line_across_warps() {
        struct TwoWarps {
            inner: MiniKernel,
        }
        impl Kernel for TwoWarps {
            fn name(&self) -> &str {
                "two"
            }
            fn setup(&mut self, mem: &mut MemoryImage) {
                self.inner.setup(mem);
            }
            fn total_warps(&self) -> usize {
                2
            }
            fn program(&self, _w: usize) -> Box<dyn WarpProgram> {
                self.inner.program(0)
            }
            fn approximable(&self, a: u64) -> bool {
                self.inner.approximable(a)
            }
            fn output(&self, mem: &MemoryImage) -> Vec<f32> {
                self.inner.output(mem)
            }
        }
        let cfg = GpuConfig::default();
        let mut sm = Sm::new(0, &cfg);
        let mut image = MemoryImage::new();
        let mut kernel = TwoWarps { inner: MiniKernel { base: 0 } };
        kernel.setup(&mut image);
        let map = AddressMap::new(&cfg);
        let mut noc: Vec<DelayQueue<SliceReq>> =
            (0..6).map(|_| DelayQueue::new(0, 64, 8)).collect();
        sm.dispatch(0, kernel.program(0));
        sm.dispatch(1, kernel.program(1));
        run_cycle(&mut sm, 1, &mut image, &map, &kernel, &mut noc);
        // Both warps issue their load (issue_width = 2).
        let total: usize = noc.iter().map(|q| q.len()).sum();
        assert_eq!(total, 1, "second warp's identical line must merge");
        let base = kernel.inner.base;
        sm.on_reply(Reply { line: base, values: None }, &image);
        run_cycle(&mut sm, 2, &mut image, &map, &kernel, &mut noc);
        run_cycle(&mut sm, 3, &mut image, &map, &kernel, &mut noc);
        assert_eq!(sm.live_warps(), 0, "both warps must complete");
    }

    #[test]
    fn noc_backpressure_defers_miss_requests() {
        let (mut sm, mut image, map, kernel, _) = setup();
        let base = kernel.base;
        // Tiny NoC with no room.
        let mut noc: Vec<DelayQueue<SliceReq>> =
            (0..6).map(|_| DelayQueue::new(0, 1, 1)).collect();
        for q in noc.iter_mut() {
            q.push(0, SliceReq { sm: 9, line: 0, write: false, approximable: false }).unwrap();
        }
        sm.dispatch(0, kernel.program(0));
        run_cycle(&mut sm, 1, &mut image, &map, &kernel, &mut noc);
        // The load issues (instruction retired) but its miss request cannot
        // leave yet: no MSHR is allocated, the line sits in `unsent`.
        assert_eq!(sm.instructions, 1, "load issues despite backpressure");
        assert!(sm.mshr.is_empty(), "no MSHR allocated while the NoC is full");
        // Free the queue; the deferred request drains on a later tick.
        for q in noc.iter_mut() {
            let _ = q.pop_ready(1);
        }
        run_cycle(&mut sm, 2, &mut image, &map, &kernel, &mut noc);
        assert_eq!(sm.mshr.len(), 1, "deferred miss sent once space freed");
        assert!(sm.mshr.contains_key(&base));
    }

    /// Serializes an SM's full dynamic state for bit-identity comparison.
    fn state_bytes(sm: &Sm) -> Vec<u8> {
        let mut s = Saver::new();
        sm.save_state(&mut s);
        s.finish()
    }

    /// How a scheduler slot is populated for the analytic-replay tests.
    #[derive(Debug, Clone, Copy)]
    enum SlotSpec {
        Empty,
        Computing(u32),
        /// A parked store whose per-slice demand can never fit: its retry
        /// is a scan no-op every cycle, exactly like in a skipped span.
        Parked,
        /// Waiting on a reply that never comes: inert for the scheduler.
        Waiting,
    }

    /// Builds an SM whose slots match `specs`, with the round-robin cursor
    /// at `rr`. Deterministic, so two calls produce bit-identical SMs.
    fn build_sm(specs: &[SlotSpec], issue_width: usize, rr: usize) -> Sm {
        let cfg = GpuConfig {
            issue_width,
            warps_per_sm: specs.len().max(1),
            ..GpuConfig::default()
        };
        let mut sm = Sm::new(0, &cfg);
        let kernel = MiniKernel { base: 0 };
        for (i, _) in specs.iter().enumerate() {
            sm.dispatch(i, kernel.program(i));
        }
        for (i, spec) in specs.iter().enumerate() {
            match *spec {
                SlotSpec::Empty => {
                    // Retire the warp the way a Finished op would.
                    sm.slots[i].program = None;
                    sm.slots[i].state = WarpState::Done;
                    sm.live_warps -= 1;
                }
                SlotSpec::Computing(left) => {
                    sm.slots[i].state = WarpState::Computing { left: left.max(1) };
                }
                SlotSpec::Parked => {
                    sm.slots[i].state = WarpState::Ready;
                    sm.slots[i].store_parked = true;
                    sm.slots[i].store.writes.push((0, 1.0));
                    sm.slots[i].store.lines.push(0);
                    sm.slots[i].store.per_slice.push((0, usize::MAX / 2));
                }
                SlotSpec::Waiting => {
                    sm.slots[i].state = WarpState::Waiting;
                    sm.slots[i].wait.pending.push(1 << 20);
                }
            }
            sm.refresh_masks(i);
        }
        sm.rr = rr % specs.len().max(1);
        sm
    }

    /// Naively ticks `sm` for `cycles` cycles and asserts no external effect
    /// (no staged request or write) escaped — the precondition under which
    /// `advance_compute` claims equivalence.
    fn naive_advance(sm: &mut Sm, cycles: u64) {
        let cfg = GpuConfig::default();
        let mut image = MemoryImage::new();
        let kernel = MiniKernel { base: 0 };
        let map = AddressMap::new(&cfg);
        let mut noc: Vec<DelayQueue<SliceReq>> =
            (0..6).map(|_| DelayQueue::new(0, 64, 8)).collect();
        for now in 1..=cycles {
            run_cycle(sm, now, &mut image, &map, &kernel, &mut noc);
        }
        assert!(
            noc.iter().all(|q| q.is_empty()),
            "a compute-only span must not emit requests"
        );
    }

    #[test]
    fn next_external_event_closed_form_matches_hand_computation() {
        // Slots: Computing(5), parked store, Computing(1), Computing(7);
        // issue_width 2 => w = 3 computing warps, g = 2 grants/cycle.
        let specs = [
            SlotSpec::Computing(5),
            SlotSpec::Parked,
            SlotSpec::Computing(1),
            SlotSpec::Computing(7),
        ];
        let sm = build_sm(&specs, 2, 0);
        // Rotated positions o = 0, 1, 2 for slots 0, 2, 3. Burst ends:
        // slot 0: (0 + 4*3)/2 + 1 = 7; slot 2: (1 + 0)/2 + 1 = 1;
        // slot 3: (2 + 6*3)/2 + 1 = 11. Earliest Ready at now+1, so the
        // first real op can issue at now+2.
        assert_eq!(sm.next_external_event(100), Some(102));

        let mut analytic = build_sm(&specs, 2, 0);
        assert!(analytic.advance_compute(1));
        let mut naive = build_sm(&specs, 2, 0);
        naive_advance(&mut naive, 1);
        assert_eq!(state_bytes(&analytic), state_bytes(&naive));
        assert_eq!(analytic.rr, 3, "cursor resumes after the last granted slot");
        assert_eq!(analytic.instructions, 2);
        assert!(
            matches!(analytic.slots[2].state, WarpState::Ready),
            "slot 2's burst ended exactly at the span boundary"
        );
        // The freshly Ready warp is now the SM's next external event.
        assert_eq!(analytic.next_external_event(101), Some(102));
    }

    #[test]
    fn next_external_event_classifies_idle_and_busy_sms() {
        let sm = build_sm(&[SlotSpec::Waiting, SlotSpec::Parked], 2, 0);
        assert_eq!(
            sm.next_external_event(5),
            None,
            "pure waiters/parked stores wake only via tracked events"
        );
        assert!(!sm.has_work());

        let sm = build_sm(&[SlotSpec::Computing(3), SlotSpec::Empty], 2, 0);
        assert_eq!(sm.next_external_event(5), Some(5 + 3 + 1));
        assert!(sm.has_work(), "a computing SM still has work for the naive loop");

        let mut sm = build_sm(&[SlotSpec::Computing(3)], 2, 0);
        sm.slots[0].state = WarpState::Ready;
        sm.refresh_masks(0);
        assert_eq!(sm.next_external_event(5), Some(6), "Ready warps need a real tick");
    }

    #[test]
    fn advance_compute_is_a_noop_without_computing_warps() {
        let mut sm = build_sm(&[SlotSpec::Waiting, SlotSpec::Parked], 2, 0);
        let before = state_bytes(&sm);
        assert!(!sm.advance_compute(1000), "idle spans are not compute-skips");
        assert_eq!(state_bytes(&sm), before);
    }

    /// The PR 2 drain resume-point contract, pinned: when a drain blocks on
    /// MSHR capacity mid-rotation, `drain_rr` records the blocked slot —
    /// even when the rotation started past it — so the next cycle resumes
    /// exactly there. The rotated scan visits each set bit at most once per
    /// cycle, so recording the blocked slot can never cause a double visit.
    #[test]
    fn drain_resumes_at_the_blocked_slot() {
        struct WideKernel {
            base: u64,
        }
        impl Kernel for WideKernel {
            fn name(&self) -> &str {
                "wide"
            }
            fn setup(&mut self, mem: &mut MemoryImage) {
                self.base = mem.alloc(4 * 128);
            }
            fn total_warps(&self) -> usize {
                2
            }
            fn program(&self, warp: usize) -> Box<dyn WarpProgram> {
                // Warp 0 loads lines 0-1, warp 1 loads lines 2-3.
                Box::new(MiniProgram { base: self.base + warp as u64 * 256, step: 0 })
            }
            fn approximable(&self, _addr: u64) -> bool {
                false
            }
            fn output(&self, _mem: &MemoryImage) -> Vec<f32> {
                Vec::new()
            }
        }
        // MiniProgram loads 32 consecutive floats = 1 line; widen by giving
        // each warp two back-to-back load steps? Simpler: two MSHRs total,
        // two warps with one miss line each, plus a third line to create a
        // backlog. Use 1 MSHR so warp 1's line cannot send while warp 0's
        // miss is in flight.
        let cfg = GpuConfig { l1_mshrs: 1, ..GpuConfig::default() };
        let mut sm = Sm::new(0, &cfg);
        let mut image = MemoryImage::new();
        let mut kernel = WideKernel { base: 0 };
        kernel.setup(&mut image);
        let map = AddressMap::new(&cfg);
        let mut noc: Vec<DelayQueue<SliceReq>> =
            (0..6).map(|_| DelayQueue::new(0, 64, 8)).collect();
        sm.dispatch(0, kernel.program(0));
        sm.dispatch(1, kernel.program(1));
        run_cycle(&mut sm, 1, &mut image, &map, &kernel, &mut noc);
        // Both warps issued their load; the single MSHR went to warp 0, so
        // warp 1's miss line sits unsent.
        assert_eq!(sm.mshr.len(), 1);
        assert_eq!(sm.unsent, 0b10, "warp 1 has the unsent backlog");
        // Point the drain cursor *past* the blocked slot: the rotated scan
        // must wrap around and still find it once capacity frees up.
        sm.drain_rr = 7;
        sm.on_reply(Reply { line: kernel.base, values: None }, &image);
        run_cycle(&mut sm, 2, &mut image, &map, &kernel, &mut noc);
        assert!(
            sm.mshr.contains_key(&(kernel.base + 256)),
            "freed MSHR goes to the wrapped-around blocked slot"
        );
        assert_eq!(sm.unsent, 0, "warp 1's single line drained fully");
        // A drain that *stays* blocked records its slot as the resume
        // point. Refill the MSHR pressure via a third resident warp.
        assert_eq!(sm.drain_rr, 7, "a fully drained scan leaves the cursor alone");
    }

    #[test]
    fn coalesce_lines_matches_reference_on_patterns() {
        let reference = |addrs: &[u64]| {
            let mut lines: Vec<u64> = Vec::new();
            for &a in addrs {
                let l = a & !127;
                if !lines.contains(&l) {
                    lines.push(l);
                }
            }
            lines
        };
        let cases: Vec<Vec<u64>> = vec![
            (0..64u64).map(|i| i * 4).collect(),              // rising, dense
            (0..64u64).rev().map(|i| i * 4).collect(),        // falling
            (0..32u64).map(|i| 4096 + i * 128).collect(),     // rising, strided
            vec![100, 100, 100],                              // constant
            vec![0, 300, 40, 700, 40, 0],                     // non-monotone
            vec![5000],                                       // single
            vec![],                                           // empty
            (0..48u64).map(|i| (i * 37) % 1024).collect(),    // scrambled
        ];
        for addrs in cases {
            let mut got = Vec::new();
            coalesce_lines(&mut got, addrs.iter().copied());
            assert_eq!(got, reference(&addrs), "pattern {addrs:?}");
        }
    }

    mod analytic_props {
        use super::*;
        use proptest::prelude::*;

        fn slot_spec() -> impl Strategy<Value = SlotSpec> {
            // Computing appears twice to bias the mix toward busy slots.
            prop_oneof![
                Just(SlotSpec::Empty),
                (1u32..24).prop_map(SlotSpec::Computing),
                (24u32..400).prop_map(SlotSpec::Computing),
                Just(SlotSpec::Parked),
                Just(SlotSpec::Waiting),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            /// The tentpole equivalence, pinned at the SM level: for every
            /// mix of computing bursts, parked stores, waiters and holes, at
            /// every issue width and cursor position, `advance_compute` over
            /// any valid span — including any two-chunk split of it, the
            /// checkpoint-pause shape — leaves the SM bit-identical to the
            /// naive per-cycle loop.
            #[test]
            fn advance_compute_matches_naive_loop(
                specs in prop::collection::vec(slot_spec(), 1..48),
                issue_width in 1usize..5,
                rr in 0usize..48,
                span_pct in 0u64..=100,
                split_pct in 0u64..=100,
            ) {
                let sm = build_sm(&specs, issue_width, rr);
                let now = 0u64;
                let event = sm.next_external_event(now);
                if let Some(event) = event {
                    // The event is where a real tick becomes necessary; every
                    // strictly earlier cycle is analytically replayable.
                    let max_span = event - now - 1;
                    if max_span == 0 {
                        return Ok(());
                    }
                    let span = 1 + (max_span - 1) * span_pct / 100;
                    let mut analytic = build_sm(&specs, issue_width, rr);
                    prop_assert!(analytic.advance_compute(span));
                    let mut naive = build_sm(&specs, issue_width, rr);
                    naive_advance(&mut naive, span);
                    prop_assert_eq!(state_bytes(&analytic), state_bytes(&naive));
                    // A split replay (pause + resume mid-span) composes.
                    let split = span * split_pct / 100;
                    let mut chunked = build_sm(&specs, issue_width, rr);
                    if split > 0 {
                        prop_assert!(chunked.advance_compute(split));
                    }
                    if span - split > 0 {
                        prop_assert!(chunked.advance_compute(span - split));
                    }
                    prop_assert_eq!(state_bytes(&chunked), state_bytes(&naive));
                    if span == max_span {
                        // At the span end some warp went Ready: the SM now
                        // needs a real tick next cycle, in both worlds.
                        prop_assert_eq!(
                            analytic.next_external_event(now + span),
                            Some(now + span + 1)
                        );
                    }
                } else {
                    // No event: the naive loop must agree nothing happens.
                    prop_assert!(!sm.has_work());
                }
            }
        }
    }
}
