//! A streaming multiprocessor: warp slots, warp scheduler, L1 cache, MSHRs.
//!
//! Each SM holds up to `warps_per_sm` resident warps and issues up to
//! `issue_width` warp instructions per core cycle with a loose round-robin
//! scheduler. Loads are coalesced to 128-byte lines, looked up in the
//! (tag-only) L1, merged in the L1 MSHRs, and forwarded to the home L2 slice
//! through the request interconnect. A warp blocks until every line of its
//! load has arrived; values are assembled from the functional memory image —
//! or from value-predictor output for lines whose DRAM request was dropped
//! by AMS.

use crate::cache::{AccessResult, Cache};
use crate::kernel::{Kernel, WarpOp, WarpProgram};
use crate::memimg::MemoryImage;
use crate::noc::DelayQueue;
use lazydram_common::{AddressMap, GpuConfig};
use lazydram_common::{FastMap, FastSet};
use std::collections::HashMap;

/// A request from an SM to an L2 slice (line granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SliceReq {
    /// Originating SM.
    pub sm: usize,
    /// Line-aligned address.
    pub line: u64,
    /// `true` for a write-through store (no reply expected).
    pub write: bool,
    /// `pragma pred_var` annotation for the line.
    pub approximable: bool,
}

/// A reply from an L2 slice to an SM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Reply {
    /// Line-aligned address.
    pub line: u64,
    /// `Some(values)` when the line was approximated by the VP unit; `None`
    /// when exact data should be read from the memory image.
    pub values: Option<[f32; 32]>,
}

#[derive(Debug)]
struct LoadWait {
    lane_addrs: Vec<u64>,
    pending: FastSet<u64>,
    /// Missing lines whose request has not been sent yet (MSHR / NoC
    /// backpressure); drained opportunistically each cycle.
    unsent: Vec<u64>,
    approx: HashMap<u64, [f32; 32]>,
}

enum WarpState {
    /// Can issue its next operation.
    Ready,
    /// Burning through a `Compute(n)` op.
    Computing { left: u32 },
    /// Blocked on an outstanding load.
    Waiting(LoadWait),
    /// Retired.
    Done,
}

struct WarpSlot {
    program: Box<dyn WarpProgram>,
    state: WarpState,
    /// Operation that could not issue due to a structural hazard.
    stalled_op: Option<WarpOp>,
    /// Values delivered by the last load, consumed by the next `next()` call.
    last_loaded: Vec<f32>,
}

/// Mutable context an SM needs while ticking.
pub(crate) struct SmCtx<'a> {
    pub now: u64,
    pub image: &'a mut MemoryImage,
    pub map: &'a AddressMap,
    pub kernel: &'a dyn Kernel,
    /// Request queues toward each L2 slice (indexed by channel).
    pub req_noc: &'a mut [DelayQueue<SliceReq>],
}

/// One streaming multiprocessor.
pub(crate) struct Sm {
    id: usize,
    issue_width: usize,
    l1: Cache,
    slots: Vec<Option<WarpSlot>>,
    rr: usize,
    mshr: FastMap<u64, Vec<usize>>,
    mshr_capacity: usize,
    /// Round-robin cursor for draining backpressured loads.
    drain_rr: usize,
    /// Warp instructions retired.
    pub instructions: u64,
    /// Loads whose value was (partly) approximated.
    pub approximated_loads: u64,
    live_warps: usize,
}

impl Sm {
    pub fn new(id: usize, cfg: &GpuConfig) -> Self {
        Self {
            id,
            issue_width: cfg.issue_width,
            l1: Cache::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes),
            slots: (0..cfg.warps_per_sm).map(|_| None).collect(),
            rr: 0,
            mshr: FastMap::default(),
            mshr_capacity: cfg.l1_mshrs,
            drain_rr: 0,
            instructions: 0,
            approximated_loads: 0,
            live_warps: 0,
        }
    }

    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// Number of resident, unfinished warps.
    pub fn live_warps(&self) -> usize {
        self.live_warps
    }

    /// `true` when a new warp can be placed.
    pub fn has_free_slot(&self) -> bool {
        self.slots.iter().any(|s| s.is_none())
    }

    /// Places a warp program into a free slot.
    ///
    /// # Panics
    ///
    /// Panics if no slot is free; check [`Sm::has_free_slot`] first.
    pub fn dispatch(&mut self, program: Box<dyn WarpProgram>) {
        let slot = self
            .slots
            .iter_mut()
            .find(|s| s.is_none())
            .expect("dispatch requires a free slot");
        *slot = Some(WarpSlot {
            program,
            state: WarpState::Ready,
            stalled_op: None,
            last_loaded: Vec::new(),
        });
        self.live_warps += 1;
    }

    /// Handles a fill/approximation reply from the memory side.
    pub fn on_reply(&mut self, reply: Reply, image: &MemoryImage) {
        if reply.values.is_none() {
            // Exact data: cache it in L1 (clean).
            self.l1.fill(reply.line, false);
        }
        let Some(waiters) = self.mshr.remove(&reply.line) else {
            return;
        };
        for idx in waiters {
            let Some(slot) = self.slots[idx].as_mut() else {
                continue;
            };
            let WarpState::Waiting(wait) = &mut slot.state else {
                continue;
            };
            if !wait.pending.remove(&reply.line) {
                continue;
            }
            if let Some(vals) = reply.values {
                wait.approx.insert(reply.line, vals);
            }
            if wait.pending.is_empty() {
                Self::complete_load(slot, image, &mut self.approximated_loads);
            }
        }
    }

    fn complete_load(slot: &mut WarpSlot, image: &MemoryImage, approx_ctr: &mut u64) {
        let WarpState::Waiting(wait) = &mut slot.state else {
            unreachable!("complete_load on non-waiting warp");
        };
        let mut used_approx = false;
        let values: Vec<f32> = wait
            .lane_addrs
            .iter()
            .map(|&addr| {
                let line = addr & !127;
                match wait.approx.get(&line) {
                    Some(vals) => {
                        used_approx = true;
                        vals[((addr % 128) / 4) as usize]
                    }
                    None => image.read_f32(addr),
                }
            })
            .collect();
        if used_approx {
            *approx_ctr += 1;
        }
        slot.last_loaded = values;
        slot.state = WarpState::Ready;
    }

    /// Issues up to `issue_width` warp instructions this cycle.
    pub fn tick(&mut self, ctx: &mut SmCtx<'_>) {
        let n = self.slots.len();
        if n == 0 || self.live_warps == 0 {
            return;
        }
        // Retry backpressured miss requests of blocked warps. Work is
        // bounded: stop at the first slot that stays blocked (resources are
        // exhausted anyway) and resume there next cycle, so a cycle touches
        // only as many warps as the freed MSHR/NoC space can serve.
        if self.mshr.len() < self.mshr_capacity {
            let start = self.drain_rr % n;
            for off in 0..n {
                if self.mshr.len() >= self.mshr_capacity {
                    break;
                }
                let idx = (start + off) % n;
                let has_unsent = matches!(
                    self.slots[idx].as_ref().map(|s| &s.state),
                    Some(WarpState::Waiting(w)) if !w.unsent.is_empty()
                );
                if has_unsent {
                    self.drain_unsent_for(idx, ctx);
                    let still_blocked = matches!(
                        self.slots[idx].as_ref().map(|s| &s.state),
                        Some(WarpState::Waiting(w)) if !w.unsent.is_empty()
                    );
                    if still_blocked {
                        self.drain_rr = idx;
                        break;
                    }
                }
            }
        }
        let mut issued = 0;
        let mut inspected = 0;
        let mut cursor = self.rr % n;
        while issued < self.issue_width && inspected < n {
            inspected += 1;
            let idx = cursor;
            cursor = (cursor + 1) % n;
            if self.try_issue(idx, ctx) {
                issued += 1;
                self.rr = cursor;
            }
        }
    }

    /// Attempts to issue one instruction from slot `idx`; returns success.
    fn try_issue(&mut self, idx: usize, ctx: &mut SmCtx<'_>) -> bool {
        enum Plan {
            Compute,
            Op(WarpOp),
        }
        let plan = {
            let Some(slot) = self.slots[idx].as_mut() else {
                return false;
            };
            match &mut slot.state {
                WarpState::Done | WarpState::Waiting(_) => return false,
                WarpState::Computing { left } => {
                    *left -= 1;
                    let finished = *left == 0;
                    if finished {
                        slot.state = WarpState::Ready;
                    }
                    Plan::Compute
                }
                WarpState::Ready => {
                    let op = match slot.stalled_op.take() {
                        Some(op) => op,
                        None => {
                            let loaded = std::mem::take(&mut slot.last_loaded);
                            slot.program.next(&loaded)
                        }
                    };
                    Plan::Op(op)
                }
            }
        };
        match plan {
            Plan::Compute => {
                self.instructions += 1;
                true
            }
            Plan::Op(op) => self.execute_op(idx, op, ctx),
        }
    }

    fn execute_op(&mut self, idx: usize, op: WarpOp, ctx: &mut SmCtx<'_>) -> bool {
        match op {
            WarpOp::Compute(0) => {
                // Degenerate no-op: retire it without consuming a slot so a
                // buggy kernel cannot stall forever; issue the next op.
                let slot = self.slots[idx].as_mut().expect("slot exists");
                slot.state = WarpState::Ready;
                self.instructions += 1;
                true
            }
            WarpOp::Compute(n) => {
                let slot = self.slots[idx].as_mut().expect("slot exists");
                slot.state = WarpState::Computing { left: n };
                // The first of the n instructions issues this cycle.
                let WarpState::Computing { left } = &mut slot.state else {
                    unreachable!()
                };
                *left -= 1;
                if *left == 0 {
                    slot.state = WarpState::Ready;
                }
                self.instructions += 1;
                true
            }
            WarpOp::Load(addrs) => self.issue_load(idx, addrs, ctx),
            WarpOp::Store(writes) => self.issue_store(idx, writes, ctx),
            WarpOp::Finished => {
                let slot = self.slots[idx].as_mut().expect("slot exists");
                slot.state = WarpState::Done;
                self.slots[idx] = None;
                self.live_warps -= 1;
                true
            }
        }
    }

    fn issue_load(&mut self, idx: usize, addrs: Vec<u64>, ctx: &mut SmCtx<'_>) -> bool {
        debug_assert!(!addrs.is_empty(), "empty load");
        // Coalesce to distinct lines, preserving first-touch order.
        let mut lines: Vec<u64> = Vec::new();
        for &a in &addrs {
            let l = a & !127;
            if !lines.contains(&l) {
                lines.push(l);
            }
        }
        // Classify: L1 hits complete immediately; everything else is
        // pending. A load always issues — lines that cannot get an MSHR or
        // a NoC slot right now sit in `unsent` and trickle out.
        let mut pending: FastSet<u64> = FastSet::default();
        let mut unsent: Vec<u64> = Vec::new();
        for &l in &lines {
            match self.l1.access(l, false) {
                AccessResult::Hit => {}
                AccessResult::Miss => {
                    pending.insert(l);
                    if let Some(waiters) = self.mshr.get_mut(&l) {
                        waiters.push(idx); // merge with in-flight miss
                    } else {
                        unsent.push(l);
                    }
                }
            }
        }
        // One warp-load instruction covers up to 32 lane addresses; larger
        // batches model several back-to-back load instructions kept in
        // flight by the scoreboard (intra-warp MLP).
        self.instructions += addrs.len().div_ceil(32) as u64;
        let slot = self.slots[idx].as_mut().expect("slot exists");
        if pending.is_empty() {
            // Pure L1 hit: values available for the next issue of this warp.
            slot.last_loaded = addrs.iter().map(|&a| ctx.image.read_f32(a)).collect();
            slot.state = WarpState::Ready;
        } else {
            slot.state = WarpState::Waiting(LoadWait {
                lane_addrs: addrs,
                pending,
                unsent,
                approx: HashMap::new(),
            });
            self.drain_unsent_for(idx, ctx);
        }
        true
    }

    /// Sends as many of slot `idx`'s unsent miss lines as MSHR capacity and
    /// NoC space allow. Lines that became present in L1 meanwhile complete
    /// immediately.
    fn drain_unsent_for(&mut self, idx: usize, ctx: &mut SmCtx<'_>) {
        // Take the unsent list out to sidestep aliasing with self.mshr/l1.
        let mut unsent = {
            let Some(slot) = self.slots[idx].as_mut() else { return };
            let WarpState::Waiting(wait) = &mut slot.state else { return };
            std::mem::take(&mut wait.unsent)
        };
        let mut arrived: Vec<u64> = Vec::new();
        let mut still: Vec<u64> = Vec::new();
        for &l in &unsent {
            if self.l1.probe(l) {
                // Filled by a sibling warp's request while we waited.
                arrived.push(l);
            } else if let Some(waiters) = self.mshr.get_mut(&l) {
                waiters.push(idx);
            } else if self.mshr.len() < self.mshr_capacity
                && !ctx.req_noc[ctx.map.channel_of(l)].is_full()
            {
                ctx.req_noc[ctx.map.channel_of(l)]
                    .push(
                        ctx.now,
                        SliceReq {
                            sm: self.id,
                            line: l,
                            write: false,
                            approximable: ctx.kernel.approximable(l),
                        },
                    )
                    .expect("fullness checked");
                self.mshr.insert(l, vec![idx]);
            } else {
                still.push(l);
            }
        }
        unsent.clear();
        let image = &*ctx.image;
        let Some(slot) = self.slots[idx].as_mut() else { return };
        let WarpState::Waiting(wait) = &mut slot.state else { return };
        wait.unsent = still;
        for l in arrived {
            wait.pending.remove(&l);
        }
        if wait.pending.is_empty() {
            Self::complete_load(slot, image, &mut self.approximated_loads);
        }
    }

    fn issue_store(&mut self, idx: usize, writes: Vec<(u64, f32)>, ctx: &mut SmCtx<'_>) -> bool {
        debug_assert!(!writes.is_empty(), "empty store");
        let mut lines: Vec<u64> = Vec::new();
        for &(a, _) in &writes {
            let l = a & !127;
            if !lines.contains(&l) {
                lines.push(l);
            }
        }
        // Structural check before any side effect.
        let mut per_slice: HashMap<usize, usize> = HashMap::new();
        for &l in &lines {
            *per_slice.entry(ctx.map.channel_of(l)).or_default() += 1;
        }
        for (&slice, &count) in &per_slice {
            if ctx.req_noc[slice].free() < count {
                self.stall(idx, WarpOp::Store(writes));
                return false;
            }
        }
        for &(a, v) in &writes {
            ctx.image.write_f32(a, v);
        }
        for &l in &lines {
            ctx.req_noc[ctx.map.channel_of(l)]
                .push(
                    ctx.now,
                    SliceReq {
                        sm: self.id,
                        line: l,
                        write: true,
                        approximable: false,
                    },
                )
                .expect("capacity checked above");
        }
        self.instructions += writes.len().div_ceil(32) as u64;
        // Write-through: the warp does not wait for stores.
        true
    }

    fn stall(&mut self, idx: usize, op: WarpOp) {
        let slot = self.slots[idx].as_mut().expect("slot exists");
        slot.stalled_op = Some(op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydram_common::GpuConfig;

    /// A trivial kernel: each warp loads 32 consecutive floats and stores
    /// their doubles.
    struct MiniKernel {
        base: u64,
    }

    impl Kernel for MiniKernel {
        fn name(&self) -> &str {
            "mini"
        }
        fn setup(&mut self, mem: &mut MemoryImage) {
            self.base = mem.alloc(64);
            for i in 0..32 {
                mem.write_f32(self.base + i * 4, i as f32);
            }
        }
        fn total_warps(&self) -> usize {
            1
        }
        fn program(&self, _warp: usize) -> Box<dyn WarpProgram> {
            Box::new(MiniProgram { base: self.base, step: 0 })
        }
        fn approximable(&self, _addr: u64) -> bool {
            true
        }
        fn output(&self, mem: &MemoryImage) -> Vec<f32> {
            mem.read_slice(self.base + 128, 32)
        }
    }

    struct MiniProgram {
        base: u64,
        step: u32,
    }

    impl WarpProgram for MiniProgram {
        fn next(&mut self, loaded: &[f32]) -> WarpOp {
            self.step += 1;
            match self.step {
                1 => WarpOp::Load((0..32u64).map(|i| self.base + i * 4).collect()),
                2 => WarpOp::Store(
                    loaded
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (self.base + 128 + i as u64 * 4, v * 2.0))
                        .collect(),
                ),
                _ => WarpOp::Finished,
            }
        }
    }

    fn setup() -> (Sm, MemoryImage, AddressMap, MiniKernel, Vec<DelayQueue<SliceReq>>) {
        let cfg = GpuConfig::default();
        let sm = Sm::new(0, &cfg);
        let mut image = MemoryImage::new();
        let mut kernel = MiniKernel { base: 0 };
        kernel.setup(&mut image);
        let map = AddressMap::new(&cfg);
        let noc: Vec<DelayQueue<SliceReq>> =
            (0..6).map(|_| DelayQueue::new(0, 64, 8)).collect();
        (sm, image, map, kernel, noc)
    }

    #[test]
    fn load_coalesces_and_blocks_warp() {
        let (mut sm, mut image, map, kernel, mut noc) = setup();
        sm.dispatch(kernel.program(0));
        let mut ctx = SmCtx { now: 1, image: &mut image, map: &map, kernel: &kernel, req_noc: &mut noc };
        sm.tick(&mut ctx);
        // 32 floats = 128 B = 1 line → 1 request on its home slice.
        let total: usize = ctx.req_noc.iter().map(|q| q.len()).sum();
        assert_eq!(total, 1);
        assert_eq!(sm.instructions, 1);
        // Warp is blocked: nothing more issues.
        sm.tick(&mut ctx);
        assert_eq!(sm.instructions, 1);
    }

    #[test]
    fn reply_unblocks_and_store_writes_image() {
        let (mut sm, mut image, map, kernel, mut noc) = setup();
        let base = kernel.base;
        sm.dispatch(kernel.program(0));
        {
            let mut ctx = SmCtx { now: 1, image: &mut image, map: &map, kernel: &kernel, req_noc: &mut noc };
            sm.tick(&mut ctx);
        }
        sm.on_reply(Reply { line: base, values: None }, &image);
        {
            let mut ctx = SmCtx { now: 2, image: &mut image, map: &map, kernel: &kernel, req_noc: &mut noc };
            sm.tick(&mut ctx); // store issues
            sm.tick(&mut ctx); // finish
        }
        assert_eq!(image.read_f32(base + 128 + 4), 2.0);
        assert_eq!(sm.live_warps(), 0);
        assert_eq!(sm.approximated_loads, 0);
        // L1 was filled by the reply: a fresh probe hits.
        assert!(sm.l1().probe(base));
    }

    #[test]
    fn approximated_reply_supplies_predicted_values() {
        let (mut sm, mut image, map, kernel, mut noc) = setup();
        let base = kernel.base;
        sm.dispatch(kernel.program(0));
        {
            let mut ctx = SmCtx { now: 1, image: &mut image, map: &map, kernel: &kernel, req_noc: &mut noc };
            sm.tick(&mut ctx);
        }
        sm.on_reply(Reply { line: base, values: Some([7.0; 32]) }, &image);
        {
            let mut ctx = SmCtx { now: 2, image: &mut image, map: &map, kernel: &kernel, req_noc: &mut noc };
            sm.tick(&mut ctx);
            sm.tick(&mut ctx);
        }
        // Stored values come from the prediction, not the image.
        assert_eq!(image.read_f32(base + 128), 14.0);
        assert_eq!(sm.approximated_loads, 1);
        // Approximated lines are not cached in L1 (no-reuse model).
        assert!(!sm.l1().probe(base));
    }

    #[test]
    fn mshr_merges_same_line_across_warps() {
        struct TwoWarps {
            inner: MiniKernel,
        }
        impl Kernel for TwoWarps {
            fn name(&self) -> &str {
                "two"
            }
            fn setup(&mut self, mem: &mut MemoryImage) {
                self.inner.setup(mem);
            }
            fn total_warps(&self) -> usize {
                2
            }
            fn program(&self, _w: usize) -> Box<dyn WarpProgram> {
                self.inner.program(0)
            }
            fn approximable(&self, a: u64) -> bool {
                self.inner.approximable(a)
            }
            fn output(&self, mem: &MemoryImage) -> Vec<f32> {
                self.inner.output(mem)
            }
        }
        let cfg = GpuConfig::default();
        let mut sm = Sm::new(0, &cfg);
        let mut image = MemoryImage::new();
        let mut kernel = TwoWarps { inner: MiniKernel { base: 0 } };
        kernel.setup(&mut image);
        let map = AddressMap::new(&cfg);
        let mut noc: Vec<DelayQueue<SliceReq>> =
            (0..6).map(|_| DelayQueue::new(0, 64, 8)).collect();
        sm.dispatch(kernel.program(0));
        sm.dispatch(kernel.program(1));
        let mut ctx = SmCtx { now: 1, image: &mut image, map: &map, kernel: &kernel, req_noc: &mut noc };
        sm.tick(&mut ctx); // both warps issue their load (issue_width = 2)
        let total: usize = ctx.req_noc.iter().map(|q| q.len()).sum();
        assert_eq!(total, 1, "second warp's identical line must merge");
        let base = kernel.inner.base;
        sm.on_reply(Reply { line: base, values: None }, &image);
        let mut ctx = SmCtx { now: 2, image: &mut image, map: &map, kernel: &kernel, req_noc: &mut noc };
        sm.tick(&mut ctx);
        sm.tick(&mut ctx);
        assert_eq!(sm.live_warps(), 0, "both warps must complete");
    }

    #[test]
    fn noc_backpressure_defers_miss_requests() {
        let (mut sm, mut image, map, kernel, _) = setup();
        let base = kernel.base;
        // Tiny NoC with no room.
        let mut noc: Vec<DelayQueue<SliceReq>> =
            (0..6).map(|_| DelayQueue::new(0, 1, 1)).collect();
        for q in noc.iter_mut() {
            q.push(0, SliceReq { sm: 9, line: 0, write: false, approximable: false }).unwrap();
        }
        sm.dispatch(kernel.program(0));
        let mut ctx = SmCtx { now: 1, image: &mut image, map: &map, kernel: &kernel, req_noc: &mut noc };
        sm.tick(&mut ctx);
        // The load issues (instruction retired) but its miss request cannot
        // leave yet: no MSHR is allocated, the line sits in `unsent`.
        assert_eq!(sm.instructions, 1, "load issues despite backpressure");
        assert!(sm.mshr.is_empty(), "no MSHR allocated while the NoC is full");
        // Free the queue; the deferred request drains on a later tick.
        for q in ctx.req_noc.iter_mut() {
            let _ = q.pop_ready(1);
        }
        ctx.now = 2;
        sm.tick(&mut ctx);
        assert_eq!(sm.mshr.len(), 1, "deferred miss sent once space freed");
        assert!(sm.mshr.contains_key(&base));
    }
}
