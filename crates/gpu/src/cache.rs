//! Tag-only set-associative cache with LRU replacement.
//!
//! Values live in the [`MemoryImage`](crate::MemoryImage); the cache tracks
//! *presence* (tags), dirtiness, and recency. The same structure backs both
//! the per-SM L1 and the per-channel L2 slice. For the value-prediction unit
//! it exposes [`Cache::nearest_resident`], the paper's "search in the nearby
//! cache sets … use the values from cache lines with nearest addresses".


use lazydram_common::snap::{Loader, Saver, SnapError, SnapResult};

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// Line present; recency updated (and dirtiness if a write).
    Hit,
    /// Line absent; the caller decides whether and how to fill.
    Miss,
}

/// Position of a line captured by [`Cache::lookup`]: the set scan's result,
/// held so [`Cache::commit`] can apply the access effects without scanning
/// again. Only valid until the next mutation of the cache.
#[derive(Debug, Clone, Copy)]
pub struct CacheSlot {
    set: usize,
    way: Option<usize>,
}

impl CacheSlot {
    /// Whether the looked-up line was present.
    pub fn is_hit(&self) -> bool {
        self.way.is_some()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way {
    line: u64,
    dirty: bool,
    /// Monotone recency stamp; larger = more recent.
    lru: u64,
}

/// A set-associative, tag-only cache.
#[derive(Debug, Clone, PartialEq)]
pub struct Cache {
    sets: Vec<Vec<Way>>,
    ways: usize,
    line_bytes: u64,
    /// `log2(line_bytes)` — set indexing runs on shift/mask instead of
    /// 64-bit division (the lookup/probe path is the simulator's hottest).
    line_shift: u32,
    /// `num_sets - 1` (set count is asserted to be a power of two).
    set_mask: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `total_bytes` with `ways` associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or the set count is not
    /// a power of two.
    pub fn new(total_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(ways > 0 && line_bytes > 0);
        let lines = total_bytes / line_bytes;
        assert_eq!(lines % ways, 0, "cache geometry must divide evenly");
        let num_sets = lines / ways;
        assert!(num_sets.is_power_of_two(), "set count must be a power of two");
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        Self {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            line_bytes: line_bytes as u64,
            line_shift: line_bytes.trailing_zeros(),
            set_mask: (num_sets - 1) as u64,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        ((line >> self.line_shift) & self.set_mask) as usize
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    /// Looks up `addr`; on a hit updates recency and, for writes, dirtiness.
    /// Does **not** allocate on miss — see [`Cache::fill`].
    pub fn access(&mut self, addr: u64, write: bool) -> AccessResult {
        let slot = self.lookup(addr);
        self.commit(slot, write)
    }

    /// Scans the home set of `addr` without mutating anything; pass the
    /// result to [`Cache::commit`] to apply the access effects. Splitting
    /// the scan from the effects lets a caller branch on hit/miss (and do
    /// fallible work, e.g. acquire a downstream queue slot) with exactly one
    /// set scan, and only count the access if it proceeds.
    pub fn lookup(&self, addr: u64) -> CacheSlot {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        CacheSlot { set, way: self.sets[set].iter().position(|w| w.line == line) }
    }

    /// Applies the counter/recency effects of an access whose set scan was
    /// done by [`Cache::lookup`]: identical to [`Cache::access`] minus the
    /// re-scan. The cache must not have been mutated in between.
    pub fn commit(&mut self, slot: CacheSlot, write: bool) -> AccessResult {
        self.tick += 1;
        match slot.way {
            Some(i) => {
                let w = &mut self.sets[slot.set][i];
                w.lru = self.tick;
                if write {
                    w.dirty = true;
                }
                self.hits += 1;
                AccessResult::Hit
            }
            None => {
                self.misses += 1;
                AccessResult::Miss
            }
        }
    }

    /// Probes for `addr` without touching recency or counters.
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        self.sets[self.set_of(line)].iter().any(|w| w.line == line)
    }

    /// Inserts the line containing `addr`, evicting LRU if the set is full.
    /// Returns the evicted line's `(line_addr, dirty)` if one was displaced.
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<(u64, bool)> {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        self.tick += 1;
        let tick = self.tick;
        let ways = &mut self.sets[set];
        // One scan finds the line if present *and* the LRU victim if not;
        // strict `<` keeps the first-minimum tie behavior of the old
        // two-pass `min_by_key` form.
        let mut victim = 0usize;
        let mut victim_lru = u64::MAX;
        for (i, w) in ways.iter_mut().enumerate() {
            if w.line == line {
                // Already present (e.g. racing fills): refresh.
                w.lru = tick;
                w.dirty |= dirty;
                return None;
            }
            if w.lru < victim_lru {
                victim_lru = w.lru;
                victim = i;
            }
        }
        if ways.len() < self.ways {
            ways.push(Way { line, dirty, lru: tick });
            return None;
        }
        let old = ways[victim];
        ways[victim] = Way { line, dirty, lru: tick };
        Some((old.line, old.dirty))
    }

    /// Removes the line containing `addr` if present; returns whether it was
    /// dirty.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        let pos = self.sets[set].iter().position(|w| w.line == line)?;
        Some(self.sets[set].swap_remove(pos).dirty)
    }

    /// The value-prediction search (paper Section IV-D): scans the home set
    /// of `addr` plus `radius` sets on each side and returns the resident
    /// line whose address is nearest to `addr`'s line (excluding that line
    /// itself). Returns `None` when no line is resident in the window.
    pub fn nearest_resident(&self, addr: u64, radius: u32) -> Option<u64> {
        let line = self.line_of(addr);
        let home = self.set_of(line) as i64;
        let n = self.sets.len() as i64;
        let mut best: Option<(u64, u64)> = None; // (distance, line)
        for d in -(radius as i64)..=(radius as i64) {
            let set = (home + d).rem_euclid(n) as usize;
            for w in &self.sets[set] {
                if w.line == line {
                    continue;
                }
                let dist = w.line.abs_diff(line);
                if best.is_none_or(|(bd, bl)| dist < bd || (dist == bd && w.line < bl)) {
                    best = Some((dist, w.line));
                }
            }
        }
        best.map(|(_, l)| l)
    }

    /// Iterates all resident lines (for drain-time writeback sweeps).
    pub fn resident(&self) -> impl Iterator<Item = (u64, bool)> + '_ {
        self.sets.iter().flatten().map(|w| (w.line, w.dirty))
    }

    /// Serializes the cache's dynamic state (tags, dirtiness, recency,
    /// counters). Geometry comes from the configuration at restore time.
    pub fn save_state(&self, s: &mut Saver) {
        s.u64("tick", self.tick);
        s.u64("hits", self.hits);
        s.u64("misses", self.misses);
        s.seq("sets", self.sets.len());
        for (i, set) in self.sets.iter().enumerate() {
            s.frame("set", i as u32, |s| {
                s.seq("ways", set.len());
                for w in set {
                    s.u64("line", w.line);
                    s.bool("dirty", w.dirty);
                    s.u64("lru", w.lru);
                }
            });
        }
    }

    /// Restores dynamic state into a cache built from the same geometry.
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed or the set
    /// count does not match this cache's geometry.
    pub fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.tick = l.u64("tick")?;
        self.hits = l.u64("hits")?;
        self.misses = l.u64("misses")?;
        let nsets = l.seq("sets", 16)?;
        if nsets != self.sets.len() {
            return Err(SnapError::Malformed {
                label: "sets".into(),
                why: format!("snapshot has {nsets} sets, cache has {}", self.sets.len()),
            });
        }
        for (i, set) in self.sets.iter_mut().enumerate() {
            l.frame("set", i as u32, |l| {
                let nways = l.seq("ways", 17)?;
                set.clear();
                for _ in 0..nways {
                    set.push(Way {
                        line: l.u64("line")?,
                        dirty: l.bool("dirty")?,
                        lru: l.u64("lru")?,
                    });
                }
                Ok(())
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets × 2 ways × 128 B.
        Cache::new(1024, 2, 128)
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.num_sets(), 4);
        let big = Cache::new(128 * 1024, 8, 128);
        assert_eq!(big.num_sets(), 128);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert_eq!(c.access(0x1000, false), AccessResult::Miss);
        assert!(c.fill(0x1000, false).is_none());
        assert_eq!(c.access(0x1000, false), AccessResult::Hit);
        assert!(c.probe(0x1000));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds lines 0x0, 0x800 (stride = sets*line = 512 → 0x200).
        c.fill(0x0, false);
        c.fill(0x200, false);
        c.access(0x0, false); // make 0x0 most recent
        let evicted = c.fill(0x400, true).expect("set full");
        assert_eq!(evicted, (0x200, false));
        assert!(c.probe(0x0) && c.probe(0x400) && !c.probe(0x200));
    }

    #[test]
    fn write_hit_marks_dirty_and_eviction_reports_it() {
        let mut c = small();
        c.fill(0x0, false);
        c.access(0x0, true);
        c.fill(0x200, false);
        c.access(0x200, false);
        c.access(0x200, false); // 0x0 is LRU
        let evicted = c.fill(0x400, false).unwrap();
        assert_eq!(evicted, (0x0, true));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.fill(0x0, true);
        assert_eq!(c.invalidate(0x0), Some(true));
        assert_eq!(c.invalidate(0x0), None);
        assert!(!c.probe(0x0));
    }

    #[test]
    fn fill_of_present_line_does_not_evict() {
        let mut c = small();
        c.fill(0x0, false);
        c.fill(0x200, false);
        assert!(c.fill(0x0, true).is_none());
        // Dirtiness merged.
        let evicted = c.fill(0x400, false).unwrap();
        assert_eq!(evicted.0, 0x200);
    }

    #[test]
    fn nearest_resident_prefers_smallest_distance() {
        let mut c = small();
        c.fill(0x1000, false); // set (0x1000/128)%4 = 32%4 = 0
        c.fill(0x1080, false); // set 1
        // Target 0x1100 (set 2): nearest is 0x1080 (dist 0x80) vs 0x1000 (0x100).
        assert_eq!(c.nearest_resident(0x1100, 4), Some(0x1080));
        // Target equals a resident line → that line is excluded.
        assert_eq!(c.nearest_resident(0x1080, 4), Some(0x1000));
    }

    #[test]
    fn nearest_resident_respects_radius() {
        let mut c = Cache::new(128 * 128, 1, 128); // 128 sets × 1 way
        c.fill(128 * 10, false); // set 10
        // From set 0 with radius 4, set 10 is out of reach.
        assert_eq!(c.nearest_resident(0, 4), None);
        assert_eq!(c.nearest_resident(0, 10), Some(1280));
    }

    #[test]
    fn nearest_resident_empty_cache_is_none() {
        let c = small();
        assert_eq!(c.nearest_resident(0x1234, 4), None);
    }
}
