//! A persistent worker pool for the phased tick.
//!
//! The container is offline (no rayon/crossbeam), so this is a hand-rolled
//! pool over [`std::thread`]. It exists for exactly one call shape: the
//! simulator's phased tick runs the *same* closure over `shards` disjoint
//! indices several times per simulated cycle (phase A over SMs, phase C
//! over memory partitions, the fast-forward scan over controllers). The
//! pool therefore optimizes for very cheap job publication — one atomic
//! store plus a conditional wake — rather than for generality.
//!
//! # Determinism
//!
//! The pool affects *scheduling only*: which thread executes which shard,
//! and in what order. The phased tick guarantees shards touch disjoint
//! state (see `DESIGN.md` §12), and all cross-shard merging happens on the
//! coordinating thread in canonical order — so results are bit-identical
//! for every worker count, including zero.
//!
//! # Sizing
//!
//! [`WorkerPool::new`] spawns `min(requested, available_parallelism) - 1`
//! workers (the coordinating thread participates, so `requested = 1` spawns
//! none). Capping at the host's parallelism matters on small containers: a
//! parked worker must be woken through a mutex/condvar on every phase, and
//! on a single hardware thread that wake costs more per cycle than the
//! simulation work itself. With zero workers every shard runs inline on the
//! coordinating thread and no atomics are touched. Set
//! `LAZYDRAM_POOL_OVERSUBSCRIBE=1` to lift the cap (strictly parsed; used
//! by tests that must exercise real cross-thread execution on 1-CPU hosts).

use lazydram_common::prof::{self, Phase};
use lazydram_common::ProfReport;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Parses `LAZYDRAM_POOL_OVERSUBSCRIBE`-style values: `1` lifts the
/// available-parallelism cap, `0`/unset keeps it.
///
/// # Errors
///
/// Returns a description of the expected format on anything else.
pub fn parse_oversubscribe(s: &str) -> Result<bool, String> {
    match s.trim() {
        "1" => Ok(true),
        "0" => Ok(false),
        other => Err(format!(
            "LAZYDRAM_POOL_OVERSUBSCRIBE={other:?} is not a flag; expected 1 or 0"
        )),
    }
}

/// `LAZYDRAM_POOL_OVERSUBSCRIBE` from the environment (cached; default
/// `false`).
///
/// # Panics
///
/// Panics when the variable is set but malformed — a silently ignored
/// typo would invisibly change what a determinism test exercises.
fn oversubscribe_from_env() -> bool {
    static CACHE: OnceLock<bool> = OnceLock::new();
    *CACHE.get_or_init(|| match std::env::var("LAZYDRAM_POOL_OVERSUBSCRIBE") {
        Ok(v) => parse_oversubscribe(&v).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => false,
    })
}

/// Type-erased shard closure: `&dyn Fn(shard_index)`, shareable across
/// threads. Published to workers as a pointer to a stack slot holding this
/// fat reference (double indirection keeps the atomic word thin).
type Job<'a> = &'a (dyn Fn(usize) + Sync);

/// State shared between the coordinating thread and the workers.
struct Shared {
    /// Generation counter; a bump publishes a new job (or shutdown).
    gen: AtomicU64,
    /// Pointer to the coordinating thread's stack slot holding the current
    /// [`Job`]. Valid from publication until `done == total` of the same
    /// generation; workers only dereference it for shard indices claimed
    /// from `next`, which the coordinator resets *after* storing the
    /// pointer — so observing a claimable index implies the pointer is
    /// current.
    job: AtomicUsize,
    /// Next unclaimed shard index.
    next: AtomicUsize,
    /// Number of shards in the current job.
    total: AtomicUsize,
    /// Profiler phase of the current job ([`Phase`] discriminant): each
    /// worker opens one guard per job batch, so attribution costs one
    /// timestamp pair per thread per phase, not one per shard.
    phase: AtomicUsize,
    /// Number of shards finished.
    done: AtomicUsize,
    /// Shutdown flag, checked together with `gen`.
    stop: AtomicBool,
    /// Count of workers parked on `cv` (guarded by `lock`'s critical
    /// sections for the sleep/wake handshake).
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    /// Per-worker profiler totals, drained when each worker exits.
    worker_prof: Mutex<ProfReport>,
}

/// The phased-tick worker pool. Dropping it joins all workers and folds
/// their profiler totals into [`WorkerPool::take_worker_prof`]'s report —
/// call that before drop to keep the numbers.
pub struct WorkerPool {
    /// `None` when zero workers were spawned (pure inline execution);
    /// nothing to share and nothing to leak in that case.
    shared: Option<&'static Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool for `requested` cores (>= 1). Spawns
    /// `min(requested, available_parallelism) - 1` workers — see the
    /// module docs for why the cap exists and how to lift it.
    pub fn new(requested: usize) -> Self {
        assert!(requested >= 1, "a pool needs at least the calling thread");
        let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
        let effective = if oversubscribe_from_env() {
            requested
        } else {
            requested.min(avail)
        };
        Self::with_workers(effective - 1)
    }

    /// Builds a pool with exactly `workers` spawned threads.
    fn with_workers(workers: usize) -> Self {
        if workers == 0 {
            return Self {
                shared: None,
                handles: Vec::new(),
            };
        }
        // The shared block must outlive unpark races during teardown;
        // leaking one small allocation per threaded pool (one pool per
        // launch, and only when `LAZYDRAM_CORES > 1` on a multi-core host)
        // is simpler and provably safe versus an Arc whose last owner is
        // ambiguous mid-wake.
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            gen: AtomicU64::new(0),
            job: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            total: AtomicUsize::new(0),
            phase: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            worker_prof: Mutex::new(ProfReport::default()),
        }));
        let handles = (0..workers)
            .map(|_| std::thread::spawn(move || worker_loop(shared)))
            .collect();
        Self {
            shared: Some(shared),
            handles,
        }
    }

    /// Number of spawned worker threads (0 means every `run` is inline).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `f(i)` for every `i in 0..shards`, returning once all shards
    /// finished. Shard-to-thread assignment is dynamic (atomic claim), so
    /// `f` must only touch state owned by its shard index.
    ///
    /// `phase` names the profiler phase the batch is attributed to — one
    /// guard per participating thread, so the inline (zero-worker) path
    /// costs exactly what the old sequential loop's per-phase guard did.
    /// The generic bound matters for the same reason: with no workers the
    /// closure is statically dispatched and the whole shard body inlines
    /// into the caller; type erasure happens only when the job is actually
    /// shipped to threads.
    pub fn run<F: Fn(usize) + Sync>(&self, shards: usize, phase: Phase, f: &F) {
        if self.handles.is_empty() || shards <= 1 {
            let _t = prof::enter(phase);
            for i in 0..shards {
                f(i);
            }
            return;
        }
        let s = self.shared.expect("threaded pool has shared state");
        // Publish: job pointer and total first, then the claim counter,
        // then the generation bump that wakes spinners. A worker reaches
        // the job pointer only through a successful claim on `next`, whose
        // reset is ordered after the pointer store (Release), so stale
        // claims from the previous generation cannot observe the new
        // pointer nor vice versa.
        let job: Job<'_> = f;
        let slot: *const Job<'_> = &job;
        s.done.store(0, Ordering::Relaxed);
        s.job.store(slot as usize, Ordering::Relaxed);
        s.phase.store(phase as usize, Ordering::Relaxed);
        s.total.store(shards, Ordering::Relaxed);
        s.next.store(0, Ordering::Release);
        s.gen.fetch_add(1, Ordering::SeqCst);
        if s.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = s.lock.lock().unwrap();
            s.cv.notify_all();
        }
        // The coordinator claims shards like any worker.
        {
            let _t = prof::enter(phase);
            claim_loop(s);
        }
        // Barrier: all shards done before `job`'s stack slot dies.
        let _t = prof::enter(Phase::Sync);
        while s.done.load(Ordering::Acquire) < shards {
            std::hint::spin_loop();
        }
    }

    /// Drains the profiler totals accumulated by workers that have already
    /// exited. Call after [`WorkerPool::shutdown`] (or drop) to fold worker
    /// time into the run's report; without the `prof` feature the report is
    /// always empty.
    pub fn take_worker_prof(&self) -> ProfReport {
        match self.shared {
            Some(s) => std::mem::take(&mut *s.worker_prof.lock().unwrap()),
            None => ProfReport::default(),
        }
    }

    /// Stops and joins all workers, returning their merged profiler totals.
    pub fn shutdown(&mut self) -> ProfReport {
        let Some(s) = self.shared else {
            return ProfReport::default();
        };
        s.stop.store(true, Ordering::SeqCst);
        s.gen.fetch_add(1, Ordering::SeqCst);
        {
            let _g = s.lock.lock().unwrap();
            s.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        self.take_worker_prof()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            let _ = self.shutdown();
        }
    }
}

/// Claims and executes shards of the current job until none remain.
fn claim_loop(s: &Shared) {
    loop {
        let i = s.next.fetch_add(1, Ordering::AcqRel);
        if i >= s.total.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: a claimable index proves the publication sequence in
        // `run` completed through `next.store(0, Release)`, which is
        // ordered after the pointer store; the coordinator keeps the slot
        // alive until `done == total`, which cannot happen before this
        // shard reports done below.
        let job: Job<'_> = unsafe { *((s.job.load(Ordering::Acquire)) as *const Job<'_>) };
        job(i);
        s.done.fetch_add(1, Ordering::Release);
    }
}

/// Iterations of the pre-park spin: long enough to catch back-to-back
/// phases of the same cycle without a syscall, short enough not to burn a
/// core when the simulation pauses.
const SPIN_ITERS: u32 = 4096;

fn worker_loop(s: &'static Shared) {
    let mut seen = 0u64;
    loop {
        // Wait for a new generation: spin briefly, then park. Generations
        // are a "something new was published" signal, not a sequence a
        // worker must observe one by one — a worker that sleeps through
        // several of them simply joins the current job.
        {
            let _t = prof::enter(Phase::Idle);
            let mut spins = 0u32;
            while s.gen.load(Ordering::SeqCst) == seen {
                spins += 1;
                if spins < SPIN_ITERS {
                    std::hint::spin_loop();
                } else {
                    let mut guard = s.lock.lock().unwrap();
                    s.sleepers.fetch_add(1, Ordering::SeqCst);
                    while s.gen.load(Ordering::SeqCst) == seen {
                        guard = s.cv.wait(guard).unwrap();
                    }
                    s.sleepers.fetch_sub(1, Ordering::SeqCst);
                }
            }
            seen = s.gen.load(Ordering::SeqCst);
        }
        if s.stop.load(Ordering::SeqCst) {
            break;
        }
        {
            let _t = prof::enter(Phase::ALL[s.phase.load(Ordering::Acquire)]);
            claim_loop(s);
        }
    }
    let local = prof::take();
    s.worker_prof.lock().unwrap().merge(&local);
}

/// Shares `&mut [T]` across pool threads for *disjoint* per-shard access.
///
/// [`WorkerPool::run`] hands each shard index to exactly one executing
/// thread, so indexing the slice by the shard index never aliases. The
/// wrapper exists because a closure capturing `&mut [T]` cannot be `Sync`;
/// it launders the exclusivity proof through a raw pointer and puts the
/// aliasing obligation on the caller via the `unsafe` accessor.
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: `SharedSlice` only hands out disjoint `&mut T` (caller
// obligation on `get`), so sharing the wrapper across threads is sound
// whenever moving the elements themselves would be.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a slice for disjoint sharded access.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Exclusive access to element `i`.
    ///
    /// # Safety
    ///
    /// For the lifetime of the returned reference no other thread may call
    /// `get(i)` with the same index. The phased tick guarantees this by
    /// indexing only with the shard index [`WorkerPool::run`] assigned.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        // SAFETY: in-bounds by the assert; uniqueness is the caller's
        // contract above.
        unsafe { &mut *self.ptr.add(i) }
    }
}

#[cfg(test)]
impl WorkerPool {
    /// Test-only constructor bypassing the available-parallelism cap.
    fn new_for_test(threads: usize) -> Self {
        Self::with_workers(threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn parse_oversubscribe_is_strict() {
        assert_eq!(parse_oversubscribe("1"), Ok(true));
        assert_eq!(parse_oversubscribe(" 0 "), Ok(false));
        assert!(parse_oversubscribe("yes").is_err());
        assert!(parse_oversubscribe("").is_err());
    }

    #[test]
    fn inline_pool_runs_all_shards() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 0);
        let mut out = vec![0u32; 17];
        let shared = SharedSlice::new(&mut out);
        pool.run(17, Phase::SmIssue, &|i| {
            // SAFETY: each shard index is executed exactly once.
            *unsafe { shared.get(i) } = i as u32 + 1;
        });
        assert_eq!(out, (1..=17).collect::<Vec<u32>>());
    }

    #[test]
    fn threaded_pool_runs_every_shard_exactly_once() {
        // Force real threads even on a 1-CPU host: this is the one unit
        // test of the cross-thread claim protocol, so the parallelism cap
        // must not silently turn it into the inline path.
        let mut pool = WorkerPool::new_for_test(3);
        let counters: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        for round in 0..50 {
            pool.run(counters.len(), Phase::SmIssue, &|i| {
                counters[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, c) in counters.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), round + 1, "shard {i}");
            }
        }
        let _ = pool.shutdown();
    }
}
