//! DRAM request-trace capture and replay.
//!
//! The execution-driven simulator can record every request handed to the
//! memory controllers, producing a **memory trace** that can be replayed
//! through the scheduler alone — orders of magnitude faster than re-running
//! the GPU, and exactly the methodology of trace-driven DRAM studies. Replay
//! is *open-loop* (arrival times are fixed by the recording), so absolute
//! results differ slightly from the closed-loop run; shapes are preserved
//! for scheduler-side questions like queue-size or delay sweeps
//! (`dbg_trace envelope` quantifies the difference per app).
//!
//! The pieces:
//!
//! * [`Trace`] — the recorded `(cycle, channel, request)` stream, with
//!   `snap`-based file persistence ([`Trace::save_file`] /
//!   [`Trace::load_file`]). Files carry a **stream-geometry digest**
//!   ([`Trace::stream_digest`]) covering exactly the [`GpuConfig`] fields
//!   that shape the request stream (channel count, banks, row/line/chunk
//!   geometry, memory clock); loading against an incompatible machine is a
//!   [`TraceError::ConfigMismatch`], while queue sizes, DRAM timings, and
//!   scheduler policy — the things sweeps vary — are free to differ.
//! * [`TraceSim`] — the open-loop replayer: fresh [`MemoryController`]s
//!   (with their full AMS/DMS policy state and refresh behavior), recorded
//!   arrivals restamped onto the replay clock, and a [`ReplayReport`] that
//!   accounts for every recorded request as served or unserved — nothing is
//!   dropped silently.
//! * [`Trace::replay`] — the strict harness wrapper over [`TraceSim`]:
//!   panics on a malformed trace or on any unserved request, returning bare
//!   [`SimStats`] for contexts (tests, examples) where an incomplete replay
//!   is a bug, not a result.

use lazydram_common::snap::{digest, Loader, Saver, SnapError, SnapResult};
use lazydram_common::{GpuConfig, Request, SchedConfig, SimStats};
use lazydram_core::MemoryController;
use std::path::Path;

/// Default post-arrival drain budget for [`TraceSim`], in memory cycles:
/// the replay clock keeps running this long past the point of last forward
/// progress before declaring the remaining requests unserved.
///
/// Far larger than any realistic queue drain (the longest DMS delay is
/// thousands of cycles); only a stuck scheduler exhausts it.
pub const DEFAULT_DRAIN_GRACE: u64 = 10_000_000;

/// One recorded DRAM request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Memory cycle at which the request entered its controller.
    pub cycle: u64,
    /// Destination channel.
    pub channel: u16,
    /// The request (line address, kind, space, annotation).
    pub request: Request,
}

/// Everything that can go wrong capturing, persisting, or replaying a
/// [`Trace`].
#[derive(Debug)]
pub enum TraceError {
    /// Entry `index` is stamped earlier than its predecessor — the trace is
    /// not time-ordered (a corrupted or hand-edited file, or a tooling bug).
    OutOfOrder {
        /// Index of the offending entry.
        index: usize,
        /// Cycle stamp of the preceding entry.
        prev_cycle: u64,
        /// Cycle stamp of the offending entry.
        cycle: u64,
    },
    /// Entry `index` targets a channel the replay machine does not have.
    BadChannel {
        /// Index of the offending entry.
        index: usize,
        /// Recorded destination channel.
        channel: u16,
        /// Channels of the replay machine.
        channels: usize,
    },
    /// The trace was captured on a machine whose request-stream geometry
    /// (see [`Trace::stream_digest`]) differs from the replay machine's.
    ConfigMismatch {
        /// Geometry digest recorded in the trace file.
        trace: u64,
        /// Geometry digest of the replay machine.
        machine: u64,
    },
    /// Replay ran out of drain budget with requests still unserved.
    Unserved {
        /// Requests fully processed by the controllers.
        served: u64,
        /// Requests left in the backlog, pending queues, or never offered.
        unserved: u64,
    },
    /// The trace file bytes are malformed.
    Snap(SnapError),
    /// Reading or writing the trace file failed.
    Io(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OutOfOrder { index, prev_cycle, cycle } => write!(
                f,
                "trace entry {index} at cycle {cycle} precedes its predecessor at cycle \
                 {prev_cycle}; the trace is not time-ordered"
            ),
            Self::BadChannel { index, channel, channels } => write!(
                f,
                "trace entry {index} targets channel {channel} but the replay machine has \
                 only {channels} channels"
            ),
            Self::ConfigMismatch { trace, machine } => write!(
                f,
                "trace geometry digest {trace:016x} does not match the replay machine's \
                 {machine:016x}; capture and replay configs must agree on channel/bank/row \
                 geometry"
            ),
            Self::Unserved { served, unserved } => write!(
                f,
                "replay served {served} requests but left {unserved} unserved after the \
                 drain budget expired"
            ),
            Self::Snap(e) => write!(f, "malformed trace snapshot: {e}"),
            Self::Io(e) => write!(f, "trace file IO failed: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<SnapError> for TraceError {
    fn from(e: SnapError) -> Self {
        Self::Snap(e)
    }
}

/// A captured DRAM request trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps raw entries without checking time order — for tooling and
    /// tests that need to build (possibly malformed) traces directly.
    /// [`Trace::validate`] / replay reject out-of-order streams.
    pub fn from_entries(entries: Vec<TraceEntry>) -> Self {
        Self { entries }
    }

    /// Appends an entry (must be fed in non-decreasing cycle order; the
    /// capture path guarantees this, and load/replay re-validate).
    pub fn push(&mut self, entry: TraceEntry) {
        debug_assert!(
            self.entries.last().is_none_or(|e| e.cycle <= entry.cycle),
            "trace entries must be time-ordered"
        );
        self.entries.push(entry);
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the recorded entries in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Checks the invariants replay depends on: entries in non-decreasing
    /// cycle order, every destination channel within `channels`.
    ///
    /// # Errors
    ///
    /// [`TraceError::OutOfOrder`] or [`TraceError::BadChannel`] at the first
    /// offending entry.
    pub fn validate(&self, channels: usize) -> Result<(), TraceError> {
        let mut prev_cycle = 0u64;
        for (index, e) in self.entries.iter().enumerate() {
            if e.cycle < prev_cycle {
                return Err(TraceError::OutOfOrder { index, prev_cycle, cycle: e.cycle });
            }
            prev_cycle = e.cycle;
            if usize::from(e.channel) >= channels {
                return Err(TraceError::BadChannel { index, channel: e.channel, channels });
            }
        }
        Ok(())
    }

    /// Digest over exactly the [`GpuConfig`] fields that shape the captured
    /// request stream: channel count and interleaving, bank/row/line
    /// geometry, and the memory clock the cycle stamps are denominated in.
    ///
    /// Deliberately *excludes* queue sizes, DRAM timings, caches, SM counts,
    /// and scheduler policy — a trace captured once replays across the whole
    /// fig02/fig04/fig11/fig13 sweep space.
    pub fn stream_digest(cfg: &GpuConfig) -> u64 {
        digest(
            format!(
                "trace-geometry|{}|{}|{}|{}|{}|{}|{}",
                cfg.num_channels,
                cfg.banks_per_channel,
                cfg.bank_groups,
                cfg.row_bytes,
                cfg.line_bytes,
                cfg.chunk_bytes,
                cfg.mem_clock_mhz,
            )
            .as_bytes(),
        )
    }

    /// Serializes the trace (every entry, in order).
    pub fn save_state(&self, s: &mut Saver) {
        s.seq("entries", self.entries.len());
        for e in &self.entries {
            s.u64("cycle", e.cycle);
            s.u16("channel", e.channel);
            e.request.save_state(s);
        }
    }

    /// Restores the trace from a snapshot, replacing current entries.
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed.
    pub fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        let n = l.seq("entries", 10)?;
        self.entries.clear();
        self.entries.reserve(n);
        for _ in 0..n {
            self.entries.push(TraceEntry {
                cycle: l.u64("cycle")?,
                channel: l.u16("channel")?,
                request: Request::load_state(l)?,
            });
        }
        Ok(())
    }

    /// Serializes the trace as a standalone versioned snapshot: the snap
    /// header, a `tmta` frame carrying the stream-geometry digest of the
    /// capture machine, then the entries in a `trc` frame (the wire format
    /// is documented in DESIGN.md §11).
    pub fn to_bytes(&self, cfg: &GpuConfig) -> Vec<u8> {
        let mut s = Saver::new();
        s.header();
        s.frame("tmta", 0, |s| {
            s.u64("geometry", Self::stream_digest(cfg));
            s.u64("entries", self.entries.len() as u64);
        });
        s.frame("trc", 0, |s| self.save_state(s));
        s.finish()
    }

    /// Deserializes a trace written by [`Trace::to_bytes`], rejecting
    /// snapshots captured under an incompatible stream geometry and
    /// re-validating the entry invariants (time order, channel range).
    ///
    /// # Errors
    ///
    /// [`TraceError::ConfigMismatch`] on a geometry digest mismatch,
    /// [`TraceError::Snap`] on malformed bytes, and the
    /// [`Trace::validate`] errors on a decoded-but-inconsistent stream.
    pub fn from_bytes(bytes: &[u8], cfg: &GpuConfig) -> Result<Self, TraceError> {
        let mut l = Loader::new(bytes);
        l.expect_header()?;
        let (geometry, declared) = l.frame("tmta", 0, |l| {
            Ok((l.u64("geometry")?, l.u64("entries")?))
        })?;
        let machine = Self::stream_digest(cfg);
        if geometry != machine {
            return Err(TraceError::ConfigMismatch { trace: geometry, machine });
        }
        let mut trace = Self::new();
        l.frame("trc", 0, |l| trace.load_state(l))?;
        if trace.entries.len() as u64 != declared {
            return Err(TraceError::Snap(SnapError::Malformed {
                label: "entries".into(),
                why: format!(
                    "trace declares {declared} entries but carries {}",
                    trace.entries.len()
                ),
            }));
        }
        trace.validate(cfg.num_channels)?;
        Ok(trace)
    }

    /// Writes the trace to `path` atomically (write-then-rename, like
    /// checkpoint parking: a crash mid-write never leaves a torn file).
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the file cannot be written.
    pub fn save_file(&self, path: &Path, cfg: &GpuConfig) -> Result<(), TraceError> {
        let tmp = path.with_extension("trace.tmp");
        std::fs::write(&tmp, self.to_bytes(cfg))
            .and_then(|()| std::fs::rename(&tmp, path))
            .map_err(|e| TraceError::Io(format!("cannot write {}: {e}", path.display())))
    }

    /// Reads and decodes a trace file written by [`Trace::save_file`].
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the file cannot be read, plus every
    /// [`Trace::from_bytes`] error.
    pub fn load_file(path: &Path, cfg: &GpuConfig) -> Result<Self, TraceError> {
        let bytes = std::fs::read(path)
            .map_err(|e| TraceError::Io(format!("cannot read {}: {e}", path.display())))?;
        Self::from_bytes(&bytes, cfg)
    }

    /// Replays the trace through fresh memory controllers under `sched`,
    /// returning aggregate DRAM statistics — the strict harness entry point.
    ///
    /// # Panics
    ///
    /// Panics on a malformed trace or when any recorded request goes
    /// unserved; contexts that want to handle those outcomes use
    /// [`TraceSim`] directly.
    pub fn replay(&self, cfg: &GpuConfig, sched: &SchedConfig) -> SimStats {
        TraceSim::new(cfg, sched)
            .replay(self)
            .and_then(ReplayReport::complete)
            .map(|r| r.stats)
            .unwrap_or_else(|e| panic!("trace replay failed: {e}"))
    }
}

/// Outcome of one open-loop replay: the DRAM statistics plus a full
/// accounting of the recorded requests.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Aggregate DRAM statistics across all channels (core-side fields are
    /// zero — replay never runs the GPU).
    pub stats: SimStats,
    /// Recorded requests fully processed by the controllers (reads, writes,
    /// and AMS-approximated drops all count as served).
    pub served: u64,
    /// Recorded requests left behind when the drain budget expired: never
    /// offered, stuck in a backlog, or still pending in a controller. Zero
    /// in every healthy replay.
    pub unserved: u64,
    /// Memory cycles the replay clock ran.
    pub replay_cycles: u64,
}

impl ReplayReport {
    /// Requires a complete replay.
    ///
    /// # Errors
    ///
    /// [`TraceError::Unserved`] when any recorded request was left behind.
    pub fn complete(self) -> Result<Self, TraceError> {
        if self.unserved > 0 {
            Err(TraceError::Unserved { served: self.served, unserved: self.unserved })
        } else {
            Ok(self)
        }
    }
}

/// Open-loop trace replayer: MC + DRAM only, no GPU substrate.
///
/// Requests are offered to their controller at the recorded cycle (or as
/// soon afterwards as the pending queue has room — open-loop backpressure),
/// with arrivals restamped onto the replay clock. The clock runs until every
/// request is served or no forward progress has been made for
/// [`DEFAULT_DRAIN_GRACE`] cycles past the last recorded arrival; leftover
/// requests are *counted*, never silently discarded.
pub struct TraceSim {
    cfg: GpuConfig,
    sched: SchedConfig,
    drain_grace: u64,
}

impl TraceSim {
    /// A replayer for `cfg`'s memory system under scheduling policy `sched`.
    pub fn new(cfg: &GpuConfig, sched: &SchedConfig) -> Self {
        Self { cfg: cfg.clone(), sched: sched.clone(), drain_grace: DEFAULT_DRAIN_GRACE }
    }

    /// Overrides the drain budget: how many memory cycles without forward
    /// progress (past the last recorded arrival) before the replay gives up
    /// and reports the leftovers as unserved.
    pub fn drain_grace(mut self, cycles: u64) -> Self {
        self.drain_grace = cycles;
        self
    }

    /// Replays `trace`, returning statistics plus the served/unserved
    /// accounting.
    ///
    /// # Errors
    ///
    /// [`Trace::validate`] errors on a malformed trace (checked up front —
    /// a release build refuses an out-of-order stream instead of silently
    /// mis-simulating it).
    pub fn replay(&self, trace: &Trace) -> Result<ReplayReport, TraceError> {
        trace.validate(self.cfg.num_channels)?;
        let mut mcs: Vec<MemoryController> = (0..self.cfg.num_channels)
            .map(|_| MemoryController::new(&self.cfg, &self.sched))
            .collect();
        let mut cursor = 0usize;
        // Per-channel overflow queues for entries whose controller was full.
        let mut backlog: Vec<std::collections::VecDeque<Request>> =
            vec![std::collections::VecDeque::new(); self.cfg.num_channels];
        let mut now = 0u64;
        let last_arrival = trace.entries.last().map_or(0, |e| e.cycle);
        // The deadline advances with forward progress (completions), so a
        // slow-but-draining queue is never cut off; only a genuinely stuck
        // replay exhausts the budget — and then the leftovers are counted.
        let mut deadline = last_arrival.saturating_add(self.drain_grace);
        let mut completed = 0u64;
        let mut resp_buf: Vec<lazydram_core::Response> = Vec::new();
        loop {
            now += 1;
            while cursor < trace.entries.len() && trace.entries[cursor].cycle <= now {
                let e = trace.entries[cursor];
                let mut req = e.request;
                // Replay runs on a fresh clock: whatever arrival stamp the
                // recording (or a hand-edited file) carries is meaningless
                // here. The controller restamps on enqueue; zeroing first
                // keeps replay independent of the recorded value.
                req.arrival = 0;
                backlog[usize::from(e.channel)].push_back(req);
                cursor += 1;
            }
            for (ch, mc) in mcs.iter_mut().enumerate() {
                while mc.can_accept() {
                    match backlog[ch].pop_front() {
                        Some(req) => mc.enqueue(req).expect("can_accept checked"),
                        None => break,
                    }
                }
                resp_buf.clear();
                mc.tick(&mut resp_buf);
            }
            let completed_now: u64 = mcs
                .iter()
                .map(|m| {
                    let s = m.stats();
                    s.reads + s.writes + s.dropped
                })
                .sum();
            if completed_now > completed {
                completed = completed_now;
                deadline = deadline.max(now.saturating_add(self.drain_grace));
            }
            let drained = cursor >= trace.entries.len()
                && backlog.iter().all(|b| b.is_empty())
                && mcs.iter().all(|m| m.is_idle());
            if drained || now > deadline {
                break;
            }
        }
        let mut stats = SimStats::new();
        for mc in &mut mcs {
            let _ = mc.drain();
            stats.dram.merge(mc.stats());
        }
        let served = stats.dram.reads + stats.dram.writes + stats.dram.dropped;
        Ok(ReplayReport {
            stats,
            served,
            unserved: (trace.len() as u64).saturating_sub(served),
            replay_cycles: now,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydram_common::{AccessKind, AddressMap, DmsMode, MemSpace, RequestId};

    fn entry(map: &AddressMap, id: u64, cycle: u64, addr: u64) -> TraceEntry {
        let addr = map.line_of(addr);
        TraceEntry {
            cycle,
            channel: map.channel_of(addr) as u16,
            request: Request {
                id: RequestId(id),
                addr,
                loc: map.decompose(addr),
                kind: AccessKind::Read,
                space: MemSpace::Global,
                approximable: false,
                arrival: 0,
            },
        }
    }

    #[test]
    fn replay_serves_every_request() {
        let cfg = GpuConfig::default();
        let map = AddressMap::new(&cfg);
        let mut trace = Trace::new();
        for i in 0..200u64 {
            trace.push(entry(&map, i, i * 3, i * 512 + (i % 7) * 65_536));
        }
        assert_eq!(trace.len(), 200);
        let stats = trace.replay(&cfg, &SchedConfig::baseline());
        assert_eq!(stats.dram.reads, 200);
        assert_eq!(stats.dram.requests_received, 200);
        assert!(stats.dram.activations > 0);
    }

    #[test]
    fn replay_is_deterministic() {
        let cfg = GpuConfig::default();
        let map = AddressMap::new(&cfg);
        let mut trace = Trace::new();
        for i in 0..100u64 {
            trace.push(entry(&map, i, i * 2, i * 128 * 13));
        }
        let a = trace.replay(&cfg, &SchedConfig::baseline());
        let b = trace.replay(&cfg, &SchedConfig::baseline());
        assert_eq!(a.dram, b.dram);
    }

    #[test]
    fn delayed_replay_reduces_activations_on_split_bursts() {
        // Two bursts to the same rows, 200 cycles apart (the Figure 3
        // pattern): DMS coalesces them in trace replay too.
        let cfg = GpuConfig::default();
        let map = AddressMap::new(&cfg);
        let mut trace = Trace::new();
        let row_stride = 2048 * 6; // next region of channel 0
        for burst in 0..2u64 {
            for row in 0..4u64 {
                trace.push(entry(
                    &map,
                    burst * 4 + row,
                    burst * 200,
                    row * row_stride * 16 + burst * 128,
                ));
            }
        }
        let base = trace.replay(&cfg, &SchedConfig::baseline());
        let dms = trace.replay(&cfg, &SchedConfig {
            dms: DmsMode::Static(256),
            ..SchedConfig::baseline()
        });
        assert!(
            dms.dram.activations < base.dram.activations,
            "DMS {} vs base {}",
            dms.dram.activations,
            base.dram.activations
        );
    }

    #[test]
    fn empty_trace_replays_to_zero() {
        let cfg = GpuConfig::default();
        let stats = Trace::new().replay(&cfg, &SchedConfig::baseline());
        assert_eq!(stats.dram.requests_received, 0);
        assert!(Trace::new().is_empty());
    }

    #[test]
    fn validate_rejects_out_of_order_entries() {
        let cfg = GpuConfig::default();
        let map = AddressMap::new(&cfg);
        let trace = Trace::from_entries(vec![
            entry(&map, 0, 100, 0),
            entry(&map, 1, 50, 512),
        ]);
        match trace.validate(cfg.num_channels) {
            Err(TraceError::OutOfOrder { index: 1, prev_cycle: 100, cycle: 50 }) => {}
            other => panic!("expected OutOfOrder, got {other:?}"),
        }
        // The Result-returning replayer surfaces the same error...
        assert!(matches!(
            TraceSim::new(&cfg, &SchedConfig::baseline()).replay(&trace),
            Err(TraceError::OutOfOrder { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "not time-ordered")]
    fn strict_replay_panics_on_out_of_order_entries() {
        let cfg = GpuConfig::default();
        let map = AddressMap::new(&cfg);
        let trace = Trace::from_entries(vec![
            entry(&map, 0, 100, 0),
            entry(&map, 1, 50, 512),
        ]);
        let _ = trace.replay(&cfg, &SchedConfig::baseline());
    }

    #[test]
    fn validate_rejects_out_of_range_channels() {
        let cfg = GpuConfig::default();
        let map = AddressMap::new(&cfg);
        let mut e = entry(&map, 0, 0, 0);
        e.channel = cfg.num_channels as u16; // one past the end
        let trace = Trace::from_entries(vec![e]);
        assert!(matches!(
            trace.validate(cfg.num_channels),
            Err(TraceError::BadChannel { index: 0, .. })
        ));
    }

    #[test]
    fn exhausted_drain_budget_reports_unserved_instead_of_dropping() {
        let cfg = GpuConfig::default();
        let map = AddressMap::new(&cfg);
        let mut trace = Trace::new();
        for i in 0..64u64 {
            trace.push(entry(&map, i, 0, i * 512));
        }
        // Zero grace: the clock stops right after the burst arrives, long
        // before the queues drain — every leftover must be accounted for.
        let report = TraceSim::new(&cfg, &SchedConfig::baseline())
            .drain_grace(0)
            .replay(&trace)
            .expect("valid trace");
        assert!(report.unserved > 0, "zero grace must leave requests behind");
        assert_eq!(report.served + report.unserved, trace.len() as u64);
        assert!(matches!(
            report.complete(),
            Err(TraceError::Unserved { .. })
        ));
    }

    #[test]
    fn replay_ignores_recorded_arrival_stamps() {
        // A trace whose arrival stamps are garbage (e.g. a hand-edited
        // file) must replay byte-identically to the clean version: replay
        // restamps arrivals on its own clock. DMS makes arrival semantics
        // observable (the delay gate compares against oldest arrival).
        let cfg = GpuConfig::default();
        let map = AddressMap::new(&cfg);
        let mut clean = Vec::new();
        let mut poisoned = Vec::new();
        for i in 0..150u64 {
            let e = entry(&map, i, i * 5, i * 384 + (i % 5) * 131_072);
            clean.push(e);
            let mut bad = e;
            bad.request.arrival = 987_654_321 + i;
            poisoned.push(bad);
        }
        let sched = SchedConfig { dms: DmsMode::Static(256), ..SchedConfig::baseline() };
        let a = Trace::from_entries(clean).replay(&cfg, &sched);
        let b = Trace::from_entries(poisoned).replay(&cfg, &sched);
        assert_eq!(a.dram, b.dram, "recorded arrivals must not leak into replay");
    }

    #[test]
    fn bytes_round_trip_preserves_entries_and_stats() {
        let cfg = GpuConfig::default();
        let map = AddressMap::new(&cfg);
        let mut trace = Trace::new();
        for i in 0..80u64 {
            trace.push(entry(&map, i, i * 4, i * 640));
        }
        let bytes = trace.to_bytes(&cfg);
        let loaded = Trace::from_bytes(&bytes, &cfg).expect("round trip");
        assert_eq!(loaded, trace);
        let a = trace.replay(&cfg, &SchedConfig::baseline());
        let b = loaded.replay(&cfg, &SchedConfig::baseline());
        assert_eq!(a.dram, b.dram);
    }

    #[test]
    fn from_bytes_rejects_incompatible_geometry() {
        let cfg = GpuConfig::default();
        let map = AddressMap::new(&cfg);
        let trace = Trace::from_entries(vec![entry(&map, 0, 0, 0)]);
        let bytes = trace.to_bytes(&cfg);
        let other = GpuConfig { num_channels: 4, ..GpuConfig::default() };
        assert!(matches!(
            Trace::from_bytes(&bytes, &other),
            Err(TraceError::ConfigMismatch { .. })
        ));
        // ... but sweep-varied knobs (queue size, timings) stay compatible.
        let swept = GpuConfig { pending_queue_size: 16, ..GpuConfig::default() };
        assert!(Trace::from_bytes(&bytes, &swept).is_ok());
    }

    #[test]
    fn from_bytes_rejects_truncated_snapshots() {
        let cfg = GpuConfig::default();
        let map = AddressMap::new(&cfg);
        let trace = Trace::from_entries(vec![entry(&map, 0, 0, 0)]);
        let bytes = trace.to_bytes(&cfg);
        assert!(matches!(
            Trace::from_bytes(&bytes[..bytes.len() - 3], &cfg),
            Err(TraceError::Snap(_))
        ));
    }

    #[test]
    fn stream_digest_tracks_geometry_not_sweep_knobs() {
        let base = GpuConfig::default();
        let queue = GpuConfig { pending_queue_size: 16, ..GpuConfig::default() };
        let sms = GpuConfig { num_sms: 4, ..GpuConfig::default() };
        let chans = GpuConfig { num_channels: 4, ..GpuConfig::default() };
        assert_eq!(Trace::stream_digest(&base), Trace::stream_digest(&queue));
        assert_eq!(Trace::stream_digest(&base), Trace::stream_digest(&sms));
        assert_ne!(Trace::stream_digest(&base), Trace::stream_digest(&chans));
    }
}
