//! DRAM request-trace capture and replay.
//!
//! The execution-driven simulator can record every request handed to the
//! memory controllers, producing a **memory trace** that can be replayed
//! through the scheduler alone — orders of magnitude faster than re-running
//! the GPU, and exactly the methodology of trace-driven DRAM studies. Replay
//! is *open-loop* (arrival times are fixed by the recording), so absolute
//! results differ slightly from the closed-loop run; shapes are preserved
//! for scheduler-side questions like queue-size or delay sweeps.

use lazydram_common::snap::{Loader, Saver, SnapResult};
use lazydram_common::{GpuConfig, Request, SchedConfig, SimStats};
use lazydram_core::MemoryController;

/// One recorded DRAM request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Memory cycle at which the request entered its controller.
    pub cycle: u64,
    /// Destination channel.
    pub channel: u16,
    /// The request (line address, kind, space, annotation).
    pub request: Request,
}

/// A captured DRAM request trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry (must be fed in non-decreasing cycle order).
    pub fn push(&mut self, entry: TraceEntry) {
        debug_assert!(
            self.entries.last().is_none_or(|e| e.cycle <= entry.cycle),
            "trace entries must be time-ordered"
        );
        self.entries.push(entry);
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the recorded entries in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Serializes the trace (every entry, in order).
    pub fn save_state(&self, s: &mut Saver) {
        s.seq("entries", self.entries.len());
        for e in &self.entries {
            s.u64("cycle", e.cycle);
            s.u16("channel", e.channel);
            e.request.save_state(s);
        }
    }

    /// Restores the trace from a snapshot, replacing current entries.
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed.
    pub fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        let n = l.seq("entries", 10)?;
        self.entries.clear();
        self.entries.reserve(n);
        for _ in 0..n {
            self.entries.push(TraceEntry {
                cycle: l.u64("cycle")?,
                channel: l.u16("channel")?,
                request: Request::load_state(l)?,
            });
        }
        Ok(())
    }

    /// Replays the trace through fresh memory controllers under `sched`,
    /// returning aggregate DRAM statistics.
    ///
    /// Arrival times are honored: a request is offered to its controller at
    /// its recorded cycle (or as soon afterwards as the pending queue has
    /// room — open-loop backpressure).
    pub fn replay(&self, cfg: &GpuConfig, sched: &SchedConfig) -> SimStats {
        let mut mcs: Vec<MemoryController> = (0..cfg.num_channels)
            .map(|_| MemoryController::new(cfg, sched))
            .collect();
        let mut cursor = 0usize;
        // Per-channel overflow queues for entries whose controller was full.
        let mut backlog: Vec<std::collections::VecDeque<Request>> =
            vec![std::collections::VecDeque::new(); cfg.num_channels];
        let mut now = 0u64;
        let horizon: u64 = self.entries.last().map_or(0, |e| e.cycle) + 10_000_000;
        let mut resp_buf: Vec<lazydram_core::Response> = Vec::new();
        loop {
            now += 1;
            while cursor < self.entries.len() && self.entries[cursor].cycle <= now {
                let e = self.entries[cursor];
                backlog[e.channel as usize].push_back(e.request);
                cursor += 1;
            }
            for (ch, mc) in mcs.iter_mut().enumerate() {
                while mc.can_accept() {
                    match backlog[ch].pop_front() {
                        Some(req) => mc.enqueue(req).expect("can_accept checked"),
                        None => break,
                    }
                }
                resp_buf.clear();
                mc.tick(&mut resp_buf);
            }
            let drained = cursor >= self.entries.len()
                && backlog.iter().all(|b| b.is_empty())
                && mcs.iter().all(|m| m.is_idle());
            if drained || now > horizon {
                break;
            }
        }
        let mut stats = SimStats::new();
        for mc in &mut mcs {
            let _ = mc.drain();
            stats.dram.merge(mc.channel().stats());
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydram_common::{AccessKind, AddressMap, MemSpace, RequestId};

    fn entry(map: &AddressMap, id: u64, cycle: u64, addr: u64) -> TraceEntry {
        let addr = map.line_of(addr);
        TraceEntry {
            cycle,
            channel: map.channel_of(addr) as u16,
            request: Request {
                id: RequestId(id),
                addr,
                loc: map.decompose(addr),
                kind: AccessKind::Read,
                space: MemSpace::Global,
                approximable: false,
                arrival: 0,
            },
        }
    }

    #[test]
    fn replay_serves_every_request() {
        let cfg = GpuConfig::default();
        let map = AddressMap::new(&cfg);
        let mut trace = Trace::new();
        for i in 0..200u64 {
            trace.push(entry(&map, i, i * 3, i * 512 + (i % 7) * 65_536));
        }
        assert_eq!(trace.len(), 200);
        let stats = trace.replay(&cfg, &SchedConfig::baseline());
        assert_eq!(stats.dram.reads, 200);
        assert_eq!(stats.dram.requests_received, 200);
        assert!(stats.dram.activations > 0);
    }

    #[test]
    fn replay_is_deterministic() {
        let cfg = GpuConfig::default();
        let map = AddressMap::new(&cfg);
        let mut trace = Trace::new();
        for i in 0..100u64 {
            trace.push(entry(&map, i, i * 2, i * 128 * 13));
        }
        let a = trace.replay(&cfg, &SchedConfig::baseline());
        let b = trace.replay(&cfg, &SchedConfig::baseline());
        assert_eq!(a.dram, b.dram);
    }

    #[test]
    fn delayed_replay_reduces_activations_on_split_bursts() {
        // Two bursts to the same rows, 200 cycles apart (the Figure 3
        // pattern): DMS coalesces them in trace replay too.
        let cfg = GpuConfig::default();
        let map = AddressMap::new(&cfg);
        let mut trace = Trace::new();
        let row_stride = 2048 * 6; // next region of channel 0
        for burst in 0..2u64 {
            for row in 0..4u64 {
                trace.push(entry(
                    &map,
                    burst * 4 + row,
                    burst * 200,
                    row * row_stride * 16 + burst * 128,
                ));
            }
        }
        let base = trace.replay(&cfg, &SchedConfig::baseline());
        let dms = trace.replay(&cfg, &SchedConfig {
            dms: lazydram_common::DmsMode::Static(256),
            ..SchedConfig::baseline()
        });
        assert!(
            dms.dram.activations < base.dram.activations,
            "DMS {} vs base {}",
            dms.dram.activations,
            base.dram.activations
        );
    }

    #[test]
    fn empty_trace_replays_to_zero() {
        let cfg = GpuConfig::default();
        let stats = Trace::new().replay(&cfg, &SchedConfig::baseline());
        assert_eq!(stats.dram.requests_received, 0);
        assert!(Trace::new().is_empty());
    }
}
