//! A minimal latency/bandwidth interconnect model.
//!
//! Each direction of the crossbar is a set of [`DelayQueue`]s (one per
//! destination). Items become visible `latency` cycles after being pushed,
//! at most `width` items pop per cycle, and capacity is finite so upstream
//! producers experience backpressure — the property that makes the paper's
//! pending-queue-full effects (Figure 13) observable.

use lazydram_common::snap::{Loader, Saver, SnapResult};
use std::collections::VecDeque;

/// Error returned when a [`DelayQueue`] is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocFull;

impl std::fmt::Display for NocFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("interconnect queue is full")
    }
}

impl std::error::Error for NocFull {}

/// A fixed-latency, bounded, in-order queue.
#[derive(Debug, Clone)]
pub struct DelayQueue<T> {
    items: VecDeque<(u64, T)>,
    latency: u64,
    capacity: usize,
    width: usize,
    popped_this_cycle: usize,
    current_cycle: u64,
}

impl<T> DelayQueue<T> {
    /// Creates a queue delivering items `latency` cycles after push, holding
    /// at most `capacity` items, releasing at most `width` per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `width` is zero.
    pub fn new(latency: u64, capacity: usize, width: usize) -> Self {
        assert!(capacity > 0 && width > 0);
        Self {
            items: VecDeque::new(),
            latency,
            capacity,
            width,
            popped_this_cycle: 0,
            current_cycle: 0,
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` when another push would fail.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Remaining capacity. Saturates at zero: the phased tick commits
    /// staged requests past capacity (see [`DelayQueue::push_unchecked`]),
    /// so `len` can transiently exceed `capacity`.
    pub fn free(&self) -> usize {
        self.capacity.saturating_sub(self.items.len())
    }

    /// Pushes an item at time `now`; it becomes poppable at `now + latency`.
    ///
    /// # Errors
    ///
    /// Returns [`NocFull`] when the queue is at capacity.
    pub fn push(&mut self, now: u64, item: T) -> Result<(), NocFull> {
        if self.is_full() {
            return Err(NocFull);
        }
        self.items.push_back((now + self.latency, item));
        Ok(())
    }

    /// Pushes an item at time `now` without a capacity check.
    ///
    /// Used by the barrier phase of the tick: each producer reserved its
    /// slots against a cycle-start snapshot of `free()`, and because every
    /// producer sees the *same* snapshot the sum of reservations can exceed
    /// the true remaining capacity by design — the queue absorbs the
    /// overflow and backpressure surfaces through `free()` (saturating to
    /// zero) on the next cycle. Never use this from a path that has not
    /// reserved via a `free()` snapshot.
    pub fn push_unchecked(&mut self, now: u64, item: T) {
        self.items.push_back((now + self.latency, item));
    }

    /// Pops the next ready item at time `now`, honoring the per-cycle width.
    pub fn pop_ready(&mut self, now: u64) -> Option<T> {
        if now != self.current_cycle {
            self.current_cycle = now;
            self.popped_this_cycle = 0;
        }
        if self.popped_this_cycle >= self.width {
            return None;
        }
        match self.items.front() {
            Some(&(ready, _)) if ready <= now => {
                self.popped_this_cycle += 1;
                self.items.pop_front().map(|(_, t)| t)
            }
            _ => None,
        }
    }

    /// The cycle at which the next item becomes poppable, or `None` when
    /// the queue is empty. Pushes stamp monotonically increasing ready
    /// times (constant latency) and `push_front` re-inserts at the current
    /// cycle, so the front item is always the earliest.
    pub fn next_ready_cycle(&self) -> Option<u64> {
        self.items.front().map(|&(ready, _)| ready)
    }

    /// The front item, if any, without consuming it — the item
    /// [`DelayQueue::pop_ready`] would deliver next once its time comes.
    pub fn peek(&self) -> Option<&T> {
        self.items.front().map(|(_, t)| t)
    }

    /// Returns an item to the front of the queue, immediately poppable
    /// (used when a consumer must retry, e.g. downstream backpressure).
    pub fn push_front(&mut self, now: u64, item: T) {
        self.items.push_front((now, item));
        // The retried item does not consume width again this cycle either
        // way; callers stop processing after a push_front.
    }

    /// Serializes the queue's dynamic state. `save_item` writes one queued
    /// item; the latency/capacity/width come from the configuration at
    /// restore time.
    pub fn save_state(&self, s: &mut Saver, mut save_item: impl FnMut(&mut Saver, &T)) {
        s.u64("current_cycle", self.current_cycle);
        s.usize("popped_this_cycle", self.popped_this_cycle);
        s.seq("items", self.items.len());
        for (ready, item) in &self.items {
            s.u64("ready", *ready);
            save_item(s, item);
        }
    }

    /// Restores dynamic state into a queue built with the same parameters;
    /// `load_item` mirrors the `save_item` closure of
    /// [`DelayQueue::save_state`].
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed.
    pub fn load_state(
        &mut self,
        l: &mut Loader<'_>,
        mut load_item: impl FnMut(&mut Loader<'_>) -> SnapResult<T>,
    ) -> SnapResult<()> {
        self.current_cycle = l.u64("current_cycle")?;
        self.popped_this_cycle = l.usize("popped_this_cycle")?;
        let n = l.seq("items", 8)?;
        self.items.clear();
        self.items.reserve(n);
        for _ in 0..n {
            let ready = l.u64("ready")?;
            self.items.push_back((ready, load_item(l)?));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_after_latency() {
        let mut q = DelayQueue::new(5, 8, 4);
        q.push(10, "a").unwrap();
        assert!(q.pop_ready(14).is_none());
        assert_eq!(q.pop_ready(15), Some("a"));
        assert!(q.pop_ready(15).is_none());
    }

    #[test]
    fn respects_width_per_cycle() {
        let mut q = DelayQueue::new(0, 8, 2);
        for i in 0..4 {
            q.push(0, i).unwrap();
        }
        assert_eq!(q.pop_ready(1), Some(0));
        assert_eq!(q.pop_ready(1), Some(1));
        assert!(q.pop_ready(1).is_none(), "width exhausted");
        assert_eq!(q.pop_ready(2), Some(2));
    }

    #[test]
    fn capacity_backpressure() {
        let mut q = DelayQueue::new(0, 2, 1);
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        assert_eq!(q.push(0, 3), Err(NocFull));
        assert!(q.is_full());
        assert_eq!(q.free(), 0);
        q.pop_ready(1);
        assert!(q.push(1, 3).is_ok());
    }

    #[test]
    fn preserves_fifo_order() {
        let mut q = DelayQueue::new(3, 8, 8);
        q.push(0, "x").unwrap();
        q.push(1, "y").unwrap();
        assert_eq!(q.pop_ready(4), Some("x"));
        assert_eq!(q.pop_ready(4), Some("y"));
    }

    #[test]
    fn push_front_retries_immediately() {
        let mut q = DelayQueue::new(10, 8, 8);
        q.push(0, 7).unwrap();
        let v = q.pop_ready(10).unwrap();
        q.push_front(10, v);
        assert_eq!(q.pop_ready(10), Some(7));
        assert_eq!(q.pop_ready(11), None);
    }
}
