//! The top-level execution-driven simulator.
//!
//! [`Simulator::run`] wires 30 SMs, a request/reply crossbar, 6 L2 slices and
//! 6 lazy memory controllers together, runs a [`Kernel`] to completion (or a
//! cycle limit), and returns per-run statistics plus the kernel output for
//! application-error measurement.
//!
//! The master loop runs in *core* cycles (1400 MHz); an exact integer
//! accumulator ticks the memory side at the 924 / 1400 clock ratio, so every
//! DRAM timing parameter and every DMS/AMS window is honored in memory cycles
//! exactly as in the paper.
//!
//! # Phased parallel tick
//!
//! Each executed cycle runs as four phases: SMs tick in parallel against a
//! read-only memory image, staging their outbound requests and functional
//! writes (phase A); the staged effects commit in ascending SM order at a
//! barrier (phase B); the six memory partitions — L2 slice, controller,
//! DRAM channel — tick in parallel, staging replies (phase C); and the
//! staged replies merge into the reply NoC in ascending slice order
//! (phase D). `LAZYDRAM_CORES` (or [`Simulator::with_cores`]) sets how many
//! threads a [`WorkerPool`] may spread phases A and C over; because the
//! phases and the canonical merge orders *are* the semantics, every thread
//! count — including 1, which runs everything inline — produces
//! **bit-identical** results. See `DESIGN.md` §12 for the equivalence
//! argument.
//!
//! # Event-driven fast-forward
//!
//! DMS deliberately *creates* long stall epochs (it delays row activations by
//! up to 2048 memory cycles), so in the paper's most interesting
//! configurations the majority of cycles tick every component for no effect.
//! Instead of executing those, the loop asks each component for its next
//! event:
//!
//! * SMs: [`Sm::has_work`] — conservative "could issue this cycle";
//! * [`DelayQueue`]s: head ready-time (the head is always the earliest item);
//! * slices: [`Slice::has_work`] — buffered responses / writebacks / retries;
//! * controllers: [`MemoryController::next_event_cycle`] — earliest in-flight
//!   completion, DMS delay expiry, refresh, or Dyn-DMS/Dyn-AMS window
//!   boundary, in memory cycles.
//!
//! When nothing has work *this* cycle, `core_cycle` jumps to the minimum next
//! event and the clock accumulator advances analytically, so the memory clock
//! lands on exactly the same cycles as the naive loop. Executed cycles run
//! the identical phase code, and skips only cover cycles every component has
//! proven to be no-ops — results are **bit-identical** with skipping on or
//! off (enforced by the `fast_forward_equivalence` suite test and a
//! proptest). `LAZYDRAM_NO_SKIP=1` forces the naive loop for debugging.
//!
//! # Checkpoint / resume
//!
//! All per-launch state lives in one [`LaunchMachine`] struct, so a run can
//! be paused at any cumulative core cycle ([`Simulator::run_until`]) and
//! serialized into a [`Checkpoint`] — a self-contained byte blob in the
//! `snap` wire format. [`Simulator::resume`] restores it and continues;
//! the resumed run's [`RunResult`] is **byte-identical** to the
//! uninterrupted run's (enforced by `tests/checkpoint_equivalence.rs` and a
//! proptest). Pausing clamps an in-flight fast-forward at the pause cycle
//! and the resumed loop re-derives the remainder of the skip, so even the
//! executed/skipped cycle accounting survives the round trip unchanged.
//!
//! A checkpoint stores only *dynamic* state: configuration-derived geometry
//! is rebuilt from the resuming [`Simulator`] (a config fingerprint is
//! validated), and warp programs are reconstructed from the resuming
//! [`Kernel`] before their dynamic state is loaded into them.

use crate::kernel::Kernel;
use crate::memimg::MemoryImage;
use crate::noc::DelayQueue;
use crate::pool::{SharedSlice, WorkerPool};
use crate::slice::Slice;
use crate::trace::{Trace, TraceEntry};
use crate::sm::{Reply, Sm, SmCtx, SliceReq, SmStage};
use lazydram_common::prof::{self, Phase};
use lazydram_common::snap::{digest, list_frames, FrameInfo, Loader, Saver, SnapError, SnapResult};
use lazydram_common::{AddressMap, GpuConfig, ProfReport, SchedConfig, SimStats};
use lazydram_core::{MemoryController, Response};
use std::sync::OnceLock;

/// Safety limits for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimLimits {
    /// Hard cap on core cycles (guards against livelock in experiments).
    pub max_core_cycles: u64,
}

impl Default for SimLimits {
    fn default() -> Self {
        Self {
            max_core_cycles: 50_000_000,
        }
    }
}

/// Parses a `LAZYDRAM_NO_SKIP` value: `1`/`true` force the naive
/// cycle-by-cycle loop, `0`/`false` keep event-driven fast-forward.
///
/// Kept separate from the env lookup so the validation is unit-testable.
pub fn parse_no_skip(s: &str) -> Result<bool, String> {
    match s.trim() {
        "1" | "true" => Ok(true),
        "0" | "false" => Ok(false),
        _ => Err(format!(
            "LAZYDRAM_NO_SKIP={s:?} is not a boolean; expected 1/true to \
             disable cycle skipping or 0/false to keep it enabled"
        )),
    }
}

/// Whether `LAZYDRAM_NO_SKIP` disables fast-forward for this process.
///
/// # Panics
///
/// Panics on a malformed value instead of silently picking a loop mode (the
/// two modes are result-identical but differ wildly in wall-clock).
fn no_skip_from_env() -> bool {
    static NO_SKIP: OnceLock<bool> = OnceLock::new();
    *NO_SKIP.get_or_init(|| match std::env::var("LAZYDRAM_NO_SKIP") {
        Ok(s) => parse_no_skip(&s).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => false,
    })
}

/// Parses a `LAZYDRAM_NO_COMPUTE_SKIP` value: `1`/`true` restrict
/// fast-forward to provably idle spans (the PR 2 behavior), `0`/`false`
/// keep the analytic compute-burst skip enabled.
///
/// Kept separate from the env lookup so the validation is unit-testable.
///
/// # Errors
///
/// Returns a description of the expected format on anything else.
pub fn parse_no_compute_skip(s: &str) -> Result<bool, String> {
    match s.trim() {
        "1" | "true" => Ok(true),
        "0" | "false" => Ok(false),
        _ => Err(format!(
            "LAZYDRAM_NO_COMPUTE_SKIP={s:?} is not a boolean; expected 1/true \
             to restrict fast-forward to idle spans or 0/false to keep the \
             analytic compute-burst skip enabled"
        )),
    }
}

/// Whether `LAZYDRAM_NO_COMPUTE_SKIP` disables compute-burst skipping for
/// this process. The escape hatch exists so `dbg_diverge` can bisect a
/// compute-skip slip against the idle-only schedule.
///
/// # Panics
///
/// Panics on a malformed value instead of silently picking a loop mode (the
/// modes are result-identical but differ wildly in wall-clock).
fn no_compute_skip_from_env() -> bool {
    static NO_COMPUTE_SKIP: OnceLock<bool> = OnceLock::new();
    *NO_COMPUTE_SKIP.get_or_init(|| match std::env::var("LAZYDRAM_NO_COMPUTE_SKIP") {
        Ok(s) => parse_no_compute_skip(&s).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => false,
    })
}

/// Parses a `LAZYDRAM_CORES` value: how many threads (the calling thread
/// included) the phased tick may use. Must be an integer >= 1. Results are
/// bit-identical at every value; only wall-clock changes.
///
/// Kept separate from the env lookup so the validation is unit-testable.
///
/// # Errors
///
/// Returns a description of the expected format on anything else.
pub fn parse_cores(s: &str) -> Result<usize, String> {
    match s.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "LAZYDRAM_CORES={s:?} is not a thread count; expected an integer \
             >= 1 (1 disables the worker pool entirely)"
        )),
    }
}

/// `LAZYDRAM_CORES` from the environment (cached; default 1).
///
/// This is the process-wide default [`Simulator::with_cores`] starts from;
/// sweep runners read it too, to warn when `LAZYDRAM_JOBS x LAZYDRAM_CORES`
/// oversubscribes the host.
///
/// # Panics
///
/// Panics on a malformed value instead of silently falling back to one
/// thread — a typo here would invisibly turn a scaling experiment
/// single-threaded.
pub fn cores_from_env() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| match std::env::var("LAZYDRAM_CORES") {
        Ok(s) => parse_cores(&s).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => 1,
    })
}

/// The result of one kernel run.
#[derive(Debug)]
pub struct RunResult {
    /// Aggregated statistics.
    pub stats: SimStats,
    /// Kernel output (for application-error comparison across runs).
    pub output: Vec<f32>,
    /// `true` when the run hit [`SimLimits::max_core_cycles`] before the
    /// kernel finished; statistics are still meaningful but partial.
    pub hit_cycle_limit: bool,
    /// The DRAM request trace, when capture was enabled
    /// ([`Simulator::with_trace_capture`]). Entries are in per-controller
    /// arrival order, merged across channels by cycle.
    pub trace: Option<Trace>,
}

/// A paused simulation, serialized into a self-contained byte blob in the
/// `snap` wire format (see `DESIGN.md` §10).
///
/// Produced by [`Simulator::run_until`] and consumed by
/// [`Simulator::resume`]; the bytes round-trip through
/// [`Checkpoint::into_bytes`] / [`Checkpoint::from_bytes`] so sweeps can
/// park them on disk and survive a crash.
///
/// Layout after the 6-byte `snap` header: a flat sequence of frames —
/// `meta[0]` (launch index, config fingerprint, pause cycle), `stat[0]`
/// (statistics of completed launches), `trc[0]`, `img[0]`, `mach[0]`
/// (loop scalars), then one `sm[i]` / `slc[i]` / `mc[i]` / `rnoc[i]` /
/// `pnoc[i]` frame per component. The flat framing is what lets
/// `dbg_diverge` digest and diff checkpoint regions component by component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    data: Vec<u8>,
    launch_idx: usize,
    cycle: u64,
}

impl Checkpoint {
    /// The serialized bytes (header included), ready to write to disk.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Consumes the checkpoint and returns the serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }

    /// Reconstructs a checkpoint from bytes produced by
    /// [`Checkpoint::into_bytes`], validating the header, the `meta` frame
    /// and the overall frame structure (component payloads are validated
    /// later, on [`Simulator::resume`]).
    ///
    /// # Errors
    ///
    /// Returns an error when the bytes are not a structurally valid
    /// checkpoint.
    pub fn from_bytes(data: Vec<u8>) -> SnapResult<Self> {
        let mut l = Loader::new(&data);
        l.expect_header()?;
        let body_start = l.pos();
        let (launch_idx, cycle) = l.frame("meta", 0, |l| {
            let li = l.usize("launch_idx")?;
            let _cfg_digest = l.u64("cfg_digest")?;
            let c = l.u64("cycle")?;
            Ok((li, c))
        })?;
        list_frames(&data[body_start..])?;
        Ok(Self {
            data,
            launch_idx,
            cycle,
        })
    }

    /// Index of the in-progress launch within the kernel sequence (always
    /// `0` for single-kernel runs).
    pub fn launch_idx(&self) -> usize {
        self.launch_idx
    }

    /// Cumulative core cycle at which the simulation paused.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Canonical digest of the full checkpoint (SplitMix64 fold over the
    /// serialized bytes). Two runs in identical states produce identical
    /// digests — the primitive `dbg_diverge` bisects on.
    pub fn digest(&self) -> u64 {
        digest(&self.data)
    }

    /// The byte region after the `snap` header: a flat frame sequence.
    pub fn body(&self) -> &[u8] {
        let mut l = Loader::new(&self.data);
        l.expect_header().expect("constructed checkpoints have a valid header");
        &self.data[l.pos()..]
    }

    /// Locates the top-level frames (`meta`, `stat`, `img`, `sm[i]`, …)
    /// inside [`Checkpoint::body`], for component-granular comparison.
    ///
    /// # Errors
    ///
    /// Returns an error when the frame structure is malformed (cannot
    /// happen for checkpoints built by [`Simulator::run_until`]).
    pub fn frames(&self) -> SnapResult<Vec<FrameInfo>> {
        list_frames(self.body())
    }
}

/// Outcome of a bounded run ([`Simulator::run_until`] and friends).
// A transient return value consumed immediately at each call site — never
// stored in collections — so the Done/Paused size skew is harmless and
// boxing would only push an allocation onto the completion path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum RunOutcome {
    /// The kernel (sequence) ran to completion — or hit its cycle limit —
    /// before reaching the pause target.
    Done(RunResult),
    /// The pause target was reached first; the checkpoint resumes the run.
    Paused(Checkpoint),
}

impl RunOutcome {
    /// Unwraps the completed result.
    ///
    /// # Panics
    ///
    /// Panics if the run paused instead.
    pub fn expect_done(self, msg: &str) -> RunResult {
        match self {
            RunOutcome::Done(r) => r,
            RunOutcome::Paused(ck) => panic!("{msg}: run paused at cycle {}", ck.cycle()),
        }
    }

    /// Unwraps the checkpoint of a paused run.
    ///
    /// # Panics
    ///
    /// Panics if the run completed instead.
    pub fn expect_paused(self, msg: &str) -> Checkpoint {
        match self {
            RunOutcome::Paused(ck) => ck,
            RunOutcome::Done(_) => panic!("{msg}: run completed before the pause target"),
        }
    }
}

/// All mutable state of one kernel launch — the SMs, slices, controllers,
/// crossbar queues, and the cycle-loop scalars — gathered into one struct so
/// it can be serialized as a unit and restored bit-identically.
struct LaunchMachine {
    map: AddressMap,
    sms: Vec<Sm>,
    slices: Vec<Slice>,
    mcs: Vec<MemoryController>,
    req_noc: Vec<DelayQueue<SliceReq>>,
    reply_noc: Vec<DelayQueue<Reply>>,
    total_warps: usize,
    next_warp: usize,
    /// Clock-divider residue: each core cycle adds `mem_hz` units and one
    /// memory tick fires per `core_hz` units accumulated. Unlike a floating
    /// accumulator this is drift-free and can be advanced analytically
    /// across skipped spans.
    acc: u64,
    mem_time: u64,
    core_cycle: u64,
    ticks_executed: u64,
    cycles_skipped: u64,
    /// The subset of `cycles_skipped` classified as compute-skip: spans
    /// where at least one SM replayed `Computing` warps analytically.
    compute_cycles_skipped: u64,
    /// Per-SM staging areas for phase A of the tick. Transient: drained at
    /// the phase-B barrier every cycle, so they are always empty between
    /// cycles and are never serialized.
    stages: Vec<SmStage>,
    /// Per-partition controller response scratch for phase C. Transient:
    /// drained into the owning slice within the phase.
    resp_bufs: Vec<Vec<Response>>,
    /// Wall-clock phase totals accumulated by pool worker threads over this
    /// launch. Transient: folded into the run statistics by
    /// [`LaunchMachine::fold_into`], never serialized (profiling data is
    /// excluded from checkpoints and stats equality).
    worker_prof: ProfReport,
}

impl LaunchMachine {
    /// Builds an empty machine from configuration (no warps dispatched yet).
    fn new(cfg: &GpuConfig, sched: &SchedConfig, capture_trace: bool, total_warps: usize) -> Self {
        Self {
            map: AddressMap::new(cfg),
            sms: (0..cfg.num_sms).map(|i| Sm::new(i, cfg)).collect(),
            slices: (0..cfg.num_channels)
                .map(|i| {
                    let mut s = Slice::new(i, cfg, sched);
                    if capture_trace {
                        s.trace = Some(Trace::new());
                    }
                    s
                })
                .collect(),
            mcs: (0..cfg.num_channels)
                .map(|_| MemoryController::new(cfg, sched))
                .collect(),
            req_noc: (0..cfg.num_channels)
                .map(|_| {
                    DelayQueue::new(
                        u64::from(cfg.noc_latency) + u64::from(cfg.l2_latency),
                        64,
                        cfg.noc_width,
                    )
                })
                .collect(),
            reply_noc: (0..cfg.num_sms)
                .map(|_| DelayQueue::new(u64::from(cfg.noc_latency), 256, 8))
                .collect(),
            total_warps,
            next_warp: 0,
            acc: 0,
            mem_time: 0,
            core_cycle: 0,
            ticks_executed: 0,
            cycles_skipped: 0,
            compute_cycles_skipped: 0,
            stages: (0..cfg.num_sms)
                .map(|_| SmStage::new(cfg.num_channels))
                .collect(),
            resp_bufs: vec![Vec::new(); cfg.num_channels],
            worker_prof: ProfReport::default(),
        }
    }

    /// Initial dispatch: round-robin across SMs (like GPGPU-Sim's block
    /// dispatcher), so small launches spread over all cores instead of
    /// piling onto SM 0 and thrashing its L1.
    fn fill(&mut self, kernel: &dyn Kernel) {
        'fill: loop {
            let mut placed = false;
            for sm in &mut self.sms {
                if self.next_warp >= self.total_warps {
                    break 'fill;
                }
                if sm.has_free_slot() {
                    sm.dispatch(self.next_warp, kernel.program(self.next_warp));
                    self.next_warp += 1;
                    placed = true;
                }
            }
            if !placed {
                break;
            }
        }
    }

    /// Serializes the machine as a flat sequence of per-component frames.
    fn save_frames(&self, s: &mut Saver) {
        s.frame("mach", 1, |s| {
            s.usize("total_warps", self.total_warps);
            s.usize("next_warp", self.next_warp);
            s.u64("acc", self.acc);
            s.u64("mem_time", self.mem_time);
            s.u64("core_cycle", self.core_cycle);
            s.u64("ticks_executed", self.ticks_executed);
            s.u64("cycles_skipped", self.cycles_skipped);
            s.u64("compute_cycles_skipped", self.compute_cycles_skipped);
        });
        for (i, sm) in self.sms.iter().enumerate() {
            s.frame("sm", i as u32, |s| sm.save_state(s));
        }
        for (i, slice) in self.slices.iter().enumerate() {
            s.frame("slc", i as u32, |s| slice.save_state(s));
        }
        for (i, mc) in self.mcs.iter().enumerate() {
            s.frame("mc", i as u32, |s| mc.save_state(s));
        }
        for (i, q) in self.req_noc.iter().enumerate() {
            s.frame("rnoc", i as u32, |s| {
                q.save_state(s, |s, r: &SliceReq| {
                    s.usize("sm", r.sm);
                    s.u64("line", r.line);
                    s.bool("write", r.write);
                    s.bool("approximable", r.approximable);
                });
            });
        }
        for (i, q) in self.reply_noc.iter().enumerate() {
            s.frame("pnoc", i as u32, |s| {
                q.save_state(s, |s, r: &Reply| {
                    s.u64("line", r.line);
                    s.bool("has_values", r.values.is_some());
                    if let Some(v) = &r.values {
                        s.f32s("values", v);
                    }
                });
            });
        }
    }

    /// Restores a machine built by [`LaunchMachine::new`] with the same
    /// configuration; warp programs are reconstructed from `kernel` and
    /// their dynamic state loaded into them.
    fn load_frames(&mut self, l: &mut Loader<'_>, kernel: &dyn Kernel) -> SnapResult<()> {
        let expect_warps = self.total_warps;
        let scalars = l.frame("mach", 1, |l| {
            let tw = l.usize("total_warps")?;
            if tw != expect_warps {
                return Err(SnapError::Malformed {
                    label: "total_warps".into(),
                    why: format!(
                        "checkpoint was taken with {tw} warps but the supplied \
                         kernel launches {expect_warps}"
                    ),
                });
            }
            Ok([
                l.u64("next_warp")?,
                l.u64("acc")?,
                l.u64("mem_time")?,
                l.u64("core_cycle")?,
                l.u64("ticks_executed")?,
                l.u64("cycles_skipped")?,
                l.u64("compute_cycles_skipped")?,
            ])
        })?;
        self.next_warp = scalars[0] as usize;
        self.acc = scalars[1];
        self.mem_time = scalars[2];
        self.core_cycle = scalars[3];
        self.ticks_executed = scalars[4];
        self.cycles_skipped = scalars[5];
        self.compute_cycles_skipped = scalars[6];
        for (i, sm) in self.sms.iter_mut().enumerate() {
            l.frame("sm", i as u32, |l| sm.load_state(l, kernel))?;
        }
        for (i, slice) in self.slices.iter_mut().enumerate() {
            l.frame("slc", i as u32, |l| slice.load_state(l))?;
        }
        for (i, mc) in self.mcs.iter_mut().enumerate() {
            l.frame("mc", i as u32, |l| mc.load_state(l))?;
        }
        for (i, q) in self.req_noc.iter_mut().enumerate() {
            l.frame("rnoc", i as u32, |l| {
                q.load_state(l, |l| {
                    Ok(SliceReq {
                        sm: l.usize("sm")?,
                        line: l.u64("line")?,
                        write: l.bool("write")?,
                        approximable: l.bool("approximable")?,
                    })
                })
            })?;
        }
        for (i, q) in self.reply_noc.iter_mut().enumerate() {
            l.frame("pnoc", i as u32, |l| {
                q.load_state(l, |l| {
                    let line = l.u64("line")?;
                    let values = if l.bool("has_values")? {
                        let mut v = [0f32; 32];
                        l.f32_array("values", &mut v)?;
                        Some(v)
                    } else {
                        None
                    };
                    Ok(Reply { line, values })
                })
            })?;
        }
        Ok(())
    }
}

/// One configured GPU simulation.
pub struct Simulator {
    cfg: GpuConfig,
    sched: SchedConfig,
    limits: SimLimits,
    capture_trace: bool,
    cycle_skipping: bool,
    compute_skipping: bool,
    cores: usize,
}

/// Outcome of driving one launch's machine.
enum StepOutcome {
    /// The launch finished (or hit the cycle limit).
    Finished { hit_limit: bool },
    /// The pause target was reached; the machine is mid-launch.
    Paused,
}

/// A kernel sequence passed either as one `&mut dyn Kernel` or a boxed
/// slice; lets the single- and multi-launch entry points share one driver.
enum SeqMut<'a> {
    One(&'a mut dyn Kernel),
    Many(&'a mut [Box<dyn Kernel>]),
}

impl SeqMut<'_> {
    fn len(&self) -> usize {
        match self {
            SeqMut::One(_) => 1,
            SeqMut::Many(ks) => ks.len(),
        }
    }

    fn get(&mut self, i: usize) -> &mut dyn Kernel {
        match self {
            SeqMut::One(k) => {
                debug_assert_eq!(i, 0);
                &mut **k
            }
            SeqMut::Many(ks) => ks[i].as_mut(),
        }
    }
}

/// State restored from a checkpoint, ready to continue driving.
struct Restored {
    stats: SimStats,
    trace: Option<Trace>,
    image: MemoryImage,
    machine: LaunchMachine,
}

impl Simulator {
    /// Creates a simulator for a GPU configuration and scheduling policy.
    /// Event-driven cycle skipping is on unless `LAZYDRAM_NO_SKIP=1`.
    pub fn new(cfg: GpuConfig, sched: SchedConfig) -> Self {
        Self {
            cfg,
            sched,
            limits: SimLimits::default(),
            capture_trace: false,
            cycle_skipping: !no_skip_from_env(),
            compute_skipping: !no_compute_skip_from_env(),
            cores: cores_from_env(),
        }
    }

    /// Overrides the default safety limits.
    pub fn with_limits(mut self, limits: SimLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Enables DRAM request-trace capture; the trace lands in
    /// [`RunResult::trace`] and can be replayed with [`Trace::replay`].
    pub fn with_trace_capture(mut self, capture: bool) -> Self {
        self.capture_trace = capture;
        self
    }

    /// Forces event-driven cycle skipping on or off, overriding the
    /// `LAZYDRAM_NO_SKIP` environment default. Results are bit-identical
    /// either way; only wall-clock changes.
    pub fn with_cycle_skipping(mut self, enabled: bool) -> Self {
        self.cycle_skipping = enabled;
        self
    }

    /// Forces analytic compute-burst skipping on or off, overriding the
    /// `LAZYDRAM_NO_COMPUTE_SKIP` environment default. Only effective while
    /// cycle skipping itself is enabled; results are bit-identical either
    /// way, only wall-clock changes.
    pub fn with_compute_skipping(mut self, enabled: bool) -> Self {
        self.compute_skipping = enabled;
        self
    }

    /// Overrides the phased tick's thread budget (the `LAZYDRAM_CORES`
    /// environment default). The budget includes the calling thread, so `1`
    /// disables the worker pool; the pool itself further caps the count at
    /// the host's available parallelism (see [`WorkerPool::new`]).
    ///
    /// Results are bit-identical at every value — the setting is
    /// deliberately *excluded* from the checkpoint config fingerprint, so a
    /// checkpoint taken at one width resumes at any other.
    ///
    /// # Panics
    ///
    /// Panics when `cores` is zero.
    pub fn with_cores(mut self, cores: usize) -> Self {
        assert!(cores >= 1, "the tick needs at least the calling thread");
        self.cores = cores;
        self
    }

    /// Replays a captured request trace through this machine's MC + DRAM
    /// under this simulator's scheduling policy — the open-loop fast path
    /// (no SMs, caches, or interconnect are simulated). See
    /// [`crate::TraceSim`] for the replay semantics.
    ///
    /// # Errors
    ///
    /// [`TraceError`](crate::TraceError) on a malformed trace.
    pub fn replay_trace(
        &self,
        trace: &Trace,
    ) -> Result<crate::ReplayReport, crate::TraceError> {
        crate::TraceSim::new(&self.cfg, &self.sched).replay(trace)
    }

    /// Runs `kernel` to completion and returns statistics plus output.
    pub fn run(&self, kernel: &mut dyn Kernel) -> RunResult {
        self.drive(&mut SeqMut::One(kernel), None, None)
            .expect("fresh runs deserialize nothing")
            .expect_done("no pause target was set")
    }

    /// Runs several dependent kernel launches back to back on one shared
    /// memory image (e.g. the two matrix products of `2MM`), accumulating
    /// statistics. The returned output is the **last** launch's output.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty.
    pub fn run_sequence(&self, kernels: &mut [Box<dyn Kernel>]) -> RunResult {
        self.drive(&mut SeqMut::Many(kernels), None, None)
            .expect("fresh runs deserialize nothing")
            .expect_done("no pause target was set")
    }

    /// Runs `kernel` until it completes or the cumulative core-cycle count
    /// reaches `pause_at`, whichever comes first. A paused run returns a
    /// [`Checkpoint`] that [`Simulator::resume`] continues bit-identically.
    pub fn run_until(&self, kernel: &mut dyn Kernel, pause_at: u64) -> RunOutcome {
        self.drive(&mut SeqMut::One(kernel), None, Some(pause_at))
            .expect("fresh runs deserialize nothing")
    }

    /// [`Simulator::run_until`] for a multi-launch sequence; the pause
    /// target counts core cycles cumulatively across launches.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty.
    pub fn run_sequence_until(&self, kernels: &mut [Box<dyn Kernel>], pause_at: u64) -> RunOutcome {
        self.drive(&mut SeqMut::Many(kernels), None, Some(pause_at))
            .expect("fresh runs deserialize nothing")
    }

    /// Resumes a paused run to completion. `kernel` must be a freshly built
    /// instance of the same kernel the checkpoint was taken from (its
    /// `setup` is replayed against a scratch image to rebuild internal
    /// region pointers; the checkpointed memory image is what the run uses).
    ///
    /// # Errors
    ///
    /// Returns an error when the checkpoint bytes are malformed or were
    /// taken under a different configuration or kernel.
    pub fn resume(&self, kernel: &mut dyn Kernel, ck: &Checkpoint) -> SnapResult<RunResult> {
        Ok(self
            .drive(&mut SeqMut::One(kernel), Some(ck), None)?
            .expect_done("no pause target was set"))
    }

    /// Resumes a paused run until completion or a (later) pause target.
    ///
    /// # Errors
    ///
    /// Returns an error when the checkpoint bytes are malformed or were
    /// taken under a different configuration or kernel.
    pub fn resume_until(
        &self,
        kernel: &mut dyn Kernel,
        ck: &Checkpoint,
        pause_at: u64,
    ) -> SnapResult<RunOutcome> {
        self.drive(&mut SeqMut::One(kernel), Some(ck), Some(pause_at))
    }

    /// Resumes a paused multi-launch sequence to completion.
    ///
    /// # Errors
    ///
    /// Returns an error when the checkpoint bytes are malformed or were
    /// taken under a different configuration or kernel sequence.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty.
    pub fn resume_sequence(
        &self,
        kernels: &mut [Box<dyn Kernel>],
        ck: &Checkpoint,
    ) -> SnapResult<RunResult> {
        Ok(self
            .drive(&mut SeqMut::Many(kernels), Some(ck), None)?
            .expect_done("no pause target was set"))
    }

    /// Resumes a paused multi-launch sequence until completion or a (later)
    /// pause target.
    ///
    /// # Errors
    ///
    /// Returns an error when the checkpoint bytes are malformed or were
    /// taken under a different configuration or kernel sequence.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty.
    pub fn resume_sequence_until(
        &self,
        kernels: &mut [Box<dyn Kernel>],
        ck: &Checkpoint,
        pause_at: u64,
    ) -> SnapResult<RunOutcome> {
        self.drive(&mut SeqMut::Many(kernels), Some(ck), Some(pause_at))
    }

    /// Re-serializes `ck` with field labels and returns every primitive as
    /// a `(path, value)` pair (e.g. `("sm[2]/slot[5]/rr", "3")`) — the
    /// input to `dbg_diverge`'s component-level field diff. `kernel` plays
    /// the same role as in [`Simulator::resume`].
    ///
    /// # Errors
    ///
    /// Returns an error when the checkpoint cannot be restored under this
    /// simulator and kernel.
    pub fn checkpoint_fields(
        &self,
        kernel: &mut dyn Kernel,
        ck: &Checkpoint,
    ) -> SnapResult<Vec<(String, String)>> {
        self.checkpoint_fields_inner(&mut SeqMut::One(kernel), ck)
    }

    /// [`Simulator::checkpoint_fields`] for a multi-launch sequence.
    ///
    /// # Errors
    ///
    /// Returns an error when the checkpoint cannot be restored under this
    /// simulator and kernel sequence.
    pub fn checkpoint_fields_sequence(
        &self,
        kernels: &mut [Box<dyn Kernel>],
        ck: &Checkpoint,
    ) -> SnapResult<Vec<(String, String)>> {
        self.checkpoint_fields_inner(&mut SeqMut::Many(kernels), ck)
    }

    fn checkpoint_fields_inner(
        &self,
        kernels: &mut SeqMut<'_>,
        ck: &Checkpoint,
    ) -> SnapResult<Vec<(String, String)>> {
        let st = self.restore(kernels, ck)?;
        let mut s = Saver::with_labels();
        s.header();
        self.write_checkpoint(
            &mut s,
            ck.launch_idx(),
            &st.stats,
            st.trace.as_ref(),
            &st.image,
            &st.machine,
        );
        let (bytes, labels) = s.finish_with_labels();
        debug_assert_eq!(
            bytes,
            ck.as_bytes(),
            "checkpoint load/save round trip must be byte-identical"
        );
        Ok(labels)
    }

    /// Fingerprint of everything that affects simulation results, folded
    /// into the checkpoint so a resume under a different configuration is
    /// rejected instead of silently diverging.
    fn config_digest(&self) -> u64 {
        digest(
            format!(
                "{:?}|{:?}|{:?}|{}|{}|{}",
                self.cfg,
                self.sched,
                self.limits,
                self.capture_trace,
                self.cycle_skipping,
                self.compute_skipping
            )
            .as_bytes(),
        )
    }

    /// Serializes a paused run's full state as checkpoint frames into `s`.
    fn write_checkpoint(
        &self,
        s: &mut Saver,
        launch_idx: usize,
        total: &SimStats,
        trace: Option<&Trace>,
        image: &MemoryImage,
        m: &LaunchMachine,
    ) {
        s.frame("meta", 0, |s| {
            s.usize("launch_idx", launch_idx);
            s.u64("cfg_digest", self.config_digest());
            s.u64("cycle", total.core_cycles + m.core_cycle);
        });
        s.frame("stat", 1, |s| total.save_state(s));
        s.frame("trc", 0, |s| {
            s.bool("has", trace.is_some());
            if let Some(t) = trace {
                t.save_state(s);
            }
        });
        s.frame("img", 0, |s| image.save_state(s));
        m.save_frames(s);
    }

    fn save_checkpoint(
        &self,
        launch_idx: usize,
        total: &SimStats,
        trace: Option<&Trace>,
        image: &MemoryImage,
        m: &LaunchMachine,
    ) -> Checkpoint {
        let mut s = Saver::new();
        s.header();
        self.write_checkpoint(&mut s, launch_idx, total, trace, image, m);
        Checkpoint {
            data: s.finish(),
            launch_idx,
            cycle: total.core_cycles + m.core_cycle,
        }
    }

    /// Restores a checkpoint against the supplied kernel sequence: replays
    /// the in-progress launch's `setup` on a scratch image (allocation is
    /// deterministic, so region pointers match the original run), then
    /// deserializes statistics, trace, memory image and machine.
    fn restore(&self, kernels: &mut SeqMut<'_>, ck: &Checkpoint) -> SnapResult<Restored> {
        let li = ck.launch_idx();
        if li >= kernels.len() {
            return Err(SnapError::Malformed {
                label: "launch_idx".into(),
                why: format!(
                    "checkpoint is inside launch {li} but only {} launches were supplied",
                    kernels.len()
                ),
            });
        }
        {
            // Replay *every* setup up to and including the in-progress
            // launch on one scratch image: later launches read region
            // pointers earlier setups published (shared cells), and their
            // own allocations start where the earlier ones ended, so the
            // whole prefix must be rebuilt in order for the pointers to
            // match the original run. Allocation is deterministic and the
            // scratch image is discarded — the run uses the checkpointed
            // image.
            let mut scratch = MemoryImage::new();
            for i in 0..=li {
                kernels.get(i).setup(&mut scratch);
            }
        }
        let kernel: &dyn Kernel = kernels.get(li);

        let bytes = ck.as_bytes();
        let mut l = Loader::new(bytes);
        l.expect_header()?;
        l.frame("meta", 0, |l| {
            let _ = l.usize("launch_idx")?;
            let cfg_digest = l.u64("cfg_digest")?;
            if cfg_digest != self.config_digest() {
                return Err(SnapError::Malformed {
                    label: "cfg_digest".into(),
                    why: "checkpoint was taken under a different GPU/scheduler \
                          configuration (or limits/trace/skipping settings)"
                        .into(),
                });
            }
            let _ = l.u64("cycle")?;
            Ok(())
        })?;
        let mut stats = SimStats::new();
        l.frame("stat", 1, |l| stats.load_state(l))?;
        let mut trace = None;
        l.frame("trc", 0, |l| {
            if l.bool("has")? {
                let mut t = Trace::new();
                t.load_state(l)?;
                trace = Some(t);
            }
            Ok(())
        })?;
        let mut image = MemoryImage::new();
        l.frame("img", 0, |l| image.load_state(l))?;
        let mut machine =
            LaunchMachine::new(&self.cfg, &self.sched, self.capture_trace, kernel.total_warps());
        machine.load_frames(&mut l, kernel)?;
        if l.pos() != bytes.len() {
            return Err(SnapError::Malformed {
                label: "checkpoint".into(),
                why: format!("{} trailing bytes after the last frame", bytes.len() - l.pos()),
            });
        }
        Ok(Restored {
            stats,
            trace,
            image,
            machine,
        })
    }

    /// The shared driver behind every `run*` / `resume*` entry point: walks
    /// the launch sequence, building a fresh [`LaunchMachine`] per launch
    /// (or restoring one from `resume`), and folds each finished launch
    /// into the accumulated statistics. A reached `pause_at` target
    /// serializes the current state and returns early.
    fn drive(
        &self,
        kernels: &mut SeqMut<'_>,
        resume: Option<&Checkpoint>,
        pause_at: Option<u64>,
    ) -> SnapResult<RunOutcome> {
        let n = kernels.len();
        assert!(n > 0, "at least one kernel launch is required");
        let mut hit = false;
        let (mut image, mut total, mut trace, start, mut restored) = match resume {
            Some(ck) => {
                let st = self.restore(kernels, ck)?;
                // Discard profiler totals left over from earlier work on
                // this thread, as a fresh launch would.
                let _ = prof::take();
                (st.image, st.stats, st.trace, ck.launch_idx(), Some(st.machine))
            }
            None => (
                MemoryImage::new(),
                SimStats::new(),
                self.capture_trace.then(Trace::new),
                0,
                None,
            ),
        };
        for li in start..n {
            let kernel = kernels.get(li);
            let mut m = match restored.take() {
                Some(m) => m,
                None => {
                    // Fresh launch: clear stale profiler totals, set up the
                    // kernel's memory regions, dispatch the initial warps.
                    let _ = prof::take();
                    kernel.setup(&mut image);
                    let mut m = LaunchMachine::new(
                        &self.cfg,
                        &self.sched,
                        self.capture_trace,
                        kernel.total_warps(),
                    );
                    m.fill(kernel);
                    m
                }
            };
            let prior = total.core_cycles;
            match self.run_machine(kernel, &mut image, &mut m, prior, pause_at) {
                StepOutcome::Paused => {
                    let ck = self.save_checkpoint(li, &total, trace.as_ref(), &image, &m);
                    return Ok(RunOutcome::Paused(ck));
                }
                StepOutcome::Finished { hit_limit } => {
                    hit |= hit_limit;
                    m.fold_into(&mut total, &mut trace);
                }
            }
        }
        let output = kernels.get(n - 1).output(&image);
        Ok(RunOutcome::Done(RunResult {
            stats: total,
            output,
            hit_cycle_limit: hit,
            trace,
        }))
    }

    /// Drives one launch's machine until the launch finishes, the cycle
    /// limit trips, or the cumulative pause target is reached.
    ///
    /// Each executed cycle is a *phased tick* (see `DESIGN.md` §12):
    ///
    /// * **A** — every SM ticks against a read-only memory image and a
    ///   private staging area (parallel over SMs);
    /// * **B** — staged image writes and NoC requests commit in ascending
    ///   SM order, then new warps dispatch (sequential barrier);
    /// * **C** — every memory partition (slice + controller) ticks against
    ///   its own queues, staging replies (parallel over partitions);
    /// * **D** — staged replies merge into the reply NoC in ascending slice
    ///   order (sequential barrier), and the termination check runs.
    ///
    /// The phases *are* the semantics at every thread count; the worker
    /// pool only changes which thread executes a shard, so results are
    /// bit-identical for every `cores` value.
    fn run_machine(
        &self,
        kernel: &dyn Kernel,
        image: &mut MemoryImage,
        m: &mut LaunchMachine,
        prior_cycles: u64,
        pause_at: Option<u64>,
    ) -> StepOutcome {
        let cfg = &self.cfg;
        let mut pool = WorkerPool::new(self.cores);
        let LaunchMachine {
            map,
            sms,
            slices,
            mcs,
            req_noc,
            reply_noc,
            total_warps,
            next_warp,
            acc,
            mem_time,
            core_cycle,
            ticks_executed,
            cycles_skipped,
            compute_cycles_skipped,
            stages,
            resp_bufs,
            worker_prof,
        } = m;
        let compute_skipping = self.compute_skipping;
        let total_warps = *total_warps;
        let n_sms = sms.len();
        let n_parts = slices.len();
        let core_hz = u64::from(cfg.core_clock_mhz);
        let mem_hz = u64::from(cfg.mem_clock_mhz);
        let limit = self.limits.max_core_cycles;
        // The pause target in this launch's local cycles; zero when the
        // target lies before this launch (pause immediately).
        let pause = pause_at.map(|t| t.saturating_sub(prior_cycles));
        // Cycle-start request-NoC occupancy snapshot (refilled per cycle)
        // and per-controller event scratch for the fast-forward scan; both
        // allocated once so the loop body stays allocation-free.
        let mut free0: Vec<usize> = Vec::with_capacity(req_noc.len());
        let mut mc_events: Vec<u64> = vec![0; mcs.len()];

        let outcome = loop {
            // 0. Fast-forward over provably idle — or busy but analytically
            //    predictable — cycles. Runs at the top of the iteration,
            //    before the next cycle executes, so a resumed run re-derives
            //    the remainder of a skip the pause cut short, keeping the
            //    executed/skipped accounting bit-identical to the
            //    uninterrupted run.
            if self.cycle_skipping && *core_cycle > 0 {
                let _t_ff = prof::enter(Phase::FastForward);
                let mut target = next_interesting_cycle(
                    *core_cycle, limit, *acc, core_hz, mem_hz, *mem_time, compute_skipping,
                    sms, slices, req_noc, reply_noc, mcs, &pool, &mut mc_events,
                );
                if let Some(p) = pause {
                    // Never skip past the pause point: any prefix of a
                    // skippable span is itself skippable (idle cycles stay
                    // idle; a compute replay is valid for every shorter
                    // span), so clamping preserves equivalence.
                    target = target.min(p.saturating_add(1));
                }
                if target > *core_cycle + 1 {
                    let skipped = target - *core_cycle - 1;
                    // Replay each SM's round-robin compute schedule over the
                    // span in closed form — the exact grants, `rr` cursor
                    // moves and `Computing -> Ready` transitions the naive
                    // loop would have produced. A span where any SM did so
                    // is accounted as compute-skip; pure idle spans keep the
                    // PR 2 idle-skip classification.
                    let mut advanced_compute = false;
                    if compute_skipping {
                        for sm in sms.iter_mut() {
                            advanced_compute |= sm.advance_compute(skipped);
                        }
                    }
                    // Advance the memory clock analytically over the
                    // skipped span; the controllers see the exact same tick
                    // count (all of them no-ops) as the naive loop would
                    // have executed.
                    let units =
                        u128::from(*acc) + u128::from(skipped) * u128::from(mem_hz);
                    let mem_ticks = (units / u128::from(core_hz)) as u64;
                    *acc = (units % u128::from(core_hz)) as u64;
                    if mem_ticks > 0 {
                        *mem_time += mem_ticks;
                        for mc in mcs.iter_mut() {
                            mc.advance_idle(*mem_time);
                        }
                    }
                    *cycles_skipped += skipped;
                    if advanced_compute {
                        *compute_cycles_skipped += skipped;
                    }
                    *core_cycle = target - 1;
                }
            }

            if let Some(p) = pause {
                if *core_cycle >= p {
                    break StepOutcome::Paused;
                }
            }

            *core_cycle += 1;
            if *core_cycle > limit {
                break StepOutcome::Finished { hit_limit: true };
            }
            *ticks_executed += 1;
            let now = *core_cycle;

            // Phase A: deliver replies and issue from each SM, one shard
            // per SM. Every shard sees the same read-only image and the
            // same cycle-start NoC occupancy snapshot; all effects land in
            // the shard's private `SmStage`.
            {
                free0.clear();
                free0.extend(req_noc.iter().map(|q| q.free()));
                let sms_sh = SharedSlice::new(&mut sms[..]);
                let replies_sh = SharedSlice::new(&mut reply_noc[..]);
                let stages_sh = SharedSlice::new(&mut stages[..]);
                let image_ref: &MemoryImage = image;
                let map_ref: &AddressMap = map;
                let free0_ref: &[usize] = &free0;
                pool.run(n_sms, Phase::SmIssue, &|i| {
                    // SAFETY: the pool hands each shard index to exactly
                    // one executing thread.
                    let sm = unsafe { sms_sh.get(i) };
                    let replies = unsafe { replies_sh.get(i) };
                    let stage = unsafe { stages_sh.get(i) };
                    while let Some(reply) = replies.pop_ready(now) {
                        sm.on_reply(reply, image_ref);
                    }
                    stage.begin_cycle(free0_ref);
                    let mut ctx = SmCtx {
                        image: image_ref,
                        map: map_ref,
                        kernel,
                        stage,
                    };
                    sm.tick(&mut ctx);
                });
            }

            // Phase B (barrier): commit staged effects in ascending SM
            // order — functional writes first, then the SM's requests in
            // stage order — and greedily dispatch new warps. The canonical
            // order makes the result independent of phase-A scheduling.
            {
                let _t = prof::enter(Phase::SmIssue);
                for (sm, stage) in sms.iter_mut().zip(stages.iter_mut()) {
                    if !stage.writes.is_empty() {
                        image.write_lanes(&stage.writes);
                    }
                    for &(ch, req) in &stage.reqs {
                        req_noc[ch].push_unchecked(now, req);
                    }
                    while *next_warp < total_warps && sm.has_free_slot() {
                        sm.dispatch(*next_warp, kernel.program(*next_warp));
                        *next_warp += 1;
                    }
                }
            }

            // Phase C: tick each memory partition — its L2 slice, then its
            // controller for this cycle's memory tick(s). Partitions share
            // nothing: a slice talks only to its own controller and its own
            // request queue, and replies are staged slice-locally.
            {
                *acc += mem_hz;
                let mut mem_ticks = 0u64;
                while *acc >= core_hz {
                    *acc -= core_hz;
                    *mem_time += 1;
                    mem_ticks += 1;
                }
                let slices_sh = SharedSlice::new(&mut slices[..]);
                let mcs_sh = SharedSlice::new(&mut mcs[..]);
                let req_sh = SharedSlice::new(&mut req_noc[..]);
                let bufs_sh = SharedSlice::new(&mut resp_bufs[..]);
                let image_ref: &MemoryImage = image;
                let map_ref: &AddressMap = map;
                pool.run(n_parts, Phase::Slice, &|i| {
                    // SAFETY: one executing thread per shard index (above).
                    let slice = unsafe { slices_sh.get(i) };
                    let mc = unsafe { mcs_sh.get(i) };
                    let incoming = unsafe { req_sh.get(i) };
                    let buf = unsafe { bufs_sh.get(i) };
                    slice.tick(now, incoming, mc, image_ref, map_ref);
                    let _t = prof::enter(Phase::Controller);
                    for _ in 0..mem_ticks {
                        buf.clear();
                        mc.tick(buf);
                        for &resp in buf.iter() {
                            slice.responses.push_back(resp);
                        }
                    }
                });
            }

            // Phase D (barrier): merge staged replies into the reply NoC
            // in ascending slice order, stalled retries first.
            {
                let _t = prof::enter(Phase::Slice);
                for slice in slices.iter_mut() {
                    slice.flush_replies(now, &mut reply_noc[..]);
                }
            }

            // Termination (exact: no alignment gate, so the reported
            // cycle count carries no phantom tail cycles).
            if *next_warp >= total_warps
                && sms.iter().all(|s| s.live_warps() == 0)
                && req_noc.iter().all(|q| q.is_empty())
                && reply_noc.iter().all(|q| q.is_empty())
                && slices.iter().all(|s| s.is_idle())
                && mcs.iter().all(|m| m.is_idle())
            {
                break StepOutcome::Finished { hit_limit: false };
            }
        };

        worker_prof.merge(&pool.shutdown());
        outcome
    }
}

impl LaunchMachine {
    /// Folds a *finished* launch into the accumulated run statistics:
    /// drains the controllers (closing open rows so final RBL lands in the
    /// histograms), sums per-component counters, and merges trace / DRAM
    /// stats / profiler totals.
    fn fold_into(&mut self, total: &mut SimStats, trace: &mut Option<Trace>) {
        for mc in &mut self.mcs {
            let _ = mc.drain();
        }

        total.core_cycles += self.core_cycle;
        total.ticks_executed += self.ticks_executed;
        total.cycles_skipped += self.cycles_skipped;
        total.compute_cycles_skipped += self.compute_cycles_skipped;
        for sm in &self.sms {
            total.instructions += sm.instructions;
            total.l1_hits += sm.l1().hits();
            total.l1_misses += sm.l1().misses();
            total.approximated_loads += sm.approximated_loads;
        }
        for slice in &self.slices {
            total.l2_hits += slice.l2().hits();
            total.l2_misses += slice.l2().misses();
        }
        if let Some(total_trace) = trace {
            // Merge per-slice traces by arrival cycle (stable across
            // slices). Each launch's memory clock restarts at zero, so
            // entries are rebased onto the end of the previous launches'
            // channel time to keep the accumulated trace time-ordered.
            let base = total.dram.mem_cycles;
            let mut merged: Vec<_> = self
                .slices
                .iter_mut()
                .filter_map(|s| s.trace.take())
                .flat_map(|t| t.iter().copied().collect::<Vec<_>>())
                .collect();
            merged.sort_by_key(|e| e.cycle);
            for e in merged {
                total_trace.push(TraceEntry {
                    cycle: base + e.cycle,
                    ..e
                });
            }
        }

        let mut launch_dram = lazydram_common::DramStats::new();
        for mc in &self.mcs {
            launch_dram.merge(mc.stats());
            let d = &mc.ams().declines;
            if total.ams_declines.len() < d.len() {
                total.ams_declines.resize(d.len(), 0);
            }
            for (t, &v) in total.ams_declines.iter_mut().zip(d.iter()) {
                *t += v;
            }
            total.ams_accepts += mc.ams().accepts;
        }
        // Across launches, channel time accumulates rather than maxing.
        let prior_cycles = total.dram.mem_cycles;
        total.dram.merge(&launch_dram);
        total.dram.mem_cycles = prior_cycles + launch_dram.mem_cycles;

        // Fold this launch's wall-clock phase breakdown into the run stats
        // (empty unless the `prof` feature is enabled): the coordinating
        // thread's totals plus whatever the pool workers accumulated.
        total.prof.merge(&prof::take());
        total.prof.merge(&std::mem::take(&mut self.worker_prof));
    }
}

/// The next core cycle at which executing the loop body could have any
/// *externally unpredictable* effect, given that the current cycle's phases
/// just completed and the termination check failed. Every cycle strictly
/// between `now` and the returned cycle is either a provable no-op for
/// every component or (with `compute_skip`) a pure compute-issue cycle that
/// [`Sm::advance_compute`] replays in closed form. Clamped to `limit + 1`,
/// where the loop exits without running phases; with no event at all (a
/// stalled run headed for the cycle limit) the clamp is returned.
#[allow(clippy::too_many_arguments)]
fn next_interesting_cycle(
    now: u64,
    limit: u64,
    acc: u64,
    core_hz: u64,
    mem_hz: u64,
    mem_time: u64,
    compute_skip: bool,
    sms: &[Sm],
    slices: &[Slice],
    req_noc: &[DelayQueue<SliceReq>],
    reply_noc: &[DelayQueue<Reply>],
    mcs: &mut [MemoryController],
    pool: &WorkerPool,
    mc_events: &mut [u64],
) -> u64 {
    let mut next = limit.saturating_add(1);
    if next <= now + 1 || slices.iter().any(Slice::has_work) {
        return now + 1;
    }
    if compute_skip {
        // An SM needs a real tick no later than its next external event:
        // the earliest cycle it can emit a request, complete a drain, or
        // issue a non-compute op. Purely computing SMs report the closed-
        // form end of their round-robin burst instead of bailing, which is
        // what extends fast-forward from idle spans to busy ones.
        for sm in sms {
            match sm.next_external_event(now) {
                Some(event) if event <= now + 1 => return now + 1,
                Some(event) => next = next.min(event),
                None => {}
            }
        }
    } else if sms.iter().any(Sm::has_work) {
        return now + 1;
    }
    // Parked store retries are events only when they would succeed; a
    // failing retry leaves the warp exactly as it found it, and request-NoC
    // occupancy cannot change during the span (no SM has drainable work, no
    // slice services a head) so it keeps failing identically.
    if sms.iter().any(|s| s.stalled_store_ready(req_noc)) {
        return now + 1;
    }
    for (i, q) in req_noc.iter().enumerate() {
        let Some(ready) = q.next_ready_cycle() else {
            continue;
        };
        if ready > now + 1 {
            next = next.min(ready);
        } else if q.peek().is_some_and(|req| slices[i].would_service(req, &mcs[i])) {
            return now + 1;
        }
        // A ready head the slice cannot service (controller backpressure)
        // is not an event: the slice would pop it and park it right back.
        // The unblocking condition changes only on a controller event,
        // which the controller scan below contributes.
    }
    for q in reply_noc {
        if let Some(ready) = q.next_ready_cycle() {
            next = next.min(ready.max(now + 1));
        }
    }
    if next == now + 1 {
        return next;
    }
    // Memory-side events arrive in memory cycles. Each controller's scan
    // (in-flight completions, DMS expiries, window boundaries) is the
    // expensive part, so it runs as one pool shard per controller; the
    // min-reduce below happens on the coordinating thread, which keeps the
    // result deterministic regardless of shard scheduling.
    {
        let n_mcs = mcs.len();
        let mcs_sh = SharedSlice::new(mcs);
        let events_sh = SharedSlice::new(mc_events);
        pool.run(n_mcs, Phase::FastForward, &|i| {
            // SAFETY: one executing thread per shard index.
            let mc = unsafe { mcs_sh.get(i) };
            *unsafe { events_sh.get(i) } = mc.next_event_cycle().unwrap_or(u64::MAX);
        });
    }
    // Map the j-th future memory tick back to the core cycle whose
    // accumulator step fires it: the smallest k >= 1 with
    // acc + k * mem_hz >= j * core_hz.
    for &me in mc_events.iter() {
        if me != u64::MAX {
            debug_assert!(me > mem_time, "memory event must lie in the future");
            let j = u128::from(me - mem_time);
            let need = j * u128::from(core_hz) - u128::from(acc);
            let k = need.div_ceil(u128::from(mem_hz));
            let event = u128::from(now).saturating_add(k);
            if event < u128::from(next) {
                next = event as u64;
            }
        }
    }
    next.max(now + 1)
}

/// Convenience: runs `kernel` under `sched` on the default GPU and returns
/// the result.
///
/// # Example
///
/// ```no_run
/// use lazydram_common::{GpuConfig, SchedConfig};
/// use lazydram_gpu::{run_kernel, Kernel};
/// # fn demo(kernel: &mut dyn Kernel) {
/// let result = run_kernel(kernel, &GpuConfig::default(), &SchedConfig::dyn_combo());
/// println!("IPC = {:.2}", result.stats.ipc());
/// # }
/// ```
pub fn run_kernel(kernel: &mut dyn Kernel, cfg: &GpuConfig, sched: &SchedConfig) -> RunResult {
    Simulator::new(cfg.clone(), sched.clone()).run(kernel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_no_skip_accepts_booleans() {
        assert_eq!(parse_no_skip("1"), Ok(true));
        assert_eq!(parse_no_skip("true"), Ok(true));
        assert_eq!(parse_no_skip(" 0 "), Ok(false));
        assert_eq!(parse_no_skip("false"), Ok(false));
    }

    #[test]
    fn parse_no_skip_rejects_garbage() {
        assert!(parse_no_skip("yes").is_err());
        assert!(parse_no_skip("").is_err());
        assert!(parse_no_skip("2").is_err());
    }

    #[test]
    fn parse_no_compute_skip_accepts_booleans() {
        assert_eq!(parse_no_compute_skip("1"), Ok(true));
        assert_eq!(parse_no_compute_skip("true"), Ok(true));
        assert_eq!(parse_no_compute_skip(" 0 "), Ok(false));
        assert_eq!(parse_no_compute_skip("false"), Ok(false));
    }

    #[test]
    fn parse_no_compute_skip_rejects_garbage() {
        assert!(parse_no_compute_skip("yes").is_err());
        assert!(parse_no_compute_skip("").is_err());
        assert!(parse_no_compute_skip("2").is_err());
    }

    #[test]
    fn parse_cores_accepts_positive_integers() {
        assert_eq!(parse_cores("1"), Ok(1));
        assert_eq!(parse_cores(" 8 "), Ok(8));
    }

    #[test]
    fn parse_cores_rejects_garbage() {
        assert!(parse_cores("0").is_err());
        assert!(parse_cores("").is_err());
        assert!(parse_cores("-2").is_err());
        assert!(parse_cores("all").is_err());
        assert!(parse_cores("1.5").is_err());
    }
}
