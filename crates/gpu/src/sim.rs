//! The top-level execution-driven simulator.
//!
//! [`Simulator::run`] wires 30 SMs, a request/reply crossbar, 6 L2 slices and
//! 6 lazy memory controllers together, runs a [`Kernel`] to completion (or a
//! cycle limit), and returns per-run statistics plus the kernel output for
//! application-error measurement.
//!
//! The master loop runs in *core* cycles (1400 MHz); a fractional accumulator
//! ticks the memory side at the 924 / 1400 clock ratio, so every DRAM timing
//! parameter and every DMS/AMS window is honored in memory cycles exactly as
//! in the paper.

use crate::kernel::Kernel;
use crate::memimg::MemoryImage;
use crate::noc::DelayQueue;
use crate::slice::Slice;
use crate::trace::Trace;
use crate::sm::{Reply, Sm, SmCtx, SliceReq};
use lazydram_common::{AddressMap, GpuConfig, SchedConfig, SimStats};
use lazydram_core::MemoryController;

/// Safety limits for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimLimits {
    /// Hard cap on core cycles (guards against livelock in experiments).
    pub max_core_cycles: u64,
}

impl Default for SimLimits {
    fn default() -> Self {
        Self {
            max_core_cycles: 50_000_000,
        }
    }
}

/// The result of one kernel run.
#[derive(Debug)]
pub struct RunResult {
    /// Aggregated statistics.
    pub stats: SimStats,
    /// Kernel output (for application-error comparison across runs).
    pub output: Vec<f32>,
    /// `true` when the run hit [`SimLimits::max_core_cycles`] before the
    /// kernel finished; statistics are still meaningful but partial.
    pub hit_cycle_limit: bool,
    /// The DRAM request trace, when capture was enabled
    /// ([`Simulator::with_trace_capture`]). Entries are in per-controller
    /// arrival order, merged across channels by cycle.
    pub trace: Option<Trace>,
}

/// One configured GPU simulation.
pub struct Simulator {
    cfg: GpuConfig,
    sched: SchedConfig,
    limits: SimLimits,
    capture_trace: bool,
}

impl Simulator {
    /// Creates a simulator for a GPU configuration and scheduling policy.
    pub fn new(cfg: GpuConfig, sched: SchedConfig) -> Self {
        Self {
            cfg,
            sched,
            limits: SimLimits::default(),
            capture_trace: false,
        }
    }

    /// Overrides the default safety limits.
    pub fn with_limits(mut self, limits: SimLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Enables DRAM request-trace capture; the trace lands in
    /// [`RunResult::trace`] and can be replayed with [`Trace::replay`].
    pub fn with_trace_capture(mut self, capture: bool) -> Self {
        self.capture_trace = capture;
        self
    }

    /// Runs `kernel` to completion and returns statistics plus output.
    pub fn run(&self, kernel: &mut dyn Kernel) -> RunResult {
        let mut image = MemoryImage::new();
        let mut stats = SimStats::new();
        let mut trace = self.capture_trace.then(Trace::new);
        let hit = self.run_launch(kernel, &mut image, &mut stats, &mut trace);
        RunResult {
            output: kernel.output(&image),
            stats,
            hit_cycle_limit: hit,
            trace,
        }
    }

    /// Runs several dependent kernel launches back to back on one shared
    /// memory image (e.g. the two matrix products of `2MM`), accumulating
    /// statistics. The returned output is the **last** launch's output.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty.
    pub fn run_sequence(&self, kernels: &mut [Box<dyn Kernel>]) -> RunResult {
        assert!(!kernels.is_empty(), "run_sequence needs at least one launch");
        let mut image = MemoryImage::new();
        let mut stats = SimStats::new();
        let mut trace = self.capture_trace.then(Trace::new);
        let mut hit = false;
        for kernel in kernels.iter_mut() {
            hit |= self.run_launch(kernel.as_mut(), &mut image, &mut stats, &mut trace);
        }
        RunResult {
            output: kernels.last().expect("non-empty").output(&image),
            stats,
            hit_cycle_limit: hit,
            trace,
        }
    }

    /// Runs one launch on a shared image, folding statistics into `total`.
    /// Returns `true` when the cycle limit was hit.
    fn run_launch(
        &self,
        kernel: &mut dyn Kernel,
        image: &mut MemoryImage,
        total: &mut SimStats,
        trace: &mut Option<Trace>,
    ) -> bool {
        let cfg = &self.cfg;
        let map = AddressMap::new(cfg);
        kernel.setup(image);

        let mut sms: Vec<Sm> = (0..cfg.num_sms).map(|i| Sm::new(i, cfg)).collect();
        let mut slices: Vec<Slice> = (0..cfg.num_channels)
            .map(|i| {
                let mut s = Slice::new(i, cfg, &self.sched);
                if trace.is_some() {
                    s.trace = Some(Trace::new());
                }
                s
            })
            .collect();
        let mut mcs: Vec<MemoryController> = (0..cfg.num_channels)
            .map(|_| MemoryController::new(cfg, &self.sched))
            .collect();
        let mut req_noc: Vec<DelayQueue<SliceReq>> = (0..cfg.num_channels)
            .map(|_| DelayQueue::new(u64::from(cfg.noc_latency) + u64::from(cfg.l2_latency), 64, cfg.noc_width))
            .collect();
        let mut reply_noc: Vec<DelayQueue<Reply>> = (0..cfg.num_sms)
            .map(|_| DelayQueue::new(u64::from(cfg.noc_latency), 256, 8))
            .collect();

        let total_warps = kernel.total_warps();
        let mut next_warp = 0usize;
        let mut next_req_id = 0u64;
        let ratio = cfg.clock_ratio();
        let mut mem_acc = 0.0f64;
        let mut core_cycle = 0u64;
        let mut hit_limit = false;

        // Initial dispatch: round-robin across SMs (like GPGPU-Sim's block
        // dispatcher), so small launches spread over all cores instead of
        // piling onto SM 0 and thrashing its L1.
        'fill: loop {
            let mut placed = false;
            for sm in &mut sms {
                if next_warp >= total_warps {
                    break 'fill;
                }
                if sm.has_free_slot() {
                    sm.dispatch(kernel.program(next_warp));
                    next_warp += 1;
                    placed = true;
                }
            }
            if !placed {
                break;
            }
        }

        loop {
            core_cycle += 1;
            if core_cycle > self.limits.max_core_cycles {
                hit_limit = true;
                break;
            }

            // 1. Deliver replies, then issue from each SM.
            for (i, sm) in sms.iter_mut().enumerate() {
                while let Some(reply) = reply_noc[i].pop_ready(core_cycle) {
                    sm.on_reply(reply, image);
                }
                let mut ctx = SmCtx {
                    now: core_cycle,
                    image: &mut *image,
                    map: &map,
                    kernel,
                    req_noc: &mut req_noc,
                };
                sm.tick(&mut ctx);
                while next_warp < total_warps && sm.has_free_slot() {
                    sm.dispatch(kernel.program(next_warp));
                    next_warp += 1;
                }
            }

            // 2. L2 slices.
            for (i, slice) in slices.iter_mut().enumerate() {
                slice.tick(
                    core_cycle,
                    &mut req_noc[i],
                    &mut reply_noc,
                    &mut mcs[i],
                    image,
                    &map,
                    &mut next_req_id,
                );
            }

            // 3. Memory clock domain.
            mem_acc += ratio;
            while mem_acc >= 1.0 {
                mem_acc -= 1.0;
                for (i, mc) in mcs.iter_mut().enumerate() {
                    for resp in mc.tick() {
                        slices[i].responses.push_back(resp);
                    }
                }
            }

            // 4. Termination.
            if next_warp >= total_warps
                && sms.iter().all(|s| s.live_warps() == 0)
                && core_cycle.is_multiple_of(8)
                && req_noc.iter().all(|q| q.is_empty())
                && reply_noc.iter().all(|q| q.is_empty())
                && slices.iter().all(|s| s.is_idle())
                && mcs.iter().all(|m| m.is_idle())
            {
                break;
            }
        }

        // Flush: close open rows so final RBL lands in the histograms.
        for mc in &mut mcs {
            let _ = mc.drain();
        }

        total.core_cycles += core_cycle;
        for sm in &sms {
            total.instructions += sm.instructions;
            total.l1_hits += sm.l1().hits();
            total.l1_misses += sm.l1().misses();
            total.approximated_loads += sm.approximated_loads;
        }
        for slice in &slices {
            total.l2_hits += slice.l2().hits();
            total.l2_misses += slice.l2().misses();
        }
        if let Some(total_trace) = trace {
            // Merge per-slice traces by arrival cycle (stable across slices).
            let mut merged: Vec<_> = slices
                .iter_mut()
                .filter_map(|s| s.trace.take())
                .flat_map(|t| t.iter().copied().collect::<Vec<_>>())
                .collect();
            merged.sort_by_key(|e| e.cycle);
            for e in merged {
                total_trace.push(e);
            }
        }

        let mut launch_dram = lazydram_common::DramStats::new();
        for mc in &mcs {
            launch_dram.merge(mc.channel().stats());
            let d = &mc.ams().declines;
            if total.ams_declines.len() < d.len() {
                total.ams_declines.resize(d.len(), 0);
            }
            for (t, &v) in total.ams_declines.iter_mut().zip(d.iter()) {
                *t += v;
            }
            total.ams_accepts += mc.ams().accepts;
        }
        // Across launches, channel time accumulates rather than maxing.
        let prior_cycles = total.dram.mem_cycles;
        total.dram.merge(&launch_dram);
        total.dram.mem_cycles = prior_cycles + launch_dram.mem_cycles;

        hit_limit
    }
}

/// Convenience: runs `kernel` under `sched` on the default GPU and returns
/// the result.
///
/// # Example
///
/// ```no_run
/// use lazydram_common::{GpuConfig, SchedConfig};
/// use lazydram_gpu::{run_kernel, Kernel};
/// # fn demo(kernel: &mut dyn Kernel) {
/// let result = run_kernel(kernel, &GpuConfig::default(), &SchedConfig::dyn_combo());
/// println!("IPC = {:.2}", result.stats.ipc());
/// # }
/// ```
pub fn run_kernel(kernel: &mut dyn Kernel, cfg: &GpuConfig, sched: &SchedConfig) -> RunResult {
    Simulator::new(cfg.clone(), sched.clone()).run(kernel)
}
