//! The top-level execution-driven simulator.
//!
//! [`Simulator::run`] wires 30 SMs, a request/reply crossbar, 6 L2 slices and
//! 6 lazy memory controllers together, runs a [`Kernel`] to completion (or a
//! cycle limit), and returns per-run statistics plus the kernel output for
//! application-error measurement.
//!
//! The master loop runs in *core* cycles (1400 MHz); an exact integer
//! accumulator ticks the memory side at the 924 / 1400 clock ratio, so every
//! DRAM timing parameter and every DMS/AMS window is honored in memory cycles
//! exactly as in the paper.
//!
//! # Event-driven fast-forward
//!
//! DMS deliberately *creates* long stall epochs (it delays row activations by
//! up to 2048 memory cycles), so in the paper's most interesting
//! configurations the majority of cycles tick every component for no effect.
//! Instead of executing those, the loop asks each component for its next
//! event:
//!
//! * SMs: [`Sm::has_work`] — conservative "could issue this cycle";
//! * [`DelayQueue`]s: head ready-time (the head is always the earliest item);
//! * slices: [`Slice::has_work`] — buffered responses / writebacks / retries;
//! * controllers: [`MemoryController::next_event_cycle`] — earliest in-flight
//!   completion, DMS delay expiry, refresh, or Dyn-DMS/Dyn-AMS window
//!   boundary, in memory cycles.
//!
//! When nothing has work *this* cycle, `core_cycle` jumps to the minimum next
//! event and the clock accumulator advances analytically, so the memory clock
//! lands on exactly the same cycles as the naive loop. Executed cycles run
//! the identical phase code, and skips only cover cycles every component has
//! proven to be no-ops — results are **bit-identical** with skipping on or
//! off (enforced by the `fast_forward_equivalence` suite test and a
//! proptest). `LAZYDRAM_NO_SKIP=1` forces the naive loop for debugging.

use crate::kernel::Kernel;
use crate::memimg::MemoryImage;
use crate::noc::DelayQueue;
use crate::slice::Slice;
use crate::trace::{Trace, TraceEntry};
use crate::sm::{Reply, Sm, SmCtx, SliceReq};
use lazydram_common::prof::{self, Phase};
use lazydram_common::{AddressMap, GpuConfig, SchedConfig, SimStats};
use lazydram_core::{MemoryController, Response};
use std::sync::OnceLock;

/// Safety limits for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimLimits {
    /// Hard cap on core cycles (guards against livelock in experiments).
    pub max_core_cycles: u64,
}

impl Default for SimLimits {
    fn default() -> Self {
        Self {
            max_core_cycles: 50_000_000,
        }
    }
}

/// Parses a `LAZYDRAM_NO_SKIP` value: `1`/`true` force the naive
/// cycle-by-cycle loop, `0`/`false` keep event-driven fast-forward.
///
/// Kept separate from the env lookup so the validation is unit-testable.
pub fn parse_no_skip(s: &str) -> Result<bool, String> {
    match s.trim() {
        "1" | "true" => Ok(true),
        "0" | "false" => Ok(false),
        _ => Err(format!(
            "LAZYDRAM_NO_SKIP={s:?} is not a boolean; expected 1/true to \
             disable cycle skipping or 0/false to keep it enabled"
        )),
    }
}

/// Whether `LAZYDRAM_NO_SKIP` disables fast-forward for this process.
///
/// # Panics
///
/// Panics on a malformed value instead of silently picking a loop mode (the
/// two modes are result-identical but differ wildly in wall-clock).
fn no_skip_from_env() -> bool {
    static NO_SKIP: OnceLock<bool> = OnceLock::new();
    *NO_SKIP.get_or_init(|| match std::env::var("LAZYDRAM_NO_SKIP") {
        Ok(s) => parse_no_skip(&s).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => false,
    })
}

/// The result of one kernel run.
#[derive(Debug)]
pub struct RunResult {
    /// Aggregated statistics.
    pub stats: SimStats,
    /// Kernel output (for application-error comparison across runs).
    pub output: Vec<f32>,
    /// `true` when the run hit [`SimLimits::max_core_cycles`] before the
    /// kernel finished; statistics are still meaningful but partial.
    pub hit_cycle_limit: bool,
    /// The DRAM request trace, when capture was enabled
    /// ([`Simulator::with_trace_capture`]). Entries are in per-controller
    /// arrival order, merged across channels by cycle.
    pub trace: Option<Trace>,
}

/// One configured GPU simulation.
pub struct Simulator {
    cfg: GpuConfig,
    sched: SchedConfig,
    limits: SimLimits,
    capture_trace: bool,
    cycle_skipping: bool,
}

impl Simulator {
    /// Creates a simulator for a GPU configuration and scheduling policy.
    /// Event-driven cycle skipping is on unless `LAZYDRAM_NO_SKIP=1`.
    pub fn new(cfg: GpuConfig, sched: SchedConfig) -> Self {
        Self {
            cfg,
            sched,
            limits: SimLimits::default(),
            capture_trace: false,
            cycle_skipping: !no_skip_from_env(),
        }
    }

    /// Overrides the default safety limits.
    pub fn with_limits(mut self, limits: SimLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Enables DRAM request-trace capture; the trace lands in
    /// [`RunResult::trace`] and can be replayed with [`Trace::replay`].
    pub fn with_trace_capture(mut self, capture: bool) -> Self {
        self.capture_trace = capture;
        self
    }

    /// Forces event-driven cycle skipping on or off, overriding the
    /// `LAZYDRAM_NO_SKIP` environment default. Results are bit-identical
    /// either way; only wall-clock changes.
    pub fn with_cycle_skipping(mut self, enabled: bool) -> Self {
        self.cycle_skipping = enabled;
        self
    }

    /// Runs `kernel` to completion and returns statistics plus output.
    pub fn run(&self, kernel: &mut dyn Kernel) -> RunResult {
        let mut image = MemoryImage::new();
        let mut stats = SimStats::new();
        let mut trace = self.capture_trace.then(Trace::new);
        let hit = self.run_launch(kernel, &mut image, &mut stats, &mut trace);
        RunResult {
            output: kernel.output(&image),
            stats,
            hit_cycle_limit: hit,
            trace,
        }
    }

    /// Runs several dependent kernel launches back to back on one shared
    /// memory image (e.g. the two matrix products of `2MM`), accumulating
    /// statistics. The returned output is the **last** launch's output.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty.
    pub fn run_sequence(&self, kernels: &mut [Box<dyn Kernel>]) -> RunResult {
        assert!(!kernels.is_empty(), "run_sequence needs at least one launch");
        let mut image = MemoryImage::new();
        let mut stats = SimStats::new();
        let mut trace = self.capture_trace.then(Trace::new);
        let mut hit = false;
        for kernel in kernels.iter_mut() {
            hit |= self.run_launch(kernel.as_mut(), &mut image, &mut stats, &mut trace);
        }
        RunResult {
            output: kernels.last().expect("non-empty").output(&image),
            stats,
            hit_cycle_limit: hit,
            trace,
        }
    }

    /// Runs one launch on a shared image, folding statistics into `total`.
    /// Returns `true` when the cycle limit was hit.
    fn run_launch(
        &self,
        kernel: &mut dyn Kernel,
        image: &mut MemoryImage,
        total: &mut SimStats,
        trace: &mut Option<Trace>,
    ) -> bool {
        let cfg = &self.cfg;
        let map = AddressMap::new(cfg);
        // Discard any profiler totals left over from earlier work on this
        // thread so the launch's report covers exactly this launch.
        let _ = prof::take();
        kernel.setup(image);

        let mut sms: Vec<Sm> = (0..cfg.num_sms).map(|i| Sm::new(i, cfg)).collect();
        let mut slices: Vec<Slice> = (0..cfg.num_channels)
            .map(|i| {
                let mut s = Slice::new(i, cfg, &self.sched);
                if trace.is_some() {
                    s.trace = Some(Trace::new());
                }
                s
            })
            .collect();
        let mut mcs: Vec<MemoryController> = (0..cfg.num_channels)
            .map(|_| MemoryController::new(cfg, &self.sched))
            .collect();
        let mut req_noc: Vec<DelayQueue<SliceReq>> = (0..cfg.num_channels)
            .map(|_| DelayQueue::new(u64::from(cfg.noc_latency) + u64::from(cfg.l2_latency), 64, cfg.noc_width))
            .collect();
        let mut reply_noc: Vec<DelayQueue<Reply>> = (0..cfg.num_sms)
            .map(|_| DelayQueue::new(u64::from(cfg.noc_latency), 256, 8))
            .collect();

        let total_warps = kernel.total_warps();
        let mut next_warp = 0usize;
        let mut next_req_id = 0u64;
        // Exact integer clock divider: each core cycle adds `mem_hz` units
        // and one memory tick fires per `core_hz` units accumulated. Unlike
        // a floating accumulator this is drift-free and can be advanced
        // analytically across skipped spans.
        let core_hz = u64::from(cfg.core_clock_mhz);
        let mem_hz = u64::from(cfg.mem_clock_mhz);
        let mut acc = 0u64;
        let mut mem_time = 0u64;
        let mut core_cycle = 0u64;
        let mut hit_limit = false;
        let mut ticks_executed = 0u64;
        let mut cycles_skipped = 0u64;
        let mut resp_buf: Vec<Response> = Vec::new();
        let limit = self.limits.max_core_cycles;

        // Initial dispatch: round-robin across SMs (like GPGPU-Sim's block
        // dispatcher), so small launches spread over all cores instead of
        // piling onto SM 0 and thrashing its L1.
        'fill: loop {
            let mut placed = false;
            for sm in &mut sms {
                if next_warp >= total_warps {
                    break 'fill;
                }
                if sm.has_free_slot() {
                    sm.dispatch(kernel.program(next_warp));
                    next_warp += 1;
                    placed = true;
                }
            }
            if !placed {
                break;
            }
        }

        loop {
            core_cycle += 1;
            if core_cycle > limit {
                hit_limit = true;
                break;
            }
            ticks_executed += 1;

            // 1. Deliver replies, then issue from each SM. The context is
            //    built once per cycle; it borrows nothing from the SMs.
            {
                let _t = prof::enter(Phase::SmIssue);
                let mut ctx = SmCtx {
                    now: core_cycle,
                    image: &mut *image,
                    map: &map,
                    kernel,
                    req_noc: &mut req_noc,
                };
                for (i, sm) in sms.iter_mut().enumerate() {
                    while let Some(reply) = reply_noc[i].pop_ready(core_cycle) {
                        sm.on_reply(reply, ctx.image);
                    }
                    sm.tick(&mut ctx);
                    while next_warp < total_warps && sm.has_free_slot() {
                        sm.dispatch(ctx.kernel.program(next_warp));
                        next_warp += 1;
                    }
                }
            }

            // 2. L2 slices.
            {
                let _t = prof::enter(Phase::Slice);
                for (i, slice) in slices.iter_mut().enumerate() {
                    slice.tick(
                        core_cycle,
                        &mut req_noc[i],
                        &mut reply_noc,
                        &mut mcs[i],
                        image,
                        &map,
                        &mut next_req_id,
                    );
                }
            }

            // 3. Memory clock domain.
            {
                let _t = prof::enter(Phase::Controller);
                acc += mem_hz;
                while acc >= core_hz {
                    acc -= core_hz;
                    mem_time += 1;
                    for (i, mc) in mcs.iter_mut().enumerate() {
                        resp_buf.clear();
                        mc.tick(&mut resp_buf);
                        for &resp in &resp_buf {
                            slices[i].responses.push_back(resp);
                        }
                    }
                }
            }

            // 4. Termination (exact: no alignment gate, so the reported
            //    cycle count carries no phantom tail cycles).
            if next_warp >= total_warps
                && sms.iter().all(|s| s.live_warps() == 0)
                && req_noc.iter().all(|q| q.is_empty())
                && reply_noc.iter().all(|q| q.is_empty())
                && slices.iter().all(|s| s.is_idle())
                && mcs.iter().all(|m| m.is_idle())
            {
                break;
            }

            // 5. Fast-forward over provably idle cycles.
            if !self.cycle_skipping {
                continue;
            }
            let _t_ff = prof::enter(Phase::FastForward);
            let target = next_interesting_cycle(
                core_cycle, limit, acc, core_hz, mem_hz, mem_time,
                &sms, &slices, &req_noc, &reply_noc, &mut mcs,
            );
            if target > core_cycle + 1 {
                let skipped = target - core_cycle - 1;
                // Advance the memory clock analytically over the skipped
                // span; the controllers see the exact same tick count (all
                // of them no-ops) as the naive loop would have executed.
                let units =
                    u128::from(acc) + u128::from(skipped) * u128::from(mem_hz);
                let mem_ticks = (units / u128::from(core_hz)) as u64;
                acc = (units % u128::from(core_hz)) as u64;
                if mem_ticks > 0 {
                    mem_time += mem_ticks;
                    for mc in mcs.iter_mut() {
                        mc.advance_idle(mem_time);
                    }
                }
                cycles_skipped += skipped;
                core_cycle = target - 1;
            }
        }

        // Flush: close open rows so final RBL lands in the histograms.
        for mc in &mut mcs {
            let _ = mc.drain();
        }

        total.core_cycles += core_cycle;
        total.ticks_executed += ticks_executed;
        total.cycles_skipped += cycles_skipped;
        for sm in &sms {
            total.instructions += sm.instructions;
            total.l1_hits += sm.l1().hits();
            total.l1_misses += sm.l1().misses();
            total.approximated_loads += sm.approximated_loads;
        }
        for slice in &slices {
            total.l2_hits += slice.l2().hits();
            total.l2_misses += slice.l2().misses();
        }
        if let Some(total_trace) = trace {
            // Merge per-slice traces by arrival cycle (stable across slices).
            // Each launch's memory clock restarts at zero, so entries are
            // rebased onto the end of the previous launches' channel time to
            // keep the accumulated trace time-ordered.
            let base = total.dram.mem_cycles;
            let mut merged: Vec<_> = slices
                .iter_mut()
                .filter_map(|s| s.trace.take())
                .flat_map(|t| t.iter().copied().collect::<Vec<_>>())
                .collect();
            merged.sort_by_key(|e| e.cycle);
            for e in merged {
                total_trace.push(TraceEntry {
                    cycle: base + e.cycle,
                    ..e
                });
            }
        }

        let mut launch_dram = lazydram_common::DramStats::new();
        for mc in &mcs {
            launch_dram.merge(mc.channel().stats());
            let d = &mc.ams().declines;
            if total.ams_declines.len() < d.len() {
                total.ams_declines.resize(d.len(), 0);
            }
            for (t, &v) in total.ams_declines.iter_mut().zip(d.iter()) {
                *t += v;
            }
            total.ams_accepts += mc.ams().accepts;
        }
        // Across launches, channel time accumulates rather than maxing.
        let prior_cycles = total.dram.mem_cycles;
        total.dram.merge(&launch_dram);
        total.dram.mem_cycles = prior_cycles + launch_dram.mem_cycles;

        // Fold this launch's wall-clock phase breakdown into the run stats
        // (empty unless the `prof` feature is enabled).
        total.prof.merge(&prof::take());

        hit_limit
    }
}

/// The next core cycle at which executing the loop body could have any
/// effect, given that the current cycle's phases just completed and the
/// termination check failed. Every cycle strictly between `now` and the
/// returned cycle is a provable no-op for every component. Clamped to
/// `limit + 1`, where the loop exits without running phases; with no event
/// at all (a stalled run headed for the cycle limit) the clamp is returned.
#[allow(clippy::too_many_arguments)]
fn next_interesting_cycle(
    now: u64,
    limit: u64,
    acc: u64,
    core_hz: u64,
    mem_hz: u64,
    mem_time: u64,
    sms: &[Sm],
    slices: &[Slice],
    req_noc: &[DelayQueue<SliceReq>],
    reply_noc: &[DelayQueue<Reply>],
    mcs: &mut [MemoryController],
) -> u64 {
    let mut next = limit.saturating_add(1);
    if next <= now + 1 || sms.iter().any(Sm::has_work) || slices.iter().any(Slice::has_work) {
        return now + 1;
    }
    // Parked store retries are events only when they would succeed; a
    // failing retry leaves the warp exactly as it found it, and request-NoC
    // occupancy cannot change during the span (no SM has drainable work, no
    // slice services a head) so it keeps failing identically.
    if sms.iter().any(|s| s.stalled_store_ready(req_noc)) {
        return now + 1;
    }
    for (i, q) in req_noc.iter().enumerate() {
        let Some(ready) = q.next_ready_cycle() else {
            continue;
        };
        if ready > now + 1 {
            next = next.min(ready);
        } else if q.peek().is_some_and(|req| slices[i].would_service(req, &mcs[i])) {
            return now + 1;
        }
        // A ready head the slice cannot service (controller backpressure)
        // is not an event: the slice would pop it and park it right back.
        // The unblocking condition changes only on a controller event,
        // which the controller scan below contributes.
    }
    for q in reply_noc {
        if let Some(ready) = q.next_ready_cycle() {
            next = next.min(ready.max(now + 1));
        }
    }
    if next == now + 1 {
        return next;
    }
    // Memory-side events arrive in memory cycles; map the j-th future
    // memory tick back to the core cycle whose accumulator step fires it:
    // the smallest k >= 1 with acc + k * mem_hz >= j * core_hz.
    for mc in mcs.iter_mut() {
        if let Some(me) = mc.next_event_cycle() {
            debug_assert!(me > mem_time, "memory event must lie in the future");
            let j = u128::from(me - mem_time);
            let need = j * u128::from(core_hz) - u128::from(acc);
            let k = need.div_ceil(u128::from(mem_hz));
            let event = u128::from(now).saturating_add(k);
            if event < u128::from(next) {
                next = event as u64;
            }
        }
    }
    next.max(now + 1)
}

/// Convenience: runs `kernel` under `sched` on the default GPU and returns
/// the result.
///
/// # Example
///
/// ```no_run
/// use lazydram_common::{GpuConfig, SchedConfig};
/// use lazydram_gpu::{run_kernel, Kernel};
/// # fn demo(kernel: &mut dyn Kernel) {
/// let result = run_kernel(kernel, &GpuConfig::default(), &SchedConfig::dyn_combo());
/// println!("IPC = {:.2}", result.stats.ipc());
/// # }
/// ```
pub fn run_kernel(kernel: &mut dyn Kernel, cfg: &GpuConfig, sched: &SchedConfig) -> RunResult {
    Simulator::new(cfg.clone(), sched.clone()).run(kernel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_no_skip_accepts_booleans() {
        assert_eq!(parse_no_skip("1"), Ok(true));
        assert_eq!(parse_no_skip("true"), Ok(true));
        assert_eq!(parse_no_skip(" 0 "), Ok(false));
        assert_eq!(parse_no_skip("false"), Ok(false));
    }

    #[test]
    fn parse_no_skip_rejects_garbage() {
        assert!(parse_no_skip("yes").is_err());
        assert!(parse_no_skip("").is_err());
        assert!(parse_no_skip("2").is_err());
    }
}
