//! The kernel and warp-program abstraction.
//!
//! A [`Kernel`] describes a launch: how many warps run, how each warp behaves
//! (as a [`WarpProgram`] state machine), which data is annotated approximable
//! (the paper's `pragma pred_var`), and where the output lives. Warp programs
//! are *execution-driven*: they issue real addresses and consume the real
//! (or approximated) values the memory system returns, so application error
//! under AMS is measured, not assumed.

use crate::memimg::MemoryImage;
use lazydram_common::snap::{Loader, Saver, SnapResult};


/// One operation issued by a warp — the *owned* reference representation.
///
/// The hot path never materializes this enum: programs emit into a caller
/// owned [`OpBuf`] instead (allocation-free once the buffers are warm).
/// `WarpOp` survives as the value-semantics form used by tests and by
/// adapters that pin the sink-based emission against the historical
/// contract (see [`OpBuf::to_warp_op`]).
#[derive(Debug, Clone, PartialEq)]
pub enum WarpOp {
    /// `n` single-cycle ALU warp instructions.
    Compute(u32),
    /// A global load: one address per active lane. The warp blocks until all
    /// covered cache lines arrive; the loaded values are passed to the next
    /// [`WarpProgram::next`] call in lane order.
    Load(Vec<u64>),
    /// A global store: `(address, value)` per active lane. The warp does not
    /// wait for completion (write-through, fire-and-forget).
    Store(Vec<(u64, f32)>),
    /// The warp has retired.
    Finished,
}

/// Tag of the operation currently held in an [`OpBuf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `n` single-cycle ALU warp instructions.
    Compute(u32),
    /// A load; the addresses are in [`OpBuf::addrs`].
    Load,
    /// A store; the writes are in [`OpBuf::writes`].
    Store,
    /// The warp has retired.
    Finished,
}

/// A reusable warp-op emission buffer, owned by the caller of
/// [`WarpProgram::next`].
///
/// One warp-load *instruction* covers up to 32 lane addresses; programs may
/// emit larger batches to model several back-to-back instructions kept in
/// flight by the scoreboard, so the lane buffers are capacity-retaining
/// `Vec`s rather than fixed 32-slot arrays. Because the same buffer is
/// reused for every op, steady-state emission performs **zero heap
/// allocations** once the buffers have grown to the program's batch size
/// (enforced by the `alloc_gate` integration test).
///
/// Lane ordering is the program's contract with itself: the values handed to
/// the next `next()` call after a load appear in exactly the order the
/// addresses were pushed.
#[derive(Debug)]
pub struct OpBuf {
    kind: OpKind,
    addrs: Vec<u64>,
    writes: Vec<(u64, f32)>,
}

impl Default for OpBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl OpBuf {
    /// Creates an empty buffer (kind [`OpKind::Finished`]).
    pub fn new() -> Self {
        Self {
            kind: OpKind::Finished,
            addrs: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// The operation currently held.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// Lane addresses of the held load.
    ///
    /// Meaningful only when [`OpBuf::kind`] is [`OpKind::Load`].
    pub fn addrs(&self) -> &[u64] {
        debug_assert_eq!(self.kind, OpKind::Load, "addrs() on a non-load op");
        &self.addrs
    }

    /// Lane `(address, value)` writes of the held store.
    ///
    /// Meaningful only when [`OpBuf::kind`] is [`OpKind::Store`].
    pub fn writes(&self) -> &[(u64, f32)] {
        debug_assert_eq!(self.kind, OpKind::Store, "writes() on a non-store op");
        &self.writes
    }

    /// Emits a compute op.
    pub fn set_compute(&mut self, n: u32) {
        self.kind = OpKind::Compute(n);
    }

    /// Emits warp retirement.
    pub fn set_finished(&mut self) {
        self.kind = OpKind::Finished;
    }

    /// Starts a load: clears and returns the address buffer (capacity kept).
    pub fn begin_load(&mut self) -> &mut Vec<u64> {
        self.kind = OpKind::Load;
        self.addrs.clear();
        &mut self.addrs
    }

    /// Starts a store: clears and returns the write buffer (capacity kept).
    pub fn begin_store(&mut self) -> &mut Vec<(u64, f32)> {
        self.kind = OpKind::Store;
        self.writes.clear();
        &mut self.writes
    }

    /// Reconstructs the owned [`WarpOp`] this buffer holds (allocates; for
    /// tests and reference adapters, never the hot path).
    pub fn to_warp_op(&self) -> WarpOp {
        match self.kind {
            OpKind::Compute(n) => WarpOp::Compute(n),
            OpKind::Load => WarpOp::Load(self.addrs.clone()),
            OpKind::Store => WarpOp::Store(self.writes.clone()),
            OpKind::Finished => WarpOp::Finished,
        }
    }
}

/// The per-warp state machine of a kernel.
///
/// `Send` because SMs (which own the boxed programs of their resident
/// warps) are ticked on worker-pool threads when `LAZYDRAM_CORES > 1`;
/// programs are plain data, so the bound costs implementations nothing.
pub trait WarpProgram: Send {
    /// Produces the warp's next operation by filling `out` in place.
    ///
    /// `loaded` holds the values of the most recent load in lane order
    /// (empty on the first call and after non-load operations). The
    /// implementation must set `out` exactly once per call (via
    /// [`OpBuf::set_compute`], [`OpBuf::begin_load`], [`OpBuf::begin_store`]
    /// or [`OpBuf::set_finished`]); any previous contents of the buffer are
    /// unspecified garbage and must not be read.
    fn next(&mut self, loaded: &[f32], out: &mut OpBuf);

    /// Serializes the program's *dynamic* state (loop counters, accumulators,
    /// phase). Configuration passed to the constructor is not written: a
    /// checkpoint restore rebuilds the program via [`Kernel::program`] for
    /// the same warp and then calls [`WarpProgram::load_state`] on it.
    fn save_state(&self, s: &mut Saver);

    /// Restores dynamic state written by [`WarpProgram::save_state`] into a
    /// freshly constructed program for the same warp of the same kernel.
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed.
    fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()>;
}

/// A GPU kernel launch.
///
/// `Sync` because the phased tick shares `&dyn Kernel` across worker-pool
/// threads (each SM queries [`Kernel::approximable`] while ticking in
/// parallel); kernels are immutable during simulation, so the bound costs
/// implementations nothing.
pub trait Kernel: Sync {
    /// Short workload name (e.g. `"GEMM"`).
    fn name(&self) -> &str;

    /// Allocates and initializes the kernel's arrays in the memory image.
    /// Called exactly once before simulation.
    fn setup(&mut self, mem: &mut MemoryImage);

    /// Total number of warps in the launch.
    fn total_warps(&self) -> usize;

    /// Builds the program for warp `warp_id` (0-based, `< total_warps`).
    fn program(&self, warp_id: usize) -> Box<dyn WarpProgram>;

    /// `pragma pred_var`: is the datum at `addr` annotated error-tolerant?
    /// The AMS unit may only approximate loads from annotated regions.
    fn approximable(&self, addr: u64) -> bool;

    /// Reads the kernel output (for application-error measurement).
    fn output(&self, mem: &MemoryImage) -> Vec<f32>;
}

/// Mean relative error between a baseline output and an approximated output,
/// the paper's *application error* metric (Section II-D).
///
/// Per-element relative error is truncated at 100 % (as in the RFVP line of
/// work the paper builds on) so a single near-zero baseline element cannot
/// dominate the average; elements whose baseline is (near) zero contribute
/// the capped absolute difference instead.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn application_error(exact: &[f32], approx: &[f32]) -> f64 {
    assert_eq!(exact.len(), approx.len(), "output shapes differ");
    if exact.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    for (&e, &a) in exact.iter().zip(approx) {
        let diff = f64::from((e - a).abs());
        let denom = f64::from(e.abs());
        let rel = if denom > 1e-6 { diff / denom } else { diff };
        total += rel.min(1.0);
    }
    total / exact.len() as f64
}

/// Splits `n` work items across warps of `lanes` threads: returns the item
/// index range `[lo, hi)` covered by `warp_id`'s lane `lane`.
/// A convenience used by many warp programs.
pub fn lane_item(warp_id: usize, lane: usize, lanes: usize) -> usize {
    warp_id * lanes + lane
}

/// Executes a kernel *functionally* — no timing, no caches, every load exact —
/// and returns its output and final memory image.
///
/// This is the reference executor: it runs every warp program to completion,
/// one warp at a time, serving loads straight from the image. Use it to
/// obtain the exact baseline output cheaply (the timed simulator produces the
/// same values when no approximation is enabled) and to unit-test warp
/// programs.
///
/// # Panics
///
/// Panics if a warp program runs for more than 100 million operations
/// (a runaway state machine).
pub fn run_functional(kernel: &mut dyn Kernel) -> (Vec<f32>, MemoryImage) {
    let mut image = MemoryImage::new();
    kernel.setup(&mut image);
    let mut buf = OpBuf::new();
    let mut loaded: Vec<f32> = Vec::new();
    for w in 0..kernel.total_warps() {
        let mut prog = kernel.program(w);
        loaded.clear();
        let mut ops = 0u64;
        loop {
            ops += 1;
            assert!(ops < 100_000_000, "runaway warp program in {}", kernel.name());
            prog.next(&loaded, &mut buf);
            match buf.kind() {
                OpKind::Compute(_) => loaded.clear(),
                OpKind::Load => {
                    image.read_lanes_into(buf.addrs(), &mut loaded);
                }
                OpKind::Store => {
                    image.write_lanes(buf.writes());
                    loaded.clear();
                }
                OpKind::Finished => break,
            }
        }
    }
    (kernel.output(&image), image)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn application_error_zero_for_identical() {
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(application_error(&x, &x), 0.0);
    }

    #[test]
    fn application_error_relative() {
        let e = vec![2.0, 4.0];
        let a = vec![1.0, 4.0];
        // |2-1|/2 = 0.5 averaged with 0 → 0.25
        assert!((application_error(&e, &a) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn application_error_near_zero_baseline_uses_absolute() {
        let e = vec![0.0];
        let a = vec![0.5];
        assert!((application_error(&e, &a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn application_error_empty_is_zero() {
        assert_eq!(application_error(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "output shapes differ")]
    fn application_error_shape_mismatch_panics() {
        let _ = application_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn lane_item_is_dense() {
        assert_eq!(lane_item(0, 0, 32), 0);
        assert_eq!(lane_item(0, 31, 32), 31);
        assert_eq!(lane_item(1, 0, 32), 32);
        assert_eq!(lane_item(2, 5, 32), 69);
    }
}
