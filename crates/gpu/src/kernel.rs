//! The kernel and warp-program abstraction.
//!
//! A [`Kernel`] describes a launch: how many warps run, how each warp behaves
//! (as a [`WarpProgram`] state machine), which data is annotated approximable
//! (the paper's `pragma pred_var`), and where the output lives. Warp programs
//! are *execution-driven*: they issue real addresses and consume the real
//! (or approximated) values the memory system returns, so application error
//! under AMS is measured, not assumed.

use crate::memimg::MemoryImage;


/// One operation issued by a warp.
#[derive(Debug, Clone, PartialEq)]
pub enum WarpOp {
    /// `n` single-cycle ALU warp instructions.
    Compute(u32),
    /// A global load: one address per active lane (≤ 32 entries). The warp
    /// blocks until all covered cache lines arrive; the loaded values are
    /// passed to the next [`WarpProgram::next`] call in lane order.
    Load(Vec<u64>),
    /// A global store: `(address, value)` per active lane. The warp does not
    /// wait for completion (write-through, fire-and-forget).
    Store(Vec<(u64, f32)>),
    /// The warp has retired.
    Finished,
}

/// The per-warp state machine of a kernel.
pub trait WarpProgram {
    /// Produces the warp's next operation.
    ///
    /// `loaded` holds the values of the most recent [`WarpOp::Load`] in lane
    /// order (empty on the first call and after non-load operations).
    fn next(&mut self, loaded: &[f32]) -> WarpOp;
}

/// A GPU kernel launch.
pub trait Kernel {
    /// Short workload name (e.g. `"GEMM"`).
    fn name(&self) -> &str;

    /// Allocates and initializes the kernel's arrays in the memory image.
    /// Called exactly once before simulation.
    fn setup(&mut self, mem: &mut MemoryImage);

    /// Total number of warps in the launch.
    fn total_warps(&self) -> usize;

    /// Builds the program for warp `warp_id` (0-based, `< total_warps`).
    fn program(&self, warp_id: usize) -> Box<dyn WarpProgram>;

    /// `pragma pred_var`: is the datum at `addr` annotated error-tolerant?
    /// The AMS unit may only approximate loads from annotated regions.
    fn approximable(&self, addr: u64) -> bool;

    /// Reads the kernel output (for application-error measurement).
    fn output(&self, mem: &MemoryImage) -> Vec<f32>;
}

/// Mean relative error between a baseline output and an approximated output,
/// the paper's *application error* metric (Section II-D).
///
/// Per-element relative error is truncated at 100 % (as in the RFVP line of
/// work the paper builds on) so a single near-zero baseline element cannot
/// dominate the average; elements whose baseline is (near) zero contribute
/// the capped absolute difference instead.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn application_error(exact: &[f32], approx: &[f32]) -> f64 {
    assert_eq!(exact.len(), approx.len(), "output shapes differ");
    if exact.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    for (&e, &a) in exact.iter().zip(approx) {
        let diff = f64::from((e - a).abs());
        let denom = f64::from(e.abs());
        let rel = if denom > 1e-6 { diff / denom } else { diff };
        total += rel.min(1.0);
    }
    total / exact.len() as f64
}

/// Splits `n` work items across warps of `lanes` threads: returns the item
/// index range `[lo, hi)` covered by `warp_id`'s lane `lane`.
/// A convenience used by many warp programs.
pub fn lane_item(warp_id: usize, lane: usize, lanes: usize) -> usize {
    warp_id * lanes + lane
}

/// Executes a kernel *functionally* — no timing, no caches, every load exact —
/// and returns its output and final memory image.
///
/// This is the reference executor: it runs every warp program to completion,
/// one warp at a time, serving loads straight from the image. Use it to
/// obtain the exact baseline output cheaply (the timed simulator produces the
/// same values when no approximation is enabled) and to unit-test warp
/// programs.
///
/// # Panics
///
/// Panics if a warp program runs for more than 100 million operations
/// (a runaway state machine).
pub fn run_functional(kernel: &mut dyn Kernel) -> (Vec<f32>, MemoryImage) {
    let mut image = MemoryImage::new();
    kernel.setup(&mut image);
    for w in 0..kernel.total_warps() {
        let mut prog = kernel.program(w);
        let mut loaded: Vec<f32> = Vec::new();
        let mut ops = 0u64;
        loop {
            ops += 1;
            assert!(ops < 100_000_000, "runaway warp program in {}", kernel.name());
            match prog.next(&loaded) {
                WarpOp::Compute(_) => loaded.clear(),
                WarpOp::Load(addrs) => {
                    image.read_lanes_into(&addrs, &mut loaded);
                }
                WarpOp::Store(writes) => {
                    image.write_lanes(&writes);
                    loaded.clear();
                }
                WarpOp::Finished => break,
            }
        }
    }
    (kernel.output(&image), image)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn application_error_zero_for_identical() {
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(application_error(&x, &x), 0.0);
    }

    #[test]
    fn application_error_relative() {
        let e = vec![2.0, 4.0];
        let a = vec![1.0, 4.0];
        // |2-1|/2 = 0.5 averaged with 0 → 0.25
        assert!((application_error(&e, &a) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn application_error_near_zero_baseline_uses_absolute() {
        let e = vec![0.0];
        let a = vec![0.5];
        assert!((application_error(&e, &a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn application_error_empty_is_zero() {
        assert_eq!(application_error(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "output shapes differ")]
    fn application_error_shape_mismatch_panics() {
        let _ = application_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn lane_item_is_dense() {
        assert_eq!(lane_item(0, 0, 32), 0);
        assert_eq!(lane_item(0, 31, 32), 31);
        assert_eq!(lane_item(1, 0, 32), 32);
        assert_eq!(lane_item(2, 5, 32), 69);
    }
}
