//! Execution-driven simplified GPU substrate for the lazy memory scheduler.
//!
//! This crate provides everything between a workload and the DRAM model:
//!
//! * [`MemoryImage`] — the flat functional store of `f32` values,
//! * [`Cache`] — tag-only set-associative cache (L1 and L2 share it), with
//!   the nearest-resident-line search the value predictor needs,
//! * [`DelayQueue`] — the latency/bandwidth-limited interconnect building
//!   block,
//! * [`Kernel`] / [`WarpProgram`] — the workload abstraction: warp-level
//!   state machines that issue real addresses and compute on real values,
//! * [`Simulator`] / [`run_kernel`] — the cycle-level machine: SMs with warp
//!   schedulers and L1s, L2 slices with MSHRs and the VP unit, and one
//!   [`lazydram_core::MemoryController`] per channel.
//!
//! # Quick start
//!
//! ```no_run
//! use lazydram_common::{GpuConfig, SchedConfig};
//! use lazydram_gpu::{run_kernel, Kernel};
//!
//! # fn demo(kernel: &mut dyn Kernel) {
//! let baseline = run_kernel(kernel, &GpuConfig::default(), &SchedConfig::baseline());
//! let lazy = run_kernel(kernel, &GpuConfig::default(), &SchedConfig::dyn_combo());
//! let base_acts = baseline.stats.dram.activations as f64;
//! println!("activation reduction: {:.1}%",
//!          100.0 * (1.0 - lazy.stats.dram.activations as f64 / base_acts));
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod cache;
mod kernel;
mod memimg;
mod noc;
mod pool;
mod sim;
mod slice;
mod sm;
mod trace;

pub use cache::{AccessResult, Cache};
pub use kernel::{
    application_error, lane_item, run_functional, Kernel, OpBuf, OpKind, WarpOp, WarpProgram,
};
pub use memimg::{MemoryImage, OverlayView, LINE_BYTES, WORDS_PER_LINE};
pub use lazydram_common::snap::{Loader, Saver, SnapError, SnapResult};
pub use noc::{DelayQueue, NocFull};
pub use pool::{parse_oversubscribe, SharedSlice, WorkerPool};
pub use sim::{
    cores_from_env, parse_cores, parse_no_compute_skip, parse_no_skip, run_kernel, Checkpoint,
    RunOutcome, RunResult,
    SimLimits, Simulator,
};
pub use trace::{
    ReplayReport, Trace, TraceEntry, TraceError, TraceSim, DEFAULT_DRAIN_GRACE,
};

