//! The functional memory image.
//!
//! The simulator separates *timing* from *function*: caches and DRAM model
//! when data moves, while one flat, coherent [`MemoryImage`] holds the actual
//! `f32` values. This is exactly sufficient for the paper's machinery — the
//! value predictor approximates a dropped line with the contents of the
//! nearest-address line *resident in L2*, whose exact values we serve from
//! the image keyed by the L2 tag array.
//!
//! All data is `f32` and 4-byte aligned; a 128-byte line holds
//! [`WORDS_PER_LINE`] words.

use lazydram_common::FastMap;

/// `f32` words per 128-byte cache line.
pub const WORDS_PER_LINE: usize = 32;

/// Byte size of a line in the image (fixed at the baseline's 128 B).
pub const LINE_BYTES: u64 = 128;

/// Flat sparse memory of `f32` words, organized in 128-byte lines.
#[derive(Debug, Clone, Default)]
pub struct MemoryImage {
    lines: FastMap<u64, Box<[f32; WORDS_PER_LINE]>>,
    /// Bump allocator cursor for [`MemoryImage::alloc`].
    next: u64,
}

impl MemoryImage {
    /// Creates an empty image; allocations start at a non-zero base so that
    /// stray zero addresses stand out.
    pub fn new() -> Self {
        Self {
            lines: FastMap::default(),
            next: 0x10_0000,
        }
    }

    /// Allocates a line-aligned region of `words` `f32`s and returns its base
    /// byte address. Regions are laid out contiguously in allocation order,
    /// mirroring how the benchmark suites place their arrays.
    pub fn alloc(&mut self, words: usize) -> u64 {
        let base = self.next;
        let bytes = (words as u64 * 4).div_ceil(LINE_BYTES) * LINE_BYTES;
        self.next += bytes;
        base
    }

    /// Reads the `f32` at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn read_f32(&self, addr: u64) -> f32 {
        assert!(addr.is_multiple_of(4), "unaligned f32 read at {addr:#x}");
        let line = addr & !(LINE_BYTES - 1);
        let idx = ((addr % LINE_BYTES) / 4) as usize;
        self.lines.get(&line).map_or(0.0, |l| l[idx])
    }

    /// Writes the `f32` at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn write_f32(&mut self, addr: u64, value: f32) {
        assert!(addr.is_multiple_of(4), "unaligned f32 write at {addr:#x}");
        let line = addr & !(LINE_BYTES - 1);
        let idx = ((addr % LINE_BYTES) / 4) as usize;
        self.lines.entry(line).or_insert_with(|| Box::new([0.0; WORDS_PER_LINE]))[idx] = value;
    }

    /// Returns the 32 words of the line containing `addr` (zeroes if the
    /// line was never written).
    pub fn read_line(&self, addr: u64) -> [f32; WORDS_PER_LINE] {
        let line = addr & !(LINE_BYTES - 1);
        self.lines.get(&line).map_or([0.0; WORDS_PER_LINE], |l| **l)
    }

    /// Convenience: reads `n` consecutive `f32`s starting at `base`.
    pub fn read_slice(&self, base: u64, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.read_f32(base + i as u64 * 4)).collect()
    }

    /// Convenience: writes a slice of `f32`s starting at `base`.
    pub fn write_slice(&mut self, base: u64, data: &[f32]) {
        for (i, &v) in data.iter().enumerate() {
            self.write_f32(base + i as u64 * 4, v);
        }
    }

    /// Number of lines materialized in the image.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_of_untouched_memory_is_zero() {
        let m = MemoryImage::new();
        assert_eq!(m.read_f32(0x10_0000), 0.0);
        assert_eq!(m.read_line(0x10_0000), [0.0; 32]);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut m = MemoryImage::new();
        m.write_f32(0x10_0004, 3.5);
        assert_eq!(m.read_f32(0x10_0004), 3.5);
        assert_eq!(m.read_f32(0x10_0000), 0.0);
        let line = m.read_line(0x10_0004);
        assert_eq!(line[1], 3.5);
    }

    #[test]
    fn alloc_is_line_aligned_and_contiguous() {
        let mut m = MemoryImage::new();
        let a = m.alloc(10); // 40 B → 1 line
        let b = m.alloc(33); // 132 B → 2 lines
        let c = m.alloc(1);
        assert_eq!(a % 128, 0);
        assert_eq!(b, a + 128);
        assert_eq!(c, b + 256);
    }

    #[test]
    fn slice_helpers_roundtrip() {
        let mut m = MemoryImage::new();
        let base = m.alloc(100);
        let data: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        m.write_slice(base, &data);
        assert_eq!(m.read_slice(base, 100), data);
        assert!(m.resident_lines() >= 3);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_read_panics() {
        let m = MemoryImage::new();
        let _ = m.read_f32(0x10_0001);
    }
}
