//! The functional memory image.
//!
//! The simulator separates *timing* from *function*: caches and DRAM model
//! when data moves, while one flat, coherent [`MemoryImage`] holds the actual
//! `f32` values. This is exactly sufficient for the paper's machinery — the
//! value predictor approximates a dropped line with the contents of the
//! nearest-address line *resident in L2*, whose exact values we serve from
//! the image keyed by the L2 tag array.
//!
//! All data is `f32` and 4-byte aligned; a 128-byte line holds
//! [`WORDS_PER_LINE`] words.
//!
//! # Storage layout
//!
//! [`MemoryImage::alloc`] is a contiguous bump allocator starting at a fixed
//! base, so almost every address the simulator ever touches falls in one
//! dense range. The image exploits that: the allocated range is backed by a
//! **paged arena** (64 KiB pages, materialized on first write), where
//! `addr → page → word` is pure arithmetic — no hashing on the per-lane hot
//! path. Addresses outside the arena (stray pointers fabricated by a kernel,
//! or writes past the bump cursor) fall back to a sparse per-line spill map;
//! if a later `alloc` extends the arena over a spilled line, the line
//! migrates into its page so subsequent accesses take the fast path.
//!
//! Footprint: the sparse map stored every touched line behind its own
//! allocation plus hash-table overhead (~1.6× the data). The arena stores
//! 64 KiB per page that has seen at least one write, with a 64-byte bitmask
//! tracking which lines were actually touched — denser for the suite's
//! contiguous arrays, and reads/writes are branch-plus-index instead of a
//! hash probe.

use lazydram_common::prof::{self, Phase};
use lazydram_common::snap::{Loader, Saver, SnapError, SnapResult};
use lazydram_common::FastMap;
use std::fmt;

/// `f32` words per 128-byte cache line.
pub const WORDS_PER_LINE: usize = 32;

/// Byte size of a line in the image (fixed at the baseline's 128 B).
pub const LINE_BYTES: u64 = 128;

/// Byte size of one arena page. Must be a multiple of [`LINE_BYTES`] and
/// divide [`ARENA_BASE`] so lines never straddle pages.
const PAGE_BYTES: u64 = 64 * 1024;

/// `f32` words per arena page.
const PAGE_WORDS: usize = (PAGE_BYTES / 4) as usize;

/// Cache lines per arena page.
const PAGE_LINES: usize = (PAGE_BYTES / LINE_BYTES) as usize;

/// First address handed out by [`MemoryImage::alloc`]; non-zero so that
/// stray zero addresses stand out. Page-aligned by construction.
const ARENA_BASE: u64 = 0x10_0000;

/// All-zero line served for reads of untouched memory.
static ZERO_LINE: [f32; WORDS_PER_LINE] = [0.0; WORDS_PER_LINE];

/// One 64 KiB arena page: a flat word array plus a touched-line bitmask so
/// [`MemoryImage::resident_lines`] keeps the sparse map's "lines ever
/// written" semantics.
#[derive(Clone)]
struct Page {
    words: [f32; PAGE_WORDS],
    touched: [u64; PAGE_LINES / 64],
}

impl Page {
    fn new_boxed() -> Box<Self> {
        Box::new(Page {
            words: [0.0; PAGE_WORDS],
            touched: [0; PAGE_LINES / 64],
        })
    }
}

/// Flat memory of `f32` words, organized in 128-byte lines: a paged arena
/// over the bump-allocated range with a sparse spill map for strays.
#[derive(Clone)]
pub struct MemoryImage {
    /// Arena page directory covering `[ARENA_BASE, next)`; `None` until the
    /// page sees its first write.
    pages: Vec<Option<Box<Page>>>,
    /// Lines at addresses outside the arena, keyed by line base address.
    spill: FastMap<u64, Box<[f32; WORDS_PER_LINE]>>,
    /// Count of set bits across all page `touched` masks.
    arena_touched: usize,
    /// Bump allocator cursor for [`MemoryImage::alloc`].
    next: u64,
}

impl Default for MemoryImage {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for MemoryImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryImage")
            .field("pages", &self.pages.len())
            .field("spill_lines", &self.spill.len())
            .field("resident_lines", &self.resident_lines())
            .field("next", &self.next)
            .finish()
    }
}

impl MemoryImage {
    /// Creates an empty image; allocations start at a non-zero base so that
    /// stray zero addresses stand out.
    pub fn new() -> Self {
        Self {
            pages: Vec::new(),
            spill: FastMap::default(),
            arena_touched: 0,
            next: ARENA_BASE,
        }
    }

    /// Allocates a line-aligned region of `words` `f32`s and returns its base
    /// byte address. Regions are laid out contiguously in allocation order,
    /// mirroring how the benchmark suites place their arrays.
    pub fn alloc(&mut self, words: usize) -> u64 {
        let base = self.next;
        let bytes = (words as u64 * 4).div_ceil(LINE_BYTES) * LINE_BYTES;
        self.next += bytes;
        if self.next > ARENA_BASE {
            let npages = ((self.next - ARENA_BASE).div_ceil(PAGE_BYTES)) as usize;
            if npages > self.pages.len() {
                self.pages.resize_with(npages, || None);
            }
        }
        // Any stray writes that landed in the newly covered range migrate
        // from the spill map into their page, so the range check below stays
        // the single source of truth for where a line lives.
        if !self.spill.is_empty() {
            let lo = base.max(ARENA_BASE);
            let moved: Vec<u64> = self
                .spill
                .keys()
                .copied()
                .filter(|&l| l >= lo && l < self.next)
                .collect();
            for line in moved {
                let data = self.spill.remove(&line).expect("key just listed");
                self.line_words_mut(line).copy_from_slice(&data[..]);
            }
        }
        base
    }

    /// True when `line` (a line base address) is backed by the arena.
    #[inline]
    fn in_arena(&self, line: u64) -> bool {
        (ARENA_BASE..self.next).contains(&line)
    }

    /// The 32 words backing the line at base address `line` (all zeros when
    /// the line was never written).
    #[inline]
    fn line_words(&self, line: u64) -> &[f32] {
        if self.in_arena(line) {
            let off = line - ARENA_BASE;
            match &self.pages[(off / PAGE_BYTES) as usize] {
                Some(p) => {
                    let w = (off % PAGE_BYTES / 4) as usize;
                    &p.words[w..w + WORDS_PER_LINE]
                }
                None => &ZERO_LINE,
            }
        } else {
            self.spill.get(&line).map_or(&ZERO_LINE[..], |l| &l[..])
        }
    }

    /// Mutable words of the line at base address `line`, materializing the
    /// page (or spill entry) and marking the line resident.
    #[inline]
    fn line_words_mut(&mut self, line: u64) -> &mut [f32] {
        if self.in_arena(line) {
            let off = line - ARENA_BASE;
            let page = self.pages[(off / PAGE_BYTES) as usize].get_or_insert_with(Page::new_boxed);
            let li = (off % PAGE_BYTES / LINE_BYTES) as usize;
            let mask = 1u64 << (li % 64);
            if page.touched[li / 64] & mask == 0 {
                page.touched[li / 64] |= mask;
                self.arena_touched += 1;
            }
            let w = li * WORDS_PER_LINE;
            &mut page.words[w..w + WORDS_PER_LINE]
        } else {
            &mut self
                .spill
                .entry(line)
                .or_insert_with(|| Box::new([0.0; WORDS_PER_LINE]))[..]
        }
    }

    /// Reads the `f32` at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn read_f32(&self, addr: u64) -> f32 {
        assert!(addr.is_multiple_of(4), "unaligned f32 read at {addr:#x}");
        let line = addr & !(LINE_BYTES - 1);
        self.line_words(line)[((addr % LINE_BYTES) / 4) as usize]
    }

    /// Writes the `f32` at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn write_f32(&mut self, addr: u64, value: f32) {
        assert!(addr.is_multiple_of(4), "unaligned f32 write at {addr:#x}");
        let line = addr & !(LINE_BYTES - 1);
        self.line_words_mut(line)[((addr % LINE_BYTES) / 4) as usize] = value;
    }

    /// Returns the 32 words of the line containing `addr` (zeroes if the
    /// line was never written).
    pub fn read_line(&self, addr: u64) -> [f32; WORDS_PER_LINE] {
        let mut out = [0.0; WORDS_PER_LINE];
        self.read_line_into(addr, &mut out);
        out
    }

    /// Copies the 32 words of the line containing `addr` into `out`,
    /// resolving the backing line exactly once.
    pub fn read_line_into(&self, addr: u64, out: &mut [f32; WORDS_PER_LINE]) {
        let line = addr & !(LINE_BYTES - 1);
        out.copy_from_slice(self.line_words(line));
    }

    /// Reads one `f32` per lane address into `out` (cleared first). The
    /// backing line is resolved once per run of same-line addresses instead
    /// of once per lane — the warp-coalescing fast path.
    ///
    /// # Panics
    ///
    /// Panics if any address is not 4-byte aligned.
    pub fn read_lanes_into(&self, addrs: &[u64], out: &mut Vec<f32>) {
        let _t = prof::enter(Phase::FuncMem);
        out.clear();
        out.reserve(addrs.len());
        let mut cur_line = u64::MAX;
        let mut words: &[f32] = &ZERO_LINE;
        for &a in addrs {
            assert!(a.is_multiple_of(4), "unaligned f32 read at {a:#x}");
            let line = a & !(LINE_BYTES - 1);
            if line != cur_line {
                cur_line = line;
                words = self.line_words(line);
            }
            out.push(words[((a % LINE_BYTES) / 4) as usize]);
        }
    }

    /// Writes one `(addr, value)` pair per lane, resolving the backing line
    /// once per run of same-line addresses.
    ///
    /// # Panics
    ///
    /// Panics if any address is not 4-byte aligned.
    pub fn write_lanes(&mut self, writes: &[(u64, f32)]) {
        let _t = prof::enter(Phase::FuncMem);
        let mut i = 0;
        while i < writes.len() {
            let line = writes[i].0 & !(LINE_BYTES - 1);
            let words = self.line_words_mut(line);
            while i < writes.len() && writes[i].0 & !(LINE_BYTES - 1) == line {
                let (a, v) = writes[i];
                assert!(a.is_multiple_of(4), "unaligned f32 write at {a:#x}");
                words[((a % LINE_BYTES) / 4) as usize] = v;
                i += 1;
            }
        }
    }

    /// Reads `n` consecutive `f32`s starting at `base` into `out` (cleared
    /// first), copying line-at-a-time. Allocation-free once `out` has grown
    /// to capacity.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 4-byte aligned.
    pub fn read_slice_into(&self, base: u64, n: usize, out: &mut Vec<f32>) {
        let _t = prof::enter(Phase::FuncMem);
        assert!(base.is_multiple_of(4), "unaligned f32 read at {base:#x}");
        out.clear();
        out.reserve(n);
        let mut addr = base;
        let mut remaining = n;
        while remaining > 0 {
            let line = addr & !(LINE_BYTES - 1);
            let start = ((addr % LINE_BYTES) / 4) as usize;
            let take = (WORDS_PER_LINE - start).min(remaining);
            out.extend_from_slice(&self.line_words(line)[start..start + take]);
            addr += take as u64 * 4;
            remaining -= take;
        }
    }

    /// Convenience: reads `n` consecutive `f32`s starting at `base`.
    pub fn read_slice(&self, base: u64, n: usize) -> Vec<f32> {
        let mut out = Vec::new();
        self.read_slice_into(base, n, &mut out);
        out
    }

    /// Convenience: writes a slice of `f32`s starting at `base`.
    pub fn write_slice(&mut self, base: u64, data: &[f32]) {
        let mut addr = base;
        let mut rest = data;
        while !rest.is_empty() {
            assert!(addr.is_multiple_of(4), "unaligned f32 write at {addr:#x}");
            let line = addr & !(LINE_BYTES - 1);
            let start = ((addr % LINE_BYTES) / 4) as usize;
            let take = (WORDS_PER_LINE - start).min(rest.len());
            self.line_words_mut(line)[start..start + take].copy_from_slice(&rest[..take]);
            addr += take as u64 * 4;
            rest = &rest[take..];
        }
    }

    /// Number of lines materialized in the image (lines ever written, arena
    /// and spill combined — reads never materialize).
    pub fn resident_lines(&self) -> usize {
        self.arena_touched + self.spill.len()
    }

    /// Serializes the full image: bump cursor, arena pages (absent pages are
    /// one flag byte) and the spill map in sorted-address order.
    pub fn save_state(&self, s: &mut Saver) {
        s.u64("next", self.next);
        s.usize("arena_touched", self.arena_touched);
        s.seq("pages", self.pages.len());
        for (i, page) in self.pages.iter().enumerate() {
            match page {
                None => s.bool("present", false),
                Some(p) => {
                    s.bool("present", true);
                    s.frame("page", i as u32, |s| {
                        s.f32s("words", &p.words);
                        s.u64s("touched", &p.touched);
                    });
                }
            }
        }
        let mut keys: Vec<u64> = self.spill.keys().copied().collect();
        keys.sort_unstable();
        s.seq("spill", keys.len());
        for k in keys {
            s.u64("line", k);
            s.f32s("words", &self.spill[&k][..]);
        }
    }

    /// Restores the image from a snapshot, replacing all current contents.
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed.
    pub fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.next = l.u64("next")?;
        self.arena_touched = l.usize("arena_touched")?;
        let npages = l.seq("pages", 1)?;
        self.pages.clear();
        self.pages.reserve(npages);
        for i in 0..npages {
            if l.bool("present")? {
                let mut page = Page::new_boxed();
                l.frame("page", i as u32, |l| {
                    l.f32_array("words", &mut page.words)?;
                    l.u64_array("touched", &mut page.touched)
                })?;
                self.pages.push(Some(page));
            } else {
                self.pages.push(None);
            }
        }
        let nspill = l.seq("spill", 12)?;
        self.spill = FastMap::default();
        self.spill.reserve(nspill);
        for _ in 0..nspill {
            let line = l.u64("line")?;
            let mut words = Box::new([0.0f32; WORDS_PER_LINE]);
            l.f32_array("words", &mut words[..])?;
            if self.spill.insert(line, words).is_some() {
                return Err(SnapError::Malformed {
                    label: "spill".into(),
                    why: format!("duplicate spill line {line:#x}"),
                });
            }
        }
        Ok(())
    }
}

/// A read view of a [`MemoryImage`] patched by an ordered overlay of
/// pending lane writes.
///
/// During phase A of the phased tick each SM stages its functional writes
/// instead of committing them (the image is shared read-only across worker
/// threads); loads issued later in the *same* SM's tick must still observe
/// those writes to match the sequential semantics. The overlay holds the
/// SM's staged `(addr, value)` pairs in program order — a forward scan
/// taking the last match gives latest-write-wins. The overlay is tiny (one
/// SM's writes from one cycle) and usually empty, so the scan is cheaper
/// than any index.
pub struct OverlayView<'a> {
    base: &'a MemoryImage,
    overlay: &'a [(u64, f32)],
}

impl<'a> OverlayView<'a> {
    /// Wraps `base` patched by `overlay` (ordered oldest-to-newest).
    pub fn new(base: &'a MemoryImage, overlay: &'a [(u64, f32)]) -> Self {
        Self { base, overlay }
    }

    /// Reads the `f32` at byte address `addr`, honoring overlay writes.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn read_f32(&self, addr: u64) -> f32 {
        let mut v = self.base.read_f32(addr);
        for &(a, w) in self.overlay {
            if a == addr {
                v = w;
            }
        }
        v
    }

    /// Reads one `f32` per lane address into `out` (cleared first),
    /// honoring overlay writes. Mirrors [`MemoryImage::read_lanes_into`].
    ///
    /// # Panics
    ///
    /// Panics if any address is not 4-byte aligned.
    pub fn read_lanes_into(&self, addrs: &[u64], out: &mut Vec<f32>) {
        self.base.read_lanes_into(addrs, out);
        if self.overlay.is_empty() {
            return;
        }
        for &(a, w) in self.overlay {
            for (i, &addr) in addrs.iter().enumerate() {
                if addr == a {
                    out[i] = w;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_of_untouched_memory_is_zero() {
        let m = MemoryImage::new();
        assert_eq!(m.read_f32(0x10_0000), 0.0);
        assert_eq!(m.read_line(0x10_0000), [0.0; 32]);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut m = MemoryImage::new();
        m.write_f32(0x10_0004, 3.5);
        assert_eq!(m.read_f32(0x10_0004), 3.5);
        assert_eq!(m.read_f32(0x10_0000), 0.0);
        let line = m.read_line(0x10_0004);
        assert_eq!(line[1], 3.5);
    }

    #[test]
    fn alloc_is_line_aligned_and_contiguous() {
        let mut m = MemoryImage::new();
        let a = m.alloc(10); // 40 B → 1 line
        let b = m.alloc(33); // 132 B → 2 lines
        let c = m.alloc(1);
        assert_eq!(a % 128, 0);
        assert_eq!(b, a + 128);
        assert_eq!(c, b + 256);
    }

    #[test]
    fn slice_helpers_roundtrip() {
        let mut m = MemoryImage::new();
        let base = m.alloc(100);
        let data: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        m.write_slice(base, &data);
        assert_eq!(m.read_slice(base, 100), data);
        assert!(m.resident_lines() >= 3);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_read_panics() {
        let m = MemoryImage::new();
        let _ = m.read_f32(0x10_0001);
    }

    #[test]
    fn stray_out_of_arena_addresses_spill_and_roundtrip() {
        let mut m = MemoryImage::new();
        m.write_f32(0x8, 1.25); // below the arena base
        let far = 0xdead_0000;
        m.write_f32(far, 2.5); // beyond the bump cursor
        assert_eq!(m.read_f32(0x8), 1.25);
        assert_eq!(m.read_f32(far), 2.5);
        assert_eq!(m.resident_lines(), 2);
    }

    #[test]
    fn alloc_over_spilled_line_migrates_it() {
        let mut m = MemoryImage::new();
        // Write past the bump cursor: this line lives in the spill map.
        let stray = ARENA_BASE + 3 * LINE_BYTES + 8;
        m.write_f32(stray, 7.75);
        assert_eq!(m.resident_lines(), 1);
        // Allocating over it moves the line into the arena; the value and
        // the resident count must survive.
        let base = m.alloc(WORDS_PER_LINE * 8);
        assert_eq!(base, ARENA_BASE);
        assert_eq!(m.read_f32(stray), 7.75);
        assert_eq!(m.resident_lines(), 1);
        m.write_f32(stray, 8.5);
        assert_eq!(m.read_f32(stray), 8.5);
        assert_eq!(m.resident_lines(), 1);
    }

    #[test]
    fn lane_batch_apis_match_scalar_ops() {
        let mut m = MemoryImage::new();
        let base = m.alloc(WORDS_PER_LINE * 3);
        let addrs: Vec<u64> = (0..64u64).map(|i| base + i * 4).collect();
        let writes: Vec<(u64, f32)> = addrs.iter().map(|&a| (a, a as f32)).collect();
        m.write_lanes(&writes);
        let mut got = Vec::new();
        m.read_lanes_into(&addrs, &mut got);
        let want: Vec<f32> = addrs.iter().map(|&a| m.read_f32(a)).collect();
        assert_eq!(got, want);
        assert_eq!(m.resident_lines(), 2);
    }

    #[test]
    fn overlay_view_patches_reads_latest_wins() {
        let mut m = MemoryImage::new();
        let base = m.alloc(WORDS_PER_LINE * 2);
        m.write_f32(base, 1.0);
        m.write_f32(base + 4, 2.0);
        // Two overlay writes to the same address: the later one wins.
        let overlay = [(base, 10.0f32), (base + 8, 30.0), (base, 11.0)];
        let v = OverlayView::new(&m, &overlay);
        assert_eq!(v.read_f32(base), 11.0);
        assert_eq!(v.read_f32(base + 4), 2.0);
        assert_eq!(v.read_f32(base + 8), 30.0);
        let addrs = [base, base + 4, base + 8, base + 12];
        let mut got = Vec::new();
        v.read_lanes_into(&addrs, &mut got);
        assert_eq!(got, vec![11.0, 2.0, 30.0, 0.0]);
        // Empty overlay degenerates to the plain image.
        let plain = OverlayView::new(&m, &[]);
        plain.read_lanes_into(&addrs, &mut got);
        assert_eq!(got, vec![1.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn read_slice_into_reuses_buffer_across_pages() {
        let mut m = MemoryImage::new();
        // Two pages' worth so the slice crosses a page boundary.
        let n = PAGE_WORDS + 100;
        let base = m.alloc(n);
        let data: Vec<f32> = (0..n).map(|i| (i % 977) as f32).collect();
        m.write_slice(base, &data);
        let mut out = Vec::new();
        m.read_slice_into(base, n, &mut out);
        assert_eq!(out, data);
        // Unaligned start within a line.
        m.read_slice_into(base + 12, 50, &mut out);
        assert_eq!(out[..], data[3..53]);
    }
}
