//! Shared synthetic kernel for the equivalence test binaries
//! (`parallel_equivalence_props`, `pool_threads`). Mirrors the one in
//! `fast_forward_props.rs`: `rounds` iterations of compute → strided load →
//! store per warp, parameters drawn by the caller, data from a fixed ramp —
//! so every execution mode under comparison sees identical work.

use lazydram_common::{AmsMode, DmsMode, SchedConfig};
use lazydram_gpu::{Kernel, Loader, MemoryImage, OpBuf, Saver, SnapResult, WarpProgram};

/// One warp: `rounds` iterations of compute → strided load → store.
pub struct SynthProgram {
    warp_id: u64,
    base: u64,
    words: u64,
    rounds: u32,
    round: u32,
    stride: u64,
    compute: u32,
    phase: u8,
    acc: f32,
}

impl SynthProgram {
    fn lane_addr(&self, lane: u64) -> u64 {
        let idx = (self.warp_id * 131 + u64::from(self.round) * self.stride + lane * 7) % self.words;
        self.base + idx * 4
    }
}

impl WarpProgram for SynthProgram {
    fn next(&mut self, loaded: &[f32], out: &mut OpBuf) {
        self.acc += loaded.iter().sum::<f32>();
        if self.round >= self.rounds {
            out.set_finished();
            return;
        }
        match self.phase {
            0 => {
                self.phase = 1;
                if self.compute == 0 {
                    self.next(&[], out);
                    return;
                }
                out.set_compute(self.compute);
            }
            1 => {
                self.phase = 2;
                out.begin_load()
                    .extend((0..8).map(|lane| self.lane_addr(lane)));
            }
            _ => {
                self.phase = 0;
                let round = u64::from(self.round);
                self.round += 1;
                let addr = self.base + ((self.warp_id * 17 + round) % self.words) * 4;
                out.begin_store().push((addr, self.acc + round as f32));
            }
        }
    }

    fn save_state(&self, s: &mut Saver) {
        s.u32("round", self.round);
        s.u8("phase", self.phase);
        s.f32("acc", self.acc);
    }

    fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.round = l.u32("round")?;
        self.phase = l.u8("phase")?;
        self.acc = l.f32("acc")?;
        Ok(())
    }
}

/// Random-but-deterministic kernel over a fixed data ramp.
pub struct SynthKernel {
    pub warps: usize,
    pub rounds: u32,
    pub stride: u64,
    pub compute: u32,
    pub words: u64,
    pub approx: bool,
    pub base: u64,
}

impl Kernel for SynthKernel {
    fn name(&self) -> &str {
        "synthetic"
    }

    fn setup(&mut self, mem: &mut MemoryImage) {
        self.base = mem.alloc(self.words as usize);
        for i in 0..self.words {
            mem.write_f32(self.base + i * 4, (i % 97) as f32 * 0.5 - 3.0);
        }
    }

    fn total_warps(&self) -> usize {
        self.warps
    }

    fn program(&self, warp_id: usize) -> Box<dyn WarpProgram> {
        Box::new(SynthProgram {
            warp_id: warp_id as u64,
            base: self.base,
            words: self.words,
            rounds: self.rounds,
            round: 0,
            stride: self.stride,
            compute: self.compute,
            phase: 0,
            acc: 0.0,
        })
    }

    fn approximable(&self, _addr: u64) -> bool {
        self.approx
    }

    fn output(&self, mem: &MemoryImage) -> Vec<f32> {
        mem.read_slice(self.base, self.words.min(128) as usize)
    }
}

/// One of six scheduler shapes (baseline, static/dynamic DMS and AMS, both).
pub fn scheme(pick: u8, dms_delay: u32, ams_th: u32) -> SchedConfig {
    let mut s = SchedConfig::default();
    match pick % 6 {
        0 => {}
        1 => s.dms = DmsMode::Static(dms_delay),
        2 => s.dms = DmsMode::paper_dynamic(),
        3 => s.ams = AmsMode::Static(ams_th.max(1)),
        4 => s.ams = AmsMode::paper_dynamic(),
        _ => {
            s.dms = DmsMode::Static(dms_delay);
            s.ams = AmsMode::Static(ams_th.max(1));
        }
    }
    s
}
