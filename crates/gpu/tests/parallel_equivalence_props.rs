//! Property test: the phased parallel tick is result-invisible — any
//! `LAZYDRAM_CORES` width produces the same outputs, statistics, DRAM
//! traces, and checkpoint digests as the single-core walk.
//!
//! The phased tick (DESIGN.md §12) is the *semantics* at every width;
//! `cores` only selects how many worker threads execute the independent
//! shards. These properties pin that claim down on randomly generated
//! synthetic kernels, randomly drawn scheduler configurations, and random
//! pause points, including cross-width checkpoint/resume round-trips
//! (pause at cores=N, resume at cores=1, and vice versa).
//!
//! On hosts where `available_parallelism() == 1` the pool degrades to the
//! inline path regardless of `cores`; `tests/pool_threads.rs` forces real
//! worker threads via `LAZYDRAM_POOL_OVERSUBSCRIBE` in its own process.

mod synth;

use lazydram_common::GpuConfig;
use lazydram_gpu::{RunOutcome, SimLimits, Simulator};
use proptest::prelude::*;
use synth::{scheme, SynthKernel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn parallel_tick_matches_single_core(
        warps in 1usize..25,
        rounds in 1u32..6,
        stride in 1u64..97,
        compute in 0u32..9,
        pick in 0u8..6,
        dms_delay in 1u32..2049,
        ams_th in 0u32..16,
        cores in 2usize..5,
        skip in proptest::arbitrary::any::<bool>(),
        compute_skip in proptest::arbitrary::any::<bool>(),
    ) {
        let sched = scheme(pick, dms_delay, ams_th);
        let limits = SimLimits {
            max_core_cycles: 2_000_000,
        };
        let build = || SynthKernel {
            warps,
            rounds,
            stride,
            compute,
            words: 2048,
            approx: pick >= 3,
            base: 0,
        };
        let run = |cores: usize| {
            let mut kernel = build();
            Simulator::new(GpuConfig::default(), sched.clone())
                .with_limits(limits)
                .with_trace_capture(true)
                .with_cycle_skipping(skip)
                .with_compute_skipping(compute_skip)
                .with_cores(cores)
                .run(&mut kernel)
        };
        let one = run(1);
        let many = run(cores);
        prop_assert_eq!(one.hit_cycle_limit, many.hit_cycle_limit);
        prop_assert_eq!(&one.output, &many.output);
        prop_assert!(one.trace == many.trace, "DRAM traces differ");
        prop_assert!(
            one.stats == many.stats,
            "stats differ:\none:  {:?}\nmany: {:?}",
            one.stats,
            many.stats
        );
    }

    #[test]
    fn checkpoints_are_identical_and_portable_across_cores(
        warps in 1usize..25,
        rounds in 1u32..6,
        stride in 1u64..97,
        pick in 0u8..6,
        cores in 2usize..5,
        frac in 1u64..4,
    ) {
        let sched = scheme(pick, 700, 4);
        let limits = SimLimits {
            max_core_cycles: 2_000_000,
        };
        let build = || SynthKernel {
            warps,
            rounds,
            stride,
            compute: 2,
            words: 2048,
            approx: pick >= 3,
            base: 0,
        };
        let sim = |cores: usize| {
            Simulator::new(GpuConfig::default(), sched.clone())
                .with_limits(limits)
                .with_cores(cores)
        };

        // Uninterrupted single-core run fixes the ground truth.
        let full = sim(1).run(&mut build());
        let pause_at = (full.stats.core_cycles * frac / 4).max(1);

        let o1 = sim(1).run_until(&mut build(), pause_at);
        let on = sim(cores).run_until(&mut build(), pause_at);
        if let (RunOutcome::Paused(ck1), RunOutcome::Paused(ckn)) = (&o1, &on) {
            // The serialized machine state must not depend on the width
            // that produced it.
            prop_assert_eq!(ck1.digest(), ckn.digest(), "checkpoint digests differ");

            // Cross-width resume: cores=N checkpoint finishes at cores=1
            // (and vice versa) exactly as the uninterrupted run did.
            for (ck, resume_cores) in [(ckn, 1usize), (ck1, cores)] {
                let mut kernel = build();
                let resumed = sim(resume_cores)
                    .resume(&mut kernel, ck)
                    .expect("checkpoint from the same build must restore");
                prop_assert_eq!(&resumed.output, &full.output);
                prop_assert_eq!(resumed.hit_cycle_limit, full.hit_cycle_limit);
                prop_assert!(
                    resumed.stats == full.stats,
                    "resumed stats differ:\nresumed: {:?}\nfull:    {:?}",
                    resumed.stats,
                    full.stats
                );
            }
        } else {
            // The run finished before the pause point (tiny kernel); both
            // widths must at least agree on the completed result.
            let (RunOutcome::Done(r1), RunOutcome::Done(rn)) = (o1, on) else {
                return Err(TestCaseError::fail(
                    "one width paused while the other finished",
                ));
            };
            prop_assert_eq!(&r1.output, &rn.output);
            prop_assert!(r1.stats == rn.stats, "stats differ");
        }
    }
}
