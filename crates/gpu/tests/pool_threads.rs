//! Bit-identity with *real* worker threads.
//!
//! `WorkerPool` caps its thread count at `available_parallelism() - 1`, so on
//! a single-CPU host every `cores` value degrades to the inline path and the
//! other equivalence suites never exercise cross-thread staging. This binary
//! sets `LAZYDRAM_POOL_OVERSUBSCRIBE=1` — in its own process, before any pool
//! is constructed, so the `OnceLock` caches the override — to force genuine
//! worker threads and re-check the cores=1 vs cores=4 equivalence through
//! them.
//!
//! Keep this file a single `#[test]`: the env var is process-global.

use lazydram_common::{GpuConfig, SimStats};
use lazydram_gpu::{SimLimits, Simulator, Trace, WorkerPool};

mod synth;

use synth::{scheme, SynthKernel};

fn run(cores: usize, pick: u8) -> (Vec<f32>, SimStats, Option<Trace>) {
    let mut kernel = SynthKernel {
        warps: 24,
        rounds: 4,
        stride: 13,
        compute: 3,
        words: 2048,
        approx: pick >= 3,
        base: 0,
    };
    let r = Simulator::new(GpuConfig::default(), scheme(pick, 700, 4))
        .with_limits(SimLimits {
            max_core_cycles: 2_000_000,
        })
        .with_trace_capture(true)
        .with_cores(cores)
        .run(&mut kernel);
    assert!(!r.hit_cycle_limit, "synthetic kernel must finish");
    (r.output, r.stats, r.trace)
}

#[test]
fn real_worker_threads_are_bit_identical() {
    std::env::set_var("LAZYDRAM_POOL_OVERSUBSCRIBE", "1");

    // Guard the premise: with the override in place the pool must spawn
    // genuine workers even on a single-CPU host, or this test silently
    // collapses into the inline path the other suites already cover.
    {
        let mut pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 3, "oversubscribe override not in effect");
        pool.shutdown();
    }

    for pick in [0u8, 2, 5] {
        let (out1, stats1, trace1) = run(1, pick);
        let (out4, stats4, trace4) = run(4, pick);
        assert_eq!(out1, out4, "outputs diverge with real threads (pick={pick})");
        assert!(
            stats1 == stats4,
            "stats diverge with real threads (pick={pick}):\ncores=1: {stats1:?}\ncores=4: {stats4:?}"
        );
        assert!(
            trace1 == trace4,
            "DRAM traces diverge with real threads (pick={pick})"
        );
    }
}
