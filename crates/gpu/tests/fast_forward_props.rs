//! Property test: event-driven fast-forward — both the idle skipper and the
//! analytic compute-burst skipper — is result-invisible for randomly
//! generated synthetic kernels under randomly drawn scheduler
//! configurations and cycle limits. All three loop modes (full skip,
//! idle-only skip, naive) are compared pairwise.
//!
//! The suite-level test (`tests/fast_forward_equivalence.rs` at the
//! workspace root) covers the 20 real applications; this one probes odd
//! corners real apps do not hit — single-warp launches, degenerate strides,
//! tight cycle limits, pathological DMS delays.

use lazydram_common::{AmsMode, DmsMode, GpuConfig, SchedConfig};
use lazydram_gpu::{
    Kernel, Loader, MemoryImage, OpBuf, Saver, SimLimits, Simulator, SnapResult, WarpProgram,
};
use proptest::prelude::*;

/// One warp of the synthetic kernel: `rounds` iterations of
/// compute → strided load → store, then retire.
struct SynthProgram {
    warp_id: u64,
    base: u64,
    words: u64,
    rounds: u32,
    round: u32,
    stride: u64,
    compute: u32,
    phase: u8,
    acc: f32,
}

impl SynthProgram {
    fn lane_addr(&self, lane: u64) -> u64 {
        let idx = (self.warp_id * 131 + u64::from(self.round) * self.stride + lane * 7) % self.words;
        self.base + idx * 4
    }
}

impl WarpProgram for SynthProgram {
    fn next(&mut self, loaded: &[f32], out: &mut OpBuf) {
        self.acc += loaded.iter().sum::<f32>();
        if self.round >= self.rounds {
            out.set_finished();
            return;
        }
        match self.phase {
            0 => {
                self.phase = 1;
                if self.compute == 0 {
                    self.next(&[], out);
                    return;
                }
                out.set_compute(self.compute);
            }
            1 => {
                self.phase = 2;
                out.begin_load()
                    .extend((0..8).map(|lane| self.lane_addr(lane)));
            }
            _ => {
                self.phase = 0;
                let round = u64::from(self.round);
                self.round += 1;
                let addr = self.base + ((self.warp_id * 17 + round) % self.words) * 4;
                out.begin_store().push((addr, self.acc + round as f32));
            }
        }
    }

    fn save_state(&self, s: &mut Saver) {
        s.u32("round", self.round);
        s.u8("phase", self.phase);
        s.f32("acc", self.acc);
    }

    fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.round = l.u32("round")?;
        self.phase = l.u8("phase")?;
        self.acc = l.f32("acc")?;
        Ok(())
    }
}

/// Random-but-deterministic kernel: parameters come from the proptest
/// strategy, data from a fixed ramp, so both loop modes see identical work.
struct SynthKernel {
    warps: usize,
    rounds: u32,
    stride: u64,
    compute: u32,
    words: u64,
    approx: bool,
    base: u64,
}

impl Kernel for SynthKernel {
    fn name(&self) -> &str {
        "synthetic"
    }

    fn setup(&mut self, mem: &mut MemoryImage) {
        self.base = mem.alloc(self.words as usize);
        for i in 0..self.words {
            mem.write_f32(self.base + i * 4, (i % 97) as f32 * 0.5 - 3.0);
        }
    }

    fn total_warps(&self) -> usize {
        self.warps
    }

    fn program(&self, warp_id: usize) -> Box<dyn WarpProgram> {
        Box::new(SynthProgram {
            warp_id: warp_id as u64,
            base: self.base,
            words: self.words,
            rounds: self.rounds,
            round: 0,
            stride: self.stride,
            compute: self.compute,
            phase: 0,
            acc: 0.0,
        })
    }

    fn approximable(&self, _addr: u64) -> bool {
        self.approx
    }

    fn output(&self, mem: &MemoryImage) -> Vec<f32> {
        mem.read_slice(self.base, self.words.min(128) as usize)
    }
}

fn scheme(pick: u8, dms_delay: u32, ams_th: u32) -> SchedConfig {
    let mut s = SchedConfig::default();
    match pick % 6 {
        0 => {}
        1 => s.dms = DmsMode::Static(dms_delay),
        2 => s.dms = DmsMode::paper_dynamic(),
        3 => s.ams = AmsMode::Static(ams_th.max(1)),
        4 => s.ams = AmsMode::paper_dynamic(),
        _ => {
            s.dms = DmsMode::Static(dms_delay);
            s.ams = AmsMode::Static(ams_th.max(1));
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn fast_forward_matches_naive_loop(
        warps in 1usize..25,
        rounds in 1u32..6,
        stride in 1u64..97,
        compute in 0u32..9,
        pick in 0u8..6,
        dms_delay in 1u32..2049,
        ams_th in 0u32..16,
        tight_limit in proptest::arbitrary::any::<bool>(),
    ) {
        let sched = scheme(pick, dms_delay, ams_th);
        let limits = SimLimits {
            max_core_cycles: if tight_limit { 5_000 } else { 2_000_000 },
        };
        let build = || SynthKernel {
            warps,
            rounds,
            stride,
            compute,
            words: 2048,
            approx: pick >= 3,
            base: 0,
        };
        let run = |skip: bool, compute_skip: bool| {
            let mut kernel = build();
            Simulator::new(GpuConfig::default(), sched.clone())
                .with_limits(limits)
                .with_trace_capture(true)
                .with_cycle_skipping(skip)
                .with_compute_skipping(compute_skip)
                .run(&mut kernel)
        };
        let full = run(true, true);
        let idle = run(true, false);
        let slow = run(false, false);
        prop_assert_eq!(slow.stats.cycles_skipped, 0u64);
        prop_assert_eq!(idle.stats.compute_cycles_skipped, 0u64);
        for fast in [&full, &idle] {
            prop_assert_eq!(fast.hit_cycle_limit, slow.hit_cycle_limit);
            prop_assert_eq!(&fast.output, &slow.output);
            prop_assert!(fast.trace == slow.trace, "DRAM traces differ");
            let mut fs = fast.stats.clone();
            let mut ss = slow.stats.clone();
            prop_assert!(
                fs.compute_cycles_skipped <= fs.cycles_skipped,
                "compute skips exceed total skips"
            );
            // A limit hit counts one final cycle the loop never executes.
            prop_assert_eq!(
                fs.ticks_executed + fs.cycles_skipped + u64::from(fast.hit_cycle_limit),
                fs.core_cycles,
                "skip accounting must partition core cycles"
            );
            fs.cycles_skipped = 0;
            fs.compute_cycles_skipped = 0;
            fs.ticks_executed = 0;
            ss.cycles_skipped = 0;
            ss.ticks_executed = 0;
            prop_assert!(fs == ss, "stats differ:\nfast: {fs:?}\nslow: {ss:?}");
        }
    }
}
