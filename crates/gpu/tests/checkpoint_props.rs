//! Property test: pausing a run at an arbitrary cycle and resuming from the
//! checkpoint is invisible — the resumed run's result is **bit-identical**
//! to the uninterrupted run's, including the executed/skipped cycle
//! accounting and the DRAM trace, with fast-forward on or off.
//!
//! The suite-level test (`tests/checkpoint_equivalence.rs` at the workspace
//! root) covers the 20 real applications; this one probes odd corners with
//! random synthetic kernels, random schemes, and random pause points —
//! including pauses inside fast-forwarded spans and serializing the
//! checkpoint through bytes.

use lazydram_common::{AmsMode, DmsMode, GpuConfig, SchedConfig};
use lazydram_gpu::{
    Checkpoint, Kernel, Loader, MemoryImage, OpBuf, RunOutcome, RunResult, Saver, SimLimits,
    Simulator, SnapResult, WarpProgram,
};
use proptest::prelude::*;

/// One warp of the synthetic kernel: `rounds` iterations of
/// compute → strided load → store, then retire.
struct SynthProgram {
    warp_id: u64,
    base: u64,
    words: u64,
    rounds: u32,
    round: u32,
    stride: u64,
    compute: u32,
    phase: u8,
    acc: f32,
}

impl SynthProgram {
    fn lane_addr(&self, lane: u64) -> u64 {
        let idx = (self.warp_id * 131 + u64::from(self.round) * self.stride + lane * 7) % self.words;
        self.base + idx * 4
    }
}

impl WarpProgram for SynthProgram {
    fn next(&mut self, loaded: &[f32], out: &mut OpBuf) {
        self.acc += loaded.iter().sum::<f32>();
        if self.round >= self.rounds {
            out.set_finished();
            return;
        }
        match self.phase {
            0 => {
                self.phase = 1;
                if self.compute == 0 {
                    self.next(&[], out);
                    return;
                }
                out.set_compute(self.compute);
            }
            1 => {
                self.phase = 2;
                out.begin_load()
                    .extend((0..8).map(|lane| self.lane_addr(lane)));
            }
            _ => {
                self.phase = 0;
                let round = u64::from(self.round);
                self.round += 1;
                let addr = self.base + ((self.warp_id * 17 + round) % self.words) * 4;
                out.begin_store().push((addr, self.acc + round as f32));
            }
        }
    }

    fn save_state(&self, s: &mut Saver) {
        s.u32("round", self.round);
        s.u8("phase", self.phase);
        s.f32("acc", self.acc);
    }

    fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.round = l.u32("round")?;
        self.phase = l.u8("phase")?;
        self.acc = l.f32("acc")?;
        Ok(())
    }
}

/// Random-but-deterministic kernel: parameters come from the proptest
/// strategy, data from a fixed ramp, so every instance sees identical work.
struct SynthKernel {
    warps: usize,
    rounds: u32,
    stride: u64,
    compute: u32,
    words: u64,
    approx: bool,
    base: u64,
}

impl Kernel for SynthKernel {
    fn name(&self) -> &str {
        "synthetic"
    }

    fn setup(&mut self, mem: &mut MemoryImage) {
        self.base = mem.alloc(self.words as usize);
        for i in 0..self.words {
            mem.write_f32(self.base + i * 4, (i % 97) as f32 * 0.5 - 3.0);
        }
    }

    fn total_warps(&self) -> usize {
        self.warps
    }

    fn program(&self, warp_id: usize) -> Box<dyn WarpProgram> {
        Box::new(SynthProgram {
            warp_id: warp_id as u64,
            base: self.base,
            words: self.words,
            rounds: self.rounds,
            round: 0,
            stride: self.stride,
            compute: self.compute,
            phase: 0,
            acc: 0.0,
        })
    }

    fn approximable(&self, _addr: u64) -> bool {
        self.approx
    }

    fn output(&self, mem: &MemoryImage) -> Vec<f32> {
        mem.read_slice(self.base, self.words.min(128) as usize)
    }
}

fn scheme(pick: u8, dms_delay: u32, ams_th: u32) -> SchedConfig {
    let mut s = SchedConfig::default();
    match pick % 6 {
        0 => {}
        1 => s.dms = DmsMode::Static(dms_delay),
        2 => s.dms = DmsMode::paper_dynamic(),
        3 => s.ams = AmsMode::Static(ams_th.max(1)),
        4 => s.ams = AmsMode::paper_dynamic(),
        _ => {
            s.dms = DmsMode::Static(dms_delay);
            s.ams = AmsMode::Static(ams_th.max(1));
        }
    }
    s
}

fn assert_identical(a: &RunResult, b: &RunResult) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.hit_cycle_limit, b.hit_cycle_limit);
    prop_assert_eq!(&a.output, &b.output);
    prop_assert!(a.trace == b.trace, "DRAM traces differ");
    prop_assert!(
        a.stats == b.stats,
        "stats differ:\nuninterrupted: {:?}\nresumed: {:?}",
        a.stats,
        b.stats
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn resume_is_bit_identical(
        warps in 1usize..25,
        rounds in 1u32..6,
        stride in 1u64..97,
        compute in 0u32..9,
        pick in 0u8..6,
        dms_delay in 1u32..2049,
        ams_th in 0u32..16,
        skip in proptest::arbitrary::any::<bool>(),
        compute_skip in proptest::arbitrary::any::<bool>(),
        pause_frac in 0u64..100,
        second_frac in 0u64..100,
    ) {
        let sched = scheme(pick, dms_delay, ams_th);
        let limits = SimLimits { max_core_cycles: 2_000_000 };
        let build = || SynthKernel {
            warps,
            rounds,
            stride,
            compute,
            words: 2048,
            approx: pick >= 3,
            base: 0,
        };
        let sim = || {
            Simulator::new(GpuConfig::default(), sched.clone())
                .with_limits(limits)
                .with_trace_capture(true)
                .with_cycle_skipping(skip)
                .with_compute_skipping(compute_skip)
        };

        // Reference: the uninterrupted run.
        let mut kernel = build();
        let reference = sim().run(&mut kernel);
        let total = reference.stats.core_cycles;

        // Pause somewhere inside the run (also probes 0 and the far end).
        let pause_at = total * pause_frac / 100;
        let mut kernel = build();
        let ck = match sim().run_until(&mut kernel, pause_at) {
            RunOutcome::Paused(ck) => ck,
            RunOutcome::Done(r) => {
                // Pausing at the total (frac rounding) may legitimately
                // complete; the result must still be the reference's.
                assert_identical(&reference, &r)?;
                return Ok(());
            }
        };
        prop_assert!(ck.cycle() >= pause_at);

        // Same pause point → same checkpoint bytes (state is a pure
        // function of the cycle, not of the pausing path).
        let mut kernel = build();
        if let RunOutcome::Paused(ck2) = sim().run_until(&mut kernel, pause_at) {
            prop_assert_eq!(ck.digest(), ck2.digest(), "checkpointing is not deterministic");
        }

        // Round-trip the checkpoint through bytes (the sweep-recovery
        // path: checkpoints are parked on disk between processes).
        let ck = Checkpoint::from_bytes(ck.as_bytes().to_vec())
            .expect("serialized checkpoint must reload");

        // Resume to completion on a freshly built kernel.
        let mut kernel = build();
        let resumed = sim().resume(&mut kernel, &ck).expect("resume failed");
        assert_identical(&reference, &resumed)?;

        // Pause a second time mid-resume, then finish: chained checkpoints
        // must also land on the identical result.
        let second_at = pause_at + (total.saturating_sub(pause_at)) * second_frac / 100;
        let mut kernel = build();
        let outcome = sim().resume_until(&mut kernel, &ck, second_at).expect("resume_until failed");
        let final_result = match outcome {
            RunOutcome::Paused(ck2) => {
                let mut kernel = build();
                sim().resume(&mut kernel, &ck2).expect("second resume failed")
            }
            RunOutcome::Done(r) => r,
        };
        assert_identical(&reference, &final_result)?;
    }

    #[test]
    fn resume_rejects_mismatched_config(
        warps in 1usize..8,
        pause_frac in 10u64..90,
    ) {
        let build = || SynthKernel {
            warps,
            rounds: 2,
            stride: 3,
            compute: 2,
            words: 512,
            approx: true,
            base: 0,
        };
        let base_sched = SchedConfig::default();
        let sim = Simulator::new(GpuConfig::default(), base_sched.clone());
        let mut kernel = build();
        let total = sim.run(&mut kernel).stats.core_cycles;
        let mut kernel = build();
        let ck = match sim.run_until(&mut kernel, total * pause_frac / 100) {
            RunOutcome::Paused(ck) => ck,
            RunOutcome::Done(_) => return Ok(()),
        };
        // A different scheduling policy must be rejected, not silently run.
        let mut other_sched = base_sched;
        other_sched.dms = DmsMode::Static(777);
        let other = Simulator::new(GpuConfig::default(), other_sched);
        let mut kernel = build();
        prop_assert!(other.resume(&mut kernel, &ck).is_err());
        // A different warp count must be rejected too.
        let mut small = SynthKernel { warps: warps + 1, ..build() };
        prop_assert!(sim.resume(&mut small, &ck).is_err());
    }
}
