//! Model-based property test: the tag-only cache must implement exact LRU.

use lazydram_gpu::{AccessResult, Cache};
use proptest::prelude::*;

/// Naive LRU reference.
struct ModelCache {
    sets: Vec<Vec<(u64, bool)>>, // most-recent at the back
    ways: usize,
}

impl ModelCache {
    fn new(sets: usize, ways: usize) -> Self {
        Self { sets: vec![Vec::new(); sets], ways }
    }
    fn set_of(&self, line: u64) -> usize {
        ((line / 128) % self.sets.len() as u64) as usize
    }
    fn access(&mut self, line: u64, write: bool) -> bool {
        let s = self.set_of(line);
        if let Some(pos) = self.sets[s].iter().position(|&(l, _)| l == line) {
            let (l, d) = self.sets[s].remove(pos);
            self.sets[s].push((l, d || write));
            true
        } else {
            false
        }
    }
    fn fill(&mut self, line: u64, dirty: bool) -> Option<(u64, bool)> {
        let s = self.set_of(line);
        if let Some(pos) = self.sets[s].iter().position(|&(l, _)| l == line) {
            let (l, d) = self.sets[s].remove(pos);
            self.sets[s].push((l, d || dirty));
            return None;
        }
        let evicted = if self.sets[s].len() >= self.ways {
            Some(self.sets[s].remove(0))
        } else {
            None
        };
        self.sets[s].push((line, dirty));
        evicted
    }
}

#[derive(Debug, Clone)]
enum Op {
    Access { line: u16, write: bool },
    Fill { line: u16, dirty: bool },
    Invalidate { line: u16 },
}

fn ops() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<bool>()).prop_map(|(line, write)| Op::Access { line, write }),
        (any::<u16>(), any::<bool>()).prop_map(|(line, dirty)| Op::Fill { line, dirty }),
        any::<u16>().prop_map(|line| Op::Invalidate { line }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn cache_is_exact_lru(ops in prop::collection::vec(ops(), 1..400)) {
        // 8 sets × 4 ways.
        let mut c = Cache::new(8 * 4 * 128, 4, 128);
        let mut m = ModelCache::new(8, 4);
        for op in ops {
            match op {
                Op::Access { line, write } => {
                    let line = u64::from(line) * 128;
                    let hit = m.access(line, write);
                    let got = c.access(line, write) == AccessResult::Hit;
                    prop_assert_eq!(got, hit, "access mismatch at {}", line);
                }
                Op::Fill { line, dirty } => {
                    let line = u64::from(line) * 128;
                    let expect = m.fill(line, dirty);
                    let got = c.fill(line, dirty);
                    prop_assert_eq!(got, expect, "fill/eviction mismatch at {}", line);
                }
                Op::Invalidate { line } => {
                    let line = u64::from(line) * 128;
                    let s = m.set_of(line);
                    let expect = m.sets[s]
                        .iter()
                        .position(|&(l, _)| l == line)
                        .map(|pos| m.sets[s].remove(pos).1);
                    let got = c.invalidate(line);
                    prop_assert_eq!(got, expect, "invalidate mismatch at {}", line);
                }
            }
        }
    }
}
