//! Property tests for the interconnect building block.

use lazydram_gpu::DelayQueue;
use proptest::prelude::*;

proptest! {
    #[test]
    fn delivery_preserves_order_and_latency(
        latency in 0u64..20,
        pushes in prop::collection::vec(0u64..50, 1..100),
    ) {
        let mut q: DelayQueue<usize> = DelayQueue::new(latency, 4096, 4096);
        // Push at non-decreasing times.
        let mut times: Vec<u64> = pushes.clone();
        times.sort_unstable();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i).unwrap();
        }
        // Drain far in the future: everything must come out FIFO.
        let mut out = Vec::new();
        while let Some(v) = q.pop_ready(1_000) {
            out.push(v);
        }
        prop_assert_eq!(out.len(), times.len());
        prop_assert!(out.windows(2).all(|w| w[0] < w[1]), "FIFO order violated");
    }

    #[test]
    fn nothing_pops_before_latency(latency in 1u64..50, t0 in 0u64..100) {
        let mut q: DelayQueue<u8> = DelayQueue::new(latency, 16, 16);
        q.push(t0, 7).unwrap();
        for t in t0..t0 + latency {
            prop_assert!(q.pop_ready(t).is_none(), "item visible too early at {t}");
        }
        prop_assert_eq!(q.pop_ready(t0 + latency), Some(7));
    }

    #[test]
    fn width_limits_throughput(width in 1usize..8, n in 1usize..64) {
        let mut q: DelayQueue<usize> = DelayQueue::new(0, 4096, width);
        for i in 0..n {
            q.push(0, i).unwrap();
        }
        let mut cycle = 1u64;
        let mut drained = 0;
        while drained < n {
            let mut this_cycle = 0;
            while q.pop_ready(cycle).is_some() {
                this_cycle += 1;
                drained += 1;
            }
            prop_assert!(this_cycle <= width, "popped {this_cycle} > width {width}");
            cycle += 1;
        }
        // Takes exactly ceil(n/width) cycles.
        prop_assert_eq!(cycle - 1, n.div_ceil(width) as u64);
    }
}
