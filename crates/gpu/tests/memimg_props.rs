//! Property test: the paged-arena memory image is observationally identical
//! to a plain sparse per-line map.
//!
//! The arena is a pure performance structure — every read and write must
//! behave exactly as if each touched line lived behind its own map entry
//! (the pre-rework representation). This test drives a [`MemoryImage`] and a
//! reference model through the same random operation sequence — allocations,
//! scalar and batch reads/writes, line and slice reads, including
//! out-of-arena stray addresses and allocations that grow the arena over
//! previously spilled lines — and demands identical observations throughout,
//! plus identical "lines ever written" accounting (`resident_lines`).

use lazydram_common::{FastMap, SplitMix64};
use lazydram_gpu::{MemoryImage, LINE_BYTES, WORDS_PER_LINE};
use proptest::prelude::*;

/// The reference: one map entry per line ever written, zeros elsewhere.
/// Exactly the pre-rework `MemoryImage` representation, minus the allocator
/// (which only hands out addresses and never affects stored values).
#[derive(Default)]
struct ModelImage {
    lines: FastMap<u64, [f32; WORDS_PER_LINE]>,
}

impl ModelImage {
    fn read(&self, addr: u64) -> f32 {
        let line = addr & !(LINE_BYTES - 1);
        let word = ((addr % LINE_BYTES) / 4) as usize;
        self.lines.get(&line).map_or(0.0, |w| w[word])
    }

    fn write(&mut self, addr: u64, value: f32) {
        let line = addr & !(LINE_BYTES - 1);
        let word = ((addr % LINE_BYTES) / 4) as usize;
        self.lines.entry(line).or_insert([0.0; WORDS_PER_LINE])[word] = value;
    }

    fn read_line(&self, addr: u64) -> [f32; WORDS_PER_LINE] {
        let line = addr & !(LINE_BYTES - 1);
        self.lines.get(&line).copied().unwrap_or([0.0; WORDS_PER_LINE])
    }
}

/// Draws a 4-aligned address: usually inside an allocated region, sometimes
/// a stray — below the arena base, far above anything allocated, or just
/// past the bump cursor (spills that a later `alloc` may grow over).
fn draw_addr(rng: &mut SplitMix64, regions: &[(u64, u64)]) -> u64 {
    let kind = rng.next_u64() % 10;
    let addr = if kind < 7 && !regions.is_empty() {
        let (base, words) = regions[(rng.next_u64() % regions.len() as u64) as usize];
        // Mostly in range, occasionally a little past the end of the region.
        base + (rng.next_u64() % (words + 64)) * 4
    } else if kind == 7 {
        // Below the arena base (the fixed 0x10_0000 alloc start).
        rng.next_u64() % 0x10_0000
    } else if kind == 8 {
        // Far beyond anything alloc will ever cover in this test.
        (1 << 40) + rng.next_u64() % (1 << 20)
    } else {
        // Just above the arena start: spills early, may be grown over later.
        0x10_0000 + rng.next_u64() % (1 << 22)
    };
    addr & !3
}

fn check_equivalence(seed: u64, ops: usize) {
    let mut rng = SplitMix64::new(seed);
    let mut img = MemoryImage::new();
    let mut model = ModelImage::default();
    let mut regions: Vec<(u64, u64)> = Vec::new();
    let mut scratch = Vec::new();

    for step in 0..ops {
        match rng.next_u64() % 16 {
            // Grow the arena. Values must be unaffected even when the new
            // range swallows previously spilled lines (migration).
            0 | 1 => {
                let words = 1 + (rng.next_u64() % 20_000) as usize;
                let base = img.alloc(words);
                regions.push((base, words as u64));
            }
            2..=4 => {
                let addr = draw_addr(&mut rng, &regions);
                let val = (rng.next_u64() % 1000) as f32 - 500.0;
                img.write_f32(addr, val);
                model.write(addr, val);
            }
            5..=7 => {
                let addr = draw_addr(&mut rng, &regions);
                assert_eq!(img.read_f32(addr), model.read(addr), "read_f32 at {addr:#x}");
            }
            8 => {
                let addr = draw_addr(&mut rng, &regions);
                assert_eq!(img.read_line(addr), model.read_line(addr), "read_line at {addr:#x}");
            }
            9 | 10 => {
                // Batch lane read, with the warp-typical same-line runs.
                let n = 1 + (rng.next_u64() % 32) as usize;
                let mut addrs = Vec::with_capacity(n);
                let mut a = draw_addr(&mut rng, &regions);
                for _ in 0..n {
                    if rng.next_u64().is_multiple_of(4) {
                        a = draw_addr(&mut rng, &regions);
                    } else {
                        a = (a + 4) & !3;
                    }
                    addrs.push(a);
                }
                img.read_lanes_into(&addrs, &mut scratch);
                let expect: Vec<f32> = addrs.iter().map(|&a| model.read(a)).collect();
                assert_eq!(scratch, expect, "read_lanes_into {addrs:?}");
            }
            11 | 12 => {
                let n = 1 + (rng.next_u64() % 32) as usize;
                let mut writes = Vec::with_capacity(n);
                let mut a = draw_addr(&mut rng, &regions);
                for _ in 0..n {
                    if rng.next_u64().is_multiple_of(4) {
                        a = draw_addr(&mut rng, &regions);
                    } else {
                        a += 4;
                    }
                    writes.push((a, step as f32 + (rng.next_u64() % 100) as f32));
                }
                img.write_lanes(&writes);
                for &(a, v) in &writes {
                    model.write(a, v);
                }
            }
            13 => {
                let base = draw_addr(&mut rng, &regions);
                let n = (rng.next_u64() % 200) as usize;
                img.read_slice_into(base, n, &mut scratch);
                let expect: Vec<f32> =
                    (0..n as u64).map(|i| model.read(base + i * 4)).collect();
                assert_eq!(scratch, expect, "read_slice_into at {base:#x} x{n}");
            }
            14 => {
                let base = draw_addr(&mut rng, &regions);
                let n = (rng.next_u64() % 100) as usize;
                let data: Vec<f32> = (0..n).map(|i| (i as f32) * 0.25 - 7.0).collect();
                img.write_slice(base, &data);
                for (i, &v) in data.iter().enumerate() {
                    model.write(base + i as u64 * 4, v);
                }
            }
            _ => {
                // The arena must keep the sparse map's accounting: a line is
                // resident iff it was ever written (reads never materialize).
                assert_eq!(
                    img.resident_lines(),
                    model.lines.len(),
                    "resident_lines diverged at step {step}"
                );
            }
        }
    }
    assert_eq!(img.resident_lines(), model.lines.len(), "final resident_lines");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn paged_arena_matches_sparse_map(seed in 0u64..u64::MAX, ops in 50usize..400) {
        check_equivalence(seed, ops);
    }
}

/// One long deterministic run so the migration path (spill → alloc growth)
/// is exercised even if the random cases draw unlucky.
#[test]
fn long_run_with_forced_migration() {
    let mut img = MemoryImage::new();
    let mut model = ModelImage::default();
    // Write strays just above the arena start before any allocation...
    for i in 0..200u64 {
        let addr = 0x10_0000 + i * 260; // straddles many distinct lines
        img.write_f32(addr & !3, i as f32);
        model.write(addr & !3, i as f32);
    }
    assert_eq!(img.resident_lines(), model.lines.len());
    // ...then allocate over them, forcing spill → arena migration.
    let base = img.alloc(64 * 1024);
    assert_eq!(base, 0x10_0000);
    assert_eq!(img.resident_lines(), model.lines.len(), "migration must not change accounting");
    for i in 0..200u64 {
        let addr = (0x10_0000 + i * 260) & !3;
        assert_eq!(img.read_f32(addr), model.read(addr), "post-migration value at {addr:#x}");
    }
    check_equivalence(0xD5_2019, 600);
}
