//! Property tests for the open-loop trace replayer: for randomly generated
//! (but time-ordered) request streams under assorted scheduling policies,
//! every recorded request is accounted for, replay is deterministic, and a
//! file round-trip is result-invisible — even when the recorded `arrival`
//! stamps are garbage (replay restamps on its own clock).

use lazydram_common::{
    AccessKind, AddressMap, AmsMode, DmsMode, GpuConfig, MemSpace, Request, RequestId, SchedConfig,
};
use lazydram_gpu::{Trace, TraceEntry, TraceSim};
use proptest::prelude::*;

/// Deterministically generates `n` time-ordered entries from `seed`; the
/// `arrival` stamps are deliberately filled with junk.
fn build_trace(cfg: &GpuConfig, n: usize, seed: u64, gap: u64) -> Trace {
    let map = AddressMap::new(cfg);
    let mut cycle = 0u64;
    let mut state = seed | 1;
    let mut t = Trace::new();
    for i in 0..n {
        state = state
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5_4A32_D192_ED03);
        let addr = map.line_of(state % (1 << 22));
        cycle += state % (gap + 1);
        t.push(TraceEntry {
            cycle,
            channel: map.channel_of(addr) as u16,
            request: Request {
                id: RequestId(i as u64),
                addr,
                loc: map.decompose(addr),
                kind: if state & 0x1_0000 == 0 { AccessKind::Read } else { AccessKind::Write },
                space: MemSpace::Global,
                approximable: state & 0x2_0000 != 0,
                arrival: state, // junk on purpose: replay must restamp
            },
        });
    }
    t
}

fn scheme(pick: u8) -> SchedConfig {
    match pick % 4 {
        0 => SchedConfig::baseline(),
        1 => SchedConfig { dms: DmsMode::Static(512), ..SchedConfig::baseline() },
        2 => SchedConfig {
            ams: AmsMode::Static(4),
            ams_warmup_requests: 0,
            ..SchedConfig::baseline()
        },
        _ => SchedConfig {
            dms: DmsMode::Static(128),
            ams: AmsMode::Static(2),
            ams_warmup_requests: 0,
            ..SchedConfig::baseline()
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn replay_accounts_for_every_request_and_round_trips(
        n in 1usize..250,
        seed in proptest::arbitrary::any::<u64>(),
        gap in 0u64..40,
        pick in 0u8..4,
    ) {
        let cfg = GpuConfig::default();
        let sched = scheme(pick);
        let trace = build_trace(&cfg, n, seed, gap);
        let a = TraceSim::new(&cfg, &sched).replay(&trace).expect("valid trace");
        // Full accounting, and the generous default drain budget never
        // strands a realistic stream.
        prop_assert_eq!(a.served + a.unserved, n as u64);
        prop_assert_eq!(a.unserved, 0);
        prop_assert_eq!(
            a.served,
            a.stats.dram.reads + a.stats.dram.writes + a.stats.dram.dropped
        );
        // A file round-trip is result-invisible.
        let bytes = trace.to_bytes(&cfg);
        let loaded = Trace::from_bytes(&bytes, &cfg).expect("round trip");
        prop_assert_eq!(&loaded, &trace);
        let b = TraceSim::new(&cfg, &sched).replay(&loaded).expect("valid trace");
        prop_assert_eq!(a.stats.dram, b.stats.dram);
        prop_assert_eq!(a.replay_cycles, b.replay_cycles);
    }
}
