//! Allocation gate: the steady-state `next` + issue cycle must not touch
//! the heap.
//!
//! PR 4's tentpole claim is that warp-op emission is allocation-free once
//! warm: programs fill a caller-owned [`OpBuf`] whose lane vectors retain
//! capacity, and per-program helper state (`active` triples, `strips`,
//! pair indices) is computed once at construction or reused across calls.
//! This test turns that claim into a regression gate with a counting
//! `#[global_allocator]`: after a warm-up run, a representative map,
//! stencil, and matvec program each execute their measured ops — `next`
//! into a reused buffer, then the functional issue (lane reads/writes
//! against a page-warm memory image) — under the assertion that the
//! allocation counter does not move.
//!
//! The gate lives in its own integration-test binary with a **single**
//! `#[test]` so no concurrent test thread can bleed allocations into the
//! measured window.

use lazydram_gpu::{MemoryImage, OpBuf, OpKind, WarpProgram};
use lazydram_workloads::programs::{
    MapConfig, MapProgram, MatVecConfig, MatVecOrientation, MatVecProgram, Stencil2DConfig,
    Stencil2DProgram,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation-side call (`alloc`, `alloc_zeroed`, `realloc`);
/// frees are not interesting to the gate.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Drives `p` to completion through the functional next+issue cycle.
/// Returns `(total_ops, allocs_in_measured_window)` where the measured
/// window is every op from index `snapshot_at` on (pass `usize::MAX` for a
/// purely warm-up run).
fn drive(
    p: &mut dyn WarpProgram,
    image: &mut MemoryImage,
    buf: &mut OpBuf,
    loaded: &mut Vec<f32>,
    snapshot_at: usize,
) -> (usize, u64) {
    loaded.clear();
    let mut ops = 0usize;
    let mut base = 0u64;
    loop {
        if ops == snapshot_at {
            base = alloc_calls();
        }
        p.next(loaded, buf);
        ops += 1;
        match buf.kind() {
            OpKind::Compute(_) => loaded.clear(),
            OpKind::Load => image.read_lanes_into(buf.addrs(), loaded),
            OpKind::Store => {
                image.write_lanes(buf.writes());
                loaded.clear();
            }
            OpKind::Finished => break,
        }
        assert!(ops < 10_000_000, "program did not finish");
    }
    let measured = if ops > snapshot_at {
        alloc_calls() - base
    } else {
        0
    };
    (ops, measured)
}

/// Warm-up pass, op count, then the measured pass of a fresh instance.
///
/// `make` builds a fresh program for the same warp over the same image each
/// time, so the warm-up materializes every memory page and grows the shared
/// buffers to their high-water capacity; only the fresh instance's own
/// early-op scratch growth remains, excluded by measuring from `warm_frac`
/// of the op stream onward (0.0 = the whole run must be alloc-free).
fn gate(
    label: &str,
    image: &mut MemoryImage,
    make: &mut dyn FnMut() -> Box<dyn WarpProgram>,
    warm_frac: f64,
) {
    let mut buf = OpBuf::new();
    let mut loaded: Vec<f32> = Vec::new();
    let mut p = make();
    let (total, _) = drive(p.as_mut(), image, &mut buf, &mut loaded, usize::MAX);
    assert!(
        warm_frac == 0.0 || total >= 8,
        "{label}: too few ops ({total}) to have a steady state"
    );
    let warm = (total as f64 * warm_frac) as usize;
    let mut p = make();
    let (_, delta) = drive(p.as_mut(), image, &mut buf, &mut loaded, warm);
    assert_eq!(
        delta, 0,
        "{label}: {delta} heap allocations during steady-state ops {warm}..{total}"
    );
}

/// One test, three program families. Configs are sized so a single warp has
/// a genuine steady state (several load batches / strips / inner-product
/// batches), unlike some app-level configs whose warps finish in one batch.
#[test]
fn steady_state_emission_is_allocation_free() {
    // Map: 16 iterations in batches of 2 → 8 load/compute/store cycles.
    {
        let mut image = MemoryImage::new();
        let items = 32 * 16;
        let input = image.alloc(items);
        let output = image.alloc(items);
        let mut make = || -> Box<dyn WarpProgram> {
            Box::new(MapProgram::new(
                0,
                MapConfig {
                    inputs: vec![(input, 1)],
                    outputs: vec![(output, 1)],
                    items,
                    iters_per_warp: 16,
                    compute: 4,
                    load_batch: 2,
                    index: |item, _| item,
                    func: |inp, out| out.push(inp[0] * 2.0 + 1.0),
                },
            ))
        };
        gate("map", &mut image, &mut make, 0.5);
    }

    // Stencil: per-warp scratch (`sums`, `centers`, `strips`) is fully
    // sized at construction, so the *entire* run must be alloc-free.
    {
        let mut image = MemoryImage::new();
        let (w, h) = (64, 16);
        let input = image.alloc(w * h);
        let output = image.alloc(w * h);
        let mut make = || -> Box<dyn WarpProgram> {
            Box::new(Stencil2DProgram::new(
                0,
                Stencil2DConfig {
                    input,
                    output,
                    w,
                    h,
                    taps: vec![(0, 0, 0.5), (0, 1, 0.25), (1, 0, 0.25)],
                    compute: 4,
                    strips_per_warp: 8,
                    post: None,
                },
            ))
        };
        gate("stencil", &mut image, &mut make, 0.0);
    }

    // MatVec: n = 256 → 8 inner-product batches of 32 `j`s per lane-row.
    {
        let mut image = MemoryImage::new();
        let n = 256;
        let a = image.alloc(n * n);
        let x = image.alloc(n);
        let y = image.alloc(n);
        let mut make = || -> Box<dyn WarpProgram> {
            Box::new(MatVecProgram::new(
                0,
                MatVecConfig {
                    a,
                    x,
                    y,
                    n,
                    orientation: MatVecOrientation::RowPerLane,
                    accumulate: false,
                },
            ))
        };
        gate("matvec", &mut image, &mut make, 0.5);
    }
}
