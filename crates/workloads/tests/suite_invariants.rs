//! Per-application invariants over the whole 20-app suite.

use lazydram_gpu::{run_functional, OpBuf, OpKind};
use lazydram_workloads::{all_apps, util::run_sequence_functional};

const SCALE: f64 = 0.02;

#[test]
fn every_app_has_positive_warp_counts() {
    for app in all_apps() {
        for (i, k) in app.launches(SCALE).iter().enumerate() {
            assert!(k.total_warps() > 0, "{} launch {i} has zero warps", app.name);
        }
    }
}

#[test]
fn annotations_never_cover_outputs() {
    // The `pragma pred_var` regions must not include data the kernel writes:
    // outputs are read back for the error metric and must be exact memory.
    for app in all_apps() {
        // FWT is explicitly in-place (reads == writes); the AMS write-safety
        // check protects it at run time, so it is exempt here.
        if app.name == "FWT" {
            continue;
        }
        let mut launches = app.launches(SCALE);
        let mut image = lazydram_gpu::MemoryImage::new();
        for (li, k) in launches.iter_mut().enumerate() {
            k.setup(&mut image);
            // The annotation must hold *while this launch runs*: later
            // launches may legitimately re-annotate a previous launch's
            // output as their own (read-only) input.
            let mut stores: Vec<u64> = Vec::new();
            for w in 0..k.total_warps() {
                let mut p = k.program(w);
                let mut buf = OpBuf::new();
                let mut loaded: Vec<f32> = Vec::new();
                loop {
                    p.next(&loaded, &mut buf);
                    match buf.kind() {
                        OpKind::Compute(_) => loaded.clear(),
                        OpKind::Load => {
                            loaded.clear();
                            loaded.extend(buf.addrs().iter().map(|&x| image.read_f32(x)));
                        }
                        OpKind::Store => {
                            for &(a, v) in buf.writes() {
                                stores.push(a);
                                image.write_f32(a, v);
                            }
                            loaded.clear();
                        }
                        OpKind::Finished => break,
                    }
                }
            }
            for addr in stores {
                assert!(
                    !k.approximable(addr),
                    "{} launch {li}: store target {addr:#x} is annotated approximable",
                    app.name
                );
            }
        }
    }
}

#[test]
fn programs_issue_nonempty_operations() {
    for app in all_apps() {
        let mut launches = app.launches(SCALE);
        let k = &mut launches[0];
        let mut image = lazydram_gpu::MemoryImage::new();
        k.setup(&mut image);
        let mut p = k.program(0);
        let mut buf = OpBuf::new();
        let mut loaded: Vec<f32> = Vec::new();
        let mut finished = false;
        for _ in 0..10_000 {
            p.next(&loaded, &mut buf);
            match buf.kind() {
                OpKind::Compute(c) => {
                    assert!(c > 0, "{}: zero-cycle compute", app.name);
                    loaded.clear();
                }
                OpKind::Load => {
                    let a = buf.addrs();
                    assert!(!a.is_empty(), "{}: empty load", app.name);
                    assert!(a.iter().all(|&x| x % 4 == 0), "{}: unaligned load", app.name);
                    loaded.clear();
                    loaded.extend(buf.addrs().iter().map(|&x| image.read_f32(x)));
                }
                OpKind::Store => {
                    let w = buf.writes();
                    assert!(!w.is_empty(), "{}: empty store", app.name);
                    for &(a, v) in buf.writes() {
                        image.write_f32(a, v);
                    }
                    loaded.clear();
                }
                OpKind::Finished => {
                    finished = true;
                    break;
                }
            }
        }
        assert!(finished, "{}: warp 0 did not finish in 10k ops", app.name);
    }
}

#[test]
fn outputs_have_stable_lengths_across_runs() {
    for app in all_apps().into_iter().take(6) {
        let a = run_sequence_functional(&mut app.launches(SCALE));
        let b = run_sequence_functional(&mut app.launches(SCALE));
        assert_eq!(a.len(), b.len(), "{}", app.name);
        assert_eq!(a, b, "{} output not deterministic", app.name);
    }
}

#[test]
fn single_launch_apps_work_with_run_functional() {
    for name in ["GEMM", "CONS", "RAY", "SLA"] {
        let app = lazydram_workloads::by_name(name).unwrap();
        let mut launches = app.launches(SCALE);
        assert_eq!(launches.len(), 1, "{name} is single-launch");
        let (out, _) = run_functional(launches[0].as_mut());
        assert!(!out.is_empty());
    }
}
