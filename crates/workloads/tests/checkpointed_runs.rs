//! Crash-recovery contract of the checkpointed run path: a run that parks
//! and resumes checkpoints on disk must be bit-identical to a plain run, a
//! re-run over the kept final checkpoint must replay only the tail and
//! still match, and stale checkpoints from a different configuration must
//! be rejected (warn + fresh restart), never silently resumed.

use lazydram_common::Scheme;
use lazydram_workloads::{by_name, CheckpointPolicy, SimBuilder};
use std::path::PathBuf;

const SCALE: f64 = 0.02;

/// Fresh per-test scratch dir under the system temp dir (the test harness
/// runs tests in one process, so the test name disambiguates).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("lazydram_ckpt_test_{}_{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn checkpointed_run_matches_plain_run_and_resumes_from_kept_file() {
    let app = by_name("SCP").expect("app");
    let dir = scratch("roundtrip");

    let plain = SimBuilder::new(&app).scheme(Scheme::StaticDms).scale(SCALE).build().run();
    // A small interval forces several park/resume hops within the run.
    let every = (plain.stats.core_cycles / 7).max(1);
    let ckpt = SimBuilder::new(&app)
        .scheme(Scheme::StaticDms)
        .scale(SCALE)
        .checkpoints(Some(CheckpointPolicy::new(&dir, every)))
        .build();

    let first = ckpt.run();
    assert_eq!(plain.output, first.output, "checkpointed output differs");
    assert_eq!(plain.stats, first.stats, "checkpointed stats differ");

    // The final checkpoint is deliberately kept: a re-run resumes from it,
    // replays only the tail, and must land on the same result again.
    let path = ckpt.checkpoint_path().expect("policy set");
    assert!(path.exists(), "final checkpoint must be kept after completion");
    let second = ckpt.run();
    assert_eq!(plain.output, second.output, "resumed re-run output differs");
    assert_eq!(plain.stats, second.stats, "resumed re-run stats differ");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_checkpoint_from_other_config_restarts_fresh() {
    let app = by_name("CONS").expect("app");
    let dir = scratch("stale");
    // Interval small enough that both runs park at least one checkpoint.
    let probe = SimBuilder::new(&app).scheme(Scheme::DynDms).scale(SCALE).build().run();
    let every = (probe.stats.core_cycles / 5).max(1);

    let a = SimBuilder::new(&app)
        .scheme(Scheme::DynDms)
        .scale(SCALE)
        .checkpoints(Some(CheckpointPolicy::new(&dir, every)))
        .build();
    let b = SimBuilder::new(&app)
        .scheme(Scheme::StaticDms)
        .scale(SCALE)
        .checkpoints(Some(CheckpointPolicy::new(&dir, every)))
        .build();
    // Different schemes get different checkpoint files — a sweep sharing one
    // directory can never cross-resume.
    let (pa, pb) = (a.checkpoint_path().unwrap(), b.checkpoint_path().unwrap());
    assert_ne!(pa, pb, "distinct configs must use distinct checkpoint files");

    let ra = a.run();
    // Corrupt b's slot with a's checkpoint: the config-digest check must
    // reject it and restart fresh rather than resume a foreign trajectory.
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::copy(&pa, &pb).unwrap();
    let rb = b.run_recoverable().expect("stale checkpoint must not be fatal");
    let plain_b = SimBuilder::new(&app).scheme(Scheme::StaticDms).scale(SCALE).build().run();
    assert_eq!(plain_b.output, rb.output, "fresh restart output differs");
    assert_eq!(plain_b.stats, rb.stats, "fresh restart stats differ");
    assert_eq!(ra.stats.core_cycles, a.run().stats.core_cycles);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_env_parsing_is_strict() {
    // Temp-env tests must not run concurrently with each other; Rust runs
    // tests in threads within one process, so serialize on a lock.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = ENV_LOCK.lock().unwrap();

    std::env::remove_var("LAZYDRAM_CHECKPOINT_DIR");
    std::env::remove_var("LAZYDRAM_CHECKPOINT_EVERY");
    assert!(
        CheckpointPolicy::from_env().expect("unset env is valid").is_none(),
        "unset env means no checkpointing"
    );

    std::env::set_var("LAZYDRAM_CHECKPOINT_EVERY", "1000");
    assert!(
        CheckpointPolicy::from_env().is_err(),
        "EVERY without DIR is dead config and must be loud"
    );

    std::env::set_var("LAZYDRAM_CHECKPOINT_DIR", "/tmp/lazydram_env_test");
    std::env::set_var("LAZYDRAM_CHECKPOINT_EVERY", "nonsense");
    assert!(CheckpointPolicy::from_env().is_err(), "malformed EVERY must be loud");

    std::env::remove_var("LAZYDRAM_CHECKPOINT_EVERY");
    let p = CheckpointPolicy::from_env().expect("DIR alone is valid").expect("policy");
    assert_eq!(p.every, lazydram_workloads::DEFAULT_CHECKPOINT_EVERY);
    std::env::remove_var("LAZYDRAM_CHECKPOINT_DIR");
}
