//! Property test: sink-based emission into a dirty, reused [`OpBuf`] is
//! observationally identical to the old per-call `WarpOp` contract.
//!
//! The `OpBuf` contract says a program must overwrite the buffer exactly
//! once per `next` call and may treat its previous contents as garbage.
//! This test pins that down: two instances of the same randomly configured
//! program run in lockstep over one memory image — the *reference* emits
//! into a freshly constructed buffer every call (reconstructing the old
//! allocate-per-op `WarpOp` values via [`OpBuf::to_warp_op`]), while the
//! device-under-test reuses a single buffer that is deliberately left dirty
//! (and occasionally pre-poisoned with junk) between calls. Every emitted
//! op must reconstruct to the same `WarpOp`, over random program families
//! and shapes (map, matvec, stencil, FWT).

use lazydram_gpu::{MemoryImage, OpBuf, OpKind, WarpOp, WarpProgram};
use lazydram_workloads::programs::{
    FwtConfig, FwtProgram, MapConfig, MapProgram, MatVecConfig, MatVecOrientation, MatVecProgram,
    Stencil2DConfig, Stencil2DProgram,
};
use proptest::prelude::*;

/// Builds two independent instances of the same program + the image it runs
/// over, from the drawn family and shape parameters.
#[allow(clippy::type_complexity)]
fn build(
    family: u8,
    dim: usize,
    batch: usize,
    warp: usize,
) -> (MemoryImage, Box<dyn WarpProgram>, Box<dyn WarpProgram>) {
    let mut image = MemoryImage::new();
    match family % 4 {
        0 => {
            // Map: `dim` scales iterations, `batch` the load batching.
            let iters = 2 + dim % 14;
            let items = 32 * iters * (warp + 1);
            let input = image.alloc(items);
            let output = image.alloc(items);
            let make = move || -> Box<dyn WarpProgram> {
                Box::new(MapProgram::new(
                    warp,
                    MapConfig {
                        inputs: vec![(input, 1), (input, 1)],
                        outputs: vec![(output, 1)],
                        items,
                        iters_per_warp: iters,
                        compute: 4,
                        load_batch: 1 + batch % 8,
                        index: |item, _| item,
                        func: |inp, out| out.push(inp[0] * 0.5 + inp[1]),
                    },
                ))
            };
            (image, make(), make())
        }
        1 => {
            let n = 32 * (1 + dim % 8);
            let a = image.alloc(n * n);
            let x = image.alloc(n);
            let y = image.alloc(n);
            let orientation = if batch.is_multiple_of(2) {
                MatVecOrientation::RowPerLane
            } else {
                MatVecOrientation::ColPerLane
            };
            let make = move || -> Box<dyn WarpProgram> {
                Box::new(MatVecProgram::new(
                    warp % (n / 32),
                    MatVecConfig {
                        a,
                        x,
                        y,
                        n,
                        orientation,
                        accumulate: dim.is_multiple_of(2),
                    },
                ))
            };
            (image, make(), make())
        }
        2 => {
            let w = 32 * (1 + dim % 4);
            let h = 4 + batch % 12;
            let input = image.alloc(w * h);
            let output = image.alloc(w * h);
            let strips_per_warp = 1 + batch % 6;
            let make = move || -> Box<dyn WarpProgram> {
                Box::new(Stencil2DProgram::new(
                    warp,
                    Stencil2DConfig {
                        input,
                        output,
                        w,
                        h,
                        taps: vec![(0, 0, 0.6), (-1, 0, 0.1), (1, 0, 0.1), (0, -1, 0.1), (0, 1, 0.1)],
                        compute: 2,
                        strips_per_warp,
                        post: None,
                    },
                ))
            };
            (image, make(), make())
        }
        _ => {
            let segment = 64 << (dim % 4);
            let data = image.alloc(segment * (warp + 1));
            let make = move || -> Box<dyn WarpProgram> {
                Box::new(FwtProgram::new(warp, FwtConfig { data, segment }))
            };
            (image, make(), make())
        }
    }
}

fn check(family: u8, dim: usize, batch: usize, warp: usize, seed: u64) {
    let (mut image, mut reference, mut dut) = build(family, dim, batch, warp);
    // Seed the image with a deterministic non-trivial pattern so loads carry
    // values the programs actually fold into later ops.
    for i in 0..256u64 {
        image.write_f32(0x10_0000 + i * 4, ((seed ^ i) % 97) as f32 * 0.25 - 3.0);
    }

    let mut dirty = OpBuf::new();
    let mut loaded: Vec<f32> = Vec::new();
    for step in 0..200_000 {
        // The contract says previous contents are unspecified garbage —
        // occasionally make that garbage as misleading as possible.
        if step % 7 == 3 {
            let junk = dirty.begin_load();
            junk.extend([0xDEAD_BEEFu64 * 4, 4, 8]);
        } else if step % 7 == 5 {
            dirty.begin_store().push((12, -1.0e9));
        }

        let mut fresh = OpBuf::new();
        reference.next(&loaded, &mut fresh);
        let expect = fresh.to_warp_op();
        dut.next(&loaded, &mut dirty);
        let got = dirty.to_warp_op();
        assert_eq!(got, expect, "step {step}: dirty-buffer emission diverged");

        // Apply the op once so both programs see identical loaded values.
        match dirty.kind() {
            OpKind::Compute(_) => loaded.clear(),
            OpKind::Load => image.read_lanes_into(dirty.addrs(), &mut loaded),
            OpKind::Store => {
                image.write_lanes(dirty.writes());
                loaded.clear();
            }
            OpKind::Finished => return,
        }
    }
    panic!("program did not finish");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn dirty_buffer_reuse_matches_fresh_per_call(
        family in 0u8..4,
        dim in 0usize..64,
        batch in 0usize..64,
        warp in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        check(family, dim, batch, warp, seed);
    }
}

/// The reconstruction helper itself must round-trip every variant — the
/// reference side of the property is only as good as `to_warp_op`.
#[test]
fn to_warp_op_covers_every_variant() {
    let mut b = OpBuf::new();
    b.set_compute(7);
    assert_eq!(b.to_warp_op(), WarpOp::Compute(7));
    b.begin_load().extend([4u64, 8, 12]);
    assert_eq!(b.to_warp_op(), WarpOp::Load(vec![4, 8, 12]));
    b.begin_store().extend([(16u64, 1.5f32), (20, -2.0)]);
    assert_eq!(b.to_warp_op(), WarpOp::Store(vec![(16, 1.5), (20, -2.0)]));
    b.set_finished();
    assert_eq!(b.to_warp_op(), WarpOp::Finished);
}
