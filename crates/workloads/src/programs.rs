//! Reusable warp-program state machines.
//!
//! Each GPGPU application in this crate is assembled from one (or a few) of
//! these program shapes, configured with its own sizes, data placement and
//! arithmetic. The shapes mirror how the original CUDA kernels touch memory:
//!
//! * [`MapProgram`] — per-item element-wise kernels (blackscholes,
//!   inversek2j, newtonraph, jmeint via index permutation),
//! * [`MatVecProgram`] — matrix-vector products in row-per-thread (strided,
//!   row-thrashing) or column-per-thread (coalesced) orientation (MVT, ATAX,
//!   BICG),
//! * [`MatmulProgram`] — tiled dense matrix multiply (GEMM, 2MM, 3MM),
//! * [`Stencil2DProgram`] — 2-D stencils over images (CONS as a 1-row
//!   special case, srad, meanfilter, laplacian),
//! * [`Stencil3DProgram`] — 3-D stencils over volumes (3DCONV, LPS),
//! * [`FwtProgram`] — in-place butterfly stages (FWT),
//! * [`ScanProgram`] — sequential block scan (SLA),
//! * [`ScpProgram`] — per-thread dot products over long vectors (SCP).

use lazydram_gpu::{Loader, OpBuf, Saver, SnapError, SnapResult, WarpProgram};

/// Threads per warp; fixed across the suite.
pub const LANES: usize = 32;

fn f32_addr(base: u64, index: usize) -> u64 {
    base + index as u64 * 4
}

// ---------------------------------------------------------------------------
// MapProgram
// ---------------------------------------------------------------------------

/// Configuration of a [`MapProgram`].
pub struct MapConfig {
    /// Input arrays as `(base_address, words_per_item)`.
    pub inputs: Vec<(u64, usize)>,
    /// Output arrays as `(base_address, words_per_item)`.
    pub outputs: Vec<(u64, usize)>,
    /// Total items in the launch.
    pub items: usize,
    /// Items each warp processes = `32 * iters_per_warp`.
    pub iters_per_warp: usize,
    /// ALU cycles per iteration.
    pub compute: u32,
    /// Iterations fetched per batched load (unrolled loop kept in flight by
    /// the scoreboard). 1 = strictly dependent iterations.
    pub load_batch: usize,
    /// Maps a logical item to the storage index used for *input* addressing
    /// (identity for streaming kernels, a permutation for jmeint-style
    /// irregular access). Outputs always use the logical index.
    pub index: fn(usize, usize) -> usize,
    /// Per-lane function: consumes the flattened input words of one item and
    /// appends the output words (must append exactly `Σ outputs.words`).
    pub func: fn(&[f32], &mut Vec<f32>),
}

enum MapPhase {
    Load,
    Compute,
    Store { output: usize, word: usize },
}

/// Element-wise map over items, 32 items per warp-iteration. All input words
/// of one iteration are fetched by a single batched load (the back-to-back
/// load instructions a real GPU keeps in flight via its scoreboard).
pub struct MapProgram {
    cfg: MapConfig,
    first_item: usize,
    iter: usize,
    phase: MapPhase,
    /// `true` while a load is in flight; its values are absorbed exactly once
    /// at the top of the next `next()` call.
    awaiting: bool,
    /// Collected input words, `[batch slot][word]`.
    in_vals: Vec<Vec<f32>>,
    /// Computed output words, `[batch slot][word]`.
    out_vals: Vec<Vec<f32>>,
    /// Active `(slot, lane, item)` triples of the current batch, rebuilt in
    /// place only when the batch advances.
    active: Vec<(usize, usize, usize)>,
    /// `iter` value `active` was computed for (`usize::MAX` = never).
    active_iter: usize,
}

impl MapProgram {
    /// Creates the program for `warp_id`.
    pub fn new(warp_id: usize, cfg: MapConfig) -> Self {
        let first_item = warp_id * LANES * cfg.iters_per_warp;
        let slots = LANES * cfg.load_batch.max(1);
        Self {
            cfg,
            first_item,
            iter: 0,
            phase: MapPhase::Load,
            awaiting: false,
            in_vals: vec![Vec::new(); slots],
            out_vals: vec![Vec::new(); slots],
            active: Vec::new(),
            active_iter: usize::MAX,
        }
    }

    /// Iterations covered by the current batch.
    fn batch(&self) -> std::ops::Range<usize> {
        let b = self.cfg.load_batch.max(1);
        self.iter..(self.iter + b).min(self.cfg.iters_per_warp)
    }

    /// Rebuilds `active` — the `(slot, lane, item)` triples of the current
    /// batch, where `slot` numbers the batch-local position — unless it is
    /// already valid for the current `iter`.
    fn refresh_active(&mut self) {
        if self.active_iter == self.iter {
            return;
        }
        self.active_iter = self.iter;
        self.active.clear();
        for (bi, it) in self.batch().enumerate() {
            let base = self.first_item + it * LANES;
            for lane in 0..LANES {
                let item = base + lane;
                if item < self.cfg.items {
                    self.active.push((bi * LANES + lane, lane, item));
                }
            }
        }
    }
}

impl WarpProgram for MapProgram {
    fn next(&mut self, loaded: &[f32], out: &mut OpBuf) {
        if self.awaiting {
            self.awaiting = false;
            // Values arrive in (input, word, slot) order.
            self.refresh_active();
            let Self { cfg, active, in_vals, .. } = self;
            let mut it = loaded.iter();
            for (_, words) in &cfg.inputs {
                for _w in 0..*words {
                    for &(slot, _, _) in active.iter() {
                        in_vals[slot].push(*it.next().expect("value per address"));
                    }
                }
            }
        }
        loop {
            if self.iter >= self.cfg.iters_per_warp {
                out.set_finished();
                return;
            }
            self.refresh_active();
            if self.active.is_empty() {
                out.set_finished();
                return;
            }
            match self.phase {
                MapPhase::Load => {
                    let addrs = out.begin_load();
                    for &(base, words) in &self.cfg.inputs {
                        for w in 0..words {
                            for &(_, _, item) in &self.active {
                                let idx = (self.cfg.index)(item, self.cfg.items);
                                addrs.push(f32_addr(base, idx * words + w));
                            }
                        }
                    }
                    self.phase = MapPhase::Compute;
                    self.awaiting = true;
                    return;
                }
                MapPhase::Compute => {
                    let iters = self.batch().len() as u32;
                    let Self { cfg, active, in_vals, out_vals, .. } = self;
                    for &(slot, _, _) in active.iter() {
                        out_vals[slot].clear();
                        (cfg.func)(&in_vals[slot], &mut out_vals[slot]);
                        in_vals[slot].clear();
                    }
                    self.phase = MapPhase::Store { output: 0, word: 0 };
                    if self.cfg.compute > 0 {
                        out.set_compute(self.cfg.compute * iters);
                        return;
                    }
                    continue;
                }
                MapPhase::Store { output, word } => {
                    if output >= self.cfg.outputs.len() {
                        self.iter += self.batch().len().max(1);
                        for v in &mut self.out_vals {
                            v.clear();
                        }
                        self.phase = MapPhase::Load;
                        continue;
                    }
                    let (base, words) = self.cfg.outputs[output];
                    let word_off: usize = self.cfg.outputs[..output].iter().map(|o| o.1).sum();
                    let writes = out.begin_store();
                    for &(slot, _, item) in &self.active {
                        writes.push((
                            f32_addr(base, item * words + word),
                            self.out_vals[slot][word_off + word],
                        ));
                    }
                    self.phase = if word + 1 < words {
                        MapPhase::Store { output, word: word + 1 }
                    } else {
                        MapPhase::Store { output: output + 1, word: 0 }
                    };
                    return;
                }
            }
        }
    }

    fn save_state(&self, s: &mut Saver) {
        s.usize("iter", self.iter);
        match self.phase {
            MapPhase::Load => s.u8("phase", 0),
            MapPhase::Compute => s.u8("phase", 1),
            MapPhase::Store { output, word } => {
                s.u8("phase", 2);
                s.usize("output", output);
                s.usize("word", word);
            }
        }
        s.bool("awaiting", self.awaiting);
        s.seq("in_vals", self.in_vals.len());
        for v in &self.in_vals {
            s.f32s("vals", v);
        }
        s.seq("out_vals", self.out_vals.len());
        for v in &self.out_vals {
            s.f32s("vals", v);
        }
    }

    fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.iter = l.usize("iter")?;
        self.phase = match l.u8("phase")? {
            0 => MapPhase::Load,
            1 => MapPhase::Compute,
            2 => MapPhase::Store { output: l.usize("output")?, word: l.usize("word")? },
            x => {
                return Err(SnapError::Malformed {
                    label: "phase".into(),
                    why: format!("unknown map phase {x}"),
                })
            }
        };
        self.awaiting = l.bool("awaiting")?;
        for (label, bufs) in [("in_vals", &mut self.in_vals), ("out_vals", &mut self.out_vals)] {
            let n = l.seq(label, 8)?;
            if n != bufs.len() {
                return Err(SnapError::Malformed {
                    label: label.into(),
                    why: format!("snapshot has {n} slots, program has {}", bufs.len()),
                });
            }
            for v in bufs.iter_mut() {
                l.f32s("vals", v)?;
            }
        }
        // Force a deterministic rebuild of the active-triple cache.
        self.active_iter = usize::MAX;
        self.active.clear();
        Ok(())
    }
}

/// Identity index map for [`MapConfig::index`].
pub fn identity_index(item: usize, _items: usize) -> usize {
    item
}

/// A cheap, stateless permutation (multiplicative hash) for irregular-access
/// kernels like jmeint. Bijective on `[0, items)` when `items` is a power of
/// two; otherwise collisions are tolerable (it only shapes addresses).
pub fn scrambled_index(item: usize, items: usize) -> usize {
    (item.wrapping_mul(0x9E37_79B1).wrapping_add(0x85EB_CA6B)) % items.max(1)
}

// ---------------------------------------------------------------------------
// MatVecProgram
// ---------------------------------------------------------------------------

/// Orientation of a [`MatVecProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatVecOrientation {
    /// Thread `t` computes `y[t] = Σ_j A[t][j] · x[j]`: lanes stride by one
    /// row each → 32 distinct lines per load (row-thrashing pattern).
    RowPerLane,
    /// Thread `t` computes `y[t] = Σ_i A[i][t] · x[i]`: lanes walk one row of
    /// `A` together → coalesced.
    ColPerLane,
}

/// Configuration of a [`MatVecProgram`].
#[derive(Debug, Clone, Copy)]
pub struct MatVecConfig {
    /// Base of the `n × n` matrix.
    pub a: u64,
    /// Base of the input vector (`n` words).
    pub x: u64,
    /// Base of the output vector (`n` words).
    pub y: u64,
    /// Matrix dimension.
    pub n: usize,
    /// Access orientation.
    pub orientation: MatVecOrientation,
    /// When `true`, accumulates into the existing `y` value (`y += A·x`).
    pub accumulate: bool,
}

/// Matrix-vector product; one output element per lane. Inner-product
/// iterations are fetched in batches of 32 `j`s per load (scoreboarded
/// back-to-back loads), so each lane pulls a whole line of `A` per batch in
/// the row-per-lane orientation.
pub struct MatVecProgram {
    cfg: MatVecConfig,
    first: usize,
    j: usize,
    acc: [f32; LANES],
    pending_compute: u32,
    state: MatVecState,
}

/// `j`s fetched per batched load.
const MV_BATCH: usize = 32;

enum MatVecState {
    Inner,
    LoadOld,
    Store,
}

impl MatVecProgram {
    /// Creates the program for `warp_id` (lanes cover elements
    /// `warp_id*32 .. warp_id*32+32`).
    pub fn new(warp_id: usize, cfg: MatVecConfig) -> Self {
        Self {
            cfg,
            first: warp_id * LANES,
            j: 0,
            acc: [0.0; LANES],
            pending_compute: 0,
            state: MatVecState::Inner,
        }
    }

    fn active(&self) -> usize {
        LANES.min(self.cfg.n.saturating_sub(self.first))
    }
}

impl WarpProgram for MatVecProgram {
    fn next(&mut self, loaded: &[f32], out: &mut OpBuf) {
        let active = self.active();
        if active == 0 {
            out.set_finished();
            return;
        }
        match self.state {
            MatVecState::Inner => {
                // Absorb previous batch: loaded = [x[j..j+b], A values
                // (j-major, lane-minor)].
                if !loaded.is_empty() {
                    let b = loaded.len() / (active + 1);
                    for jj in 0..b {
                        let xj = loaded[jj];
                        for lane in 0..active {
                            self.acc[lane] += loaded[b + jj * active + lane] * xj;
                        }
                    }
                    self.pending_compute = b as u32 * 2;
                }
                if self.pending_compute > 0 {
                    let c = self.pending_compute;
                    self.pending_compute = 0;
                    out.set_compute(c);
                    return;
                }
                if self.j >= self.cfg.n {
                    self.state = if self.cfg.accumulate {
                        MatVecState::LoadOld
                    } else {
                        MatVecState::Store
                    };
                    out.set_compute(1);
                    return;
                }
                let j0 = self.j;
                let b = MV_BATCH.min(self.cfg.n - j0);
                self.j += b;
                let n = self.cfg.n;
                let addrs = out.begin_load();
                for jj in 0..b {
                    addrs.push(f32_addr(self.cfg.x, j0 + jj));
                }
                for jj in 0..b {
                    for lane in 0..active {
                        let t = self.first + lane;
                        let idx = match self.cfg.orientation {
                            MatVecOrientation::RowPerLane => t * n + j0 + jj,
                            MatVecOrientation::ColPerLane => (j0 + jj) * n + t,
                        };
                        addrs.push(f32_addr(self.cfg.a, idx));
                    }
                }
            }
            MatVecState::LoadOld => {
                self.state = MatVecState::Store;
                let addrs = out.begin_load();
                for lane in 0..active {
                    addrs.push(f32_addr(self.cfg.y, self.first + lane));
                }
            }
            MatVecState::Store => {
                let writes = out.begin_store();
                for (lane, &acc) in self.acc.iter().enumerate().take(active) {
                    let old = if self.cfg.accumulate { loaded[lane] } else { 0.0 };
                    writes.push((f32_addr(self.cfg.y, self.first + lane), old + acc));
                }
                self.first = usize::MAX; // retire after this store
                self.j = 0;
            }
        }
    }

    fn save_state(&self, s: &mut Saver) {
        s.usize("first", self.first);
        s.usize("j", self.j);
        s.f32s("acc", &self.acc);
        s.u32("pending_compute", self.pending_compute);
        s.u8(
            "state",
            match self.state {
                MatVecState::Inner => 0,
                MatVecState::LoadOld => 1,
                MatVecState::Store => 2,
            },
        );
    }

    fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.first = l.usize("first")?;
        self.j = l.usize("j")?;
        l.f32_array("acc", &mut self.acc)?;
        self.pending_compute = l.u32("pending_compute")?;
        self.state = match l.u8("state")? {
            0 => MatVecState::Inner,
            1 => MatVecState::LoadOld,
            2 => MatVecState::Store,
            x => {
                return Err(SnapError::Malformed {
                    label: "state".into(),
                    why: format!("unknown matvec state {x}"),
                })
            }
        };
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// MatmulProgram
// ---------------------------------------------------------------------------

/// Configuration of a [`MatmulProgram`]: `C = α·(A × B)` over `n × n`
/// row-major matrices.
#[derive(Debug, Clone, Copy)]
pub struct MatmulConfig {
    /// Base of `A`.
    pub a: u64,
    /// Base of `B`.
    pub b: u64,
    /// Base of `C`.
    pub c: u64,
    /// Dimension (multiple of 32).
    pub n: usize,
    /// Scalar multiplier applied to each product (GEMM's α).
    pub alpha: f32,
}

/// Tiled matrix multiply: each warp produces one 1×32 strip of `C`,
/// fetching 8 `k`-iterations per batched load (8 lines of `B` plus the
/// matching `A` broadcast values in flight at once).
pub struct MatmulProgram {
    cfg: MatmulConfig,
    row: usize,
    col0: usize,
    k: usize,
    acc: [f32; LANES],
    /// Charge the FMA work of the absorbed batch before the next load.
    pending_compute: u32,
    done: bool,
}

/// `k`s fetched per batched load.
const MM_BATCH: usize = 8;

impl MatmulProgram {
    /// Creates the program computing strip `warp_id` (row-major strips).
    pub fn new(warp_id: usize, cfg: MatmulConfig) -> Self {
        let strips_per_row = cfg.n / LANES;
        Self {
            cfg,
            row: warp_id / strips_per_row,
            col0: (warp_id % strips_per_row) * LANES,
            k: 0,
            acc: [0.0; LANES],
            pending_compute: 0,
            done: false,
        }
    }
}

impl WarpProgram for MatmulProgram {
    fn next(&mut self, loaded: &[f32], out: &mut OpBuf) {
        if self.done {
            out.set_finished();
            return;
        }
        if !loaded.is_empty() {
            // loaded = [A[i, k..k+b], B (k-major, lane-minor)].
            let b = loaded.len() / (LANES + 1);
            for kk in 0..b {
                let a = loaded[kk];
                for lane in 0..LANES {
                    self.acc[lane] += a * loaded[b + kk * LANES + lane];
                }
            }
            // One FMA (plus addressing) per k of the absorbed batch.
            self.pending_compute = b as u32 * 2;
        }
        if self.pending_compute > 0 {
            let c = self.pending_compute;
            self.pending_compute = 0;
            out.set_compute(c);
            return;
        }
        let n = self.cfg.n;
        if self.k >= n {
            self.done = true;
            let alpha = self.cfg.alpha;
            let writes = out.begin_store();
            for lane in 0..LANES {
                writes.push((
                    f32_addr(self.cfg.c, self.row * n + self.col0 + lane),
                    alpha * self.acc[lane],
                ));
            }
            return;
        }
        let k0 = self.k;
        let b = MM_BATCH.min(n - k0);
        self.k += b;
        let addrs = out.begin_load();
        for kk in 0..b {
            addrs.push(f32_addr(self.cfg.a, self.row * n + k0 + kk));
        }
        for kk in 0..b {
            for lane in 0..LANES {
                addrs.push(f32_addr(self.cfg.b, (k0 + kk) * n + self.col0 + lane));
            }
        }
    }

    fn save_state(&self, s: &mut Saver) {
        s.usize("k", self.k);
        s.f32s("acc", &self.acc);
        s.u32("pending_compute", self.pending_compute);
        s.bool("done", self.done);
    }

    fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.k = l.usize("k")?;
        l.f32_array("acc", &mut self.acc)?;
        self.pending_compute = l.u32("pending_compute")?;
        self.done = l.bool("done")?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Stencil programs
// ---------------------------------------------------------------------------

/// Configuration of a [`Stencil2DProgram`].
#[derive(Debug, Clone)]
pub struct Stencil2DConfig {
    /// Base of the input image (`w × h`, row-major).
    pub input: u64,
    /// Base of the output image.
    pub output: u64,
    /// Image width (multiple of 32).
    pub w: usize,
    /// Image height.
    pub h: usize,
    /// Taps as `(dy, dx, weight)`.
    pub taps: Vec<(i32, i32, f32)>,
    /// Extra ALU cycles per strip (beyond the weighted sum).
    pub compute: u32,
    /// Consecutive strips each warp processes.
    pub strips_per_warp: usize,
    /// Optional post-processing: `f(weighted_sum, center_value)`.
    pub post: Option<fn(f32, f32) -> f32>,
}

/// 2-D stencil: each strip is 32 consecutive pixels of one row. All taps of
/// all the warp's strips are fetched by one batched load (strip-major,
/// tap-major, lane-minor) — the unrolled, scoreboarded form of the real
/// kernels. Neighbor coordinates are clamped at image borders.
pub struct Stencil2DProgram {
    cfg: Stencil2DConfig,
    /// 0 = issue load, 1 = absorb + compute, 2 = store.
    stage: u8,
    sums: Vec<f32>,
    centers: Vec<f32>,
    /// In-bounds `(slot, y, x0)` strips; constant for the warp's lifetime.
    strips: Vec<(usize, usize, usize)>,
}

impl Stencil2DProgram {
    /// Creates the program for `warp_id`.
    pub fn new(warp_id: usize, cfg: Stencil2DConfig) -> Self {
        let first_strip = warp_id * cfg.strips_per_warp;
        let n = cfg.strips_per_warp * LANES;
        let strips_per_row = cfg.w / LANES;
        let strips = (0..cfg.strips_per_warp)
            .filter_map(|i| {
                let s = first_strip + i;
                let y = s / strips_per_row;
                (y < cfg.h).then(|| (i, y, (s % strips_per_row) * LANES))
            })
            .collect();
        Self {
            cfg,
            stage: 0,
            sums: vec![0.0; n],
            centers: vec![0.0; n],
            strips,
        }
    }
}

impl WarpProgram for Stencil2DProgram {
    fn next(&mut self, loaded: &[f32], out: &mut OpBuf) {
        if self.strips.is_empty() || self.stage > 2 {
            out.set_finished();
            return;
        }
        match self.stage {
            0 => {
                let addrs = out.begin_load();
                for &(_, y, x0) in &self.strips {
                    for &(dy, dx, _) in &self.cfg.taps {
                        for lane in 0..LANES {
                            let yy = (y as i64 + i64::from(dy)).clamp(0, self.cfg.h as i64 - 1)
                                as usize;
                            let xx = ((x0 + lane) as i64 + i64::from(dx))
                                .clamp(0, self.cfg.w as i64 - 1)
                                as usize;
                            addrs.push(f32_addr(self.cfg.input, yy * self.cfg.w + xx));
                        }
                    }
                }
                self.stage = 1;
            }
            1 => {
                let ntaps = self.cfg.taps.len();
                for v in &mut self.sums {
                    *v = 0.0;
                }
                for (si, &(i, _, _)) in self.strips.iter().enumerate() {
                    for (t, &(dy, dx, wgt)) in self.cfg.taps.iter().enumerate() {
                        for lane in 0..LANES {
                            let v = loaded[(si * ntaps + t) * LANES + lane];
                            self.sums[i * LANES + lane] += wgt * v;
                            if dy == 0 && dx == 0 {
                                self.centers[i * LANES + lane] = v;
                            }
                        }
                    }
                }
                self.stage = 2;
                if self.cfg.compute > 0 {
                    out.set_compute(self.cfg.compute * self.strips.len() as u32);
                    return;
                }
                self.next(&[], out);
            }
            _ => {
                // Stage 2: emit all strips' results and retire.
                let writes = out.begin_store();
                for &(i, y, x0) in &self.strips {
                    for lane in 0..LANES {
                        let v = match self.cfg.post {
                            Some(post) => {
                                post(self.sums[i * LANES + lane], self.centers[i * LANES + lane])
                            }
                            None => self.sums[i * LANES + lane],
                        };
                        writes.push((f32_addr(self.cfg.output, y * self.cfg.w + x0 + lane), v));
                    }
                }
                self.stage = 3;
            }
        }
    }

    fn save_state(&self, s: &mut Saver) {
        s.u8("stage", self.stage);
        s.f32s("sums", &self.sums);
        s.f32s("centers", &self.centers);
    }

    fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.stage = l.u8("stage")?;
        l.f32_array("sums", &mut self.sums)?;
        l.f32_array("centers", &mut self.centers)?;
        Ok(())
    }
}

/// Configuration of a [`Stencil3DProgram`].
#[derive(Debug, Clone)]
pub struct Stencil3DConfig {
    /// Base of the input volume (`w × h × d`, x fastest).
    pub input: u64,
    /// Base of the output volume.
    pub output: u64,
    /// Width (multiple of 32).
    pub w: usize,
    /// Height.
    pub h: usize,
    /// Depth.
    pub d: usize,
    /// Taps as `(dz, dy, dx, weight)`.
    pub taps: Vec<(i32, i32, i32, f32)>,
    /// Consecutive strips each warp processes.
    pub strips_per_warp: usize,
}

/// 3-D stencil over a volume; strips are 32 consecutive x-positions; all of
/// the warp's strips and taps arrive in one batched load (strip-major,
/// tap-major, lane-minor).
pub struct Stencil3DProgram {
    cfg: Stencil3DConfig,
    stage: u8,
    sums: Vec<f32>,
    /// In-bounds `(slot, z, y, x0)` strips; constant for the warp's lifetime.
    strips: Vec<(usize, usize, usize, usize)>,
}

impl Stencil3DProgram {
    /// Creates the program for `warp_id`.
    pub fn new(warp_id: usize, cfg: Stencil3DConfig) -> Self {
        let first_strip = warp_id * cfg.strips_per_warp;
        let n = cfg.strips_per_warp * LANES;
        let per_row = cfg.w / LANES;
        let per_plane = per_row * cfg.h;
        let strips = (0..cfg.strips_per_warp)
            .filter_map(|i| {
                let s = first_strip + i;
                let z = s / per_plane;
                let rem = s % per_plane;
                (z < cfg.d).then(|| (i, z, rem / per_row, (rem % per_row) * LANES))
            })
            .collect();
        Self {
            cfg,
            stage: 0,
            sums: vec![0.0; n],
            strips,
        }
    }
}

impl WarpProgram for Stencil3DProgram {
    fn next(&mut self, loaded: &[f32], out: &mut OpBuf) {
        if self.strips.is_empty() || self.stage > 2 {
            out.set_finished();
            return;
        }
        match self.stage {
            0 => {
                let (w, h, d) = (self.cfg.w, self.cfg.h, self.cfg.d);
                let addrs = out.begin_load();
                for &(_, z, y, x0) in &self.strips {
                    for &(dz, dy, dx, _) in &self.cfg.taps {
                        for lane in 0..LANES {
                            let zz = (z as i64 + i64::from(dz)).clamp(0, d as i64 - 1) as usize;
                            let yy = (y as i64 + i64::from(dy)).clamp(0, h as i64 - 1) as usize;
                            let xx = ((x0 + lane) as i64 + i64::from(dx))
                                .clamp(0, w as i64 - 1) as usize;
                            addrs.push(f32_addr(self.cfg.input, (zz * h + yy) * w + xx));
                        }
                    }
                }
                self.stage = 1;
            }
            1 => {
                let ntaps = self.cfg.taps.len();
                for v in &mut self.sums {
                    *v = 0.0;
                }
                for (si, &(i, _, _, _)) in self.strips.iter().enumerate() {
                    for (t, &(_, _, _, wgt)) in self.cfg.taps.iter().enumerate() {
                        for lane in 0..LANES {
                            self.sums[i * LANES + lane] +=
                                wgt * loaded[(si * ntaps + t) * LANES + lane];
                        }
                    }
                }
                self.stage = 2;
                out.set_compute(36 * self.strips.len() as u32);
            }
            _ => {
                let writes = out.begin_store();
                for &(i, z, y, x0) in &self.strips {
                    for lane in 0..LANES {
                        writes.push((
                            f32_addr(
                                self.cfg.output,
                                (z * self.cfg.h + y) * self.cfg.w + x0 + lane,
                            ),
                            self.sums[i * LANES + lane],
                        ));
                    }
                }
                self.stage = 3;
            }
        }
    }

    fn save_state(&self, s: &mut Saver) {
        s.u8("stage", self.stage);
        s.f32s("sums", &self.sums);
    }

    fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.stage = l.u8("stage")?;
        l.f32_array("sums", &mut self.sums)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// FwtProgram
// ---------------------------------------------------------------------------

/// Configuration of a [`FwtProgram`].
#[derive(Debug, Clone, Copy)]
pub struct FwtConfig {
    /// Base of the data array.
    pub data: u64,
    /// Elements per warp-local transform (power of two, ≥ 64).
    pub segment: usize,
}

/// In-place fast Walsh–Hadamard transform over one warp-local segment:
/// `log2(segment)` butterfly stages of global-memory loads and stores.
pub struct FwtProgram {
    cfg: FwtConfig,
    seg_base: usize,
    stride: usize,
    chunk: usize,
    /// `true` while a butterfly's load is in flight / being processed.
    pending: bool,
    /// Indices (a then b) of the in-flight load; refilled per butterfly.
    idx: Vec<usize>,
    vals: Vec<f32>,
    computing: bool,
}

impl FwtProgram {
    /// Creates the program for `warp_id` (segment `warp_id`).
    ///
    /// # Panics
    ///
    /// Panics unless `segment` is a power of two ≥ 64.
    pub fn new(warp_id: usize, cfg: FwtConfig) -> Self {
        assert!(cfg.segment.is_power_of_two() && cfg.segment >= 64);
        Self {
            cfg,
            seg_base: warp_id * cfg.segment,
            stride: 1,
            chunk: 0,
            pending: false,
            idx: Vec::new(),
            vals: Vec::new(),
            computing: false,
        }
    }

    fn fill_pair_indices(&mut self) {
        // Pairs p in [chunk*32, chunk*32+32): element index
        // i = 2*stride*(p / stride) + (p % stride); partner = i + stride.
        let h = self.stride;
        self.idx.clear();
        for lane in 0..LANES {
            let p = self.chunk * LANES + lane;
            let i = 2 * h * (p / h) + (p % h);
            self.idx.push(self.seg_base + i);
        }
        for lane in 0..LANES {
            let p = self.chunk * LANES + lane;
            let i = 2 * h * (p / h) + (p % h);
            self.idx.push(self.seg_base + i + h);
        }
    }
}

impl WarpProgram for FwtProgram {
    fn next(&mut self, loaded: &[f32], out: &mut OpBuf) {
        if self.pending && !self.computing {
            // Values just arrived: stash them and charge the butterfly ALU
            // work before the stores go out.
            self.vals.clear();
            self.vals.extend_from_slice(loaded);
            self.computing = true;
            out.set_compute(8);
            return;
        }
        if self.pending {
            self.pending = false;
            self.computing = false;
            // Butterfly: a' = a + b, b' = a - b.
            let writes = out.begin_store();
            for lane in 0..LANES {
                let a = self.vals[lane];
                let b = self.vals[LANES + lane];
                writes.push((f32_addr(self.cfg.data, self.idx[lane]), a + b));
            }
            for lane in 0..LANES {
                let a = self.vals[lane];
                let b = self.vals[LANES + lane];
                writes.push((f32_addr(self.cfg.data, self.idx[LANES + lane]), a - b));
            }
            // Advance to the next chunk / stage.
            self.chunk += 1;
            if self.chunk * LANES >= self.cfg.segment / 2 {
                self.chunk = 0;
                self.stride *= 2;
            }
            return;
        }
        if self.stride >= self.cfg.segment {
            out.set_finished();
            return;
        }
        self.fill_pair_indices();
        let addrs = out.begin_load();
        for &i in &self.idx {
            addrs.push(f32_addr(self.cfg.data, i));
        }
        self.pending = true;
    }

    fn save_state(&self, s: &mut Saver) {
        s.usize("stride", self.stride);
        s.usize("chunk", self.chunk);
        s.bool("pending", self.pending);
        s.bool("computing", self.computing);
        s.seq("idx", self.idx.len());
        for &i in &self.idx {
            s.usize("i", i);
        }
        s.f32s("vals", &self.vals);
    }

    fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.stride = l.usize("stride")?;
        self.chunk = l.usize("chunk")?;
        self.pending = l.bool("pending")?;
        self.computing = l.bool("computing")?;
        let n = l.seq("idx", 8)?;
        self.idx.clear();
        self.idx.reserve(n);
        for _ in 0..n {
            self.idx.push(l.usize("i")?);
        }
        l.f32s("vals", &mut self.vals)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// ScanProgram
// ---------------------------------------------------------------------------

/// Configuration of a [`ScanProgram`].
#[derive(Debug, Clone, Copy)]
pub struct ScanConfig {
    /// Base of the input array.
    pub input: u64,
    /// Base of the output array.
    pub output: u64,
    /// Elements scanned per warp (multiple of 32).
    pub segment: usize,
}

/// Sequential inclusive prefix sum over a warp-local segment (SLA-style
/// streaming access): 8 chunks of 32 elements are loaded per batch, scanned
/// with a running carry, and stored back.
pub struct ScanProgram {
    cfg: ScanConfig,
    base: usize,
    chunk: usize,
    carry: f32,
    pending: bool,
}

/// Chunks fetched per batched load.
const SCAN_BATCH: usize = 8;

impl ScanProgram {
    /// Creates the program for `warp_id`.
    pub fn new(warp_id: usize, cfg: ScanConfig) -> Self {
        Self {
            cfg,
            base: warp_id * cfg.segment,
            chunk: 0,
            carry: 0.0,
            pending: false,
        }
    }

    fn batch_elems(&self) -> usize {
        let left = self.cfg.segment.saturating_sub(self.chunk * LANES);
        left.min(SCAN_BATCH * LANES)
    }
}

impl WarpProgram for ScanProgram {
    fn next(&mut self, loaded: &[f32], out: &mut OpBuf) {
        if self.pending {
            self.pending = false;
            let mut acc = self.carry;
            let start = self.base + self.chunk * LANES;
            let writes = out.begin_store();
            for (i, &v) in loaded.iter().enumerate() {
                acc += v;
                writes.push((f32_addr(self.cfg.output, start + i), acc));
            }
            self.carry = acc;
            self.chunk += loaded.len().div_ceil(LANES);
            return;
        }
        let n = self.batch_elems();
        if n == 0 {
            out.set_finished();
            return;
        }
        let start = self.base + self.chunk * LANES;
        self.pending = true;
        let addrs = out.begin_load();
        for i in 0..n {
            addrs.push(f32_addr(self.cfg.input, start + i));
        }
    }

    fn save_state(&self, s: &mut Saver) {
        s.usize("chunk", self.chunk);
        s.f32("carry", self.carry);
        s.bool("pending", self.pending);
    }

    fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.chunk = l.usize("chunk")?;
        self.carry = l.f32("carry")?;
        self.pending = l.bool("pending")?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// ScpProgram
// ---------------------------------------------------------------------------

/// Configuration of a [`ScpProgram`].
#[derive(Debug, Clone, Copy)]
pub struct ScpConfig {
    /// Base of the first vector bundle (`pairs × veclen` words).
    pub a: u64,
    /// Base of the second vector bundle.
    pub b: u64,
    /// Base of the per-pair result array.
    pub out: u64,
    /// Words per vector.
    pub veclen: usize,
    /// Total pairs.
    pub pairs: usize,
}

/// Scalar products: lane `l` of warp `w` computes `dot(a[p], b[p])` for pair
/// `p = 32w + l`. Both whole vectors are fetched in one batched load — lanes
/// stride by `veclen` words, the uncoalesced pattern that makes SCP a
/// high-thrashing workload.
pub struct ScpProgram {
    cfg: ScpConfig,
    first_pair: usize,
    acc: [f32; LANES],
    state: u8,
}

impl ScpProgram {
    /// Creates the program for `warp_id`.
    pub fn new(warp_id: usize, cfg: ScpConfig) -> Self {
        Self {
            cfg,
            first_pair: warp_id * LANES,
            acc: [0.0; LANES],
            state: 0,
        }
    }

    fn active(&self) -> usize {
        LANES.min(self.cfg.pairs.saturating_sub(self.first_pair))
    }
}

impl WarpProgram for ScpProgram {
    fn next(&mut self, loaded: &[f32], out: &mut OpBuf) {
        let active = self.active();
        if active == 0 {
            out.set_finished();
            return;
        }
        match self.state {
            0 => {
                // Load a then b, lane-major (each lane's vector contiguous).
                self.state = 1;
                let v = self.cfg.veclen;
                let addrs = out.begin_load();
                for base in [self.cfg.a, self.cfg.b] {
                    for lane in 0..active {
                        for j in 0..v {
                            addrs.push(f32_addr(base, (self.first_pair + lane) * v + j));
                        }
                    }
                }
            }
            1 => {
                // Absorb: loaded = [a lane-major..., b lane-major...].
                let v = self.cfg.veclen;
                for lane in 0..active {
                    let mut acc = 0.0f32;
                    for j in 0..v {
                        acc += loaded[lane * v + j] * loaded[active * v + lane * v + j];
                    }
                    self.acc[lane] = acc;
                }
                self.state = 2;
                out.set_compute(self.cfg.veclen as u32 / 2 + 4);
            }
            2 => {
                self.state = 3;
                let writes = out.begin_store();
                for lane in 0..active {
                    writes.push((f32_addr(self.cfg.out, self.first_pair + lane), self.acc[lane]));
                }
            }
            _ => out.set_finished(),
        }
    }

    fn save_state(&self, s: &mut Saver) {
        s.f32s("acc", &self.acc);
        s.u8("state", self.state);
    }

    fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        l.f32_array("acc", &mut self.acc)?;
        self.state = l.u8("state")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydram_gpu::{MemoryImage, OpKind};

    /// Runs one program functionally against an image.
    fn exec(prog: &mut dyn WarpProgram, image: &mut MemoryImage) {
        let mut buf = OpBuf::new();
        let mut loaded: Vec<f32> = Vec::new();
        for _ in 0..10_000_000 {
            prog.next(&loaded, &mut buf);
            match buf.kind() {
                OpKind::Compute(_) => loaded.clear(),
                OpKind::Load => {
                    loaded.clear();
                    loaded.extend(buf.addrs().iter().map(|&a| image.read_f32(a)));
                }
                OpKind::Store => {
                    for &(a, v) in buf.writes() {
                        image.write_f32(a, v);
                    }
                    loaded.clear();
                }
                OpKind::Finished => return,
            }
        }
        panic!("program did not finish");
    }

    #[test]
    fn map_program_computes_elementwise() {
        let mut img = MemoryImage::new();
        let a = img.alloc(64);
        let b = img.alloc(64);
        let out = img.alloc(64);
        for i in 0..64 {
            img.write_f32(a + i * 4, i as f32);
            img.write_f32(b + i * 4, 2.0);
        }
        for w in 0..1 {
            let mut p = MapProgram::new(
                w,
                MapConfig {
                    inputs: vec![(a, 1), (b, 1)],
                    outputs: vec![(out, 1)],
                    items: 64,
                    iters_per_warp: 2,
                    compute: 3,
                    load_batch: 1,
                    index: identity_index,
                    func: |inp, o| o.push(inp[0] * inp[1]),
                },
            );
            exec(&mut p, &mut img);
        }
        for i in 0..64u64 {
            assert_eq!(img.read_f32(out + i * 4), i as f32 * 2.0, "item {i}");
        }
    }

    #[test]
    fn map_program_multiword_items() {
        let mut img = MemoryImage::new();
        let a = img.alloc(96); // 32 items × 3 words
        let out = img.alloc(64); // 32 items × 2 words
        for i in 0..32 {
            for w in 0..3 {
                img.write_f32(a + (i * 3 + w) * 4, (i * 10 + w) as f32);
            }
        }
        let mut p = MapProgram::new(
            0,
            MapConfig {
                inputs: vec![(a, 3)],
                outputs: vec![(out, 2)],
                items: 32,
                iters_per_warp: 1,
                compute: 1,
                load_batch: 1,
                index: identity_index,
                func: |inp, o| {
                    o.push(inp[0] + inp[1]);
                    o.push(inp[2]);
                },
            },
        );
        exec(&mut p, &mut img);
        for i in 0..32u64 {
            assert_eq!(img.read_f32(out + (i * 2) * 4), (i * 10 + i * 10 + 1) as f32);
            assert_eq!(img.read_f32(out + (i * 2 + 1) * 4), (i * 10 + 2) as f32);
        }
    }

    #[test]
    fn map_program_partial_tail() {
        let mut img = MemoryImage::new();
        let a = img.alloc(40);
        let out = img.alloc(40);
        for i in 0..40 {
            img.write_f32(a + i * 4, 1.0 + i as f32);
        }
        for w in 0..2 {
            let mut p = MapProgram::new(
                w,
                MapConfig {
                    inputs: vec![(a, 1)],
                    outputs: vec![(out, 1)],
                    items: 40, // second warp has a partial iteration
                    iters_per_warp: 1,
                    compute: 0,
                    load_batch: 2,
                    index: identity_index,
                    func: |inp, o| o.push(-inp[0]),
                },
            );
            exec(&mut p, &mut img);
        }
        for i in 0..40u64 {
            assert_eq!(img.read_f32(out + i * 4), -(1.0 + i as f32));
        }
    }

    #[test]
    fn scrambled_index_stays_in_range() {
        for i in 0..1000 {
            assert!(scrambled_index(i, 1000) < 1000);
        }
        // Power-of-two sizes give a bijection.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1024 {
            seen.insert(scrambled_index(i, 1024));
        }
        assert_eq!(seen.len(), 1024);
    }

    fn reference_matvec(a: &[f32], x: &[f32], n: usize, transposed: bool) -> Vec<f32> {
        (0..n)
            .map(|t| {
                (0..n)
                    .map(|j| if transposed { a[j * n + t] * x[j] } else { a[t * n + j] * x[j] })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn matvec_row_per_lane_matches_reference() {
        let n = 64;
        let mut img = MemoryImage::new();
        let a = img.alloc(n * n);
        let x = img.alloc(n);
        let y = img.alloc(n);
        let av: Vec<f32> = (0..n * n).map(|i| ((i * 7 % 13) as f32) - 6.0).collect();
        let xv: Vec<f32> = (0..n).map(|i| (i as f32) * 0.25).collect();
        img.write_slice(a, &av);
        img.write_slice(x, &xv);
        let cfg = MatVecConfig { a, x, y, n, orientation: MatVecOrientation::RowPerLane, accumulate: false };
        for w in 0..n / 32 {
            exec(&mut MatVecProgram::new(w, cfg), &mut img);
        }
        let expect = reference_matvec(&av, &xv, n, false);
        let got = img.read_slice(y, n);
        for i in 0..n {
            assert!((got[i] - expect[i]).abs() < 1e-3, "row {i}: {} vs {}", got[i], expect[i]);
        }
    }

    #[test]
    fn matvec_col_per_lane_is_transpose() {
        let n = 32;
        let mut img = MemoryImage::new();
        let a = img.alloc(n * n);
        let x = img.alloc(n);
        let y = img.alloc(n);
        let av: Vec<f32> = (0..n * n).map(|i| (i % 5) as f32).collect();
        let xv: Vec<f32> = (0..n).map(|_| 1.0).collect();
        img.write_slice(a, &av);
        img.write_slice(x, &xv);
        let cfg = MatVecConfig { a, x, y, n, orientation: MatVecOrientation::ColPerLane, accumulate: false };
        exec(&mut MatVecProgram::new(0, cfg), &mut img);
        let expect = reference_matvec(&av, &xv, n, true);
        assert_eq!(img.read_slice(y, n), expect);
    }

    #[test]
    fn matvec_accumulate_adds_to_existing() {
        let n = 32;
        let mut img = MemoryImage::new();
        let a = img.alloc(n * n);
        let x = img.alloc(n);
        let y = img.alloc(n);
        img.write_slice(a, &vec![1.0; n * n]);
        img.write_slice(x, &vec![1.0; n]);
        img.write_slice(y, &vec![100.0; n]);
        let cfg = MatVecConfig { a, x, y, n, orientation: MatVecOrientation::RowPerLane, accumulate: true };
        exec(&mut MatVecProgram::new(0, cfg), &mut img);
        assert_eq!(img.read_f32(y), 132.0);
    }

    #[test]
    fn matmul_matches_reference() {
        let n = 64;
        let mut img = MemoryImage::new();
        let a = img.alloc(n * n);
        let b = img.alloc(n * n);
        let c = img.alloc(n * n);
        let av: Vec<f32> = (0..n * n).map(|i| ((i % 7) as f32) - 3.0).collect();
        let bv: Vec<f32> = (0..n * n).map(|i| ((i % 5) as f32) * 0.5).collect();
        img.write_slice(a, &av);
        img.write_slice(b, &bv);
        let cfg = MatmulConfig { a, b, c, n, alpha: 1.0 };
        for w in 0..n * n / 32 {
            exec(&mut MatmulProgram::new(w, cfg), &mut img);
        }
        for i in [0usize, 17, 63] {
            for j in [0usize, 31, 45] {
                let expect: f32 = (0..n).map(|k| av[i * n + k] * bv[k * n + j]).sum();
                let got = img.read_f32(c + ((i * n + j) * 4) as u64);
                assert!((got - expect).abs() < 1e-2, "C[{i}][{j}]: {got} vs {expect}");
            }
        }
    }

    #[test]
    fn stencil2d_blur_matches_reference() {
        let (w, h) = (32usize, 4usize);
        let mut img = MemoryImage::new();
        let inp = img.alloc(w * h);
        let out = img.alloc(w * h);
        let data: Vec<f32> = (0..w * h).map(|i| (i % 11) as f32).collect();
        img.write_slice(inp, &data);
        let taps = vec![(0, -1, 0.25), (0, 0, 0.5), (0, 1, 0.25)];
        let cfg = Stencil2DConfig {
            input: inp,
            output: out,
            w,
            h,
            taps: taps.clone(),
            compute: 2,
            strips_per_warp: 1,
            post: None,
        };
        for warp in 0..h {
            exec(&mut Stencil2DProgram::new(warp, cfg.clone()), &mut img);
        }
        // Check an interior pixel and a clamped border pixel.
        let at = |x: i64, y: i64| {
            let xx = x.clamp(0, w as i64 - 1) as usize;
            let yy = y.clamp(0, h as i64 - 1) as usize;
            data[yy * w + xx]
        };
        for (x, y) in [(5i64, 1i64), (0, 0), (31, 3)] {
            let expect = 0.25 * at(x - 1, y) + 0.5 * at(x, y) + 0.25 * at(x + 1, y);
            let got = img.read_f32(out + ((y as usize * w + x as usize) * 4) as u64);
            assert!((got - expect).abs() < 1e-5, "({x},{y}): {got} vs {expect}");
        }
    }

    #[test]
    fn stencil2d_post_receives_center() {
        let (w, h) = (32usize, 1usize);
        let mut img = MemoryImage::new();
        let inp = img.alloc(w * h);
        let out = img.alloc(w * h);
        img.write_slice(inp, &vec![3.0; w]);
        let cfg = Stencil2DConfig {
            input: inp,
            output: out,
            w,
            h,
            taps: vec![(0, 0, 2.0)],
            compute: 0,
            strips_per_warp: 1,
            post: Some(|sum, center| sum + 100.0 * center),
        };
        exec(&mut Stencil2DProgram::new(0, cfg), &mut img);
        assert_eq!(img.read_f32(out), 306.0);
    }

    #[test]
    fn stencil3d_sums_neighbors() {
        let (w, h, d) = (32usize, 3usize, 3usize);
        let mut img = MemoryImage::new();
        let inp = img.alloc(w * h * d);
        let out = img.alloc(w * h * d);
        let data: Vec<f32> = (0..w * h * d).map(|i| i as f32).collect();
        img.write_slice(inp, &data);
        let cfg = Stencil3DConfig {
            input: inp,
            output: out,
            w,
            h,
            d,
            taps: vec![(-1, 0, 0, 1.0), (1, 0, 0, 1.0), (0, 0, 0, -2.0)],
            strips_per_warp: 1,
        };
        for warp in 0..h * d {
            exec(&mut Stencil3DProgram::new(warp, cfg.clone()), &mut img);
        }
        // Interior voxel (z=1, y=1, x=16): data[(0*3+1)*32+16] + data[(2*3+1)*32+16] - 2*center.
        let center = data[(3 + 1) * 32 + 16];
        let below = data[32 + 16];
        let above = data[(6 + 1) * 32 + 16];
        let got = img.read_f32(out + (((3 + 1) * 32 + 16) * 4) as u64);
        assert!((got - (below + above - 2.0 * center)).abs() < 1e-4);
    }

    #[test]
    fn fwt_segment_matches_reference() {
        let seg = 64usize;
        let mut img = MemoryImage::new();
        let data = img.alloc(seg * 2);
        let vals: Vec<f32> = (0..seg * 2).map(|i| ((i * 3 % 17) as f32) - 8.0).collect();
        img.write_slice(data, &vals);
        // Reference WHT of segment 1 (the second warp's segment).
        let mut reference: Vec<f32> = vals[seg..].to_vec();
        let mut h = 1;
        while h < seg {
            for i in (0..seg).step_by(2 * h) {
                for j in i..i + h {
                    let (a, b) = (reference[j], reference[j + h]);
                    reference[j] = a + b;
                    reference[j + h] = a - b;
                }
            }
            h *= 2;
        }
        for w in 0..2 {
            exec(&mut FwtProgram::new(w, FwtConfig { data, segment: seg }), &mut img);
        }
        let got = img.read_slice(data + (seg * 4) as u64, seg);
        for i in 0..seg {
            assert!((got[i] - reference[i]).abs() < 1e-3, "elt {i}: {} vs {}", got[i], reference[i]);
        }
    }

    #[test]
    fn scan_is_inclusive_prefix_sum_with_carry() {
        let seg = 96usize;
        let mut img = MemoryImage::new();
        let inp = img.alloc(seg);
        let out = img.alloc(seg);
        let vals: Vec<f32> = (0..seg).map(|i| (i % 3) as f32 + 1.0).collect();
        img.write_slice(inp, &vals);
        exec(&mut ScanProgram::new(0, ScanConfig { input: inp, output: out, segment: seg }), &mut img);
        let mut acc = 0.0;
        for (i, v) in vals.iter().enumerate() {
            acc += v;
            assert_eq!(img.read_f32(out + (i * 4) as u64), acc, "elt {i}");
        }
    }

    #[test]
    fn scp_computes_dot_products() {
        let veclen = 48usize;
        let pairs = 40usize; // second warp partially active
        let mut img = MemoryImage::new();
        let a = img.alloc(pairs * veclen);
        let b = img.alloc(pairs * veclen);
        let out = img.alloc(pairs);
        let av: Vec<f32> = (0..pairs * veclen).map(|i| ((i % 7) as f32) - 3.0).collect();
        let bv: Vec<f32> = (0..pairs * veclen).map(|i| ((i % 4) as f32) * 0.5).collect();
        img.write_slice(a, &av);
        img.write_slice(b, &bv);
        let cfg = ScpConfig { a, b, out, veclen, pairs };
        for w in 0..2 {
            exec(&mut ScpProgram::new(w, cfg), &mut img);
        }
        for p in [0usize, 31, 39] {
            let expect: f32 = (0..veclen).map(|j| av[p * veclen + j] * bv[p * veclen + j]).sum();
            let got = img.read_f32(out + (p * 4) as u64);
            assert!((got - expect).abs() < 1e-3, "pair {p}: {got} vs {expect}");
        }
    }
}
