//! PolyBench workloads: GEMM, 2MM, 3MM, MVT, ATAX, BICG.
//!
//! The matrix products use the tiled [`MatmulProgram`]; the matrix-vector
//! kernels use [`MatVecProgram`] in the orientations of the original CUDA
//! codes (row-per-thread for `A·x`, column-per-thread for `Aᵀ·x`), which is
//! what gives MVT/ATAX/BICG their high row-thrashing first pass.
//!
//! Multi-kernel apps (2MM, 3MM, MVT, ATAX, BICG) are sequences of dependent
//! launches sharing one memory image; bases are communicated between launches
//! through a shared cell, exactly like consecutive CUDA kernel launches
//! share device pointers.

use crate::programs::{MatVecConfig, MatVecOrientation, MatVecProgram, MatmulConfig, MatmulProgram, LANES};
use crate::util::Region;
use lazydram_gpu::{Kernel, MemoryImage, WarpProgram};
use std::sync::{Arc, RwLock};

/// Shared base-address cell between dependent launches of one app.
///
/// An `RwLock`, not a `RefCell`: [`Kernel`] is `Sync` so the phased tick
/// can query `approximable` from worker threads concurrently. Writes happen
/// only in `setup`, strictly before any cycle of that launch ticks, so the
/// read lock in the hot path is never contended by a writer.
pub(crate) type Shared<T> = Arc<RwLock<T>>;

/// Builds a [`Shared`] cell.
pub(crate) fn shared<T>(v: T) -> Shared<T> {
    Arc::new(RwLock::new(v))
}

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

/// One dense matrix product `C = A × B` (`n × n`).
pub struct Gemm {
    n: usize,
    name: &'static str,
    /// Input value range; zero-mean ranges give cancellation-prone outputs
    /// (low error tolerance), positive ranges give robust ones.
    range: (f32, f32),
    /// Which array this launch reads as `A` / `B` / writes as `C`; filled in
    /// `setup` (single-launch case) or injected by the owning app.
    st: Shared<GemmArrays>,
    /// When `false`, `setup` expects arrays to already exist (later launch
    /// of a multi-launch app).
    allocates: bool,
    seed: u64,
}

/// The three arrays of one matrix-product launch.
#[derive(Debug, Clone, Copy, Default)]
pub struct GemmArrays {
    /// Left operand.
    pub a: Region,
    /// Right operand.
    pub b: Region,
    /// Product.
    pub c: Region,
}

impl Gemm {
    /// Standalone GEMM of dimension `n` (multiple of 32).
    pub fn new(n: usize) -> Self {
        assert!(n.is_multiple_of(LANES), "n must be a multiple of 32");
        Self {
            n,
            name: "GEMM",
            range: (-1.0, 1.0),
            st: shared(GemmArrays::default()),
            allocates: true,
            seed: 0xA11CE,
        }
    }

    /// A launch that allocates fresh inputs and writes `c` (used as the first
    /// launch of 2MM/3MM).
    pub(crate) fn launch_fresh(
        name: &'static str,
        n: usize,
        st: Shared<GemmArrays>,
        seed: u64,
        range: (f32, f32),
    ) -> Self {
        Self { n, name, range, st, allocates: true, seed }
    }

    /// A launch over pre-existing arrays (later launches of 2MM/3MM).
    pub(crate) fn launch_over(name: &'static str, n: usize, st: Shared<GemmArrays>) -> Self {
        Self { n, name, range: (0.0, 1.0), st, allocates: false, seed: 0 }
    }
}

impl Kernel for Gemm {
    fn name(&self) -> &str {
        self.name
    }

    fn setup(&mut self, mem: &mut MemoryImage) {
        if self.allocates {
            let n2 = self.n * self.n;
            let (lo, hi) = self.range;
            let a = Region::alloc_smooth(mem, n2, self.seed, lo, hi);
            let b = Region::alloc_smooth(mem, n2, self.seed + 1, lo, hi);
            let c = Region::alloc(mem, n2);
            *self.st.write().unwrap() = GemmArrays { a, b, c };
        }
    }

    fn total_warps(&self) -> usize {
        self.n * self.n / LANES
    }

    fn program(&self, warp_id: usize) -> Box<dyn WarpProgram> {
        let st = self.st.read().unwrap();
        Box::new(MatmulProgram::new(
            warp_id,
            MatmulConfig {
                a: st.a.base,
                b: st.b.base,
                c: st.c.base,
                n: self.n,
                alpha: 1.0,
            },
        ))
    }

    fn approximable(&self, addr: u64) -> bool {
        let st = self.st.read().unwrap();
        st.a.contains(addr) || st.b.contains(addr)
    }

    fn output(&self, mem: &MemoryImage) -> Vec<f32> {
        self.st.read().unwrap().c.read(mem)
    }
}

/// Builds the 2MM app: `D = A × B`, then `E = D × C`.
pub fn two_mm(n: usize) -> Vec<Box<dyn Kernel>> {
    // Launch 1 allocates A, B and writes D; launch 2 allocates C lazily by
    // reusing the fresh-allocation path with its own cell, then rewires.
    let st1: Shared<GemmArrays> = shared(GemmArrays::default());
    let st2: Shared<GemmArrays> = shared(GemmArrays::default());
    struct Wire {
        inner: Gemm,
        from: Shared<GemmArrays>,
        seed: u64,
        n: usize,
    }
    impl Kernel for Wire {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn setup(&mut self, mem: &mut MemoryImage) {
            // D (the previous product) becomes this launch's A; allocate a
            // fresh right operand and output.
            let d = self.from.read().unwrap().c;
            let n2 = self.n * self.n;
            let c = Region::alloc_smooth(mem, n2, self.seed, -1.0, 1.0);
            let e = Region::alloc(mem, n2);
            *self.inner.st.write().unwrap() = GemmArrays { a: d, b: c, c: e };
        }
        fn total_warps(&self) -> usize {
            self.inner.total_warps()
        }
        fn program(&self, w: usize) -> Box<dyn WarpProgram> {
            self.inner.program(w)
        }
        fn approximable(&self, addr: u64) -> bool {
            self.inner.approximable(addr)
        }
        fn output(&self, mem: &MemoryImage) -> Vec<f32> {
            self.inner.output(mem)
        }
    }
    vec![
        Box::new(Gemm::launch_fresh("2MM", n, st1.clone(), 0x2A11, (-1.0, 1.0))),
        Box::new(Wire {
            inner: Gemm::launch_over("2MM", n, st2),
            from: st1,
            seed: 0x2A12,
            n,
        }),
    ]
}

/// Builds the 3MM app: `E = A × B`, `F = C × D`, `G = E × F`.
pub fn three_mm(n: usize) -> Vec<Box<dyn Kernel>> {
    let st1: Shared<GemmArrays> = shared(GemmArrays::default());
    let st2: Shared<GemmArrays> = shared(GemmArrays::default());
    let st3: Shared<GemmArrays> = shared(GemmArrays::default());
    struct Join {
        inner: Gemm,
        left: Shared<GemmArrays>,
        right: Shared<GemmArrays>,
        n: usize,
    }
    impl Kernel for Join {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn setup(&mut self, mem: &mut MemoryImage) {
            let e = self.left.read().unwrap().c;
            let f = self.right.read().unwrap().c;
            let g = Region::alloc(mem, self.n * self.n);
            *self.inner.st.write().unwrap() = GemmArrays { a: e, b: f, c: g };
        }
        fn total_warps(&self) -> usize {
            self.inner.total_warps()
        }
        fn program(&self, w: usize) -> Box<dyn WarpProgram> {
            self.inner.program(w)
        }
        fn approximable(&self, addr: u64) -> bool {
            self.inner.approximable(addr)
        }
        fn output(&self, mem: &MemoryImage) -> Vec<f32> {
            self.inner.output(mem)
        }
    }
    vec![
        Box::new(Gemm::launch_fresh("3MM", n, st1.clone(), 0x3A11, (0.1, 1.1))),
        Box::new(Gemm::launch_fresh("3MM", n, st2.clone(), 0x3A21, (0.1, 1.1))),
        Box::new(Join {
            inner: Gemm::launch_over("3MM", n, st3),
            left: st1,
            right: st2,
            n,
        }),
    ]
}

// ---------------------------------------------------------------------------
// Matrix-vector apps
// ---------------------------------------------------------------------------

/// Arrays shared by the matrix-vector apps.
#[derive(Debug, Clone, Copy, Default)]
struct MvArrays {
    a: Region,
    x1: Region,
    x2: Region,
    y1: Region,
    y2: Region,
}

/// One matrix-vector launch.
struct MvLaunch {
    name: &'static str,
    n: usize,
    st: Shared<MvArrays>,
    range: (f32, f32),
    orientation: MatVecOrientation,
    /// `true` for the first launch, which allocates everything.
    allocates: bool,
    /// Whether this launch reads `x2`/writes `y2` (second pass).
    second: bool,
    /// Output = concatenation of both result vectors?
    concat_output: bool,
    seed: u64,
}

impl Kernel for MvLaunch {
    fn name(&self) -> &str {
        self.name
    }

    fn setup(&mut self, mem: &mut MemoryImage) {
        if self.allocates {
            let n = self.n;
            let (lo, hi) = self.range;
            let a = Region::alloc_smooth(mem, n * n, self.seed, lo, hi);
            let x1 = Region::alloc_smooth(mem, n, self.seed + 1, lo, hi);
            let x2 = Region::alloc_smooth(mem, n, self.seed + 2, lo, hi);
            let y1 = Region::alloc(mem, n);
            let y2 = Region::alloc(mem, n);
            *self.st.write().unwrap() = MvArrays { a, x1, x2, y1, y2 };
        }
    }

    fn total_warps(&self) -> usize {
        self.n / LANES
    }

    fn program(&self, warp_id: usize) -> Box<dyn WarpProgram> {
        let st = self.st.read().unwrap();
        let (x, y) = if self.second { (st.x2, st.y2) } else { (st.x1, st.y1) };
        Box::new(MatVecProgram::new(
            warp_id,
            MatVecConfig {
                a: st.a.base,
                x: x.base,
                y: y.base,
                n: self.n,
                orientation: self.orientation,
                accumulate: false,
            },
        ))
    }

    fn approximable(&self, addr: u64) -> bool {
        let st = self.st.read().unwrap();
        st.a.contains(addr) || st.x1.contains(addr) || st.x2.contains(addr)
    }

    fn output(&self, mem: &MemoryImage) -> Vec<f32> {
        let st = self.st.read().unwrap();
        if self.concat_output {
            let mut out = st.y1.read(mem);
            out.extend(st.y2.read(mem));
            out
        } else {
            st.y2.read(mem)
        }
    }
}

/// Builds MVT: `y1 = A·x1` (row-thrashing) then `y2 = Aᵀ·x2` (coalesced);
/// output is the concatenation of both vectors.
pub fn mvt(n: usize) -> Vec<Box<dyn Kernel>> {
    let st: Shared<MvArrays> = shared(MvArrays::default());
    vec![
        Box::new(MvLaunch {
            name: "MVT",
            n,
            st: st.clone(),
            range: (0.5, 1.5),
            orientation: MatVecOrientation::RowPerLane,
            allocates: true,
            second: false,
            concat_output: false,
            seed: 0x3717,
        }),
        Box::new(MvLaunch {
            name: "MVT",
            n,
            st,
            range: (0.5, 1.5),
            orientation: MatVecOrientation::ColPerLane,
            allocates: false,
            second: true,
            concat_output: true,
            seed: 0,
        }),
    ]
}

/// Builds ATAX: `tmp = A·x` then `y = Aᵀ·tmp`.
pub fn atax(n: usize) -> Vec<Box<dyn Kernel>> {
    let st: Shared<MvArrays> = shared(MvArrays::default());
    struct Second {
        inner: MvLaunch,
    }
    impl Kernel for Second {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn setup(&mut self, mem: &mut MemoryImage) {
            // Second pass reads the first pass's output: x2 := y1.
            let mut st = self.inner.st.write().unwrap();
            st.x2 = st.y1;
            drop(st);
            self.inner.setup(mem);
        }
        fn total_warps(&self) -> usize {
            self.inner.total_warps()
        }
        fn program(&self, w: usize) -> Box<dyn WarpProgram> {
            self.inner.program(w)
        }
        fn approximable(&self, addr: u64) -> bool {
            self.inner.approximable(addr)
        }
        fn output(&self, mem: &MemoryImage) -> Vec<f32> {
            self.inner.output(mem)
        }
    }
    vec![
        Box::new(MvLaunch {
            name: "ATAX",
            n,
            st: st.clone(),
            range: (-1.0, 1.0),
            orientation: MatVecOrientation::RowPerLane,
            allocates: true,
            second: false,
            concat_output: false,
            seed: 0xA7A8,
        }),
        Box::new(Second {
            inner: MvLaunch {
                name: "ATAX",
                n,
                st,
                range: (-1.0, 1.0),
                orientation: MatVecOrientation::ColPerLane,
                allocates: false,
                second: true,
                concat_output: false,
                seed: 0,
            },
        }),
    ]
}

/// Builds BICG: `q = A·p` and `s = Aᵀ·r`; output is the concatenation.
pub fn bicg(n: usize) -> Vec<Box<dyn Kernel>> {
    let st: Shared<MvArrays> = shared(MvArrays::default());
    vec![
        Box::new(MvLaunch {
            name: "BICG",
            n,
            st: st.clone(),
            range: (0.0, 1.0),
            orientation: MatVecOrientation::RowPerLane,
            allocates: true,
            second: false,
            concat_output: false,
            seed: 0xB1C6,
        }),
        Box::new(MvLaunch {
            name: "BICG",
            n,
            st,
            range: (0.0, 1.0),
            orientation: MatVecOrientation::ColPerLane,
            allocates: false,
            second: true,
            concat_output: true,
            seed: 0,
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::run_sequence_functional;
    use lazydram_gpu::run_functional;

    #[test]
    fn gemm_output_matches_cpu_reference() {
        let n = 64;
        let mut g = Gemm::new(n);
        let (out, img) = run_functional(&mut g);
        assert_eq!(out.len(), n * n);
        let st = g.st.read().unwrap();
        let a = st.a.read(&img);
        let b = st.b.read(&img);
        for (i, j) in [(0usize, 0usize), (13, 57), (63, 63)] {
            let expect: f32 = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
            assert!((out[i * n + j] - expect).abs() < 1e-2);
        }
    }

    #[test]
    fn gemm_annotates_inputs_not_output() {
        let mut g = Gemm::new(32);
        let (_, _) = run_functional(&mut g);
        let st = *g.st.read().unwrap();
        assert!(g.approximable(st.a.base));
        assert!(g.approximable(st.b.base + 64));
        assert!(!g.approximable(st.c.base));
    }

    #[test]
    fn two_mm_chains_products() {
        let n = 32;
        let mut launches = two_mm(n);
        let out = run_sequence_functional(&mut launches);
        assert_eq!(out.len(), n * n);
        // Output must be non-trivial (dependent on both products).
        assert!(out.iter().any(|&v| v.abs() > 1e-3));
    }

    #[test]
    fn three_mm_has_three_launches() {
        let n = 32;
        let mut launches = three_mm(n);
        assert_eq!(launches.len(), 3);
        let out = run_sequence_functional(&mut launches);
        assert_eq!(out.len(), n * n);
        assert!(out.iter().any(|&v| v.abs() > 1e-3));
    }

    #[test]
    fn mvt_output_is_both_vectors() {
        let n = 64;
        let mut launches = mvt(n);
        let out = run_sequence_functional(&mut launches);
        assert_eq!(out.len(), 2 * n);
        assert!(out.iter().any(|&v| v.abs() > 1e-3));
    }

    #[test]
    fn atax_second_pass_reads_first_pass_result() {
        let n = 64;
        let mut launches = atax(n);
        let out = run_sequence_functional(&mut launches);
        assert_eq!(out.len(), n);
        // y = Aᵀ(A x): with random A, overwhelmingly non-zero everywhere.
        assert!(out.iter().filter(|v| v.abs() > 1e-4).count() > n / 2);
    }

    #[test]
    fn bicg_output_is_both_vectors() {
        let n = 64;
        let out = run_sequence_functional(&mut bicg(n));
        assert_eq!(out.len(), 2 * n);
    }
}
