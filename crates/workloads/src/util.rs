//! Shared helpers for workload construction.

use lazydram_common::SplitMix64;
use lazydram_gpu::{Kernel, MemoryImage, OpBuf, OpKind};

/// A named, line-aligned array in the memory image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Region {
    /// Base byte address.
    pub base: u64,
    /// Length in `f32` words.
    pub words: usize,
}

impl Region {
    /// Allocates a region of `words` `f32`s.
    pub fn alloc(mem: &mut MemoryImage, words: usize) -> Self {
        Self {
            base: mem.alloc(words),
            words,
        }
    }

    /// Allocates and fills with uniform values in `[lo, hi)`.
    pub fn alloc_random(mem: &mut MemoryImage, words: usize, seed: u64, lo: f32, hi: f32) -> Self {
        let r = Self::alloc(mem, words);
        let mut rng = SplitMix64::new(seed);
        for i in 0..words {
            mem.write_f32(r.base + i as u64 * 4, rng.range_f32(lo, hi));
        }
        r
    }

    /// Allocates and fills with a *spatially smooth* random field in
    /// `[lo, hi]`: a sum of two randomly-phased sinusoids plus 2 % noise.
    ///
    /// Real image/matrix/physics inputs are spatially correlated — exactly
    /// the property the paper's value predictor exploits ("nearby addresses
    /// may store similar values"). Neighbouring 128-byte lines differ by a
    /// few percent of the value range, so nearest-line prediction incurs
    /// small-but-nonzero error, as in the original workloads.
    pub fn alloc_smooth(mem: &mut MemoryImage, words: usize, seed: u64, lo: f32, hi: f32) -> Self {
        let r = Self::alloc(mem, words);
        let mut rng = SplitMix64::new(seed);
        let p1: f32 = rng.range_f32(0.0, std::f32::consts::TAU);
        let p2: f32 = rng.range_f32(0.0, std::f32::consts::TAU);
        let l1: f32 = rng.range_f32(3000.0, 6000.0);
        let l2: f32 = rng.range_f32(400.0, 800.0);
        let mid = 0.5 * (lo + hi);
        let amp = 0.5 * (hi - lo);
        for i in 0..words {
            let x = i as f32;
            let v = mid
                + amp
                    * (0.68 * (std::f32::consts::TAU * x / l1 + p1).sin()
                        + 0.28 * (std::f32::consts::TAU * x / l2 + p2).sin()
                        + 0.04 * rng.range_f32(-1.0, 1.0));
            mem.write_f32(r.base + i as u64 * 4, v.clamp(lo, hi));
        }
        r
    }

    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.words as u64 * 4
    }

    /// Reads the whole region into `out` (cleared first), reusing the
    /// buffer's capacity — the allocation-free path for repeated output
    /// snapshots.
    pub fn read_into(&self, mem: &MemoryImage, out: &mut Vec<f32>) {
        mem.read_slice_into(self.base, self.words, out);
    }

    /// Reads the whole region.
    pub fn read(&self, mem: &MemoryImage) -> Vec<f32> {
        let mut out = Vec::new();
        self.read_into(mem, &mut out);
        out
    }
}

/// Scales `base` by `scale` and rounds to a positive multiple of `quantum`.
pub fn scaled(base: usize, scale: f64, quantum: usize) -> usize {
    let raw = (base as f64 * scale).round() as usize;
    (raw / quantum).max(1) * quantum
}

/// Scales a linear dimension so total (2-D) work scales ≈ linearly with
/// `scale`; result is a positive multiple of `quantum`.
pub fn scaled_dim2(base: usize, scale: f64, quantum: usize) -> usize {
    scaled(base, scale.sqrt(), quantum)
}

/// Scales a linear dimension so total (3-D) work scales ≈ linearly.
pub fn scaled_dim3(base: usize, scale: f64, quantum: usize) -> usize {
    scaled(base, scale.cbrt(), quantum)
}

/// Executes a sequence of dependent kernel launches *functionally* on one
/// shared memory image (the reference counterpart of
/// `Simulator::run_sequence`) and returns the last launch's output.
///
/// # Panics
///
/// Panics if `kernels` is empty or a warp program never finishes.
pub fn run_sequence_functional(kernels: &mut [Box<dyn Kernel>]) -> Vec<f32> {
    assert!(!kernels.is_empty(), "need at least one launch");
    let mut image = MemoryImage::new();
    let mut buf = OpBuf::new();
    let mut loaded: Vec<f32> = Vec::new();
    for k in kernels.iter_mut() {
        k.setup(&mut image);
        for w in 0..k.total_warps() {
            let mut prog = k.program(w);
            loaded.clear();
            let mut ops = 0u64;
            loop {
                ops += 1;
                assert!(ops < 100_000_000, "runaway warp program in {}", k.name());
                prog.next(&loaded, &mut buf);
                match buf.kind() {
                    OpKind::Compute(_) => loaded.clear(),
                    OpKind::Load => {
                        image.read_lanes_into(buf.addrs(), &mut loaded);
                    }
                    OpKind::Store => {
                        image.write_lanes(buf.writes());
                        loaded.clear();
                    }
                    OpKind::Finished => break,
                }
            }
        }
    }
    kernels.last().expect("non-empty").output(&image)
}

/// Rounds down to a power of two (≥ `min`).
pub fn pow2_at_most(x: usize, min: usize) -> usize {
    let mut p = min;
    while p * 2 <= x {
        p *= 2;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_alloc_and_contains() {
        let mut mem = MemoryImage::new();
        let r = Region::alloc(&mut mem, 10);
        assert!(r.contains(r.base));
        assert!(r.contains(r.base + 36));
        assert!(!r.contains(r.base + 40));
        assert!(!r.contains(r.base - 4));
    }

    #[test]
    fn region_random_is_deterministic_and_in_range() {
        let mut m1 = MemoryImage::new();
        let a = Region::alloc_random(&mut m1, 100, 42, -1.0, 1.0);
        let mut m2 = MemoryImage::new();
        let b = Region::alloc_random(&mut m2, 100, 42, -1.0, 1.0);
        assert_eq!(a.read(&m1), b.read(&m2));
        assert!(a.read(&m1).iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn scaling_helpers() {
        assert_eq!(scaled(512, 1.0, 32), 512);
        assert_eq!(scaled(512, 0.5, 32), 256);
        assert_eq!(scaled(512, 0.001, 32), 32, "floors at one quantum");
        assert_eq!(scaled_dim2(512, 0.25, 32), 256);
        assert_eq!(scaled_dim3(64, 0.125, 8), 32);
        assert_eq!(pow2_at_most(100, 8), 64);
        assert_eq!(pow2_at_most(5, 8), 8);
    }
}
