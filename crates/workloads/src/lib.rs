//! Functional re-implementations of the paper's 20 GPGPU workloads
//! (Table II) as execution-driven warp programs.
//!
//! Every application issues the *addresses* of the original access pattern
//! (tiled products, strided matrix-vector sweeps, stencil strips, scrambled
//! gathers…) **and** computes on the real values flowing through the
//! simulated memory system, so approximation error under AMS is measured on
//! genuine outputs.
//!
//! * [`suite::suite`] — the 20-app registry with the paper's result groups,
//! * [`suite::run_app`] — run one app under a [`SchedConfig`](lazydram_common::SchedConfig),
//! * [`suite::exact_output`] — the functional (error-free) reference output,
//! * [`programs`] — the reusable warp-program shapes.
//!
//! # Example
//!
//! ```no_run
//! use lazydram_common::{GpuConfig, SchedConfig};
//! use lazydram_workloads::suite::{by_name, exact_output, run_app};
//! use lazydram_gpu::application_error;
//!
//! let app = by_name("GEMM").expect("known app");
//! let exact = exact_output(&app, 0.25);
//! let lazy = run_app(&app, &GpuConfig::default(), &SchedConfig::dyn_combo(), 0.25);
//! println!("error = {:.2}%", 100.0 * application_error(&exact, &lazy.output));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod axbench;
pub mod polybench;
pub mod programs;
pub mod sdk;
pub mod stencil_apps;
pub mod suite;
pub mod util;

pub use suite::{by_name, exact_output, group, run_app, run_app_limited, suite as all_apps, AppSpec};
