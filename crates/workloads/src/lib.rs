//! Functional re-implementations of the paper's 20 GPGPU workloads
//! (Table II) as execution-driven warp programs.
//!
//! Every application issues the *addresses* of the original access pattern
//! (tiled products, strided matrix-vector sweeps, stencil strips, scrambled
//! gathers…) **and** computes on the real values flowing through the
//! simulated memory system, so approximation error under AMS is measured on
//! genuine outputs.
//!
//! * [`suite::suite`] — the 20-app registry with the paper's result groups,
//! * [`builder::SimBuilder`] — the one front door for configuring and
//!   running a timed simulation (scheme, scale, limits, checkpointing),
//! * [`suite::exact_output`] — the functional (error-free) reference output,
//! * [`programs`] — the reusable warp-program shapes.
//!
//! # Example
//!
//! ```no_run
//! use lazydram_common::Scheme;
//! use lazydram_workloads::{by_name, SimBuilder};
//! use lazydram_gpu::application_error;
//!
//! let app = by_name("GEMM").expect("known app");
//! let run = SimBuilder::new(&app).scheme(Scheme::DynCombo).scale(0.25).build();
//! let lazy = run.run();
//! println!("error = {:.2}%", 100.0 * application_error(&run.exact_output(), &lazy.output));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod axbench;
pub mod builder;
pub mod polybench;
pub mod programs;
pub mod sdk;
pub mod stencil_apps;
pub mod suite;
pub mod util;

pub use builder::{
    parse_backend, parse_cache_mode, parse_checkpoint_every, parse_trace_mode, CacheMode,
    CachePolicy, CheckpointPolicy, SimBuilder, SimRun, TraceMode, TracePolicy,
    DEFAULT_CHECKPOINT_EVERY,
};
pub use suite::{by_name, exact_output, group, run_app, run_app_limited, suite as all_apps, AppSpec};
