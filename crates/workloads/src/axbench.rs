//! AxBench workloads: blackscholes, inversek2j, newtonraph, jmeint.
//!
//! All four are element-wise [`MapProgram`]s with real arithmetic; jmeint
//! additionally scrambles its input index (triangle pairs are gathered in
//! data-dependent order in the original benchmark), which is what makes it a
//! high-thrashing workload.

use crate::programs::{identity_index, scrambled_index, MapConfig, MapProgram, LANES};
use crate::util::Region;
use lazydram_gpu::{Kernel, MemoryImage, WarpProgram};

/// Shared scaffolding for the map-style apps.
pub struct MapApp {
    name: &'static str,
    items: usize,
    iters_per_warp: usize,
    in_words: Vec<usize>,
    out_words: Vec<usize>,
    compute: u32,
    load_batch: usize,
    index: fn(usize, usize) -> usize,
    func: fn(&[f32], &mut Vec<f32>),
    seeds: Vec<(u64, f32, f32)>,
    inputs: Vec<Region>,
    outputs: Vec<Region>,
}

impl MapApp {
    /// Total items processed.
    pub fn items(&self) -> usize {
        self.items
    }
}

impl Kernel for MapApp {
    fn name(&self) -> &str {
        self.name
    }

    fn setup(&mut self, mem: &mut MemoryImage) {
        self.inputs = self
            .in_words
            .iter()
            .zip(&self.seeds)
            .map(|(&w, &(seed, lo, hi))| Region::alloc_smooth(mem, self.items * w, seed, lo, hi))
            .collect();
        self.outputs = self
            .out_words
            .iter()
            .map(|&w| Region::alloc(mem, self.items * w))
            .collect();
    }

    fn total_warps(&self) -> usize {
        self.items.div_ceil(LANES * self.iters_per_warp)
    }

    fn program(&self, warp_id: usize) -> Box<dyn WarpProgram> {
        Box::new(MapProgram::new(
            warp_id,
            MapConfig {
                inputs: self
                    .inputs
                    .iter()
                    .zip(&self.in_words)
                    .map(|(r, &w)| (r.base, w))
                    .collect(),
                outputs: self
                    .outputs
                    .iter()
                    .zip(&self.out_words)
                    .map(|(r, &w)| (r.base, w))
                    .collect(),
                items: self.items,
                iters_per_warp: self.iters_per_warp,
                compute: self.compute,
                load_batch: self.load_batch,
                index: self.index,
                func: self.func,
            },
        ))
    }

    fn approximable(&self, addr: u64) -> bool {
        self.inputs.iter().any(|r| r.contains(addr))
    }

    fn output(&self, mem: &MemoryImage) -> Vec<f32> {
        let mut out = Vec::new();
        for r in &self.outputs {
            out.extend(r.read(mem));
        }
        out
    }
}

/// Standard-normal CDF via the Abramowitz–Stegun polynomial (the same
/// approximation the CUDA SDK BlackScholes kernel uses).
fn normal_cdf(d: f32) -> f32 {
    const A1: f32 = 0.319_381_53;
    const A2: f32 = -0.356_563_78;
    const A3: f32 = 1.781_477_9;
    const A4: f32 = -1.821_255_9;
    const A5: f32 = 1.330_274_4;
    let k = 1.0 / (1.0 + 0.231_641_9 * d.abs());
    let cnd = (-0.5 * d * d).exp() / (2.0 * std::f32::consts::PI).sqrt()
        * (A1 * k + A2 * k * k + A3 * k.powi(3) + A4 * k.powi(4) + A5 * k.powi(5));
    if d > 0.0 {
        1.0 - cnd
    } else {
        cnd
    }
}

/// blackscholes — European call option pricing. Inputs: spot, strike,
/// time-to-expiry; output: call price.
pub fn blackscholes(items: usize) -> MapApp {
    fn price(inp: &[f32], out: &mut Vec<f32>) {
        let (s, k, t) = (inp[0], inp[1], inp[2]);
        let r = 0.02f32;
        let v = 0.30f32;
        let sqrt_t = t.sqrt().max(1e-4);
        let d1 = ((s / k).ln() + (r + 0.5 * v * v) * t) / (v * sqrt_t);
        let d2 = d1 - v * sqrt_t;
        out.push(s * normal_cdf(d1) - k * (-r * t).exp() * normal_cdf(d2));
    }
    MapApp {
        name: "blackscholes",
        items,
        iters_per_warp: 8,
        load_batch: 8,
        in_words: vec![1, 1, 1],
        out_words: vec![1],
        compute: 24,
        index: identity_index,
        func: price,
        seeds: vec![
            (0xB5C1, 20.0, 120.0),
            (0xB5C2, 20.0, 120.0),
            (0xB5C3, 0.1, 2.0),
        ],
        inputs: Vec::new(),
        outputs: Vec::new(),
    }
}

/// inversek2j — inverse kinematics of a 2-joint arm. Inputs: target (x, y);
/// outputs: joint angles (θ1, θ2).
pub fn inversek2j(items: usize) -> MapApp {
    fn solve(inp: &[f32], out: &mut Vec<f32>) {
        const L1: f32 = 0.5;
        const L2: f32 = 0.5;
        let (x, y) = (inp[0], inp[1]);
        let d = ((x * x + y * y - L1 * L1 - L2 * L2) / (2.0 * L1 * L2)).clamp(-1.0, 1.0);
        let theta2 = d.acos();
        let theta1 = y.atan2(x) - (L2 * theta2.sin()).atan2(L1 + L2 * theta2.cos());
        out.push(theta1);
        out.push(theta2);
    }
    MapApp {
        name: "inversek2j",
        items,
        iters_per_warp: 8,
        load_batch: 8,
        in_words: vec![2],
        out_words: vec![2],
        compute: 16,
        index: identity_index,
        func: solve,
        seeds: vec![(0x1427, -0.9, 0.9)],
        inputs: Vec::new(),
        outputs: Vec::new(),
    }
}

/// newtonraph — root finding on per-item cubic polynomials with 16 Newton
/// iterations (compute-heavy map).
pub fn newtonraph(items: usize) -> MapApp {
    fn root(inp: &[f32], out: &mut Vec<f32>) {
        // p(x) = a x³ + b x² + c x + d, a nudged away from zero.
        let a = inp[0] + inp[0].signum() * 0.5;
        let (b, c, d) = (inp[1], inp[2], inp[3]);
        let mut x = 1.0f32;
        for _ in 0..16 {
            let f = a * x * x * x + b * x * x + c * x + d;
            let fp = 3.0 * a * x * x + 2.0 * b * x + c;
            if fp.abs() < 1e-6 {
                break;
            }
            x -= f / fp;
            x = x.clamp(-100.0, 100.0);
        }
        out.push(x);
    }
    MapApp {
        name: "newtonraph",
        items,
        iters_per_warp: 8,
        load_batch: 8,
        in_words: vec![4],
        out_words: vec![1],
        compute: 48,
        index: identity_index,
        func: root,
        seeds: vec![(0x2E47, -1.0, 1.0)],
        inputs: Vec::new(),
        outputs: Vec::new(),
    }
}

/// jmeint — triangle–triangle intersection tests over scrambled pairs.
/// Inputs: two bundles of 9-word triangles gathered in permuted order;
/// output: 1.0 / 0.0 intersection flag.
pub fn jmeint(items: usize) -> MapApp {
    fn test(inp: &[f32], out: &mut Vec<f32>) {
        // A conservative separating-test proxy: bounding spheres of both
        // triangles plus a plane-side test of the first triangle's normal —
        // the same arithmetic shape (dots/crosses/compares) as the exact
        // Möller test, with a scalar verdict.
        let t1 = &inp[0..9];
        let t2 = &inp[9..18];
        let c1 = [
            (t1[0] + t1[3] + t1[6]) / 3.0,
            (t1[1] + t1[4] + t1[7]) / 3.0,
            (t1[2] + t1[5] + t1[8]) / 3.0,
        ];
        let c2 = [
            (t2[0] + t2[3] + t2[6]) / 3.0,
            (t2[1] + t2[4] + t2[7]) / 3.0,
            (t2[2] + t2[5] + t2[8]) / 3.0,
        ];
        let r1 = (0..3)
            .map(|v| {
                let dx = t1[3 * v] - c1[0];
                let dy = t1[3 * v + 1] - c1[1];
                let dz = t1[3 * v + 2] - c1[2];
                (dx * dx + dy * dy + dz * dz).sqrt()
            })
            .fold(0.0f32, f32::max);
        let r2 = (0..3)
            .map(|v| {
                let dx = t2[3 * v] - c2[0];
                let dy = t2[3 * v + 1] - c2[1];
                let dz = t2[3 * v + 2] - c2[2];
                (dx * dx + dy * dy + dz * dz).sqrt()
            })
            .fold(0.0f32, f32::max);
        let d = ((c1[0] - c2[0]).powi(2) + (c1[1] - c2[1]).powi(2) + (c1[2] - c2[2]).powi(2)).sqrt();
        out.push(if d <= r1 + r2 { 1.0 } else { 0.0 });
    }
    MapApp {
        name: "jmeint",
        items,
        iters_per_warp: 4,
        load_batch: 1,
        in_words: vec![9, 9],
        out_words: vec![1],
        compute: 30,
        index: scrambled_index,
        func: test,
        seeds: vec![(0x7321, -1.0, 1.0), (0x7322, -1.0, 1.0)],
        inputs: Vec::new(),
        outputs: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydram_gpu::run_functional;

    #[test]
    fn normal_cdf_sane() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-3);
        assert!(normal_cdf(3.0) > 0.99);
        assert!(normal_cdf(-3.0) < 0.01);
        // Symmetry.
        assert!((normal_cdf(1.3) + normal_cdf(-1.3) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn blackscholes_prices_are_positive_and_bounded() {
        let mut app = blackscholes(512);
        let (out, img) = run_functional(&mut app);
        assert_eq!(out.len(), 512);
        let spots = app.inputs[0].read(&img);
        for (i, &p) in out.iter().enumerate() {
            assert!(p >= -1e-3, "call price must be non-negative, item {i}: {p}");
            assert!(p <= spots[i] + 1e-3, "call ≤ spot, item {i}");
        }
    }

    #[test]
    fn inversek2j_angles_reach_target() {
        let mut app = inversek2j(256);
        let (out, img) = run_functional(&mut app);
        let coords = app.inputs[0].read(&img);
        // Forward kinematics of the solved angles must reproduce reachable
        // targets.
        let mut tested = 0;
        for i in 0..256 {
            let (x, y) = (coords[2 * i], coords[2 * i + 1]);
            let reach = (x * x + y * y).sqrt();
            if !(0.15..0.95).contains(&reach) {
                continue; // near-singular configurations lose precision
            }
            let (t1, t2) = (out[2 * i], out[2 * i + 1]);
            let fx = 0.5 * t1.cos() + 0.5 * (t1 + t2).cos();
            let fy = 0.5 * t1.sin() + 0.5 * (t1 + t2).sin();
            assert!(
                ((fx - x).powi(2) + (fy - y).powi(2)).sqrt() < 1e-2,
                "item {i}: ik error"
            );
            tested += 1;
        }
        assert!(tested > 100, "enough reachable targets");
    }

    #[test]
    fn newtonraph_finds_roots() {
        let mut app = newtonraph(256);
        let (out, img) = run_functional(&mut app);
        let coeffs = app.inputs[0].read(&img);
        let mut converged = 0;
        for i in 0..256 {
            let a = coeffs[4 * i] + coeffs[4 * i].signum() * 0.5;
            let (b, c, d) = (coeffs[4 * i + 1], coeffs[4 * i + 2], coeffs[4 * i + 3]);
            let x = out[i];
            let fx = a * x * x * x + b * x * x + c * x + d;
            if fx.abs() < 1e-2 {
                converged += 1;
            }
        }
        // Newton on cubics converges for the vast majority of random inputs.
        assert!(converged > 200, "only {converged} of 256 converged");
    }

    #[test]
    fn jmeint_flags_are_binary_and_mixed() {
        let mut app = jmeint(1024);
        let (out, _) = run_functional(&mut app);
        assert!(out.iter().all(|&v| v == 0.0 || v == 1.0));
        let hits = out.iter().filter(|&&v| v == 1.0).count();
        assert!(hits > 0 && hits < 1024, "both classes present ({hits})");
    }

    #[test]
    fn map_apps_annotate_all_inputs() {
        let mut app = jmeint(64);
        let (_, _) = run_functional(&mut app);
        for r in &app.inputs {
            assert!(app.approximable(r.base));
        }
        for r in &app.outputs {
            assert!(!app.approximable(r.base));
        }
    }
}
