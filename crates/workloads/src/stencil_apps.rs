//! Stencil workloads: 3DCONV, CONS (1-D convolution), srad, LPS (3-D Laplace
//! solver), meanfilter, laplacian (image sharpening).
//!
//! All of these stream strips of rows through [`Stencil2DProgram`] /
//! [`Stencil3DProgram`]; their row-buffer behaviour differs through working
//! set size, tap shape, and how many warps contend at the memory controller.

use crate::programs::{Stencil2DConfig, Stencil2DProgram, Stencil3DConfig, Stencil3DProgram, LANES};
use crate::util::Region;
use lazydram_gpu::{Kernel, MemoryImage, WarpProgram};

/// Shared scaffolding for the 2-D stencil apps.
pub struct Stencil2DApp {
    name: &'static str,
    w: usize,
    h: usize,
    taps: Vec<(i32, i32, f32)>,
    compute: u32,
    strips_per_warp: usize,
    post: Option<fn(f32, f32) -> f32>,
    /// Synthetic-image generator (defaults to seeded random).
    init: InitKind,
    input: Region,
    output_region: Region,
}

enum InitKind {
    Random { seed: u64, lo: f32, hi: f32 },
    /// A viewable synthetic test image: gradient + circles (for Figure 14).
    TestImage,
}

impl Stencil2DApp {
    #[allow(clippy::too_many_arguments)]
    fn new(
        name: &'static str,
        w: usize,
        h: usize,
        taps: Vec<(i32, i32, f32)>,
        compute: u32,
        strips_per_warp: usize,
        post: Option<fn(f32, f32) -> f32>,
        init: InitKind,
    ) -> Self {
        assert!(w.is_multiple_of(LANES), "width must be a multiple of 32");
        Self {
            name,
            w,
            h,
            taps,
            compute,
            strips_per_warp,
            post,
            init,
            input: Region::default(),
            output_region: Region::default(),
        }
    }

    /// Image width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Image height.
    pub fn height(&self) -> usize {
        self.h
    }
}

impl Kernel for Stencil2DApp {
    fn name(&self) -> &str {
        self.name
    }

    fn setup(&mut self, mem: &mut MemoryImage) {
        let words = self.w * self.h;
        self.input = match self.init {
            InitKind::Random { seed, lo, hi } => Region::alloc_smooth(mem, words, seed, lo, hi),
            InitKind::TestImage => {
                let r = Region::alloc(mem, words);
                for y in 0..self.h {
                    for x in 0..self.w {
                        // Gradient plus two bright disks: structured content
                        // so sharpening output is visually meaningful.
                        let mut v = 0.3 + 0.4 * (x as f32 / self.w as f32);
                        let d1 = ((x as f32 - self.w as f32 * 0.3).powi(2)
                            + (y as f32 - self.h as f32 * 0.4).powi(2))
                        .sqrt();
                        let d2 = ((x as f32 - self.w as f32 * 0.7).powi(2)
                            + (y as f32 - self.h as f32 * 0.6).powi(2))
                        .sqrt();
                        if d1 < self.w as f32 * 0.12 {
                            v = 0.9;
                        }
                        if d2 < self.w as f32 * 0.18 {
                            v = 0.1 + 0.05 * ((x + y) % 7) as f32;
                        }
                        mem.write_f32(r.base + ((y * self.w + x) * 4) as u64, v);
                    }
                }
                r
            }
        };
        self.output_region = Region::alloc(mem, words);
    }

    fn total_warps(&self) -> usize {
        let strips = self.w / LANES * self.h;
        strips.div_ceil(self.strips_per_warp)
    }

    fn program(&self, warp_id: usize) -> Box<dyn WarpProgram> {
        Box::new(Stencil2DProgram::new(
            warp_id,
            Stencil2DConfig {
                input: self.input.base,
                output: self.output_region.base,
                w: self.w,
                h: self.h,
                taps: self.taps.clone(),
                compute: self.compute,
                strips_per_warp: self.strips_per_warp,
                post: self.post,
            },
        ))
    }

    fn approximable(&self, addr: u64) -> bool {
        self.input.contains(addr)
    }

    fn output(&self, mem: &MemoryImage) -> Vec<f32> {
        self.output_region.read(mem)
    }
}

/// CONS — 1-D convolution (9-tap) over a long signal, modeled as a
/// single-row 2-D stencil.
pub fn cons(width: usize) -> Stencil2DApp {
    let taps: Vec<(i32, i32, f32)> = (-4..=4)
        .map(|dx| {
            let w = 0.2 * (1.0 - (dx as f32).abs() / 5.0);
            (0, dx, w)
        })
        .collect();
    Stencil2DApp::new(
        "CONS",
        width,
        1,
        taps,
        24,
        4,
        None,
        InitKind::Random { seed: 0xC025, lo: -1.0, hi: 1.0 },
    )
}

/// meanfilter — 3×3 box blur for noise reduction.
pub fn meanfilter(w: usize, h: usize) -> Stencil2DApp {
    let mut taps = Vec::new();
    for dy in -1..=1 {
        for dx in -1..=1 {
            taps.push((dy, dx, 1.0 / 9.0));
        }
    }
    Stencil2DApp::new(
        "meanfilter",
        w,
        h,
        taps,
        28,
        4,
        None,
        InitKind::Random { seed: 0x3EA7, lo: 0.0, hi: 1.0 },
    )
}

/// laplacian — 3×3 image sharpening (`5·c − N − S − E − W`), run on a
/// structured synthetic image so Figure 14's before/after comparison is
/// visually meaningful.
pub fn laplacian(w: usize, h: usize) -> Stencil2DApp {
    let taps = vec![
        (0, 0, 5.0),
        (-1, 0, -1.0),
        (1, 0, -1.0),
        (0, -1, -1.0),
        (0, 1, -1.0),
    ];
    Stencil2DApp::new("laplacian", w, h, taps, 24, 4, None, InitKind::TestImage)
}

/// srad — speckle-reducing anisotropic diffusion step: a 4-neighbour
/// Laplacian modulated by a nonlinear diffusion coefficient of the center.
pub fn srad(w: usize, h: usize) -> Stencil2DApp {
    fn diffuse(lap: f32, center: f32) -> f32 {
        // q ≈ |∇²I| / (1 + I): bounded nonlinear coefficient, then one
        // explicit diffusion update.
        let q = lap.abs() / (1.0 + center.abs());
        let c = 1.0 / (1.0 + q * q);
        center + 0.25 * c * lap
    }
    let taps = vec![
        (0, 0, -4.0),
        (-1, 0, 1.0),
        (1, 0, 1.0),
        (0, -1, 1.0),
        (0, 1, 1.0),
    ];
    Stencil2DApp::new(
        "srad",
        w,
        h,
        taps,
        40,
        4,
        Some(diffuse),
        InitKind::Random { seed: 0x52AD, lo: 0.0, hi: 2.0 },
    )
}

/// Shared scaffolding for the 3-D stencil apps.
pub struct Stencil3DApp {
    name: &'static str,
    w: usize,
    h: usize,
    d: usize,
    taps: Vec<(i32, i32, i32, f32)>,
    strips_per_warp: usize,
    seed: u64,
    range: (f32, f32),
    input: Region,
    output_region: Region,
}

impl Kernel for Stencil3DApp {
    fn name(&self) -> &str {
        self.name
    }

    fn setup(&mut self, mem: &mut MemoryImage) {
        let words = self.w * self.h * self.d;
        self.input = Region::alloc_smooth(mem, words, self.seed, self.range.0, self.range.1);
        self.output_region = Region::alloc(mem, words);
    }

    fn total_warps(&self) -> usize {
        let strips = self.w / LANES * self.h * self.d;
        strips.div_ceil(self.strips_per_warp)
    }

    fn program(&self, warp_id: usize) -> Box<dyn WarpProgram> {
        Box::new(Stencil3DProgram::new(
            warp_id,
            Stencil3DConfig {
                input: self.input.base,
                output: self.output_region.base,
                w: self.w,
                h: self.h,
                d: self.d,
                taps: self.taps.clone(),
                strips_per_warp: self.strips_per_warp,
            },
        ))
    }

    fn approximable(&self, addr: u64) -> bool {
        self.input.contains(addr)
    }

    fn output(&self, mem: &MemoryImage) -> Vec<f32> {
        self.output_region.read(mem)
    }
}

/// 3DCONV — 3×3×3 convolution over a volume.
pub fn conv3d(w: usize, h: usize, d: usize) -> Stencil3DApp {
    let mut taps = Vec::new();
    for dz in -1..=1i32 {
        for dy in -1..=1i32 {
            for dx in -1..=1i32 {
                let dist = (dz.abs() + dy.abs() + dx.abs()) as f32;
                taps.push((dz, dy, dx, (4.0 - dist) / 54.0));
            }
        }
    }
    Stencil3DApp {
        name: "3DCONV",
        w,
        h,
        d,
        taps,
        strips_per_warp: 4,
        seed: 0x3DC0,
        range: (0.5, 2.5),
        input: Region::default(),
        output_region: Region::default(),
    }
}

/// LPS — one Jacobi sweep of a 3-D Laplace solver:
/// `u' = u + ω/6 · (Σ neighbours − 6u)`.
pub fn lps(w: usize, h: usize, d: usize) -> Stencil3DApp {
    let omega = 0.8f32;
    let mut taps = vec![(0, 0, 0, 1.0 - omega)];
    for (dz, dy, dx) in [
        (-1, 0, 0),
        (1, 0, 0),
        (0, -1, 0),
        (0, 1, 0),
        (0, 0, -1),
        (0, 0, 1),
    ] {
        taps.push((dz, dy, dx, omega / 6.0));
    }
    Stencil3DApp {
        name: "LPS",
        w,
        h,
        d,
        taps,
        strips_per_warp: 4,
        seed: 0x1A95,
        range: (1.0, 3.0),
        input: Region::default(),
        output_region: Region::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydram_gpu::run_functional;

    #[test]
    fn cons_convolves_signal() {
        let mut app = cons(1024);
        let (out, img) = run_functional(&mut app);
        assert_eq!(out.len(), 1024);
        // Interior sample: weighted sum of the 9-neighbourhood.
        let inp = app.input.read(&img);
        let x = 100usize;
        let expect: f32 = (-4i32..=4)
            .map(|dx| 0.2 * (1.0 - (dx as f32).abs() / 5.0) * inp[(x as i32 + dx) as usize])
            .sum();
        assert!((out[x] - expect).abs() < 1e-4);
    }

    #[test]
    fn meanfilter_averages() {
        let mut app = meanfilter(64, 8);
        let (out, img) = run_functional(&mut app);
        let inp = app.input.read(&img);
        let w = 64;
        let (x, y) = (10usize, 3usize);
        let mut expect = 0.0;
        for dy in -1i32..=1 {
            for dx in -1i32..=1 {
                expect += inp[(y as i32 + dy) as usize * w + (x as i32 + dx) as usize] / 9.0;
            }
        }
        assert!((out[y * w + x] - expect).abs() < 1e-5);
        // A box blur of values in [0,1) stays in [0,1).
        assert!(out.iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn laplacian_preserves_flat_regions() {
        let mut app = laplacian(64, 64);
        let (out, img) = run_functional(&mut app);
        // In a perfectly flat area, 5c − 4 neighbours = c.
        let inp = app.input.read(&img);
        let w = 64;
        // Find an interior pixel whose 4-neighbourhood is flat.
        let mut checked = false;
        for y in 1..63usize {
            for x in 1..63usize {
                let c = inp[y * w + x];
                if [inp[(y - 1) * w + x], inp[(y + 1) * w + x], inp[y * w + x - 1], inp[y * w + x + 1]]
                    .iter()
                    .all(|&v| (v - c).abs() < 1e-7)
                {
                    assert!((out[y * w + x] - c).abs() < 1e-5);
                    checked = true;
                }
            }
        }
        assert!(checked, "test image must contain a flat region");
    }

    #[test]
    fn srad_is_bounded_diffusion() {
        let mut app = srad(64, 16);
        let (out, _) = run_functional(&mut app);
        assert_eq!(out.len(), 64 * 16);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn conv3d_interior_matches_reference() {
        let mut app = conv3d(32, 6, 6);
        let (out, img) = run_functional(&mut app);
        let inp = app.input.read(&img);
        let (w, h) = (32usize, 6usize);
        let (x, y, z) = (16usize, 3usize, 3usize);
        let mut expect = 0.0;
        for dz in -1i32..=1 {
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let dist = (dz.abs() + dy.abs() + dx.abs()) as f32;
                    let idx = ((z as i32 + dz) as usize * h + (y as i32 + dy) as usize) * w
                        + (x as i32 + dx) as usize;
                    expect += (4.0 - dist) / 54.0 * inp[idx];
                }
            }
        }
        assert!((out[(z * h + y) * w + x] - expect).abs() < 1e-4);
    }

    #[test]
    fn lps_fixed_point_on_harmonic_input() {
        // A constant field is harmonic: the Jacobi update must leave it
        // unchanged (neighbour average equals the value itself).
        let mut app = lps(32, 4, 4);
        // Overwrite the random init with a constant field via setup-then-patch.
        let mut img = MemoryImage::new();
        app.setup(&mut img);
        for i in 0..app.input.words {
            img.write_f32(app.input.base + (i * 4) as u64, 2.5);
        }
        for wid in 0..app.total_warps() {
            let mut p = app.program(wid);
            let mut buf = lazydram_gpu::OpBuf::new();
            let mut loaded: Vec<f32> = Vec::new();
            loop {
                p.next(&loaded, &mut buf);
                match buf.kind() {
                    lazydram_gpu::OpKind::Compute(_) => loaded.clear(),
                    lazydram_gpu::OpKind::Load => {
                        loaded.clear();
                        loaded.extend(buf.addrs().iter().map(|&x| img.read_f32(x)));
                    }
                    lazydram_gpu::OpKind::Store => {
                        for &(a, v) in buf.writes() {
                            img.write_f32(a, v);
                        }
                        loaded.clear();
                    }
                    lazydram_gpu::OpKind::Finished => break,
                }
            }
        }
        let out = app.output(&img);
        assert!(out.iter().all(|&v| (v - 2.5).abs() < 1e-5));
    }

    #[test]
    fn warp_counts_cover_all_strips() {
        let app = meanfilter(64, 8);
        // 2 strips/row × 8 rows = 16 strips; 4 per warp → 4 warps.
        assert_eq!(app.total_warps(), 4);
        let app3 = conv3d(32, 4, 4);
        assert_eq!(app3.total_warps(), 4);
    }
}
