//! The 20-application evaluation suite (Table II of the paper) and
//! convenience runners.

use crate::{axbench, polybench, sdk, stencil_apps};
use crate::util::{run_sequence_functional, scaled, scaled_dim2, scaled_dim3};
use lazydram_gpu::{Kernel, RunResult, SimLimits};
use lazydram_common::{GpuConfig, SchedConfig};

/// One application of the evaluation suite.
#[derive(Clone)]
pub struct AppSpec {
    /// Paper abbreviation (e.g. `"GEMM"`).
    pub name: &'static str,
    /// Result group of Section V (1–4). Groups 1–3 are error tolerant
    /// (AMS applies); group 4 is delay-only.
    pub group: u8,
    /// One-line description from Table II.
    pub description: &'static str,
    builder: fn(f64) -> Vec<Box<dyn Kernel>>,
}

impl std::fmt::Debug for AppSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppSpec")
            .field("name", &self.name)
            .field("group", &self.group)
            .finish()
    }
}

impl AppSpec {
    /// Builds the app's kernel launches at a work scale (1.0 = paper-sized
    /// inputs for this reproduction; tests use ≤ 0.1).
    pub fn launches(&self, scale: f64) -> Vec<Box<dyn Kernel>> {
        (self.builder)(scale)
    }

    /// `true` when AMS-based schemes are applicable (groups 1–3).
    pub fn error_tolerant(&self) -> bool {
        self.group != 4
    }
}

fn b_gemm(s: f64) -> Vec<Box<dyn Kernel>> {
    vec![Box::new(polybench::Gemm::new(scaled_dim2(384, s, 32)))]
}
fn b_2mm(s: f64) -> Vec<Box<dyn Kernel>> {
    polybench::two_mm(scaled_dim2(256, s, 32))
}
fn b_3mm(s: f64) -> Vec<Box<dyn Kernel>> {
    polybench::three_mm(scaled_dim2(224, s, 32))
}
fn b_mvt(s: f64) -> Vec<Box<dyn Kernel>> {
    polybench::mvt(scaled_dim2(1024, s, 32))
}
fn b_atax(s: f64) -> Vec<Box<dyn Kernel>> {
    polybench::atax(scaled_dim2(1152, s, 32))
}
fn b_bicg(s: f64) -> Vec<Box<dyn Kernel>> {
    polybench::bicg(scaled_dim2(896, s, 32))
}
fn b_3dconv(s: f64) -> Vec<Box<dyn Kernel>> {
    let d = scaled_dim3(64, s, 8);
    vec![Box::new(stencil_apps::conv3d(scaled_dim3(64, s, 32), d, d))]
}
fn b_cons(s: f64) -> Vec<Box<dyn Kernel>> {
    vec![Box::new(stencil_apps::cons(scaled(262_144, s, 128)))]
}
fn b_srad(s: f64) -> Vec<Box<dyn Kernel>> {
    vec![Box::new(stencil_apps::srad(scaled_dim2(512, s, 32), scaled_dim2(512, s, 8)))]
}
fn b_lps(s: f64) -> Vec<Box<dyn Kernel>> {
    let d = scaled_dim3(64, s, 8);
    vec![Box::new(stencil_apps::lps(scaled_dim3(64, s, 32), d, d))]
}
fn b_meanfilter(s: f64) -> Vec<Box<dyn Kernel>> {
    vec![Box::new(stencil_apps::meanfilter(scaled_dim2(512, s, 32), scaled_dim2(512, s, 8)))]
}
fn b_laplacian(s: f64) -> Vec<Box<dyn Kernel>> {
    vec![Box::new(stencil_apps::laplacian(scaled_dim2(512, s, 32), scaled_dim2(512, s, 8)))]
}
fn b_blackscholes(s: f64) -> Vec<Box<dyn Kernel>> {
    vec![Box::new(axbench::blackscholes(scaled(262_144, s, 256)))]
}
fn b_inversek2j(s: f64) -> Vec<Box<dyn Kernel>> {
    vec![Box::new(axbench::inversek2j(scaled(262_144, s, 256)))]
}
fn b_newtonraph(s: f64) -> Vec<Box<dyn Kernel>> {
    vec![Box::new(axbench::newtonraph(scaled(131_072, s, 256)))]
}
fn b_jmeint(s: f64) -> Vec<Box<dyn Kernel>> {
    vec![Box::new(axbench::jmeint(scaled(32_768, s, 128)))]
}
fn b_ray(s: f64) -> Vec<Box<dyn Kernel>> {
    vec![Box::new(sdk::Ray::new(
        scaled_dim2(256, s, 32),
        scaled_dim2(256, s, 8),
        scaled(1_048_576, s, 1024),
    ))]
}
fn b_fwt(s: f64) -> Vec<Box<dyn Kernel>> {
    vec![Box::new(sdk::Fwt::new(scaled(524_288, s, 512), 512))]
}
fn b_scp(s: f64) -> Vec<Box<dyn Kernel>> {
    vec![Box::new(sdk::Scp::new(scaled(16_384, s, 32), 32))]
}
fn b_sla(s: f64) -> Vec<Box<dyn Kernel>> {
    vec![Box::new(sdk::Sla::new(scaled(2_097_152, s, 1024), 1024))]
}

/// The full 20-application suite in Table II order (grouped by thrashing
/// level in the paper; kept in a stable, alphabetical-by-source order here).
pub fn suite() -> Vec<AppSpec> {
    vec![
        AppSpec { name: "RAY", group: 3, description: "Ray tracing", builder: b_ray },
        AppSpec { name: "inversek2j", group: 3, description: "Inverse kinematics for 2-joint arm", builder: b_inversek2j },
        AppSpec { name: "newtonraph", group: 4, description: "Equation solver", builder: b_newtonraph },
        AppSpec { name: "FWT", group: 4, description: "Fast Walsh Transform", builder: b_fwt },
        AppSpec { name: "MVT", group: 2, description: "Matrix Vector Product and Transpose", builder: b_mvt },
        AppSpec { name: "jmeint", group: 2, description: "Triangle intersection detection", builder: b_jmeint },
        AppSpec { name: "ATAX", group: 4, description: "Matrix Transpose, Vector Multiplication", builder: b_atax },
        AppSpec { name: "3DCONV", group: 2, description: "3D Convolution", builder: b_3dconv },
        AppSpec { name: "CONS", group: 4, description: "1D Convolution", builder: b_cons },
        AppSpec { name: "srad", group: 4, description: "Speckle Reducing Anisotropic Diffusion", builder: b_srad },
        AppSpec { name: "LPS", group: 1, description: "3D Laplace Solver", builder: b_lps },
        AppSpec { name: "BICG", group: 1, description: "BiCGStab Linear Solver", builder: b_bicg },
        AppSpec { name: "SCP", group: 1, description: "Scalar products", builder: b_scp },
        AppSpec { name: "GEMM", group: 4, description: "Matrix Multiplication", builder: b_gemm },
        AppSpec { name: "blackscholes", group: 4, description: "Black-Scholes Option Pricing", builder: b_blackscholes },
        AppSpec { name: "2MM", group: 4, description: "2 Matrix Multiplications", builder: b_2mm },
        AppSpec { name: "3MM", group: 3, description: "3 Matrix Multiplications", builder: b_3mm },
        AppSpec { name: "SLA", group: 4, description: "Scan of Large Arrays", builder: b_sla },
        AppSpec { name: "meanfilter", group: 3, description: "Convolution Filter for Noise Reduction", builder: b_meanfilter },
        AppSpec { name: "laplacian", group: 3, description: "Image sharpening filter", builder: b_laplacian },
    ]
}

/// Looks an application up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<AppSpec> {
    suite().into_iter().find(|a| a.name.eq_ignore_ascii_case(name))
}

/// All applications in a given result group (1–4).
pub fn group(g: u8) -> Vec<AppSpec> {
    suite().into_iter().filter(|a| a.group == g).collect()
}

/// Runs one application end to end under a scheduling policy.
///
/// Convenience wrapper over [`SimBuilder`](crate::builder::SimBuilder) for
/// tests and one-off probes; anything that wants non-default limits, trace
/// capture or checkpointing should use the builder directly.
pub fn run_app(app: &AppSpec, cfg: &GpuConfig, sched: &SchedConfig, scale: f64) -> RunResult {
    run_app_limited(app, cfg, sched, scale, SimLimits::default())
}

/// [`run_app`] with explicit safety limits.
pub fn run_app_limited(
    app: &AppSpec,
    cfg: &GpuConfig,
    sched: &SchedConfig,
    scale: f64,
    limits: SimLimits,
) -> RunResult {
    crate::builder::SimBuilder::new(app)
        .gpu(cfg.clone())
        .sched(sched.clone(), "ad-hoc")
        .scale(scale)
        .limits(limits)
        .build()
        .run()
}

/// Computes the application's *exact* output at a scale (functional
/// execution — no timing, no approximation). This equals the timed
/// baseline's output and is the reference for application error.
pub fn exact_output(app: &AppSpec, scale: f64) -> Vec<f32> {
    let mut launches = app.launches(scale);
    run_sequence_functional(&mut launches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twenty_apps_with_unique_names() {
        let s = suite();
        assert_eq!(s.len(), 20);
        let names: std::collections::HashSet<_> = s.iter().map(|a| a.name).collect();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn groups_match_table_ii() {
        assert_eq!(group(1).iter().map(|a| a.name).collect::<Vec<_>>(), vec!["LPS", "BICG", "SCP"]);
        assert_eq!(group(2).len(), 3);
        assert_eq!(group(3).len(), 5);
        assert_eq!(group(4).len(), 9);
        assert!(group(4).iter().all(|a| !a.error_tolerant()));
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert_eq!(by_name("gemm").unwrap().name, "GEMM");
        assert_eq!(by_name("LAPLACIAN").unwrap().name, "laplacian");
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn every_app_builds_and_runs_functionally_at_tiny_scale() {
        for app in suite() {
            let out = exact_output(&app, 0.02);
            assert!(!out.is_empty(), "{} produced no output", app.name);
            assert!(
                out.iter().all(|v| v.is_finite()),
                "{} produced non-finite output",
                app.name
            );
        }
    }

    #[test]
    fn exact_output_is_deterministic() {
        let app = by_name("GEMM").unwrap();
        assert_eq!(exact_output(&app, 0.02), exact_output(&app, 0.02));
    }
}
