//! CUDA-SDK-style workloads: RAY (ray tracing), FWT (fast Walsh transform),
//! SCP (scalar products), SLA (scan of large arrays).

use crate::programs::{FwtConfig, FwtProgram, ScanConfig, ScanProgram, ScpConfig, ScpProgram, LANES};
use crate::util::{pow2_at_most, Region};
use lazydram_gpu::{Kernel, Loader, MemoryImage, OpBuf, Saver, SnapError, SnapResult, WarpProgram};

// ---------------------------------------------------------------------------
// RAY
// ---------------------------------------------------------------------------

/// RAY — a small sphere-scene ray caster. Each pixel's primary ray is
/// intersected with every sphere; the closest hit produces a data-dependent
/// *scatter* read into a large environment map (the irradiance lookup of the
/// original benchmark), which is what makes RAY a high-thrashing workload.
pub struct Ray {
    w: usize,
    h: usize,
    nspheres: usize,
    env_words: usize,
    spheres: Region,
    env: Region,
    img: Region,
}

impl Ray {
    /// Creates a `w × h` render (width a multiple of 32) over an environment
    /// map of `env_words` floats.
    pub fn new(w: usize, h: usize, env_words: usize) -> Self {
        assert!(w.is_multiple_of(LANES));
        Self {
            w,
            h,
            nspheres: 8,
            env_words,
            spheres: Region::default(),
            env: Region::default(),
            img: Region::default(),
        }
    }
}

impl Kernel for Ray {
    fn name(&self) -> &str {
        "RAY"
    }

    fn setup(&mut self, mem: &mut MemoryImage) {
        // Spheres: (cx, cy, cz, r) each, placed in front of the camera.
        self.spheres = Region::alloc_smooth(mem, self.nspheres * 4, 0x5A7E, -1.0, 1.0);
        for s in 0..self.nspheres {
            let b = self.spheres.base + (s * 4 * 4) as u64;
            let cz = 2.0 + 0.5 * s as f32;
            mem.write_f32(b + 8, cz);
            let r = 0.25 + 0.05 * (s % 4) as f32;
            mem.write_f32(b + 12, r);
        }
        self.env = Region::alloc_smooth(mem, self.env_words, 0x5A7F, 0.0, 1.0);
        self.img = Region::alloc(mem, self.w * self.h);
    }

    fn total_warps(&self) -> usize {
        self.w * self.h / LANES
    }

    fn program(&self, warp_id: usize) -> Box<dyn WarpProgram> {
        Box::new(RayProgram {
            k: RayParams {
                w: self.w,
                h: self.h,
                nspheres: self.nspheres,
                spheres: self.spheres.base,
                env: self.env.base,
                env_words: self.env_words,
                img: self.img.base,
            },
            warp_id,
            stage: RayStage::LoadSpheres,
            sphere_data: Vec::new(),
            env_idx: [0; LANES],
            base_shade: [0.0; LANES],
        })
    }

    fn approximable(&self, addr: u64) -> bool {
        // The environment map is annotated; sphere geometry is not (hitting
        // wrong geometry would be a structural error, cf. pointer safety).
        self.env.contains(addr)
    }

    fn output(&self, mem: &MemoryImage) -> Vec<f32> {
        self.img.read(mem)
    }
}

#[derive(Clone, Copy)]
struct RayParams {
    w: usize,
    h: usize,
    nspheres: usize,
    spheres: u64,
    env: u64,
    env_words: usize,
    img: u64,
}

enum RayStage {
    LoadSpheres,
    Intersect,
    LoadEnv,
    Store,
    Done,
}

struct RayProgram {
    k: RayParams,
    warp_id: usize,
    stage: RayStage,
    sphere_data: Vec<f32>,
    env_idx: [usize; LANES],
    base_shade: [f32; LANES],
}

impl WarpProgram for RayProgram {
    fn next(&mut self, loaded: &[f32], out: &mut OpBuf) {
        match self.stage {
            RayStage::LoadSpheres => {
                self.stage = RayStage::Intersect;
                let n = self.k.nspheres * 4;
                out.begin_load()
                    .extend((0..n).map(|i| self.k.spheres + (i * 4) as u64));
            }
            RayStage::Intersect => {
                self.sphere_data.clear();
                self.sphere_data.extend_from_slice(loaded);
                // Per-lane primary ray through its pixel.
                let first_pixel = self.warp_id * LANES;
                for lane in 0..LANES {
                    let p = first_pixel + lane;
                    let (px, py) = (p % self.k.w, p / self.k.w);
                    let dx = (px as f32 / self.k.w as f32) * 2.0 - 1.0;
                    let dy = (py as f32 / self.k.h as f32) * 2.0 - 1.0;
                    let inv = 1.0 / (dx * dx + dy * dy + 1.0).sqrt();
                    let dir = [dx * inv, dy * inv, inv];
                    let mut best_t = f32::INFINITY;
                    let mut best_s = usize::MAX;
                    for s in 0..self.k.nspheres {
                        let c = &self.sphere_data[s * 4..s * 4 + 4];
                        let (r, oc) = (c[3], [c[0], c[1], c[2]]);
                        let b = oc[0] * dir[0] + oc[1] * dir[1] + oc[2] * dir[2];
                        let disc = b * b - (oc[0] * oc[0] + oc[1] * oc[1] + oc[2] * oc[2]) + r * r;
                        if disc > 0.0 {
                            let t = b - disc.sqrt();
                            if t > 0.0 && t < best_t {
                                best_t = t;
                                best_s = s;
                            }
                        }
                    }
                    if best_s == usize::MAX {
                        // Miss: environment lookup indexed by ray direction.
                        let u = ((dir[0] * 0.5 + 0.5) * 1021.0) as usize;
                        let v = ((dir[1] * 0.5 + 0.5) * 997.0) as usize;
                        self.env_idx[lane] = (u * 131 + v * 7919) % self.k.env_words;
                        self.base_shade[lane] = 0.1;
                    } else {
                        // Hit: irradiance lookup at a data-dependent address.
                        let hx = dir[0] * best_t;
                        let hy = dir[1] * best_t;
                        let key = (hx.to_bits() >> 8) as usize ^ ((hy.to_bits() >> 6) as usize)
                            ^ (best_s * 0x9E37);
                        self.env_idx[lane] = key % self.k.env_words;
                        self.base_shade[lane] = 0.3 + 0.08 * best_s as f32;
                    }
                }
                self.stage = RayStage::LoadEnv;
                out.set_compute(64);
            }
            RayStage::LoadEnv => {
                self.stage = RayStage::Store;
                out.begin_load()
                    .extend((0..LANES).map(|lane| self.k.env + (self.env_idx[lane] * 4) as u64));
            }
            RayStage::Store => {
                let first_pixel = self.warp_id * LANES;
                let writes = out.begin_store();
                for (lane, &env) in loaded.iter().enumerate().take(LANES) {
                    let color = (self.base_shade[lane] + 0.6 * env).min(1.0);
                    writes.push((self.k.img + ((first_pixel + lane) * 4) as u64, color));
                }
                self.stage = RayStage::Done;
            }
            RayStage::Done => out.set_finished(),
        }
    }

    fn save_state(&self, s: &mut Saver) {
        s.u8(
            "stage",
            match self.stage {
                RayStage::LoadSpheres => 0,
                RayStage::Intersect => 1,
                RayStage::LoadEnv => 2,
                RayStage::Store => 3,
                RayStage::Done => 4,
            },
        );
        s.f32s("sphere_data", &self.sphere_data);
        s.seq("env_idx", self.env_idx.len());
        for &i in &self.env_idx {
            s.usize("i", i);
        }
        s.f32s("base_shade", &self.base_shade);
    }

    fn load_state(&mut self, l: &mut Loader<'_>) -> SnapResult<()> {
        self.stage = match l.u8("stage")? {
            0 => RayStage::LoadSpheres,
            1 => RayStage::Intersect,
            2 => RayStage::LoadEnv,
            3 => RayStage::Store,
            4 => RayStage::Done,
            x => {
                return Err(SnapError::Malformed {
                    label: "stage".into(),
                    why: format!("unknown ray stage {x}"),
                })
            }
        };
        l.f32s("sphere_data", &mut self.sphere_data)?;
        let n = l.seq("env_idx", 8)?;
        if n != self.env_idx.len() {
            return Err(SnapError::Malformed {
                label: "env_idx".into(),
                why: format!("expected {} elements, found {n}", self.env_idx.len()),
            });
        }
        for slot in self.env_idx.iter_mut() {
            *slot = l.usize("i")?;
        }
        l.f32_array("base_shade", &mut self.base_shade)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// FWT / SCP / SLA
// ---------------------------------------------------------------------------

/// FWT — block-local fast Walsh–Hadamard transform, in place over global
/// memory (the batched-segment formulation of the SDK's fastWalshTransform).
pub struct Fwt {
    words: usize,
    segment: usize,
    data: Region,
}

impl Fwt {
    /// Creates a transform over `words` elements in segments of `segment`
    /// (both rounded to powers of two).
    pub fn new(words: usize, segment: usize) -> Self {
        let segment = pow2_at_most(segment, 64);
        let words = pow2_at_most(words, segment);
        Self {
            words,
            segment,
            data: Region::default(),
        }
    }
}

impl Kernel for Fwt {
    fn name(&self) -> &str {
        "FWT"
    }

    fn setup(&mut self, mem: &mut MemoryImage) {
        self.data = Region::alloc_smooth(mem, self.words, 0xF377, -1.0, 1.0);
    }

    fn total_warps(&self) -> usize {
        self.words / self.segment
    }

    fn program(&self, warp_id: usize) -> Box<dyn WarpProgram> {
        Box::new(FwtProgram::new(
            warp_id,
            FwtConfig {
                data: self.data.base,
                segment: self.segment,
            },
        ))
    }

    fn approximable(&self, addr: u64) -> bool {
        // In-place data is both read and written; rows holding pending writes
        // are excluded by the AMS safety check at the controller, so the
        // annotation itself is safe.
        self.data.contains(addr)
    }

    fn output(&self, mem: &MemoryImage) -> Vec<f32> {
        self.data.read(mem)
    }
}

/// SCP — scalar products of vector pairs (one dot product per thread,
/// vectors strided in memory: the classic uncoalesced SDK access pattern).
pub struct Scp {
    pairs: usize,
    veclen: usize,
    a: Region,
    b: Region,
    out: Region,
}

impl Scp {
    /// Creates `pairs` dot products over `veclen`-element vectors.
    pub fn new(pairs: usize, veclen: usize) -> Self {
        Self {
            pairs,
            veclen,
            a: Region::default(),
            b: Region::default(),
            out: Region::default(),
        }
    }
}

impl Kernel for Scp {
    fn name(&self) -> &str {
        "SCP"
    }

    fn setup(&mut self, mem: &mut MemoryImage) {
        self.a = Region::alloc_smooth(mem, self.pairs * self.veclen, 0x5C91, 0.5, 1.5);
        self.b = Region::alloc_smooth(mem, self.pairs * self.veclen, 0x5C92, 0.5, 1.5);
        self.out = Region::alloc(mem, self.pairs);
    }

    fn total_warps(&self) -> usize {
        self.pairs.div_ceil(LANES)
    }

    fn program(&self, warp_id: usize) -> Box<dyn WarpProgram> {
        Box::new(ScpProgram::new(
            warp_id,
            ScpConfig {
                a: self.a.base,
                b: self.b.base,
                out: self.out.base,
                veclen: self.veclen,
                pairs: self.pairs,
            },
        ))
    }

    fn approximable(&self, addr: u64) -> bool {
        self.a.contains(addr) || self.b.contains(addr)
    }

    fn output(&self, mem: &MemoryImage) -> Vec<f32> {
        self.out.read(mem)
    }
}

/// SLA — scan (inclusive prefix sum) of a large array in warp-local
/// segments: pure streaming loads and stores.
pub struct Sla {
    words: usize,
    segment: usize,
    input: Region,
    output_region: Region,
}

impl Sla {
    /// Creates a scan over `words` elements in segments of `segment`
    /// (a multiple of 32).
    pub fn new(words: usize, segment: usize) -> Self {
        assert!(segment.is_multiple_of(LANES));
        let words = words / segment * segment;
        Self {
            words,
            segment,
            input: Region::default(),
            output_region: Region::default(),
        }
    }
}

impl Kernel for Sla {
    fn name(&self) -> &str {
        "SLA"
    }

    fn setup(&mut self, mem: &mut MemoryImage) {
        self.input = Region::alloc_smooth(mem, self.words, 0x51A0, -1.0, 1.0);
        self.output_region = Region::alloc(mem, self.words);
    }

    fn total_warps(&self) -> usize {
        self.words / self.segment
    }

    fn program(&self, warp_id: usize) -> Box<dyn WarpProgram> {
        Box::new(ScanProgram::new(
            warp_id,
            ScanConfig {
                input: self.input.base,
                output: self.output_region.base,
                segment: self.segment,
            },
        ))
    }

    fn approximable(&self, addr: u64) -> bool {
        self.input.contains(addr)
    }

    fn output(&self, mem: &MemoryImage) -> Vec<f32> {
        self.output_region.read(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydram_gpu::run_functional;

    #[test]
    fn ray_renders_bounded_colors() {
        let mut app = Ray::new(64, 32, 4096);
        let (out, _) = run_functional(&mut app);
        assert_eq!(out.len(), 64 * 32);
        assert!(out.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // The scene must produce variation (hits and misses shade apart).
        let mn = out.iter().cloned().fold(f32::INFINITY, f32::min);
        let mx = out.iter().cloned().fold(0.0f32, f32::max);
        assert!(mx - mn > 0.1, "flat image: {mn}..{mx}");
    }

    #[test]
    fn fwt_preserves_energy() {
        // Walsh–Hadamard is orthogonal up to a factor: ‖Wx‖² = seg·‖x‖²
        // per segment.
        let mut app = Fwt::new(512, 128);
        let mut ref_img = MemoryImage::new();
        app.setup(&mut ref_img);
        let before = app.data.read(&ref_img);
        // Fresh run through the functional executor (new image, same seed).
        let mut app2 = Fwt::new(512, 128);
        let (after, _) = run_functional(&mut app2);
        for seg in 0..4 {
            let e_in: f32 = before[seg * 128..(seg + 1) * 128].iter().map(|v| v * v).sum();
            let e_out: f32 = after[seg * 128..(seg + 1) * 128].iter().map(|v| v * v).sum();
            assert!(
                (e_out - 128.0 * e_in).abs() / (128.0 * e_in) < 1e-3,
                "segment {seg}: {e_out} vs {}",
                128.0 * e_in
            );
        }
    }

    #[test]
    fn scp_matches_cpu_dots() {
        let mut app = Scp::new(64, 48);
        let (out, img) = run_functional(&mut app);
        let a = app.a.read(&img);
        let b = app.b.read(&img);
        for p in [0usize, 33, 63] {
            let expect: f32 = (0..48).map(|j| a[p * 48 + j] * b[p * 48 + j]).sum();
            assert!((out[p] - expect).abs() < 1e-3);
        }
    }

    #[test]
    fn sla_is_segmented_prefix_sum() {
        let mut app = Sla::new(256, 64);
        let (out, img) = run_functional(&mut app);
        let inp = app.input.read(&img);
        for seg in 0..4 {
            let mut acc = 0.0f32;
            for i in 0..64 {
                acc += inp[seg * 64 + i];
                assert!((out[seg * 64 + i] - acc).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn fwt_rounds_sizes_to_powers_of_two() {
        let f = Fwt::new(1000, 100);
        assert_eq!(f.segment, 64);
        assert_eq!(f.words, 512);
    }
}
