//! [`SimBuilder`] — the one front door for running an application on the
//! timed simulator.
//!
//! Every consumer (figure harness, debug binary, example, CLI, test) builds
//! runs the same way:
//!
//! ```no_run
//! use lazydram_common::Scheme;
//! use lazydram_workloads::{by_name, SimBuilder};
//!
//! let app = by_name("GEMM").expect("known app");
//! let run = SimBuilder::new(&app).scheme(Scheme::DynCombo).scale(0.5).build();
//! let result = run.run();
//! println!("IPC {:.2}", result.stats.ipc());
//! ```
//!
//! Because every option funnels through the builder, checkpoint/resume
//! lands in exactly one place: attach a [`CheckpointPolicy`] and
//! [`SimRun::run`] transparently pauses every `every` cycles, parks the
//! serialized [`Checkpoint`] in the policy's directory (atomic
//! write-then-rename), and — when a matching checkpoint is already on disk,
//! e.g. after a killed sweep — resumes from it instead of starting at cycle
//! 0. The bit-identical restore guarantee of
//! [`Simulator::resume`](lazydram_gpu::Simulator::resume) makes the
//! recovery invisible in the results.

use crate::suite::AppSpec;
use lazydram_common::snap::digest;
use lazydram_common::{BackendKind, DramPreset, GpuConfig, SchedConfig, Scheme};
use lazydram_gpu::{
    Checkpoint, Kernel, ReplayReport, RunOutcome, RunResult, SimLimits, Simulator, SnapResult,
    Trace, TraceError,
};
use std::path::PathBuf;

/// Default checkpoint interval in core cycles when `LAZYDRAM_CHECKPOINT_DIR`
/// is set without `LAZYDRAM_CHECKPOINT_EVERY`.
///
/// Large enough that serialization is a rounding error next to simulation
/// (well under the 5 % overhead budget), small enough that a killed
/// multi-minute sweep loses at most a modest slice of work.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 5_000_000;

/// Parses a `LAZYDRAM_CHECKPOINT_EVERY` value: a positive cycle count.
///
/// Kept separate from [`CheckpointPolicy::from_env`] so the validation is
/// unit-testable, following the `parse_scale`/`parse_no_skip` pattern.
pub fn parse_checkpoint_every(s: &str) -> Result<u64, String> {
    match s.trim().parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "LAZYDRAM_CHECKPOINT_EVERY={s:?} is not a positive cycle count; \
             expected e.g. 100000 or 5000000"
        )),
    }
}

/// Parses a `LAZYDRAM_BACKEND` value: a (case-insensitive) [`DramPreset`]
/// label. A malformed value is a hard error naming the valid labels —
/// like `LAZYDRAM_CACHE_MODE`, never a silent fallback to the default
/// machine.
///
/// # Errors
///
/// Returns a message listing every valid label on anything else.
pub fn parse_backend(s: &str) -> Result<DramPreset, String> {
    DramPreset::by_label(s.trim()).ok_or_else(|| {
        format!(
            "LAZYDRAM_BACKEND={s:?} is not a DRAM backend preset; expected one of: {}",
            DramPreset::labels().join(", ")
        )
    })
}

/// What a [`TracePolicy`] does with captured request traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Capture a trace when none is on disk, replay when one is — the
    /// capture-once-replay-many default.
    Auto,
    /// Record traces but keep every measurement execution-driven (prepare a
    /// trace store for later replay-only runs).
    Capture,
    /// Never run the GPU for sweep cells: replay from the trace store, and
    /// fail loudly when a needed trace is missing.
    Replay,
}

/// Parses a `LAZYDRAM_TRACE_MODE` value (case-insensitive: `auto`,
/// `capture`, `replay`).
///
/// Kept separate from [`TracePolicy::from_env`] so the validation is
/// unit-testable, following the `parse_scale`/`parse_checkpoint_every`
/// pattern.
///
/// # Errors
///
/// Returns a message naming the valid modes on anything else.
pub fn parse_trace_mode(s: &str) -> Result<TraceMode, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "auto" => Ok(TraceMode::Auto),
        "capture" => Ok(TraceMode::Capture),
        "replay" => Ok(TraceMode::Replay),
        _ => Err(format!(
            "LAZYDRAM_TRACE_MODE={s:?} is not a trace mode; expected auto, capture, or replay"
        )),
    }
}

/// Where the sweep runner's trace store lives and how it is used.
#[derive(Debug, Clone)]
pub struct TracePolicy {
    /// Directory holding one `.trace` file per `(app, geometry, scale)`.
    pub dir: PathBuf,
    /// Capture/replay behavior.
    pub mode: TraceMode,
}

impl TracePolicy {
    /// A policy over `dir` in the given mode.
    pub fn new(dir: impl Into<PathBuf>, mode: TraceMode) -> Self {
        Self { dir: dir.into(), mode }
    }

    /// Builds the policy from `LAZYDRAM_TRACE_DIR` / `LAZYDRAM_TRACE_MODE`.
    /// Returns `Ok(None)` when tracing is not requested, and an error
    /// (never a silent fallback) when the variables are malformed —
    /// including `LAZYDRAM_TRACE_MODE` without a directory, which would
    /// otherwise be dead configuration.
    ///
    /// # Errors
    ///
    /// See above.
    pub fn from_env() -> Result<Option<Self>, String> {
        let dir = std::env::var("LAZYDRAM_TRACE_DIR").ok().filter(|s| !s.trim().is_empty());
        let mode = std::env::var("LAZYDRAM_TRACE_MODE").ok();
        match (dir, mode) {
            (None, None) => Ok(None),
            (None, Some(m)) => Err(format!(
                "LAZYDRAM_TRACE_MODE={m:?} is set but LAZYDRAM_TRACE_DIR is not; \
                 set the directory too (or unset the mode)"
            )),
            (Some(d), mode) => {
                let mode = match mode {
                    Some(s) => parse_trace_mode(&s)?,
                    None => TraceMode::Auto,
                };
                Ok(Some(Self::new(d, mode)))
            }
        }
    }

    /// [`TracePolicy::from_env`], panicking on malformed variables
    /// (matching the checkpoint-policy handling: a loud error beats a
    /// silently execution-driven overnight sweep).
    pub fn from_env_or_die() -> Option<Self> {
        Self::from_env().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The trace file for `(app, machine geometry, scale)`. Keyed by the
    /// stream-geometry digest — not the full config — so one captured trace
    /// serves every queue-size/timing/scheduler cell of a sweep.
    pub fn path_for(&self, app: &str, cfg: &GpuConfig, scale: f64) -> PathBuf {
        let clean: String = app
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '.' { c } else { '_' })
            .collect();
        self.dir.join(format!(
            "{clean}-s{:x}-{:016x}.trace",
            scale.to_bits(),
            Trace::stream_digest(cfg)
        ))
    }
}

/// What the content-addressed result store does on lookup and publish (the
/// `LAZYDRAM_CACHE_MODE` knob; the store itself lives in
/// `lazydram-bench::store`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Cache disabled even when `LAZYDRAM_CACHE_DIR` is set (an explicit
    /// escape hatch; unsetting the directory does the same).
    Off,
    /// Serve hits, simulate misses, publish the results — the default.
    Auto,
    /// Never simulate: a miss is a loud per-job error with a remediation
    /// hint (run once in `auto` mode to populate the store).
    Require,
    /// Never serve: re-simulate every cell and overwrite its entry
    /// (rebuild a store after a semantics bump, or distrust old entries).
    Refresh,
}

/// Parses a `LAZYDRAM_CACHE_MODE` value (case-insensitive: `off`, `auto`,
/// `require`, `refresh`).
///
/// Kept separate from [`CachePolicy::from_env`] so the validation is
/// unit-testable, following the `parse_scale`/`parse_trace_mode` pattern.
///
/// # Errors
///
/// Returns a message naming the valid modes on anything else.
pub fn parse_cache_mode(s: &str) -> Result<CacheMode, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" => Ok(CacheMode::Off),
        "auto" => Ok(CacheMode::Auto),
        "require" => Ok(CacheMode::Require),
        "refresh" => Ok(CacheMode::Refresh),
        _ => Err(format!(
            "LAZYDRAM_CACHE_MODE={s:?} is not a cache mode; expected off, auto, require, \
             or refresh"
        )),
    }
}

/// Where the content-addressed result store lives and how it is used.
#[derive(Debug, Clone)]
pub struct CachePolicy {
    /// Directory holding one `.meas` entry per published cell.
    pub dir: PathBuf,
    /// Lookup/publish behavior.
    pub mode: CacheMode,
}

impl CachePolicy {
    /// A policy over `dir` in the given mode.
    pub fn new(dir: impl Into<PathBuf>, mode: CacheMode) -> Self {
        Self { dir: dir.into(), mode }
    }

    /// Builds the policy from `LAZYDRAM_CACHE_DIR` / `LAZYDRAM_CACHE_MODE`.
    /// Returns `Ok(None)` when caching is not requested (no directory, or an
    /// explicit `LAZYDRAM_CACHE_MODE=off`), and an error (never a silent
    /// fallback) when the variables are malformed — including a non-`off`
    /// `LAZYDRAM_CACHE_MODE` without a directory, which would otherwise be
    /// dead configuration.
    ///
    /// # Errors
    ///
    /// See above.
    pub fn from_env() -> Result<Option<Self>, String> {
        Self::resolve(
            std::env::var("LAZYDRAM_CACHE_DIR").ok(),
            std::env::var("LAZYDRAM_CACHE_MODE").ok(),
        )
    }

    /// [`CachePolicy::from_env`] over explicit variable values (the
    /// unit-testable core — tests cannot mutate the process environment
    /// safely under the parallel test harness).
    fn resolve(dir: Option<String>, mode: Option<String>) -> Result<Option<Self>, String> {
        let dir = dir.filter(|s| !s.trim().is_empty());
        let mode = match mode {
            Some(s) => Some(parse_cache_mode(&s)?),
            None => None,
        };
        match (dir, mode) {
            (_, Some(CacheMode::Off)) | (None, None) => Ok(None),
            (None, Some(m)) => Err(format!(
                "LAZYDRAM_CACHE_MODE={m:?} is set but LAZYDRAM_CACHE_DIR is not; \
                 set the directory too (or unset the mode)"
            )),
            (Some(d), mode) => Ok(Some(Self::new(d, mode.unwrap_or(CacheMode::Auto)))),
        }
    }

    /// [`CachePolicy::from_env`], panicking on malformed variables (matching
    /// the checkpoint/trace-policy handling: a loud error beats a silently
    /// uncached — or silently wrongly-keyed — overnight sweep).
    pub fn from_env_or_die() -> Option<Self> {
        Self::from_env().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Where and how often [`SimRun::run`] checkpoints a simulation.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory holding one `.ckpt` file per `(app, scheme, config)` run.
    pub dir: PathBuf,
    /// Checkpoint interval in core cycles.
    pub every: u64,
}

impl CheckpointPolicy {
    /// A policy writing to `dir` every `every` core cycles.
    pub fn new(dir: impl Into<PathBuf>, every: u64) -> Self {
        Self { dir: dir.into(), every: every.max(1) }
    }

    /// Builds the policy from `LAZYDRAM_CHECKPOINT_DIR` /
    /// `LAZYDRAM_CHECKPOINT_EVERY`. Returns `Ok(None)` when checkpointing is
    /// not requested, and an error (never a silent fallback) when the
    /// variables are malformed — including `LAZYDRAM_CHECKPOINT_EVERY`
    /// without a directory, which would otherwise be dead configuration.
    pub fn from_env() -> Result<Option<Self>, String> {
        let dir = std::env::var("LAZYDRAM_CHECKPOINT_DIR")
            .ok()
            .filter(|s| !s.trim().is_empty());
        let every = std::env::var("LAZYDRAM_CHECKPOINT_EVERY").ok();
        match (dir, every) {
            (None, None) => Ok(None),
            (None, Some(e)) => Err(format!(
                "LAZYDRAM_CHECKPOINT_EVERY={e:?} is set but LAZYDRAM_CHECKPOINT_DIR is not; \
                 set the directory too (or unset the interval)"
            )),
            (Some(d), every) => {
                let every = match every {
                    Some(s) => parse_checkpoint_every(&s)?,
                    None => DEFAULT_CHECKPOINT_EVERY,
                };
                Ok(Some(Self::new(d, every)))
            }
        }
    }

    /// [`CheckpointPolicy::from_env`], panicking on malformed variables
    /// (matching `scale_from_env` / `jobs` handling: a loud error beats a
    /// silently un-checkpointed overnight sweep).
    pub fn from_env_or_die() -> Option<Self> {
        Self::from_env().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Builder for one `(application, scheme, machine)` simulation. See the
/// [module docs](self) for the role it plays.
#[derive(Clone)]
pub struct SimBuilder {
    app: AppSpec,
    cfg: GpuConfig,
    sched: SchedConfig,
    label: String,
    scale: f64,
    limits: SimLimits,
    trace: bool,
    skip: Option<bool>,
    compute_skip: Option<bool>,
    cores: Option<usize>,
    checkpoints: Option<CheckpointPolicy>,
}

impl SimBuilder {
    /// Starts a builder for `app` with the defaults every harness shares:
    /// baseline scheme, default GPU, scale 1.0, default safety limits, no
    /// trace capture, cycle skipping from the environment.
    pub fn new(app: &AppSpec) -> Self {
        Self {
            app: app.clone(),
            cfg: GpuConfig::default(),
            sched: SchedConfig::baseline(),
            label: Scheme::Baseline.label().to_string(),
            scale: 1.0,
            limits: SimLimits::default(),
            trace: false,
            skip: None,
            compute_skip: None,
            cores: None,
            checkpoints: None,
        }
    }

    /// Selects one of the paper's named schemes (policy + label together).
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.sched = scheme.sched();
        self.label = scheme.label().to_string();
        self
    }

    /// Selects an off-menu scheduling policy (parameter sweeps) with an
    /// explicit display label, e.g. `DMS(256)`.
    pub fn sched(mut self, sched: SchedConfig, label: impl Into<String>) -> Self {
        self.sched = sched;
        self.label = label.into();
        self
    }

    /// Overrides the GPU/DRAM machine configuration.
    pub fn gpu(mut self, cfg: GpuConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Selects a named memory-technology preset from the backend matrix
    /// (geometry + timing package + backend model together).
    pub fn preset(self, preset: DramPreset) -> Self {
        self.gpu(preset.gpu_config())
    }

    /// Sets the work scale (1.0 = the paper's input sizes).
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Overrides the safety cycle limits.
    pub fn limits(mut self, limits: SimLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Enables DRAM command trace capture in the result.
    pub fn trace(mut self, capture: bool) -> Self {
        self.trace = capture;
        self
    }

    /// Forces the event-driven fast-forward on or off (default: on, unless
    /// `LAZYDRAM_NO_SKIP` is set).
    pub fn cycle_skipping(mut self, enabled: bool) -> Self {
        self.skip = Some(enabled);
        self
    }

    /// Forces the analytic compute-burst fast-forward on or off (default:
    /// on, unless `LAZYDRAM_NO_COMPUTE_SKIP` is set). Only meaningful while
    /// cycle skipping itself is enabled: with skipping off entirely, the
    /// master loop never consults the SM schedule analytically.
    pub fn compute_skipping(mut self, enabled: bool) -> Self {
        self.compute_skip = Some(enabled);
        self
    }

    /// Overrides the phased tick's thread budget (default:
    /// `LAZYDRAM_CORES`, itself defaulting to 1). Results are bit-identical
    /// at every value, so — like `cycle_skipping` — the setting is excluded
    /// from the checkpoint filename tag: a sweep resumed at a different
    /// width picks up its parked checkpoints.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = Some(cores);
        self
    }

    /// Attaches a periodic checkpoint policy; `None` disables checkpointing.
    pub fn checkpoints(mut self, policy: Option<CheckpointPolicy>) -> Self {
        self.checkpoints = policy;
        self
    }

    /// The application this builder runs.
    pub fn app(&self) -> &AppSpec {
        &self.app
    }

    /// The scheme display label.
    pub fn scheme_label(&self) -> &str {
        &self.label
    }

    /// The machine configuration (the sweep runner derives trace-store
    /// paths from its stream geometry before building).
    pub fn gpu_config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The work scale.
    pub fn work_scale(&self) -> f64 {
        self.scale
    }

    /// Content digest of this *cell*: everything that determines the
    /// simulation's results — app, scheme label, scale bits, machine config,
    /// scheduling policy, safety limits. Deliberately **excludes** the knobs
    /// proven result-invariant by the bit-identity suites (`cycle_skipping`,
    /// `compute_skipping`, `cores`, trace capture), so the result store keyed on this digest
    /// serves hits across them. The checkpoint tag (which guards *trajectory*
    /// resumption, not results) keeps including them.
    pub fn cell_digest(&self) -> u64 {
        digest(
            format!(
                "{}|{}|{:x}|{:?}|{:?}|{:?}",
                self.app.name,
                self.label,
                self.scale.to_bits(),
                self.cfg,
                self.sched,
                self.limits,
            )
            .as_bytes(),
        )
    }

    /// Finalizes the configuration into a runnable [`SimRun`].
    pub fn build(self) -> SimRun {
        // The checkpoint filename tag must change whenever *any* knob that
        // affects the trajectory changes, so a stale file from a different
        // sweep can never be resumed by accident (resume would reject it
        // anyway; the tag avoids even attempting it).
        let tag = digest(
            format!(
                "{}|{}|{:x}|{:?}|{:?}|{:?}|{}|{:?}|{:?}",
                self.app.name,
                self.label,
                self.scale.to_bits(),
                self.cfg,
                self.sched,
                self.limits,
                self.trace,
                self.skip,
                self.compute_skip
            )
            .as_bytes(),
        );
        let backend = self.cfg.backend;
        let mut sim = Simulator::new(self.cfg, self.sched)
            .with_limits(self.limits)
            .with_trace_capture(self.trace);
        if let Some(skip) = self.skip {
            sim = sim.with_cycle_skipping(skip);
        }
        if let Some(compute_skip) = self.compute_skip {
            sim = sim.with_compute_skipping(compute_skip);
        }
        if let Some(cores) = self.cores {
            sim = sim.with_cores(cores);
        }
        SimRun {
            app: self.app,
            scale: self.scale,
            label: self.label,
            backend,
            checkpoints: self.checkpoints,
            tag,
            sim,
        }
    }
}

/// A fully configured simulation, ready to run (possibly several times —
/// every call builds fresh kernel launches, so runs are independent).
pub struct SimRun {
    app: AppSpec,
    scale: f64,
    label: String,
    backend: BackendKind,
    checkpoints: Option<CheckpointPolicy>,
    tag: u64,
    sim: Simulator,
}

impl SimRun {
    /// The application this run simulates.
    pub fn app(&self) -> &AppSpec {
        &self.app
    }

    /// The scheme display label.
    pub fn scheme_label(&self) -> &str {
        &self.label
    }

    /// The work scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The memory-backend model this run's controllers use (the energy
    /// model picks its technology profile from this).
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    fn launches(&self) -> Vec<Box<dyn Kernel>> {
        self.app.launches(self.scale)
    }

    /// The application's exact functional output at this scale (the
    /// application-error reference).
    pub fn exact_output(&self) -> Vec<f32> {
        crate::suite::exact_output(&self.app, self.scale)
    }

    /// Runs to completion. With a [`CheckpointPolicy`] attached this is the
    /// crash-recoverable path (resumes a parked checkpoint, then pauses and
    /// re-parks every `every` cycles); IO errors panic — use
    /// [`SimRun::run_recoverable`] to handle them.
    pub fn run(&self) -> RunResult {
        self.run_recoverable().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`SimRun::run`], surfacing checkpoint-IO failures as `Err` instead
    /// of panicking (the sweep runner turns them into `FAIL` rows).
    pub fn run_recoverable(&self) -> Result<RunResult, String> {
        match &self.checkpoints {
            None => Ok(self.sim.run_sequence(&mut self.launches())),
            Some(policy) => self.run_with_checkpoints(policy),
        }
    }

    /// Replays a captured request trace through this run's MC + DRAM under
    /// its scheduling policy — the open-loop fast path (no GPU substrate).
    /// The trace must come from a machine with the same stream geometry;
    /// a full sweep cell gets its result in milliseconds instead of
    /// re-simulating the SMs.
    ///
    /// # Errors
    ///
    /// [`TraceError`] on a malformed or incompatible trace.
    pub fn replay_trace(&self, trace: &Trace) -> Result<ReplayReport, TraceError> {
        self.sim.replay_trace(trace)
    }

    /// Runs until `pause_at` total core cycles, returning either the
    /// finished result or a resumable [`Checkpoint`].
    pub fn run_until(&self, pause_at: u64) -> RunOutcome {
        self.sim.run_sequence_until(&mut self.launches(), pause_at)
    }

    /// Resumes a checkpoint to completion.
    pub fn resume(&self, ck: &Checkpoint) -> SnapResult<RunResult> {
        self.sim.resume_sequence(&mut self.launches(), ck)
    }

    /// Resumes a checkpoint until `pause_at` total core cycles.
    pub fn resume_until(&self, ck: &Checkpoint, pause_at: u64) -> SnapResult<RunOutcome> {
        self.sim.resume_sequence_until(&mut self.launches(), ck, pause_at)
    }

    /// Labeled `(field path, value)` dump of a checkpoint's full state —
    /// the component-level diff source for `dbg_diverge`.
    pub fn checkpoint_fields(&self, ck: &Checkpoint) -> SnapResult<Vec<(String, String)>> {
        self.sim.checkpoint_fields_sequence(&mut self.launches(), ck)
    }

    /// The `.ckpt` file this run parks its state in, when a policy is set.
    pub fn checkpoint_path(&self) -> Option<PathBuf> {
        self.checkpoints.as_ref().map(|p| {
            let clean: String = format!("{}-{}", self.app.name, self.label)
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '.' { c } else { '_' })
                .collect();
            p.dir.join(format!("{clean}-{:016x}.ckpt", self.tag))
        })
    }

    fn run_with_checkpoints(&self, policy: &CheckpointPolicy) -> Result<RunResult, String> {
        std::fs::create_dir_all(&policy.dir).map_err(|e| {
            format!("cannot create LAZYDRAM_CHECKPOINT_DIR {}: {e}", policy.dir.display())
        })?;
        let path = self.checkpoint_path().expect("policy is set");
        let mut ck: Option<Checkpoint> = None;
        let mut from_disk = false;
        if let Ok(bytes) = std::fs::read(&path) {
            match Checkpoint::from_bytes(bytes) {
                Ok(c) => {
                    ck = Some(c);
                    from_disk = true;
                }
                Err(e) => eprintln!(
                    "ignoring unreadable checkpoint {} ({e}); restarting from cycle 0",
                    path.display()
                ),
            }
        }
        loop {
            let at = ck.as_ref().map_or(0, Checkpoint::cycle);
            let target = (at / policy.every + 1) * policy.every;
            let outcome = match &ck {
                None => Ok(self.run_until(target)),
                Some(c) => self.resume_until(c, target),
            };
            let outcome = match outcome {
                Ok(o) => o,
                Err(e) if from_disk => {
                    // A parked checkpoint from an older sweep that no longer
                    // matches this run is not a failure of *this* job.
                    eprintln!(
                        "checkpoint {} does not match this run ({e}); restarting from cycle 0",
                        path.display()
                    );
                    ck = None;
                    from_disk = false;
                    continue;
                }
                Err(e) => return Err(format!("resume from checkpoint failed: {e}")),
            };
            from_disk = false;
            match outcome {
                RunOutcome::Done(r) => return Ok(r),
                RunOutcome::Paused(c) => {
                    // Atomic park: a crash mid-write leaves the previous
                    // (complete) checkpoint in place, never a torn file.
                    // The final checkpoint is deliberately kept after
                    // completion, so re-running a finished sweep only
                    // replays the last partial interval.
                    let tmp = path.with_extension("ckpt.tmp");
                    std::fs::write(&tmp, c.as_bytes())
                        .and_then(|()| std::fs::rename(&tmp, &path))
                        .map_err(|e| {
                            format!("cannot write checkpoint {}: {e}", path.display())
                        })?;
                    ck = Some(c);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn parse_checkpoint_every_accepts_positive_counts() {
        assert_eq!(parse_checkpoint_every("1"), Ok(1));
        assert_eq!(parse_checkpoint_every(" 500000 "), Ok(500_000));
    }

    #[test]
    fn parse_checkpoint_every_rejects_garbage_and_zero() {
        for bad in ["0", "-5", "1e6", "many", ""] {
            let err = parse_checkpoint_every(bad).unwrap_err();
            assert!(err.contains("positive cycle count"), "{err}");
        }
    }

    #[test]
    fn checkpoint_paths_are_distinct_and_filesystem_safe() {
        let app = crate::suite::by_name("SCP").expect("app");
        let policy = Some(CheckpointPolicy::new("ckpts", 1000));
        let a = SimBuilder::new(&app)
            .scheme(Scheme::DynCombo)
            .checkpoints(policy.clone())
            .build();
        let b = SimBuilder::new(&app)
            .scheme(Scheme::DynCombo)
            .scale(0.5)
            .checkpoints(policy.clone())
            .build();
        let c = SimBuilder::new(&app)
            .sched(SchedConfig::dyn_combo(), "Dyn-DMS+Dyn-AMS")
            .checkpoints(policy)
            .build();
        let (pa, pb, pc) = (
            a.checkpoint_path().unwrap(),
            b.checkpoint_path().unwrap(),
            c.checkpoint_path().unwrap(),
        );
        // Same knobs through scheme() or sched() agree; a scale change does not.
        assert_eq!(pa, pc);
        assert_ne!(pa, pb);
        let name = pa.file_name().unwrap().to_str().unwrap();
        assert!(name.ends_with(".ckpt"));
        assert!(
            name.chars().all(|ch| ch.is_ascii_alphanumeric() || ch == '-' || ch == '.' || ch == '_'),
            "unsafe checkpoint file name {name:?}"
        );
    }

    #[test]
    fn parse_trace_mode_accepts_known_modes() {
        assert_eq!(parse_trace_mode("auto"), Ok(TraceMode::Auto));
        assert_eq!(parse_trace_mode(" Capture "), Ok(TraceMode::Capture));
        assert_eq!(parse_trace_mode("REPLAY"), Ok(TraceMode::Replay));
    }

    #[test]
    fn parse_trace_mode_rejects_garbage() {
        for bad in ["", "record", "auto,replay", "1"] {
            let err = parse_trace_mode(bad).unwrap_err();
            assert!(err.contains("auto, capture, or replay"), "{err}");
        }
    }

    #[test]
    fn trace_paths_are_shared_across_sweep_knobs_only() {
        let policy = TracePolicy::new("traces", TraceMode::Auto);
        let base = GpuConfig::default();
        let queue = GpuConfig { pending_queue_size: 16, ..GpuConfig::default() };
        let chans = GpuConfig { num_channels: 4, ..GpuConfig::default() };
        let p = policy.path_for("SCP", &base, 0.1);
        // Queue-size sweep cells replay the same captured stream…
        assert_eq!(p, policy.path_for("SCP", &queue, 0.1));
        // …but a different geometry, scale, or app does not.
        assert_ne!(p, policy.path_for("SCP", &chans, 0.1));
        assert_ne!(p, policy.path_for("SCP", &base, 0.2));
        assert_ne!(p, policy.path_for("GEMM", &base, 0.1));
        let name = p.file_name().unwrap().to_str().unwrap();
        assert!(name.ends_with(".trace"), "{name}");
        assert!(
            name.chars().all(|ch| ch.is_ascii_alphanumeric() || ch == '-' || ch == '.' || ch == '_'),
            "unsafe trace file name {name:?}"
        );
    }

    #[test]
    fn parse_cache_mode_accepts_known_modes() {
        assert_eq!(parse_cache_mode("off"), Ok(CacheMode::Off));
        assert_eq!(parse_cache_mode(" Auto "), Ok(CacheMode::Auto));
        assert_eq!(parse_cache_mode("REQUIRE"), Ok(CacheMode::Require));
        assert_eq!(parse_cache_mode("refresh"), Ok(CacheMode::Refresh));
    }

    #[test]
    fn parse_cache_mode_rejects_garbage() {
        for bad in ["", "on", "auto,require", "1", "rw"] {
            let err = parse_cache_mode(bad).unwrap_err();
            assert!(err.contains("off, auto, require, or refresh"), "{err}");
        }
    }

    #[test]
    fn cache_policy_resolution_is_strict() {
        let some = |s: &str| Some(s.to_string());
        // Not requested at all, or explicitly off.
        assert!(CachePolicy::resolve(None, None).unwrap().is_none());
        assert!(CachePolicy::resolve(some("  "), None).unwrap().is_none());
        assert!(CachePolicy::resolve(some("/tmp/c"), some("off")).unwrap().is_none());
        assert!(CachePolicy::resolve(None, some("off")).unwrap().is_none());
        // Directory alone defaults to auto; explicit modes stick.
        let p = CachePolicy::resolve(some("/tmp/c"), None).unwrap().unwrap();
        assert_eq!((p.dir.as_path(), p.mode), (Path::new("/tmp/c"), CacheMode::Auto));
        let p = CachePolicy::resolve(some("/tmp/c"), some("REQUIRE")).unwrap().unwrap();
        assert_eq!(p.mode, CacheMode::Require);
        // Dead configuration and garbage fail loudly, never silently.
        let err = CachePolicy::resolve(None, some("auto")).unwrap_err();
        assert!(err.contains("LAZYDRAM_CACHE_DIR is not"), "{err}");
        let err = CachePolicy::resolve(some("/tmp/c"), some("cached")).unwrap_err();
        assert!(err.contains("not a cache mode"), "{err}");
    }

    #[test]
    fn cell_digest_tracks_results_not_speed_knobs() {
        let app = crate::suite::by_name("SCP").expect("app");
        let base = SimBuilder::new(&app).scheme(Scheme::DynCombo);
        let d = base.clone().cell_digest();
        // Result-invariant knobs (proven by the bit-identity suites) do not
        // split the cache namespace…
        assert_eq!(d, base.clone().cycle_skipping(false).cell_digest());
        assert_eq!(d, base.clone().compute_skipping(false).cell_digest());
        assert_eq!(d, base.clone().cores(4).cell_digest());
        assert_eq!(d, base.clone().trace(true).cell_digest());
        // …while anything that changes the measured results does.
        assert_ne!(d, base.clone().scale(0.5).cell_digest());
        assert_ne!(d, base.clone().scheme(Scheme::StaticDms).cell_digest());
        assert_ne!(
            d,
            base.clone()
                .gpu(GpuConfig { pending_queue_size: 16, ..GpuConfig::default() })
                .cell_digest()
        );
        // scheme() and an equivalent sched() agree (same policy, same label).
        assert_eq!(
            d,
            SimBuilder::new(&app)
                .sched(SchedConfig::dyn_combo(), "Dyn-DMS+Dyn-AMS")
                .cell_digest()
        );
    }

    #[test]
    fn parse_backend_is_strict() {
        assert_eq!(parse_backend("gddr5"), Ok(DramPreset::Gddr5));
        assert_eq!(parse_backend(" LPDDR4 "), Ok(DramPreset::Lpddr4));
        assert_eq!(parse_backend("Flex"), Ok(DramPreset::Flex));
        for bad in ["", "gddr6", "naive,flex", "1"] {
            let err = parse_backend(bad).unwrap_err();
            assert!(err.contains("not a DRAM backend preset"), "{err}");
            assert!(err.contains("naive"), "must list valid labels: {err}");
        }
    }

    #[test]
    fn preset_splits_the_cell_namespace() {
        let app = crate::suite::by_name("SCP").expect("app");
        let base = SimBuilder::new(&app).scheme(Scheme::DynCombo);
        let d = base.clone().cell_digest();
        // The default preset is the default machine…
        assert_eq!(d, base.clone().preset(DramPreset::Gddr5).cell_digest());
        // …and every other backend keys its own cells.
        let mut seen = vec![d];
        for p in DramPreset::ALL.into_iter().skip(1) {
            let dp = base.clone().preset(p).cell_digest();
            assert!(!seen.contains(&dp), "{p} must not collide");
            seen.push(dp);
        }
        let run = base.preset(DramPreset::Naive).build();
        assert_eq!(run.backend(), BackendKind::Naive);
    }

    #[test]
    fn builder_runs_without_checkpoints() {
        let app = crate::suite::by_name("SCP").expect("app");
        let run = SimBuilder::new(&app).scale(0.02).build();
        assert!(run.checkpoint_path().is_none());
        let r = run.run();
        assert!(r.stats.core_cycles > 0);
        assert_eq!(r.output, run.exact_output());
    }
}
