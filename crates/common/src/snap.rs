//! Hand-rolled snapshot wire format for checkpoint/restore.
//!
//! The simulator's checkpoint subsystem (DESIGN §10) serializes every
//! stateful component into a versioned, length-prefixed little-endian binary
//! stream. The container is offline, so this module replaces `serde` with a
//! deliberately small pair of types:
//!
//! * [`Saver`] — appends labeled primitives to a byte buffer. Labels are
//!   normally free (a `&str` that is never read); constructing the saver
//!   with [`Saver::with_labels`] records a `(path, value)` dump alongside
//!   the bytes, which is how `dbg_diverge` turns two snapshots into a
//!   component-level field diff without a second serialization code path.
//! * [`Loader`] — the mirror-image reader. Every read returns a
//!   [`SnapError`] on malformed input (truncation, tag mismatch, version
//!   skew) instead of panicking, so sweep crash-recovery can reject a
//!   corrupt checkpoint loudly and fall back to a cold start.
//!
//! Component state is framed: a frame is `tag (4 bytes) · index (u32) ·
//! payload length (u64) · payload`. Frames nest; the top-level frames of a
//! machine snapshot are the unit of digesting (see [`digest`]), which lets a
//! divergence search compare architectural components while ignoring frames
//! that legitimately differ between configurations (e.g. policy-unit state).

use std::collections::VecDeque;

/// Magic bytes opening every snapshot produced by this crate family.
pub const SNAP_MAGIC: [u8; 4] = *b"LZSN";

/// Current snapshot wire-format version. Bump on any layout change; loaders
/// reject snapshots whose version differs.
pub const SNAP_VERSION: u16 = 1;

/// Error produced when decoding a snapshot fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before the value could be read.
    Truncated {
        /// Label of the value being read.
        label: String,
        /// Byte offset at which the read started.
        at: usize,
    },
    /// The snapshot does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    Version {
        /// Version found in the snapshot header.
        found: u16,
    },
    /// A frame's tag did not match what the loader expected.
    Tag {
        /// Expected frame tag.
        expected: String,
        /// Tag found in the stream.
        found: String,
        /// Byte offset of the frame header.
        at: usize,
    },
    /// A frame's index did not match what the loader expected.
    Index {
        /// Frame tag.
        tag: String,
        /// Expected index.
        expected: u32,
        /// Index found in the stream.
        found: u32,
    },
    /// A frame's payload was not fully consumed (or was over-read).
    FrameSize {
        /// Frame tag.
        tag: String,
        /// Declared payload length.
        declared: u64,
        /// Bytes actually consumed by the frame decoder.
        consumed: u64,
    },
    /// A decoded value was structurally invalid (bad enum discriminant,
    /// impossible length, …).
    Malformed {
        /// Label of the offending value.
        label: String,
        /// Description of the problem.
        why: String,
    },
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated { label, at } => {
                write!(f, "snapshot truncated reading `{label}` at byte {at}")
            }
            SnapError::BadMagic => f.write_str("not a snapshot (bad magic)"),
            SnapError::Version { found } => write!(
                f,
                "snapshot version {found} incompatible with supported version {SNAP_VERSION}"
            ),
            SnapError::Tag { expected, found, at } => {
                write!(f, "expected frame `{expected}` at byte {at}, found `{found}`")
            }
            SnapError::Index { tag, expected, found } => {
                write!(f, "frame `{tag}`: expected index {expected}, found {found}")
            }
            SnapError::FrameSize { tag, declared, consumed } => write!(
                f,
                "frame `{tag}`: declared {declared} payload bytes, decoder consumed {consumed}"
            ),
            SnapError::Malformed { label, why } => {
                write!(f, "malformed value `{label}`: {why}")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Decoding result shorthand.
pub type SnapResult<T> = Result<T, SnapError>;

#[inline]
fn mix(mut z: u64) -> u64 {
    // SplitMix64 finalizer (same constants as `rng::SplitMix64`).
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds one 64-bit word into a running SplitMix64-style digest.
#[inline]
pub fn fold(h: u64, x: u64) -> u64 {
    mix(h ^ x.wrapping_add(0x9E37_79B9_7F4A_7C15))
}

/// Canonical digest of a byte string: SplitMix64-folded over 8-byte
/// little-endian chunks (final partial chunk zero-padded), with the length
/// folded in last so `"a"` and `"a\0"` differ.
pub fn digest(bytes: &[u8]) -> u64 {
    let mut h = 0x5851_F42D_4C95_7F2Du64;
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        h = fold(h, u64::from_le_bytes(c.try_into().unwrap()));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        h = fold(h, u64::from_le_bytes(last));
    }
    fold(h, bytes.len() as u64)
}

fn tag4(tag: &str) -> [u8; 4] {
    let b = tag.as_bytes();
    assert!(b.len() <= 4, "frame tag `{tag}` longer than 4 bytes");
    let mut out = *b"    ";
    out[..b.len()].copy_from_slice(b);
    out
}

fn tag_str(raw: [u8; 4]) -> String {
    String::from_utf8_lossy(&raw).trim_end().to_string()
}

/// One top-level frame located inside a snapshot payload (see
/// [`list_frames`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameInfo {
    /// Frame tag (trailing padding stripped).
    pub tag: String,
    /// Frame index (disambiguates repeated components, e.g. `sm[3]`).
    pub index: u32,
    /// Offset of the frame payload inside the scanned byte region.
    pub payload_start: usize,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl FrameInfo {
    /// The payload bytes of this frame within `region` (the same slice that
    /// was passed to [`list_frames`]).
    pub fn payload<'a>(&self, region: &'a [u8]) -> &'a [u8] {
        &region[self.payload_start..self.payload_start + self.payload_len]
    }
}

/// Walks a byte region that consists solely of consecutive frames and
/// returns their locations. Nested frames are *not* descended into — only
/// the outermost sequence is listed.
pub fn list_frames(region: &[u8]) -> SnapResult<Vec<FrameInfo>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < region.len() {
        if region.len() - pos < 16 {
            return Err(SnapError::Truncated { label: "frame header".into(), at: pos });
        }
        let tag = tag_str(region[pos..pos + 4].try_into().unwrap());
        let index = u32::from_le_bytes(region[pos + 4..pos + 8].try_into().unwrap());
        let len = u64::from_le_bytes(region[pos + 8..pos + 16].try_into().unwrap()) as usize;
        let payload_start = pos + 16;
        if region.len() - payload_start < len {
            return Err(SnapError::Truncated { label: format!("frame `{tag}` payload"), at: pos });
        }
        out.push(FrameInfo { tag, index, payload_start, payload_len: len });
        pos = payload_start + len;
    }
    Ok(out)
}

/// Serializer: appends labeled little-endian primitives to a growing byte
/// buffer. Labels cost nothing unless the saver was built with
/// [`Saver::with_labels`].
#[derive(Debug)]
pub struct Saver {
    buf: Vec<u8>,
    labels: Option<LabelSink>,
}

#[derive(Debug, Default)]
struct LabelSink {
    path: Vec<String>,
    fields: Vec<(String, String)>,
}

impl LabelSink {
    fn record(&mut self, label: &str, value: String) {
        let mut path = String::new();
        for p in &self.path {
            path.push_str(p);
            path.push('/');
        }
        path.push_str(label);
        self.fields.push((path, value));
    }
}

macro_rules! saver_prim {
    ($(#[$doc:meta])* $name:ident, $ty:ty) => {
        $(#[$doc])*
        pub fn $name(&mut self, label: &str, v: $ty) {
            if let Some(sink) = &mut self.labels {
                sink.record(label, format!("{v:?}"));
            }
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    };
}

impl Default for Saver {
    fn default() -> Self {
        Self::new()
    }
}

impl Saver {
    /// Creates a saver with label recording off (the normal, zero-cost mode).
    pub fn new() -> Self {
        Self { buf: Vec::new(), labels: None }
    }

    /// Creates a saver that records a `(path, value)` pair for every
    /// primitive written — the input to `dbg_diverge`'s field diff.
    pub fn with_labels() -> Self {
        Self { buf: Vec::new(), labels: Some(LabelSink::default()) }
    }

    /// Consumes the saver and returns the serialized bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Consumes the saver and returns the bytes together with the recorded
    /// label dump (empty unless built via [`Saver::with_labels`]).
    pub fn finish_with_labels(self) -> (Vec<u8>, Vec<(String, String)>) {
        let labels = self.labels.map(|s| s.fields).unwrap_or_default();
        (self.buf, labels)
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes the snapshot header ([`SNAP_MAGIC`] + [`SNAP_VERSION`]).
    pub fn header(&mut self) {
        self.buf.extend_from_slice(&SNAP_MAGIC);
        self.buf.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    }

    saver_prim!(
        /// Writes a labeled `u8`.
        u8, u8
    );
    saver_prim!(
        /// Writes a labeled `u16`.
        u16, u16
    );
    saver_prim!(
        /// Writes a labeled `u32`.
        u32, u32
    );
    saver_prim!(
        /// Writes a labeled `u64`.
        u64, u64
    );
    saver_prim!(
        /// Writes a labeled `i64`.
        i64, i64
    );

    /// Writes a labeled `usize` (as a `u64` on the wire).
    pub fn usize(&mut self, label: &str, v: usize) {
        self.u64(label, v as u64);
    }

    /// Writes a labeled `bool` (one byte, `0` or `1`).
    pub fn bool(&mut self, label: &str, v: bool) {
        self.u8(label, u8::from(v));
    }

    /// Writes a labeled `f32` as its raw IEEE-754 bits (bit-exact, NaN-safe).
    pub fn f32(&mut self, label: &str, v: f32) {
        if let Some(sink) = &mut self.labels {
            sink.record(label, format!("{v:?} (0x{:08x})", v.to_bits()));
        }
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a labeled `f64` as its raw IEEE-754 bits (bit-exact, NaN-safe).
    pub fn f64(&mut self, label: &str, v: f64) {
        if let Some(sink) = &mut self.labels {
            sink.record(label, format!("{v:?} (0x{:016x})", v.to_bits()));
        }
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a labeled `f32` slice: `u64` length + raw bits. Recorded in
    /// the label dump as a length + digest summary, not per element.
    pub fn f32s(&mut self, label: &str, vs: &[f32]) {
        let start = self.buf.len();
        self.buf.extend_from_slice(&(vs.len() as u64).to_le_bytes());
        for v in vs {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        if let Some(sink) = &mut self.labels {
            let d = digest(&self.buf[start..]);
            sink.record(label, format!("[f32; {}] digest=0x{d:016x}", vs.len()));
        }
    }

    /// Writes a labeled `u64` slice: `u64` length + raw values. Recorded in
    /// the label dump as a length + digest summary, not per element.
    pub fn u64s(&mut self, label: &str, vs: &[u64]) {
        let start = self.buf.len();
        self.buf.extend_from_slice(&(vs.len() as u64).to_le_bytes());
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        if let Some(sink) = &mut self.labels {
            let d = digest(&self.buf[start..]);
            sink.record(label, format!("[u64; {}] digest=0x{d:016x}", vs.len()));
        }
    }

    /// Writes a labeled length prefix for a sequence serialized element by
    /// element right after this call.
    pub fn seq(&mut self, label: &str, len: usize) {
        self.u64(label, len as u64);
    }

    /// Writes a labeled UTF-8 string: `u64` length + raw bytes.
    pub fn str(&mut self, label: &str, v: &str) {
        if let Some(sink) = &mut self.labels {
            sink.record(label, format!("{v:?}"));
        }
        self.buf.extend_from_slice(&(v.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Writes a frame: `tag` (≤ 4 bytes, space-padded), `index`, payload
    /// length, then the payload produced by `body`. Frames nest freely.
    ///
    /// # Panics
    ///
    /// Panics if `tag` exceeds 4 bytes.
    pub fn frame<R>(&mut self, tag: &str, index: u32, body: impl FnOnce(&mut Self) -> R) -> R {
        self.buf.extend_from_slice(&tag4(tag));
        self.buf.extend_from_slice(&index.to_le_bytes());
        let len_at = self.buf.len();
        self.buf.extend_from_slice(&0u64.to_le_bytes());
        if let Some(sink) = &mut self.labels {
            sink.path.push(format!("{tag}[{index}]"));
        }
        let out = body(self);
        if let Some(sink) = &mut self.labels {
            sink.path.pop();
        }
        let payload_len = (self.buf.len() - len_at - 8) as u64;
        self.buf[len_at..len_at + 8].copy_from_slice(&payload_len.to_le_bytes());
        out
    }
}

macro_rules! loader_prim {
    ($(#[$doc:meta])* $name:ident, $ty:ty, $width:expr) => {
        $(#[$doc])*
        pub fn $name(&mut self, label: &str) -> SnapResult<$ty> {
            let bytes = self.take(label, $width)?;
            Ok(<$ty>::from_le_bytes(bytes.try_into().unwrap()))
        }
    };
}

/// Deserializer over a snapshot byte slice. Mirrors [`Saver`] method for
/// method; every read validates bounds and returns [`SnapError`] on
/// malformed input.
#[derive(Debug)]
pub struct Loader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Loader<'a> {
    /// Creates a loader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when the whole buffer has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, label: &str, n: usize) -> SnapResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(SnapError::Truncated { label: label.into(), at: self.pos });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads and validates the snapshot header; returns the format version.
    pub fn expect_header(&mut self) -> SnapResult<u16> {
        let magic = self.take("magic", 4)?;
        if magic != SNAP_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = self.u16("version")?;
        if version != SNAP_VERSION {
            return Err(SnapError::Version { found: version });
        }
        Ok(version)
    }

    loader_prim!(
        /// Reads a `u8`.
        u8, u8, 1
    );
    loader_prim!(
        /// Reads a `u16`.
        u16, u16, 2
    );
    loader_prim!(
        /// Reads a `u32`.
        u32, u32, 4
    );
    loader_prim!(
        /// Reads a `u64`.
        u64, u64, 8
    );
    loader_prim!(
        /// Reads an `i64`.
        i64, i64, 8
    );

    /// Reads a `usize` (stored as `u64`).
    pub fn usize(&mut self, label: &str) -> SnapResult<usize> {
        Ok(self.u64(label)? as usize)
    }

    /// Reads a `bool`; rejects bytes other than `0`/`1`.
    pub fn bool(&mut self, label: &str) -> SnapResult<bool> {
        match self.u8(label)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::Malformed {
                label: label.into(),
                why: format!("bool byte 0x{b:02x}"),
            }),
        }
    }

    /// Reads an `f32` from its raw bits.
    pub fn f32(&mut self, label: &str) -> SnapResult<f32> {
        Ok(f32::from_bits(self.u32(label)?))
    }

    /// Reads an `f64` from its raw bits.
    pub fn f64(&mut self, label: &str) -> SnapResult<f64> {
        Ok(f64::from_bits(self.u64(label)?))
    }

    /// Reads a sequence length written by [`Saver::seq`], rejecting lengths
    /// that could not possibly fit in the remaining buffer assuming at least
    /// `min_elem_bytes` bytes per element (pass 1 when unsure) — this keeps
    /// a corrupt length from triggering a huge allocation.
    pub fn seq(&mut self, label: &str, min_elem_bytes: usize) -> SnapResult<usize> {
        let len = self.u64(label)? as usize;
        let need = len.saturating_mul(min_elem_bytes.max(1));
        if need > self.remaining() {
            return Err(SnapError::Malformed {
                label: label.into(),
                why: format!("length {len} exceeds remaining {} bytes", self.remaining()),
            });
        }
        Ok(len)
    }

    /// Reads an `f32` slice written by [`Saver::f32s`] into `out`
    /// (cleared first; capacity retained).
    pub fn f32s(&mut self, label: &str, out: &mut Vec<f32>) -> SnapResult<()> {
        let len = self.seq(label, 4)?;
        out.clear();
        out.reserve(len);
        for _ in 0..len {
            out.push(f32::from_bits(self.u32(label)?));
        }
        Ok(())
    }

    /// Reads an `f32` slice written by [`Saver::f32s`], requiring its length
    /// to equal `out.len()` exactly (for fixed-size arrays).
    pub fn f32_array(&mut self, label: &str, out: &mut [f32]) -> SnapResult<()> {
        let len = self.seq(label, 4)?;
        if len != out.len() {
            return Err(SnapError::Malformed {
                label: label.into(),
                why: format!("expected {} elements, found {len}", out.len()),
            });
        }
        for slot in out.iter_mut() {
            *slot = f32::from_bits(self.u32(label)?);
        }
        Ok(())
    }

    /// Reads a `u64` slice written by [`Saver::u64s`] into `out`
    /// (cleared first; capacity retained).
    pub fn u64s(&mut self, label: &str, out: &mut Vec<u64>) -> SnapResult<()> {
        let len = self.seq(label, 8)?;
        out.clear();
        out.reserve(len);
        for _ in 0..len {
            out.push(self.u64(label)?);
        }
        Ok(())
    }

    /// Reads a `u64` slice written by [`Saver::u64s`], requiring its length
    /// to equal `out.len()` exactly (for fixed-size arrays).
    pub fn u64_array(&mut self, label: &str, out: &mut [u64]) -> SnapResult<()> {
        let len = self.seq(label, 8)?;
        if len != out.len() {
            return Err(SnapError::Malformed {
                label: label.into(),
                why: format!("expected {} elements, found {len}", out.len()),
            });
        }
        for slot in out.iter_mut() {
            *slot = self.u64(label)?;
        }
        Ok(())
    }

    /// Reads a UTF-8 string written by [`Saver::str`]; rejects invalid UTF-8.
    pub fn str(&mut self, label: &str) -> SnapResult<String> {
        let len = self.seq(label, 1)?;
        let bytes = self.take(label, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| SnapError::Malformed {
            label: label.into(),
            why: format!("invalid UTF-8: {e}"),
        })
    }

    /// Peeks the next frame header without consuming it. Returns `None` at
    /// end of buffer.
    pub fn peek_frame(&self) -> SnapResult<Option<(String, u32, usize)>> {
        if self.is_done() {
            return Ok(None);
        }
        if self.remaining() < 16 {
            return Err(SnapError::Truncated { label: "frame header".into(), at: self.pos });
        }
        let tag = tag_str(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        let index = u32::from_le_bytes(self.buf[self.pos + 4..self.pos + 8].try_into().unwrap());
        let len =
            u64::from_le_bytes(self.buf[self.pos + 8..self.pos + 16].try_into().unwrap()) as usize;
        Ok(Some((tag, index, len)))
    }

    /// Reads a frame written by [`Saver::frame`], validating tag and index,
    /// and requiring `body` to consume the payload exactly.
    pub fn frame<R>(
        &mut self,
        tag: &str,
        index: u32,
        body: impl FnOnce(&mut Self) -> SnapResult<R>,
    ) -> SnapResult<R> {
        let at = self.pos;
        let raw = self.take("frame tag", 4)?;
        let found = tag_str(raw.try_into().unwrap());
        let expected = tag_str(tag4(tag));
        if found != expected {
            return Err(SnapError::Tag { expected, found, at });
        }
        let found_index = self.u32("frame index")?;
        if found_index != index {
            return Err(SnapError::Index { tag: expected, expected: index, found: found_index });
        }
        let len = self.u64("frame len")?;
        if (len as usize) > self.remaining() {
            return Err(SnapError::Truncated { label: format!("frame `{expected}` payload"), at });
        }
        let start = self.pos;
        let out = body(self)?;
        let consumed = (self.pos - start) as u64;
        if consumed != len {
            return Err(SnapError::FrameSize { tag: expected, declared: len, consumed });
        }
        Ok(out)
    }
}

/// Serializes a `VecDeque<u64>` (used by several component snapshots).
pub fn save_u64_deque(s: &mut Saver, label: &str, q: &VecDeque<u64>) {
    s.seq(label, q.len());
    for &v in q {
        s.u64(label, v);
    }
}

/// Deserializes a `VecDeque<u64>` written by [`save_u64_deque`].
pub fn load_u64_deque(l: &mut Loader<'_>, label: &str) -> SnapResult<VecDeque<u64>> {
    let len = l.seq(label, 8)?;
    let mut q = VecDeque::with_capacity(len);
    for _ in 0..len {
        q.push_back(l.u64(label)?);
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut s = Saver::new();
        s.header();
        s.u8("a", 0xAB);
        s.u16("b", 0xCDEF);
        s.u32("c", 0xDEAD_BEEF);
        s.u64("d", 0x0123_4567_89AB_CDEF);
        s.i64("e", -42);
        s.usize("f", 7);
        s.bool("g", true);
        s.f32("h", -1.5);
        s.f64("i", std::f64::consts::PI);
        s.f32s("j", &[1.0, f32::NAN, 3.0]);
        s.u64s("k", &[9, 8]);
        let bytes = s.finish();

        let mut l = Loader::new(&bytes);
        assert_eq!(l.expect_header().unwrap(), SNAP_VERSION);
        assert_eq!(l.u8("a").unwrap(), 0xAB);
        assert_eq!(l.u16("b").unwrap(), 0xCDEF);
        assert_eq!(l.u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(l.u64("d").unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(l.i64("e").unwrap(), -42);
        assert_eq!(l.usize("f").unwrap(), 7);
        assert!(l.bool("g").unwrap());
        assert_eq!(l.f32("h").unwrap(), -1.5);
        assert_eq!(l.f64("i").unwrap(), std::f64::consts::PI);
        let mut fs = Vec::new();
        l.f32s("j", &mut fs).unwrap();
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[0], 1.0);
        assert!(fs[1].is_nan());
        let mut us = Vec::new();
        l.u64s("k", &mut us).unwrap();
        assert_eq!(us, vec![9, 8]);
        assert!(l.is_done());
    }

    #[test]
    fn strings_round_trip_and_reject_bad_utf8() {
        let mut s = Saver::new();
        s.str("app", "SCP");
        s.str("scheme", "Dyn-DMS+Dyn-AMS");
        s.str("empty", "");
        let bytes = s.finish();
        let mut l = Loader::new(&bytes);
        assert_eq!(l.str("app").unwrap(), "SCP");
        assert_eq!(l.str("scheme").unwrap(), "Dyn-DMS+Dyn-AMS");
        assert_eq!(l.str("empty").unwrap(), "");
        assert!(l.is_done());

        let mut s = Saver::new();
        s.str("x", "ab");
        let mut bytes = s.finish();
        bytes[8] = 0xFF; // not valid UTF-8
        let mut l = Loader::new(&bytes);
        assert!(matches!(l.str("x"), Err(SnapError::Malformed { .. })));

        // Truncated string payloads are an error, not a panic.
        let mut s = Saver::new();
        s.str("x", "hello");
        let bytes = s.finish();
        let mut l = Loader::new(&bytes[..10]);
        assert!(l.str("x").is_err());
    }

    #[test]
    fn nan_bits_survive_exactly() {
        let weird = f32::from_bits(0x7FC0_1234);
        let mut s = Saver::new();
        s.f32("x", weird);
        let bytes = s.finish();
        let mut l = Loader::new(&bytes);
        assert_eq!(l.f32("x").unwrap().to_bits(), 0x7FC0_1234);
    }

    #[test]
    fn frames_nest_and_validate() {
        let mut s = Saver::new();
        s.frame("mach", 0, |s| {
            s.frame("sm", 0, |s| s.u64("cycles", 10));
            s.frame("sm", 1, |s| s.u64("cycles", 20));
        });
        let bytes = s.finish();

        let mut l = Loader::new(&bytes);
        l.frame("mach", 0, |l| {
            assert_eq!(l.peek_frame().unwrap().unwrap(), ("sm".to_string(), 0, 8));
            l.frame("sm", 0, |l| {
                assert_eq!(l.u64("cycles")?, 10);
                Ok(())
            })?;
            l.frame("sm", 1, |l| {
                assert_eq!(l.u64("cycles")?, 20);
                Ok(())
            })
        })
        .unwrap();
        assert!(l.is_done());
    }

    #[test]
    fn frame_tag_and_index_mismatch_detected() {
        let mut s = Saver::new();
        s.frame("sm", 3, |s| s.u64("x", 1));
        let bytes = s.finish();

        let mut l = Loader::new(&bytes);
        let err = l.frame("mc", 3, |_| Ok(())).unwrap_err();
        assert!(matches!(err, SnapError::Tag { .. }), "{err}");

        let mut l = Loader::new(&bytes);
        let err = l.frame("sm", 4, |_| Ok(())).unwrap_err();
        assert!(matches!(err, SnapError::Index { .. }), "{err}");
    }

    #[test]
    fn frame_underconsumption_detected() {
        let mut s = Saver::new();
        s.frame("sm", 0, |s| {
            s.u64("a", 1);
            s.u64("b", 2);
        });
        let bytes = s.finish();
        let mut l = Loader::new(&bytes);
        let err = l
            .frame("sm", 0, |l| {
                l.u64("a")?;
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, SnapError::FrameSize { declared: 16, consumed: 8, .. }), "{err}");
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut s = Saver::new();
        s.u64("x", 5);
        let bytes = s.finish();
        let mut l = Loader::new(&bytes[..4]);
        assert!(matches!(l.u64("x"), Err(SnapError::Truncated { .. })));
    }

    #[test]
    fn header_rejects_bad_magic_and_version() {
        let mut l = Loader::new(b"NOPE\x01\x00");
        assert_eq!(l.expect_header(), Err(SnapError::BadMagic));

        let mut s = Saver::new();
        s.header();
        let mut bytes = s.finish();
        bytes[4] = 99; // corrupt version
        let mut l = Loader::new(&bytes);
        assert_eq!(l.expect_header(), Err(SnapError::Version { found: 99 }));
    }

    #[test]
    fn corrupt_length_rejected_without_allocation() {
        let mut s = Saver::new();
        s.seq("xs", 3);
        let mut bytes = s.finish();
        bytes[0] = 0xFF; // absurd length
        bytes[7] = 0xFF;
        let mut l = Loader::new(&bytes);
        assert!(matches!(l.seq("xs", 8), Err(SnapError::Malformed { .. })));
    }

    #[test]
    fn digest_changes_with_content_and_length() {
        assert_ne!(digest(b"a"), digest(b"b"));
        assert_ne!(digest(b"a"), digest(b"a\0"));
        assert_ne!(digest(b""), digest(b"\0"));
        assert_eq!(digest(b"hello"), digest(b"hello"));
    }

    #[test]
    fn labels_record_paths() {
        let mut s = Saver::with_labels();
        s.frame("mach", 0, |s| {
            s.frame("sm", 2, |s| {
                s.u64("rr", 7);
                s.f32("acc", 1.25);
            });
        });
        let (_, labels) = s.finish_with_labels();
        assert_eq!(labels.len(), 2);
        assert_eq!(labels[0].0, "mach[0]/sm[2]/rr");
        assert_eq!(labels[0].1, "7");
        assert_eq!(labels[1].0, "mach[0]/sm[2]/acc");
        assert!(labels[1].1.starts_with("1.25"));
    }

    #[test]
    fn labeled_and_unlabeled_bytes_identical() {
        let write = |s: &mut Saver| {
            s.header();
            s.frame("x", 0, |s| {
                s.u64("a", 1);
                s.f32s("b", &[2.0, 3.0]);
            });
        };
        let mut plain = Saver::new();
        write(&mut plain);
        let mut labeled = Saver::with_labels();
        write(&mut labeled);
        assert_eq!(plain.finish(), labeled.finish_with_labels().0);
    }

    #[test]
    fn list_frames_walks_top_level_only() {
        let mut s = Saver::new();
        s.frame("aa", 0, |s| {
            s.frame("in", 0, |s| s.u64("x", 1));
        });
        s.frame("bb", 1, |s| s.u8("y", 2));
        let bytes = s.finish();
        let frames = list_frames(&bytes).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].tag, "aa");
        assert_eq!(frames[1].tag, "bb");
        assert_eq!(frames[1].index, 1);
        assert_eq!(frames[1].payload(&bytes), &[2u8]);
        // Distinct payloads digest differently.
        assert_ne!(digest(frames[0].payload(&bytes)), digest(frames[1].payload(&bytes)));
    }

    #[test]
    fn u64_deque_round_trip() {
        let q: VecDeque<u64> = [5u64, 6, 7].into_iter().collect();
        let mut s = Saver::new();
        save_u64_deque(&mut s, "q", &q);
        let bytes = s.finish();
        let mut l = Loader::new(&bytes);
        assert_eq!(load_u64_deque(&mut l, "q").unwrap(), q);
    }
}
