//! Deterministic pseudo-random generation for workload inputs.
//!
//! The workloads need seeded, reproducible input data (DESIGN §7.5); the
//! external `rand` crate is unavailable in the offline build environment, so
//! this SplitMix64 generator provides the few primitives the suite uses.
//! SplitMix64 passes BigCrush for this use (input synthesis), is two
//! multiplies per draw, and is trivially reproducible across platforms.

/// SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` (24 mantissa bits).
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform `u64` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Modulo bias is ≤ bound/2^64 — irrelevant for input synthesis.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut c = SplitMix64::new(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!((0..64).any(|_| c.next_u64() != b.next_u64()));
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let f = r.next_f32();
            assert!((0.0..1.0).contains(&f), "{f}");
            let d = r.next_f64();
            assert!((0.0..1.0).contains(&d), "{d}");
        }
    }

    #[test]
    fn range_f32_respects_bounds_and_spreads() {
        let mut r = SplitMix64::new(1);
        let mut lo_half = 0usize;
        for _ in 0..10_000 {
            let v = r.range_f32(-2.0, 6.0);
            assert!((-2.0..6.0).contains(&v));
            if v < 2.0 {
                lo_half += 1;
            }
        }
        // Roughly uniform: each half gets 40–60 %.
        assert!((4000..6000).contains(&lo_half), "{lo_half}");
    }

    #[test]
    fn below_covers_small_bounds() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
