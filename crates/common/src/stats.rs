//! Row-buffer-locality histograms and aggregate simulation statistics.
//!
//! Terminology (Section II-D of the paper):
//!
//! * **RBL(X)** — X requests were served back-to-back from one row activation
//!   before the row was closed.
//! * **Avg-RBL** — total requests / total activations.
//! * **Coverage** — fraction of global read requests dropped (approximated)
//!   instead of being served by DRAM.


/// Histogram of row activations keyed by the RBL they achieved.
///
/// `hist[k]` counts activations that served exactly `k` requests; index 0 is
/// unused for closed activations (an activation serves ≥ 1 request) but kept
/// so that `hist[rbl]` indexes naturally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RblHistogram {
    hist: Vec<u64>,
}

impl RblHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one closed activation that served `rbl` requests.
    pub fn record(&mut self, rbl: u32) {
        let idx = rbl as usize;
        if self.hist.len() <= idx {
            self.hist.resize(idx + 1, 0);
        }
        self.hist[idx] += 1;
    }

    /// Number of activations with exactly this RBL.
    pub fn count(&self, rbl: u32) -> u64 {
        self.hist.get(rbl as usize).copied().unwrap_or(0)
    }

    /// Number of activations with RBL in the inclusive range `[lo, hi]`
    /// (the paper's `RBL(lo - hi)` notation).
    pub fn count_range(&self, lo: u32, hi: u32) -> u64 {
        (lo..=hi).map(|k| self.count(k)).sum()
    }

    /// Total number of recorded activations.
    pub fn activations(&self) -> u64 {
        self.hist.iter().sum()
    }

    /// Total number of requests served by the recorded activations.
    pub fn requests(&self) -> u64 {
        self.hist
            .iter()
            .enumerate()
            .map(|(k, &n)| k as u64 * n)
            .sum()
    }

    /// Average RBL: requests / activations. Returns 0 when empty.
    pub fn avg_rbl(&self) -> f64 {
        let acts = self.activations();
        if acts == 0 {
            0.0
        } else {
            self.requests() as f64 / acts as f64
        }
    }

    /// Largest RBL value recorded, or 0 when empty.
    pub fn max_rbl(&self) -> u32 {
        self.hist
            .iter()
            .rposition(|&n| n > 0)
            .map(|i| i as u32)
            .unwrap_or(0)
    }

    /// Iterates `(rbl, activation_count)` pairs with non-zero counts,
    /// in increasing RBL order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.hist
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(k, &n)| (k as u32, n))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &RblHistogram) {
        for (rbl, n) in other.iter() {
            let idx = rbl as usize;
            if self.hist.len() <= idx {
                self.hist.resize(idx + 1, 0);
            }
            self.hist[idx] += n;
        }
    }

    /// Serializes the histogram into a snapshot.
    pub fn save_state(&self, s: &mut crate::snap::Saver) {
        s.u64s("hist", &self.hist);
    }

    /// Restores the histogram from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed.
    pub fn load_state(&mut self, l: &mut crate::snap::Loader<'_>) -> crate::snap::SnapResult<()> {
        l.u64s("hist", &mut self.hist)
    }

    /// The cumulative-distribution curve of Figure 6: walking activations in
    /// increasing-RBL order, yields one point per RBL bucket:
    /// `(requests_fraction_so_far, activations_fraction_so_far, rbl)`.
    ///
    /// Fractions are relative to `total_requests` / `total_activations`,
    /// which callers pass so the curve can be normalized against a *larger*
    /// population (e.g. read-only activations vs all activations).
    pub fn cumulative_curve(
        &self,
        total_requests: u64,
        total_activations: u64,
    ) -> Vec<(f64, f64, u32)> {
        let mut out = Vec::new();
        let mut req = 0u64;
        let mut act = 0u64;
        for (rbl, n) in self.iter() {
            req += rbl as u64 * n;
            act += n;
            out.push((
                req as f64 / total_requests.max(1) as f64,
                act as f64 / total_activations.max(1) as f64,
                rbl,
            ));
        }
        out
    }
}

/// Counters maintained by one DRAM channel + its memory controller.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DramStats {
    /// Memory cycles elapsed.
    pub mem_cycles: u64,
    /// Row activations issued (`ACT` commands).
    pub activations: u64,
    /// Precharges issued (`PRE` commands).
    pub precharges: u64,
    /// Read bursts issued.
    pub reads: u64,
    /// Write bursts issued.
    pub writes: u64,
    /// Requests that hit an already-open row.
    pub row_hits: u64,
    /// Requests that required opening a row.
    pub row_misses: u64,
    /// Memory cycles during which the data bus carried a burst.
    pub bus_busy_cycles: u64,
    /// Requests received by the controller (entered the pending queue).
    pub requests_received: u64,
    /// Global read requests received (denominator of coverage).
    pub global_reads_received: u64,
    /// Requests dropped by AMS (numerator of coverage).
    pub dropped: u64,
    /// RBL histogram over all closed activations.
    pub rbl: RblHistogram,
    /// RBL histogram over closed activations that served only global reads
    /// (the population AMS targets; used by Figure 6).
    pub rbl_read_only: RblHistogram,
}

impl DramStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prediction coverage achieved so far: dropped / global reads received.
    pub fn coverage(&self) -> f64 {
        if self.global_reads_received == 0 {
            0.0
        } else {
            self.dropped as f64 / self.global_reads_received as f64
        }
    }

    /// DRAM data-bus utilization: busy cycles / elapsed cycles.
    pub fn bw_util(&self) -> f64 {
        if self.mem_cycles == 0 {
            0.0
        } else {
            self.bus_busy_cycles as f64 / self.mem_cycles as f64
        }
    }

    /// Requests served by DRAM (excludes dropped ones).
    pub fn served(&self) -> u64 {
        self.reads + self.writes
    }

    /// Average RBL over served requests (Section II-D).
    pub fn avg_rbl(&self) -> f64 {
        if self.activations == 0 {
            0.0
        } else {
            self.served() as f64 / self.activations as f64
        }
    }

    /// Serializes the scalar counters as a JSON object (histograms are
    /// summarized by `avg_rbl`/`max_rbl`; the full histogram stays in-process).
    pub fn to_json(&self) -> String {
        let mut o = crate::json::JsonObject::new();
        o.u64("mem_cycles", self.mem_cycles)
            .u64("activations", self.activations)
            .u64("precharges", self.precharges)
            .u64("reads", self.reads)
            .u64("writes", self.writes)
            .u64("row_hits", self.row_hits)
            .u64("row_misses", self.row_misses)
            .u64("bus_busy_cycles", self.bus_busy_cycles)
            .u64("requests_received", self.requests_received)
            .u64("global_reads_received", self.global_reads_received)
            .u64("dropped", self.dropped)
            .f64("avg_rbl", self.avg_rbl())
            .u64("max_rbl", u64::from(self.rbl.max_rbl()));
        o.finish()
    }

    /// Serializes the counters and histograms into a snapshot.
    pub fn save_state(&self, s: &mut crate::snap::Saver) {
        s.u64("mem_cycles", self.mem_cycles);
        s.u64("activations", self.activations);
        s.u64("precharges", self.precharges);
        s.u64("reads", self.reads);
        s.u64("writes", self.writes);
        s.u64("row_hits", self.row_hits);
        s.u64("row_misses", self.row_misses);
        s.u64("bus_busy_cycles", self.bus_busy_cycles);
        s.u64("requests_received", self.requests_received);
        s.u64("global_reads_received", self.global_reads_received);
        s.u64("dropped", self.dropped);
        self.rbl.save_state(s);
        self.rbl_read_only.save_state(s);
    }

    /// Restores the counters and histograms from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed.
    pub fn load_state(&mut self, l: &mut crate::snap::Loader<'_>) -> crate::snap::SnapResult<()> {
        self.mem_cycles = l.u64("mem_cycles")?;
        self.activations = l.u64("activations")?;
        self.precharges = l.u64("precharges")?;
        self.reads = l.u64("reads")?;
        self.writes = l.u64("writes")?;
        self.row_hits = l.u64("row_hits")?;
        self.row_misses = l.u64("row_misses")?;
        self.bus_busy_cycles = l.u64("bus_busy_cycles")?;
        self.requests_received = l.u64("requests_received")?;
        self.global_reads_received = l.u64("global_reads_received")?;
        self.dropped = l.u64("dropped")?;
        self.rbl.load_state(l)?;
        self.rbl_read_only.load_state(l)
    }

    /// Merges per-channel statistics into an aggregate.
    pub fn merge(&mut self, other: &DramStats) {
        self.mem_cycles = self.mem_cycles.max(other.mem_cycles);
        self.activations += other.activations;
        self.precharges += other.precharges;
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.bus_busy_cycles += other.bus_busy_cycles;
        self.requests_received += other.requests_received;
        self.global_reads_received += other.global_reads_received;
        self.dropped += other.dropped;
        self.rbl.merge(&other.rbl);
        self.rbl_read_only.merge(&other.rbl_read_only);
    }
}

/// Whole-simulation statistics, aggregated over all SMs and channels.
///
/// Equality compares every *simulation* field and deliberately ignores
/// [`SimStats::prof`]: wall-clock attribution is nondeterministic, and the
/// suite's bit-identity checks (`==` on `SimStats`) must keep holding with
/// profiling enabled.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Core cycles the simulation ran for.
    pub core_cycles: u64,
    /// Warp instructions retired across all SMs.
    pub instructions: u64,
    /// L1 hits / misses across all SMs.
    pub l1_hits: u64,
    /// L1 misses across all SMs.
    pub l1_misses: u64,
    /// L2 hits across all slices.
    pub l2_hits: u64,
    /// L2 misses across all slices.
    pub l2_misses: u64,
    /// Loads whose value was approximated by the VP unit.
    pub approximated_loads: u64,
    /// Core cycles the event-driven loop fast-forwarded over without
    /// executing any component (zero when skipping is disabled).
    pub cycles_skipped: u64,
    /// The subset of `cycles_skipped` spanning *busy* cycles: spans where at
    /// least one SM's `Computing` warps were advanced analytically instead
    /// of being provably idle. Zero when compute skipping is disabled
    /// (`LAZYDRAM_NO_COMPUTE_SKIP=1`) or skipping is off entirely.
    pub compute_cycles_skipped: u64,
    /// Core cycles actually executed by the master loop. With skipping off
    /// this equals `core_cycles`; with skipping on,
    /// `ticks_executed + cycles_skipped` covers the simulated span.
    pub ticks_executed: u64,
    /// Diagnostic: AMS decline-reason histogram summed over controllers
    /// (indexed by the scheduler crate's `AmsDecline`); empty when AMS off.
    pub ams_declines: Vec<u64>,
    /// Diagnostic: AMS accepted drop decisions.
    pub ams_accepts: u64,
    /// Aggregated DRAM statistics over all channels.
    pub dram: DramStats,
    /// Wall-clock phase breakdown from the self-profiler; empty unless the
    /// `prof` feature of this crate is enabled. Excluded from `==`.
    pub prof: crate::prof::ProfReport,
}

impl PartialEq for SimStats {
    fn eq(&self, other: &Self) -> bool {
        // Exhaustive destructure: adding a field without deciding whether it
        // participates in equality fails to compile. `prof` is wall-clock
        // and intentionally ignored.
        let Self {
            core_cycles,
            instructions,
            l1_hits,
            l1_misses,
            l2_hits,
            l2_misses,
            approximated_loads,
            cycles_skipped,
            compute_cycles_skipped,
            ticks_executed,
            ams_declines,
            ams_accepts,
            dram,
            prof: _,
        } = self;
        *core_cycles == other.core_cycles
            && *instructions == other.instructions
            && *l1_hits == other.l1_hits
            && *l1_misses == other.l1_misses
            && *l2_hits == other.l2_hits
            && *l2_misses == other.l2_misses
            && *approximated_loads == other.approximated_loads
            && *cycles_skipped == other.cycles_skipped
            && *compute_cycles_skipped == other.compute_cycles_skipped
            && *ticks_executed == other.ticks_executed
            && *ams_declines == other.ams_declines
            && *ams_accepts == other.ams_accepts
            && *dram == other.dram
    }
}

impl SimStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of simulated core cycles that were fast-forwarded.
    pub fn skip_fraction(&self) -> f64 {
        if self.core_cycles == 0 {
            0.0
        } else {
            self.cycles_skipped as f64 / self.core_cycles as f64
        }
    }

    /// The subset of `cycles_skipped` spanning provably *idle* cycles — the
    /// PR 2 skipper's territory, as opposed to analytically replayed
    /// compute bursts.
    pub fn idle_cycles_skipped(&self) -> u64 {
        self.cycles_skipped - self.compute_cycles_skipped
    }

    /// Fraction of simulated core cycles fast-forwarded through *busy*
    /// compute bursts (analytic round-robin replay rather than idleness).
    pub fn compute_skip_fraction(&self) -> f64 {
        if self.core_cycles == 0 {
            0.0
        } else {
            self.compute_cycles_skipped as f64 / self.core_cycles as f64
        }
    }

    /// Instructions per core cycle.
    pub fn ipc(&self) -> f64 {
        if self.core_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.core_cycles as f64
        }
    }

    /// Serializes the statistics into a snapshot. The wall-clock `prof`
    /// report is intentionally excluded (it is nondeterministic and already
    /// excluded from `==`); a restored run re-accumulates its own profile.
    pub fn save_state(&self, s: &mut crate::snap::Saver) {
        let Self {
            core_cycles,
            instructions,
            l1_hits,
            l1_misses,
            l2_hits,
            l2_misses,
            approximated_loads,
            cycles_skipped,
            compute_cycles_skipped,
            ticks_executed,
            ams_declines,
            ams_accepts,
            dram,
            prof: _,
        } = self;
        s.u64("core_cycles", *core_cycles);
        s.u64("instructions", *instructions);
        s.u64("l1_hits", *l1_hits);
        s.u64("l1_misses", *l1_misses);
        s.u64("l2_hits", *l2_hits);
        s.u64("l2_misses", *l2_misses);
        s.u64("approximated_loads", *approximated_loads);
        s.u64("cycles_skipped", *cycles_skipped);
        s.u64("compute_cycles_skipped", *compute_cycles_skipped);
        s.u64("ticks_executed", *ticks_executed);
        s.u64s("ams_declines", ams_declines);
        s.u64("ams_accepts", *ams_accepts);
        dram.save_state(s);
    }

    /// Restores the statistics from a snapshot (`prof` is left untouched).
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed.
    pub fn load_state(&mut self, l: &mut crate::snap::Loader<'_>) -> crate::snap::SnapResult<()> {
        self.core_cycles = l.u64("core_cycles")?;
        self.instructions = l.u64("instructions")?;
        self.l1_hits = l.u64("l1_hits")?;
        self.l1_misses = l.u64("l1_misses")?;
        self.l2_hits = l.u64("l2_hits")?;
        self.l2_misses = l.u64("l2_misses")?;
        self.approximated_loads = l.u64("approximated_loads")?;
        self.cycles_skipped = l.u64("cycles_skipped")?;
        self.compute_cycles_skipped = l.u64("compute_cycles_skipped")?;
        self.ticks_executed = l.u64("ticks_executed")?;
        l.u64s("ams_declines", &mut self.ams_declines)?;
        self.ams_accepts = l.u64("ams_accepts")?;
        self.dram.load_state(l)
    }

    /// Serializes the whole-simulation statistics as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = crate::json::JsonObject::new();
        o.u64("core_cycles", self.core_cycles)
            .u64("instructions", self.instructions)
            .u64("l1_hits", self.l1_hits)
            .u64("l1_misses", self.l1_misses)
            .u64("l2_hits", self.l2_hits)
            .u64("l2_misses", self.l2_misses)
            .u64("approximated_loads", self.approximated_loads)
            .u64("cycles_skipped", self.cycles_skipped)
            .u64("compute_cycles_skipped", self.compute_cycles_skipped)
            .u64("ticks_executed", self.ticks_executed)
            .u64("ams_accepts", self.ams_accepts)
            .u64_array("ams_declines", &self.ams_declines)
            .raw("dram", &self.dram.to_json());
        if !self.prof.is_empty() {
            o.raw("prof", &self.prof.to_json());
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_and_avg() {
        let mut h = RblHistogram::new();
        h.record(1);
        h.record(1);
        h.record(4);
        assert_eq!(h.activations(), 3);
        assert_eq!(h.requests(), 6);
        assert!((h.avg_rbl() - 2.0).abs() < 1e-12);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.count(3), 0);
        assert_eq!(h.count_range(1, 8), 3);
        assert_eq!(h.count_range(2, 8), 1);
        assert_eq!(h.max_rbl(), 4);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = RblHistogram::new();
        assert_eq!(h.activations(), 0);
        assert_eq!(h.avg_rbl(), 0.0);
        assert_eq!(h.max_rbl(), 0);
        assert!(h.cumulative_curve(0, 0).is_empty());
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = RblHistogram::new();
        a.record(1);
        let mut b = RblHistogram::new();
        b.record(1);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.count(9), 1);
        assert_eq!(a.activations(), 3);
    }

    #[test]
    fn cumulative_curve_is_monotone_and_ends_at_one() {
        let mut h = RblHistogram::new();
        for _ in 0..10 {
            h.record(1);
        }
        for _ in 0..5 {
            h.record(2);
        }
        h.record(20);
        let curve = h.cumulative_curve(h.requests(), h.activations());
        assert_eq!(curve.len(), 3);
        let mut prev = (0.0, 0.0);
        for &(x, y, _) in &curve {
            assert!(x >= prev.0 && y >= prev.1, "curve must be monotone");
            prev = (x, y);
        }
        let last = curve.last().unwrap();
        assert!((last.0 - 1.0).abs() < 1e-12);
        assert!((last.1 - 1.0).abs() < 1e-12);
        // Low-RBL activations dominate the activation count but not requests:
        // first point (RBL 1) has y ≫ x.
        assert!(curve[0].1 > curve[0].0);
    }

    #[test]
    fn coverage_and_bwutil() {
        let mut d = DramStats::new();
        assert_eq!(d.coverage(), 0.0);
        assert_eq!(d.bw_util(), 0.0);
        d.global_reads_received = 100;
        d.dropped = 10;
        d.mem_cycles = 1000;
        d.bus_busy_cycles = 400;
        assert!((d.coverage() - 0.10).abs() < 1e-12);
        assert!((d.bw_util() - 0.40).abs() < 1e-12);
    }

    #[test]
    fn dram_merge_accumulates() {
        let mut a = DramStats::new();
        a.activations = 5;
        a.mem_cycles = 10;
        let mut b = DramStats::new();
        b.activations = 7;
        b.mem_cycles = 20;
        a.merge(&b);
        assert_eq!(a.activations, 12);
        assert_eq!(a.mem_cycles, 20, "cycles take the max, not the sum");
    }

    #[test]
    fn ipc_zero_when_no_cycles() {
        let mut s = SimStats::new();
        assert_eq!(s.ipc(), 0.0);
        s.core_cycles = 100;
        s.instructions = 250;
        assert!((s.ipc() - 2.5).abs() < 1e-12);
    }
}
