//! Configuration of the simulated GPU (Table I of the paper) and of the
//! lazy-memory-scheduler policies (Section IV of the paper).


/// GDDR5 DRAM timing parameters, in *memory* cycles (924 MHz domain).
///
/// Defaults follow the Hynix GDDR5 values in Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramTimings {
    /// CAS (read) latency: cycles between a `RD` command and first data beat.
    pub t_cl: u32,
    /// Row-precharge time: cycles between `PRE` and the next `ACT` to the bank.
    pub t_rp: u32,
    /// Row-cycle time: minimum cycles between two `ACT`s to the same bank.
    pub t_rc: u32,
    /// Minimum cycles a row must stay open between `ACT` and `PRE`.
    pub t_ras: u32,
    /// Column-to-column delay: data-bus beats occupied per burst.
    pub t_ccd: u32,
    /// RAS-to-CAS delay: cycles between `ACT` and the first `RD`/`WR`.
    pub t_rcd: u32,
    /// Activate-to-activate delay across *different* banks of one channel.
    pub t_rrd: u32,
    /// Last-write-data to read delay (write-to-read turnaround).
    pub t_cdlr: u32,
    /// Write latency: cycles between a `WR` command and first data beat.
    pub t_wl: u32,
    /// Write recovery: cycles between last write data and `PRE` of that bank.
    pub t_wr: u32,
    /// Four-activation window per channel; 0 disables the constraint
    /// (extension, off in the paper-baseline configuration).
    pub t_faw: u32,
    /// Long CAS-to-CAS delay within one bank group; 0 uses `t_ccd` for all
    /// (extension, off in the paper-baseline configuration).
    pub t_ccdl: u32,
    /// All-bank refresh interval; 0 disables refresh (extension).
    pub t_refi: u32,
    /// All-bank refresh cycle time (used when `t_refi > 0`).
    pub t_rfc: u32,
}

impl Default for DramTimings {
    fn default() -> Self {
        Self {
            t_cl: 12,
            t_rp: 12,
            t_rc: 40,
            t_ras: 28,
            t_ccd: 2,
            t_rcd: 12,
            t_rrd: 6,
            t_cdlr: 5,
            t_wl: 4,
            t_wr: 12,
            t_faw: 0,
            t_ccdl: 0,
            t_refi: 0,
            t_rfc: 0,
        }
    }
}

impl DramTimings {
    /// GDDR5 timing with the full constraint set enabled: tFAW, bank-group
    /// aware tCCDL, and periodic all-bank refresh. The paper's Table I does
    /// not list these, so the default keeps them off; this profile is used
    /// by the timing-fidelity ablation.
    pub fn gddr5_extended() -> Self {
        Self {
            t_faw: 23,
            t_ccdl: 3,
            t_refi: 3_900,
            t_rfc: 120,
            ..Self::default()
        }
    }

    /// A DDR4-2400-class timing package in 1200 MHz command-clock cycles,
    /// with the full constraint set (tFAW, tCCDL, refresh) enabled. Used by
    /// [`DramPreset::Ddr4`] / the `Ddr4` backend.
    pub fn ddr4() -> Self {
        Self {
            t_cl: 16,
            t_rp: 16,
            t_rc: 55,
            t_ras: 39,
            t_ccd: 4,
            t_rcd: 16,
            t_rrd: 6,
            t_cdlr: 8,
            t_wl: 12,
            t_wr: 18,
            t_faw: 26,
            t_ccdl: 6,
            t_refi: 9_360,
            t_rfc: 420,
        }
    }

    /// An LPDDR4-3200-class timing package in 800 MHz command-clock cycles.
    /// LPDDR4 has no bank groups, so `t_ccdl` stays 0; refresh is enabled.
    /// Used by [`DramPreset::Lpddr4`] / the `Lpddr4` backend.
    pub fn lpddr4() -> Self {
        Self {
            t_cl: 14,
            t_rp: 17,
            t_rc: 51,
            t_ras: 34,
            t_ccd: 4,
            t_rcd: 15,
            t_rrd: 8,
            t_cdlr: 9,
            t_wl: 9,
            t_wr: 15,
            t_faw: 32,
            t_ccdl: 0,
            t_refi: 6_240,
            t_rfc: 336,
        }
    }
}

/// Which memory-backend model services a controller's DRAM commands.
///
/// This selects the *model* behind the `MemoryBackend` trait in
/// `lazydram_dram`, not the machine geometry: geometry and the timing
/// package still come from the rest of [`GpuConfig`]. The discriminant
/// values are stable — they tag backend checkpoint frames on the wire, so a
/// checkpoint taken under one backend can never be restored into another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum BackendKind {
    /// The cycle-level banked channel model (GDDR5/HBM-style), the paper's
    /// baseline. Byte-identical to the pre-trait hard-wired model.
    Gddr5 = 0,
    /// Fixed-latency, bank-state-free tier for fast functional runs: every
    /// command is always legal and a CAS completes after tRCD+tCL+tCCD.
    Naive = 1,
    /// The banked channel model tagged as DDR4-class; pair with
    /// [`DramTimings::ddr4`] (done by [`DramPreset::Ddr4`]).
    Ddr4 = 2,
    /// The banked channel model tagged as LPDDR4-class; pair with
    /// [`DramTimings::lpddr4`] (done by [`DramPreset::Lpddr4`]).
    Lpddr4 = 3,
    /// Flexible-Latency DRAM: the banked channel model with deterministic
    /// per-bank tCL/tRCD variation seeded from the config digest.
    Flex = 4,
}

impl BackendKind {
    /// Stable wire tag used for checkpoint frame validation.
    pub fn tag(self) -> u32 {
        self as u32
    }
}

/// Static configuration of the simulated GPU (Table I of the paper).
///
/// The default value reproduces the paper's baseline: 30 SMs at 1400 MHz,
/// 6 GDDR5 memory controllers at 924 MHz, 16 banks per controller in 4 bank
/// groups, 128-entry FR-FCFS pending queues, and 256-byte channel interleaving.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Maximum resident warps per SM (48 in the baseline).
    pub warps_per_sm: usize,
    /// Threads per warp (SIMD width).
    pub threads_per_warp: usize,
    /// Warp-instruction issue slots per SM per core cycle (2 schedulers).
    pub issue_width: usize,
    /// Core clock in MHz.
    pub core_clock_mhz: u32,
    /// Memory clock in MHz.
    pub mem_clock_mhz: u32,
    /// Number of memory channels (memory controllers / L2 slices).
    pub num_channels: usize,
    /// DRAM banks per channel.
    pub banks_per_channel: usize,
    /// Bank groups per channel.
    pub bank_groups: usize,
    /// Bytes per DRAM row (page) per bank.
    pub row_bytes: usize,
    /// Cache-line (DRAM burst) size in bytes.
    pub line_bytes: usize,
    /// Channel-interleaving chunk size in bytes (256 in the baseline).
    pub chunk_bytes: usize,
    /// L1 data-cache size per SM, bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 size per channel slice, bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// One-way interconnect latency in core cycles.
    pub noc_latency: u32,
    /// Per-direction interconnect throughput: requests accepted per core cycle.
    pub noc_width: usize,
    /// FR-FCFS pending-queue capacity per memory controller.
    pub pending_queue_size: usize,
    /// L1 miss-status-holding registers per SM (outstanding missed lines).
    pub l1_mshrs: usize,
    /// L2 MSHRs per slice.
    pub l2_mshrs: usize,
    /// L2 lookups processed per slice per core cycle.
    pub l2_throughput: usize,
    /// Extra L2 hit latency in core cycles (on top of interconnect latency).
    pub l2_latency: u32,
    /// DRAM timing parameters.
    pub timings: DramTimings,
    /// Memory-backend model servicing the controllers' DRAM commands.
    pub backend: BackendKind,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self {
            num_sms: 30,
            warps_per_sm: 48,
            threads_per_warp: 32,
            issue_width: 2,
            core_clock_mhz: 1400,
            mem_clock_mhz: 924,
            num_channels: 6,
            banks_per_channel: 16,
            bank_groups: 4,
            row_bytes: 2048,
            line_bytes: 128,
            chunk_bytes: 256,
            l1_bytes: 16 * 1024,
            l1_ways: 4,
            l2_bytes: 128 * 1024,
            l2_ways: 8,
            noc_latency: 8,
            noc_width: 2,
            pending_queue_size: 128,
            l1_mshrs: 64,
            l2_mshrs: 64,
            l2_throughput: 2,
            l2_latency: 16,
            timings: DramTimings::default(),
            backend: BackendKind::Gddr5,
        }
    }
}

impl GpuConfig {
    /// Returns a scaled-down configuration useful for fast unit tests:
    /// fewer SMs and smaller caches, but identical DRAM organization.
    pub fn small() -> Self {
        Self {
            num_sms: 4,
            warps_per_sm: 16,
            ..Self::default()
        }
    }

    /// Number of cache lines in one DRAM row.
    pub fn lines_per_row(&self) -> usize {
        self.row_bytes / self.line_bytes
    }

    /// Memory-to-core clock ratio (< 1 for the baseline).
    pub fn clock_ratio(&self) -> f64 {
        f64::from(self.mem_clock_mhz) / f64::from(self.core_clock_mhz)
    }
}

/// Delayed-memory-scheduling (DMS) operating mode (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DmsMode {
    /// No delay: baseline FR-FCFS issue timing.
    Off,
    /// `Static-DMS`: a fixed minimum age, in memory cycles, that the oldest
    /// pending request must reach before a *new row* may be opened.
    Static(u32),
    /// `Dyn-DMS`: profiling controller that adapts the delay to keep DRAM
    /// bandwidth utilization within `bw_threshold` of a sampled baseline.
    Dynamic(DynDmsConfig),
}

impl DmsMode {
    /// The paper's `Static-DMS` configuration, `DMS(128)`.
    pub fn paper_static() -> Self {
        DmsMode::Static(128)
    }

    /// The paper's `Dyn-DMS` configuration.
    pub fn paper_dynamic() -> Self {
        DmsMode::Dynamic(DynDmsConfig::default())
    }

    /// Returns `true` unless the mode is [`DmsMode::Off`].
    pub fn is_enabled(&self) -> bool {
        !matches!(self, DmsMode::Off)
    }
}

/// Knobs of the `Dyn-DMS` profiling controller (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynDmsConfig {
    /// Profiling-window length in memory cycles (paper: 4096).
    pub window: u32,
    /// Delay increment per window in memory cycles (paper: 128).
    pub step: u32,
    /// Starting delay for the first search (paper: 128).
    pub start: u32,
    /// Maximum delay (paper: 2048).
    pub max: u32,
    /// Minimum delay (paper: 0, the baseline).
    pub min: u32,
    /// Restart the search every this many windows (paper: 32).
    pub restart_windows: u32,
    /// Keep increasing delay while window BWUTIL ≥ this fraction of the
    /// sampled baseline BWUTIL (paper: 0.95).
    pub bw_threshold: f64,
}

impl Default for DynDmsConfig {
    fn default() -> Self {
        Self {
            window: 4096,
            step: 128,
            start: 128,
            max: 2048,
            min: 0,
            restart_windows: 32,
            bw_threshold: 0.95,
        }
    }
}

/// Approximate-memory-scheduling (AMS) operating mode (Section IV-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AmsMode {
    /// No approximation.
    Off,
    /// `Static-AMS`: fixed RBL threshold; pending rows whose visible RBL is
    /// ≤ the threshold are candidates for dropping.
    Static(u32),
    /// `Dyn-AMS`: feedback controller that walks the threshold within
    /// `[min_th, max_th]` to track the coverage target.
    Dynamic(DynAmsConfig),
}

impl AmsMode {
    /// The paper's `Static-AMS` configuration, `AMS(8)`.
    pub fn paper_static() -> Self {
        AmsMode::Static(8)
    }

    /// The paper's `Dyn-AMS` configuration.
    pub fn paper_dynamic() -> Self {
        AmsMode::Dynamic(DynAmsConfig::default())
    }

    /// Returns `true` unless the mode is [`AmsMode::Off`].
    pub fn is_enabled(&self) -> bool {
        !matches!(self, AmsMode::Off)
    }
}

/// Knobs of the `Dyn-AMS` feedback controller (Section IV-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynAmsConfig {
    /// Profiling-window length in memory cycles (paper: 4096).
    pub window: u32,
    /// Lowest threshold the controller may reach (paper: 1).
    pub min_th: u32,
    /// Highest threshold / starting point (paper: 8).
    pub max_th: u32,
}

impl Default for DynAmsConfig {
    fn default() -> Self {
        Self {
            window: 4096,
            min_th: 1,
            max_th: 8,
        }
    }
}

/// Request arbiter of the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arbiter {
    /// First-Row FCFS: row-buffer hits first, then oldest (the baseline,
    /// Rixner et al., paper reference \[15\]).
    FrFcfs,
    /// Strict first-come-first-serve: no row-hit reordering (comparison
    /// baseline).
    Fcfs,
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowPolicy {
    /// Open-page: rows stay open until a conflicting access (the baseline).
    Open,
    /// Closed-page: precharge as soon as no pending request wants the row
    /// (comparison baseline, cf. the paper's references \[41\]–\[42\]).
    Closed,
}

/// Full policy configuration of one memory controller.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedConfig {
    /// Request arbiter (default: FR-FCFS).
    pub arbiter: Arbiter,
    /// Row-buffer management (default: open-page).
    pub row_policy: RowPolicy,
    /// Delayed-scheduling mode.
    pub dms: DmsMode,
    /// Approximate-scheduling mode.
    pub ams: AmsMode,
    /// User-defined prediction-coverage cap as a fraction of global read
    /// requests received by the controller (paper: 0.10).
    pub coverage_cap: f64,
    /// Value-predictor search radius in L2 sets (paper: "nearby sets").
    pub vp_set_radius: u32,
    /// Warm-up: AMS stays disabled until this many global reads have been
    /// received by the controller, letting its L2 slice fill before
    /// predictions start (paper: "we first warm up the L2 cache").
    pub ams_warmup_requests: u64,
    /// Footnote-2 "advanced model": approximated lines are inserted into L2
    /// so later accesses may reuse the approximation.
    pub approx_reuse: bool,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            arbiter: Arbiter::FrFcfs,
            row_policy: RowPolicy::Open,
            dms: DmsMode::Off,
            ams: AmsMode::Off,
            coverage_cap: 0.10,
            vp_set_radius: 4,
            ams_warmup_requests: 500,
            approx_reuse: false,
        }
    }
}

impl SchedConfig {
    /// Baseline FR-FCFS with no delaying and no approximation.
    pub fn baseline() -> Self {
        Self::default()
    }

    /// The paper's `Static-DMS` scheme.
    pub fn static_dms() -> Self {
        Self {
            dms: DmsMode::paper_static(),
            ..Self::default()
        }
    }

    /// The paper's `Dyn-DMS` scheme.
    pub fn dyn_dms() -> Self {
        Self {
            dms: DmsMode::paper_dynamic(),
            ..Self::default()
        }
    }

    /// The paper's `Static-AMS` scheme.
    pub fn static_ams() -> Self {
        Self {
            ams: AmsMode::paper_static(),
            ..Self::default()
        }
    }

    /// The paper's `Dyn-AMS` scheme.
    pub fn dyn_ams() -> Self {
        Self {
            ams: AmsMode::paper_dynamic(),
            ..Self::default()
        }
    }

    /// The paper's `Static-DMS + Static-AMS` combination.
    pub fn static_combo() -> Self {
        Self {
            dms: DmsMode::paper_static(),
            ams: AmsMode::paper_static(),
            ..Self::default()
        }
    }

    /// The paper's `Dyn-DMS + Dyn-AMS` combination (the headline scheme).
    pub fn dyn_combo() -> Self {
        Self {
            dms: DmsMode::paper_dynamic(),
            ams: AmsMode::paper_dynamic(),
            ..Self::default()
        }
    }

    /// All six schemes evaluated in Figure 12, with their paper labels,
    /// in presentation order.
    pub fn paper_schemes() -> Vec<(&'static str, Self)> {
        Scheme::PAPER.iter().map(|s| (s.label(), s.sched())).collect()
    }
}

/// The named scheduling schemes of the paper's evaluation, unified into one
/// constructor enum.
///
/// Every consumer-facing entry point (`SimBuilder`, the CLI, the figure
/// harnesses) selects a policy through this enum instead of hand-wiring a
/// [`SchedConfig`]; parameter sweeps that need off-menu settings (e.g. a
/// custom static DMS delay) still build a raw [`SchedConfig`] and attach
/// their own label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// FR-FCFS with no delaying and no approximation.
    Baseline,
    /// Delayed memory scheduling with the paper's fixed delay (X = 128).
    StaticDms,
    /// Delayed memory scheduling with the per-window delay search.
    DynDms,
    /// Approximate memory scheduling with the fixed RBL threshold (8).
    StaticAms,
    /// Approximate memory scheduling with the dynamic threshold.
    DynAms,
    /// `Static-DMS + Static-AMS` combination.
    StaticCombo,
    /// `Dyn-DMS + Dyn-AMS` — the headline scheme.
    DynCombo,
}

impl Scheme {
    /// Every scheme, baseline first.
    pub const ALL: [Scheme; 7] = [
        Scheme::Baseline,
        Scheme::StaticDms,
        Scheme::DynDms,
        Scheme::StaticAms,
        Scheme::DynAms,
        Scheme::StaticCombo,
        Scheme::DynCombo,
    ];

    /// The six non-baseline schemes of Figure 12, in presentation order.
    pub const PAPER: [Scheme; 6] = [
        Scheme::StaticDms,
        Scheme::DynDms,
        Scheme::StaticAms,
        Scheme::DynAms,
        Scheme::StaticCombo,
        Scheme::DynCombo,
    ];

    /// The scheduling policy this scheme names.
    pub fn sched(self) -> SchedConfig {
        match self {
            Scheme::Baseline => SchedConfig::baseline(),
            Scheme::StaticDms => SchedConfig::static_dms(),
            Scheme::DynDms => SchedConfig::dyn_dms(),
            Scheme::StaticAms => SchedConfig::static_ams(),
            Scheme::DynAms => SchedConfig::dyn_ams(),
            Scheme::StaticCombo => SchedConfig::static_combo(),
            Scheme::DynCombo => SchedConfig::dyn_combo(),
        }
    }

    /// The paper's display label (also the JSONL `scheme` field).
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Baseline => "baseline",
            Scheme::StaticDms => "Static-DMS",
            Scheme::DynDms => "Dyn-DMS",
            Scheme::StaticAms => "Static-AMS",
            Scheme::DynAms => "Dyn-AMS",
            Scheme::StaticCombo => "Static-DMS+Static-AMS",
            Scheme::DynCombo => "Dyn-DMS+Dyn-AMS",
        }
    }

    /// Looks a scheme up by its (case-insensitive) display label.
    pub fn by_label(name: &str) -> Option<Scheme> {
        Scheme::ALL.into_iter().find(|s| s.label().eq_ignore_ascii_case(name))
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The named memory-technology presets of the backend matrix, unified into
/// one constructor enum (mirroring [`Scheme`] for scheduling policies).
///
/// A preset bundles a machine geometry, a [`DramTimings`] package, and a
/// [`BackendKind`] into one [`GpuConfig`]. Every consumer-facing entry point
/// (`SimBuilder::preset`, the CLI `--backend` flag, the `LAZYDRAM_BACKEND`
/// env var) selects a memory technology through this enum; sweeps that need
/// off-menu machines still build a raw [`GpuConfig`] by hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramPreset {
    /// The paper's baseline: 6-channel Hynix GDDR5 at 924 MHz (Table I).
    Gddr5,
    /// A representative first-generation HBM machine: more, slower channels
    /// with smaller rows. Used by the Section V technology discussion
    /// ("independent of the memory technology used as long as it adopts
    /// similar structures as the row buffer").
    Hbm1,
    /// A representative HBM2 machine (faster clock, pseudo-channel-like
    /// organization approximated as 8 channels).
    Hbm2,
    /// A DDR4-2400-class machine: 4 wide channels with large (8 KiB) rows.
    Ddr4,
    /// An LPDDR4-3200-class machine: 8 narrow channels, no bank groups.
    Lpddr4,
    /// The paper-baseline geometry serviced by the fixed-latency
    /// [`BackendKind::Naive`] model (fast functional tier).
    Naive,
    /// The paper-baseline geometry with Flexible-Latency DRAM: per-bank
    /// tCL/tRCD variation seeded deterministically from the config digest.
    Flex,
}

impl DramPreset {
    /// Every preset, the paper baseline first.
    pub const ALL: [DramPreset; 7] = [
        DramPreset::Gddr5,
        DramPreset::Hbm1,
        DramPreset::Hbm2,
        DramPreset::Ddr4,
        DramPreset::Lpddr4,
        DramPreset::Naive,
        DramPreset::Flex,
    ];

    /// The machine configuration this preset names.
    pub fn gpu_config(self) -> GpuConfig {
        match self {
            DramPreset::Gddr5 => GpuConfig::default(),
            DramPreset::Hbm1 => GpuConfig {
                num_channels: 8,
                mem_clock_mhz: 500,
                banks_per_channel: 8,
                bank_groups: 4,
                row_bytes: 2048,
                timings: DramTimings {
                    t_cl: 7,
                    t_rp: 7,
                    t_rc: 24,
                    t_ras: 17,
                    t_ccd: 2,
                    t_rcd: 7,
                    t_rrd: 4,
                    t_cdlr: 4,
                    t_wl: 2,
                    t_wr: 8,
                    ..DramTimings::default()
                },
                ..GpuConfig::default()
            },
            DramPreset::Hbm2 => GpuConfig {
                num_channels: 8,
                mem_clock_mhz: 1000,
                banks_per_channel: 16,
                bank_groups: 4,
                row_bytes: 1024,
                timings: DramTimings {
                    t_cl: 14,
                    t_rp: 14,
                    t_rc: 47,
                    t_ras: 33,
                    t_ccd: 2,
                    t_rcd: 14,
                    t_rrd: 4,
                    t_cdlr: 6,
                    t_wl: 4,
                    t_wr: 16,
                    ..DramTimings::default()
                },
                ..GpuConfig::default()
            },
            DramPreset::Ddr4 => GpuConfig {
                num_channels: 4,
                mem_clock_mhz: 1200,
                banks_per_channel: 16,
                bank_groups: 4,
                row_bytes: 8192,
                timings: DramTimings::ddr4(),
                backend: BackendKind::Ddr4,
                ..GpuConfig::default()
            },
            DramPreset::Lpddr4 => GpuConfig {
                num_channels: 8,
                mem_clock_mhz: 800,
                banks_per_channel: 8,
                bank_groups: 1,
                row_bytes: 4096,
                timings: DramTimings::lpddr4(),
                backend: BackendKind::Lpddr4,
                ..GpuConfig::default()
            },
            DramPreset::Naive => GpuConfig {
                backend: BackendKind::Naive,
                ..GpuConfig::default()
            },
            DramPreset::Flex => GpuConfig {
                backend: BackendKind::Flex,
                ..GpuConfig::default()
            },
        }
    }

    /// The display label (also the CLI/env spelling).
    pub fn label(self) -> &'static str {
        match self {
            DramPreset::Gddr5 => "gddr5",
            DramPreset::Hbm1 => "hbm1",
            DramPreset::Hbm2 => "hbm2",
            DramPreset::Ddr4 => "ddr4",
            DramPreset::Lpddr4 => "lpddr4",
            DramPreset::Naive => "naive",
            DramPreset::Flex => "flex",
        }
    }

    /// Every label, in [`DramPreset::ALL`] order.
    pub fn labels() -> Vec<&'static str> {
        DramPreset::ALL.iter().map(|p| p.label()).collect()
    }

    /// Looks a preset up by its (case-insensitive) label.
    pub fn by_label(name: &str) -> Option<DramPreset> {
        DramPreset::ALL.into_iter().find(|p| p.label().eq_ignore_ascii_case(name))
    }
}

impl std::fmt::Display for DramPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_timings_match_table_i() {
        let t = DramTimings::default();
        assert_eq!(t.t_cl, 12);
        assert_eq!(t.t_rp, 12);
        assert_eq!(t.t_rc, 40);
        assert_eq!(t.t_ras, 28);
        assert_eq!(t.t_ccd, 2);
        assert_eq!(t.t_rcd, 12);
        assert_eq!(t.t_rrd, 6);
        assert_eq!(t.t_cdlr, 5);
    }

    #[test]
    fn default_gpu_matches_table_i() {
        let g = GpuConfig::default();
        assert_eq!(g.num_sms, 30);
        assert_eq!(g.warps_per_sm, 48);
        assert_eq!(g.num_channels, 6);
        assert_eq!(g.banks_per_channel, 16);
        assert_eq!(g.bank_groups, 4);
        assert_eq!(g.pending_queue_size, 128);
        assert_eq!(g.lines_per_row(), 16);
        assert!(g.clock_ratio() > 0.65 && g.clock_ratio() < 0.67);
    }

    #[test]
    fn paper_scheme_constructors() {
        assert_eq!(SchedConfig::static_dms().dms, DmsMode::Static(128));
        assert_eq!(SchedConfig::static_ams().ams, AmsMode::Static(8));
        let combo = SchedConfig::dyn_combo();
        assert!(combo.dms.is_enabled() && combo.ams.is_enabled());
        assert_eq!(SchedConfig::paper_schemes().len(), 6);
    }

    #[test]
    fn scheme_enum_matches_constructors() {
        assert_eq!(Scheme::Baseline.sched(), SchedConfig::baseline());
        assert_eq!(Scheme::DynCombo.sched(), SchedConfig::dyn_combo());
        for (label, sched) in SchedConfig::paper_schemes() {
            let s = Scheme::by_label(label).expect("label resolves");
            assert_eq!(s.label(), label);
            assert_eq!(s.sched(), sched);
        }
        assert_eq!(Scheme::by_label("dyn-dms+dyn-ams"), Some(Scheme::DynCombo));
        assert_eq!(Scheme::by_label("BASELINE"), Some(Scheme::Baseline));
        assert_eq!(Scheme::by_label("telepathy"), None);
        assert_eq!(format!("{}", Scheme::StaticDms), "Static-DMS");
    }

    #[test]
    fn baseline_has_everything_off() {
        let b = SchedConfig::baseline();
        assert!(!b.dms.is_enabled());
        assert!(!b.ams.is_enabled());
        assert!((b.coverage_cap - 0.10).abs() < 1e-12);
    }

    #[test]
    fn dyn_configs_match_paper() {
        let d = DynDmsConfig::default();
        assert_eq!((d.window, d.step, d.start, d.max), (4096, 128, 128, 2048));
        assert_eq!(d.restart_windows, 32);
        let a = DynAmsConfig::default();
        assert_eq!((a.window, a.min_th, a.max_th), (4096, 1, 8));
    }

    #[test]
    fn preset_labels_round_trip() {
        for p in DramPreset::ALL {
            assert_eq!(DramPreset::by_label(p.label()), Some(p));
            assert_eq!(format!("{p}"), p.label());
        }
        assert_eq!(DramPreset::by_label("LPDDR4"), Some(DramPreset::Lpddr4));
        assert_eq!(DramPreset::by_label("sram"), None);
        assert_eq!(DramPreset::labels().len(), DramPreset::ALL.len());
    }

    #[test]
    fn preset_configs_are_consistent() {
        assert_eq!(DramPreset::Gddr5.gpu_config(), GpuConfig::default());
        for p in DramPreset::ALL {
            let g = p.gpu_config();
            assert_eq!(g.banks_per_channel % g.bank_groups, 0, "{p}");
            assert!(g.lines_per_row() >= 8, "{p}");
        }
        assert_eq!(DramPreset::Naive.gpu_config().backend, BackendKind::Naive);
        assert_eq!(DramPreset::Ddr4.gpu_config().backend, BackendKind::Ddr4);
        assert_eq!(DramPreset::Ddr4.gpu_config().timings, DramTimings::ddr4());
        assert_eq!(DramPreset::Lpddr4.gpu_config().timings, DramTimings::lpddr4());
        assert_eq!(DramPreset::Flex.gpu_config().backend, BackendKind::Flex);
    }

    #[test]
    fn backend_tags_are_stable() {
        // Wire tags for checkpoint frames: frozen, never renumber.
        assert_eq!(BackendKind::Gddr5.tag(), 0);
        assert_eq!(BackendKind::Naive.tag(), 1);
        assert_eq!(BackendKind::Ddr4.tag(), 2);
        assert_eq!(BackendKind::Lpddr4.tag(), 3);
        assert_eq!(BackendKind::Flex.tag(), 4);
    }

    #[test]
    fn small_config_keeps_dram_organization() {
        let g = GpuConfig::small();
        assert_eq!(g.num_channels, GpuConfig::default().num_channels);
        assert_eq!(g.banks_per_channel, GpuConfig::default().banks_per_channel);
        assert!(g.num_sms < GpuConfig::default().num_sms);
    }
}
