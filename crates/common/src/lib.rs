//! Shared foundation types for the `lazydram` simulator.
//!
//! This crate holds everything that more than one subsystem needs:
//!
//! * [`config`] — the simulated-GPU configuration (Table I of the paper) and the
//!   scheduler-policy configuration (DMS/AMS modes and their knobs),
//! * [`addr`] — the global-address ⇄ DRAM-location mapping (channel, bank group,
//!   bank, row, column) with 256-byte channel interleaving,
//! * [`stats`] — row-buffer-locality histograms and aggregate simulation
//!   statistics shared by the DRAM model, the scheduler and the harnesses,
//! * [`req`] — the memory-request representation exchanged between the GPU
//!   substrate, the memory controller and the DRAM model,
//! * [`rng`] — the deterministic SplitMix64 generator used for workload-input
//!   synthesis (offline replacement for the `rand` crate),
//! * [`json`] — a minimal JSON emitter for machine-readable harness output
//!   (offline replacement for `serde_json`),
//! * [`snap`] — the hand-rolled, versioned, length-prefixed binary snapshot
//!   format backing checkpoint/restore (offline replacement for `serde`).
//!
//! # Example
//!
//! ```
//! use lazydram_common::addr::AddressMap;
//! use lazydram_common::config::GpuConfig;
//!
//! let map = AddressMap::new(&GpuConfig::default());
//! let loc = map.decompose(0x1_2345_6780);
//! assert_eq!(map.compose(loc), 0x1_2345_6780 & !(map.line_bytes() as u64 - 1));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod addr;
pub mod config;
pub mod fasthash;
pub mod json;
pub mod prof;
pub mod req;
pub mod rng;
pub mod snap;
pub mod stats;

/// Version of the *simulation semantics*: the mapping from a fully specified
/// `(app, scheme, machine config, scale)` cell to its measured results.
///
/// The content-addressed result store (`lazydram-bench::store`) folds this
/// constant into every cache key, so bumping it invalidates all previously
/// published entries at once. The contract, pinned by the golden-output test
/// (`tests/semantics_golden.rs`): **any PR that changes what a simulation
/// computes — timing, scheduling, energy, workload inputs, statistics — must
/// bump this constant** (the golden test fails until it does). PRs that only
/// change *how fast* the same results are produced (fast-forward, parallel
/// tick, allocation work) leave it untouched; their bit-identity suites prove
/// cached entries are still exact.
pub const SEMANTICS_VERSION: u64 = 1;

pub use addr::{AddressMap, Location};
pub use fasthash::{FastMap, FastSet};
pub use config::{
    AmsMode, Arbiter, BackendKind, DmsMode, DramPreset, DramTimings, GpuConfig, RowPolicy,
    SchedConfig, Scheme,
};
pub use prof::ProfReport;
pub use req::{AccessKind, MemSpace, Request, RequestId};
pub use rng::SplitMix64;
pub use snap::{Loader, Saver, SnapError, SnapResult};
pub use stats::{DramStats, RblHistogram, SimStats};
