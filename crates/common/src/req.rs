//! The memory-request representation exchanged between the GPU substrate,
//! the memory controller and the DRAM model.

use crate::addr::Location;

/// Globally unique identifier of a DRAM request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Whether a request reads or writes DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read (load miss or fetch).
    Read,
    /// A write (dirty writeback or write-through store).
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }
}

/// The memory space a request originates from. AMS only ever approximates
/// requests from the global space (Section II-D: "global read requests").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Global device memory (approximable when annotated).
    Global,
    /// Anything else (instruction fetch, local spill, writeback metadata…).
    Other,
}

/// One DRAM request as seen by a memory controller's pending queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Unique id, used to route the response back to the originator.
    pub id: RequestId,
    /// Line-aligned byte address.
    pub addr: u64,
    /// Decomposed DRAM location of `addr` (cached at enqueue time).
    pub loc: Location,
    /// Read or write.
    pub kind: AccessKind,
    /// Originating memory space.
    pub space: MemSpace,
    /// `pragma pred_var` annotation: the programmer marked the data this
    /// request touches as error-tolerant, so AMS may approximate it.
    pub approximable: bool,
    /// Memory-cycle timestamp at which the request entered the pending queue.
    pub arrival: u64,
}

impl Request {
    /// Returns `true` if this is a global read, the only category AMS may drop.
    pub fn is_global_read(&self) -> bool {
        self.kind.is_read() && self.space == MemSpace::Global
    }

    /// Age of the request, in memory cycles, at time `now`.
    pub fn age(&self, now: u64) -> u64 {
        now.saturating_sub(self.arrival)
    }

    /// Serializes the request into a snapshot.
    pub fn save_state(&self, s: &mut crate::snap::Saver) {
        s.u64("id", self.id.0);
        s.u64("addr", self.addr);
        s.u16("channel", self.loc.channel);
        s.u16("bank_group", self.loc.bank_group);
        s.u16("bank_in_group", self.loc.bank_in_group);
        s.u32("row", self.loc.row);
        s.u16("col", self.loc.col);
        s.bool("is_read", self.kind.is_read());
        s.bool("is_global", self.space == MemSpace::Global);
        s.bool("approximable", self.approximable);
        s.u64("arrival", self.arrival);
    }

    /// Deserializes a request written by [`Request::save_state`].
    ///
    /// # Errors
    ///
    /// Returns an error when the snapshot bytes are malformed.
    pub fn load_state(l: &mut crate::snap::Loader<'_>) -> crate::snap::SnapResult<Self> {
        Ok(Request {
            id: RequestId(l.u64("id")?),
            addr: l.u64("addr")?,
            loc: Location {
                channel: l.u16("channel")?,
                bank_group: l.u16("bank_group")?,
                bank_in_group: l.u16("bank_in_group")?,
                row: l.u32("row")?,
                col: l.u16("col")?,
            },
            kind: if l.bool("is_read")? { AccessKind::Read } else { AccessKind::Write },
            space: if l.bool("is_global")? { MemSpace::Global } else { MemSpace::Other },
            approximable: l.bool("approximable")?,
            arrival: l.u64("arrival")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: AccessKind, space: MemSpace) -> Request {
        Request {
            id: RequestId(7),
            addr: 0x1000,
            loc: Location { channel: 0, bank_group: 0, bank_in_group: 0, row: 2, col: 0 },
            kind,
            space,
            approximable: true,
            arrival: 100,
        }
    }

    #[test]
    fn global_read_detection() {
        assert!(sample(AccessKind::Read, MemSpace::Global).is_global_read());
        assert!(!sample(AccessKind::Write, MemSpace::Global).is_global_read());
        assert!(!sample(AccessKind::Read, MemSpace::Other).is_global_read());
    }

    #[test]
    fn age_saturates_before_arrival() {
        let r = sample(AccessKind::Read, MemSpace::Global);
        assert_eq!(r.age(90), 0);
        assert_eq!(r.age(100), 0);
        assert_eq!(r.age(228), 128);
    }

    #[test]
    fn request_id_displays_compactly() {
        assert_eq!(RequestId(42).to_string(), "req#42");
    }
}
