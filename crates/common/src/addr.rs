//! Global-address ⇄ DRAM-location mapping.
//!
//! The global linear address space is interleaved across channels in
//! [`GpuConfig::chunk_bytes`]-sized chunks (256 B in the baseline, Table I).
//! Within one channel the per-channel address is decomposed, low to high, as
//! `[chunk-in-row | bank (bank-group major) | row]`, so that
//!
//! * consecutive chunks of one channel fall into the *same row* (good spatial
//!   locality maps to row-buffer hits), and
//! * consecutive rows fall into *different bank groups* (maximizing bank-level
//!   parallelism, like GPGPU-Sim's default GDDR5 mapping).

use crate::config::GpuConfig;

/// A fully decomposed DRAM location for one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Location {
    /// Memory channel (memory-controller / L2-slice) index.
    pub channel: u16,
    /// Bank-group index within the channel.
    pub bank_group: u16,
    /// Bank index within the bank group.
    pub bank_in_group: u16,
    /// Row (page) index within the bank.
    pub row: u32,
    /// Cache-line index within the row.
    pub col: u16,
}

impl Location {
    /// Flat bank index within the channel, `bank_group * banks_in_group + bank_in_group`.
    pub fn flat_bank(&self, banks_per_group: usize) -> usize {
        self.bank_group as usize * banks_per_group + self.bank_in_group as usize
    }
}

/// Address mapper derived from a [`GpuConfig`].
///
/// All sizes except the channel count are powers of two; the channel count
/// (6 in the baseline) is handled with an explicit div/mod, matching the
/// "interleaved among partitions in chunks of 256 bytes" rule of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    line_bytes: u64,
    chunk_bytes: u64,
    channels: u64,
    chunks_per_row: u64,
    lines_per_chunk: u64,
    banks_per_channel: u64,
    bank_groups: u64,
    banks_per_group: u64,
}

impl AddressMap {
    /// Builds the mapper for a GPU configuration.
    ///
    /// # Panics
    ///
    /// Panics if line/chunk/row sizes are not powers of two, if the chunk is
    /// smaller than a line, or if the bank count is not divisible by the
    /// bank-group count.
    pub fn new(cfg: &GpuConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(cfg.chunk_bytes.is_power_of_two(), "chunk size must be a power of two");
        assert!(cfg.row_bytes.is_power_of_two(), "row size must be a power of two");
        assert!(cfg.chunk_bytes >= cfg.line_bytes, "chunk must hold at least one line");
        assert!(cfg.row_bytes >= cfg.chunk_bytes, "row must hold at least one chunk");
        assert_eq!(
            cfg.banks_per_channel % cfg.bank_groups,
            0,
            "banks must divide evenly into bank groups"
        );
        Self {
            line_bytes: cfg.line_bytes as u64,
            chunk_bytes: cfg.chunk_bytes as u64,
            channels: cfg.num_channels as u64,
            chunks_per_row: (cfg.row_bytes / cfg.chunk_bytes) as u64,
            lines_per_chunk: (cfg.chunk_bytes / cfg.line_bytes) as u64,
            banks_per_channel: cfg.banks_per_channel as u64,
            bank_groups: cfg.bank_groups as u64,
            banks_per_group: (cfg.banks_per_channel / cfg.bank_groups) as u64,
        }
    }

    /// Cache-line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes as usize
    }

    /// Number of memory channels.
    pub fn channels(&self) -> usize {
        self.channels as usize
    }

    /// Number of banks per channel.
    pub fn banks_per_channel(&self) -> usize {
        self.banks_per_channel as usize
    }

    /// Banks per bank group.
    pub fn banks_per_group(&self) -> usize {
        self.banks_per_group as usize
    }

    /// Rounds a byte address down to its cache-line base.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    /// Decomposes a byte address into its DRAM location (line granularity).
    pub fn decompose(&self, addr: u64) -> Location {
        let chunk_id = addr / self.chunk_bytes;
        let channel = chunk_id % self.channels;
        let local_chunk = chunk_id / self.channels;
        let chunk_in_row = local_chunk % self.chunks_per_row;
        let region = local_chunk / self.chunks_per_row; // 1 region = 1 row of 1 bank
        // Bank-group-major interleave: consecutive regions visit
        // bank groups 0,1,2,3, then the next bank within each group.
        let bank_linear = region % self.banks_per_channel;
        let bank_group = bank_linear % self.bank_groups;
        let bank_in_group = (bank_linear / self.bank_groups) % self.banks_per_group;
        let row = region / self.banks_per_channel;
        let line_in_chunk = (addr % self.chunk_bytes) / self.line_bytes;
        let col = chunk_in_row * self.lines_per_chunk + line_in_chunk;
        Location {
            channel: channel as u16,
            bank_group: bank_group as u16,
            bank_in_group: bank_in_group as u16,
            row: row as u32,
            col: col as u16,
        }
    }

    /// Recomposes a location back into the byte address of its line base.
    ///
    /// This is the exact inverse of [`AddressMap::decompose`] restricted to
    /// line-aligned addresses.
    pub fn compose(&self, loc: Location) -> u64 {
        let bank_linear =
            loc.bank_in_group as u64 * self.bank_groups + loc.bank_group as u64;
        let region = loc.row as u64 * self.banks_per_channel + bank_linear;
        let chunk_in_row = loc.col as u64 / self.lines_per_chunk;
        let line_in_chunk = loc.col as u64 % self.lines_per_chunk;
        let local_chunk = region * self.chunks_per_row + chunk_in_row;
        let chunk_id = local_chunk * self.channels + loc.channel as u64;
        chunk_id * self.chunk_bytes + line_in_chunk * self.line_bytes
    }

    /// Channel index of a byte address (cheaper than full decomposition).
    pub fn channel_of(&self, addr: u64) -> usize {
        ((addr / self.chunk_bytes) % self.channels) as usize
    }

    /// A stable identifier for the (channel, bank, row) triple of an address,
    /// used to detect "same row" relations without comparing full locations.
    pub fn row_id(&self, addr: u64) -> u64 {
        let loc = self.decompose(addr);
        ((loc.channel as u64) << 48)
            | ((loc.bank_group as u64) << 44)
            | ((loc.bank_in_group as u64) << 40)
            | loc.row as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn map() -> AddressMap {
        AddressMap::new(&GpuConfig::default())
    }

    #[test]
    fn sequential_chunks_interleave_channels() {
        let m = map();
        for i in 0..12u64 {
            assert_eq!(m.channel_of(i * 256), (i % 6) as usize);
        }
    }

    #[test]
    fn lines_within_a_chunk_share_everything_but_col() {
        let m = map();
        let a = m.decompose(0);
        let b = m.decompose(128);
        assert_eq!((a.channel, a.bank_group, a.bank_in_group, a.row), (b.channel, b.bank_group, b.bank_in_group, b.row));
        assert_eq!(a.col + 1, b.col);
    }

    #[test]
    fn one_row_holds_sixteen_lines() {
        // Walking a single channel's chunks, the first 8 chunks (16 lines)
        // must land in the same (bank, row).
        let m = map();
        let base = m.decompose(0);
        for chunk in 0..8u64 {
            for line in 0..2u64 {
                let addr = chunk * (256 * 6) + line * 128; // stay on channel 0
                let loc = m.decompose(addr);
                assert_eq!(loc.channel, 0);
                assert_eq!(loc.row, base.row, "chunk {chunk} changed row");
                assert_eq!(loc.bank_group, base.bank_group);
                assert_eq!(loc.bank_in_group, base.bank_in_group);
                assert_eq!(loc.col as u64, chunk * 2 + line);
            }
        }
        // The 9th chunk of channel 0 starts a new region → different bank group.
        let next = m.decompose(8 * 256 * 6);
        assert_ne!(
            (next.bank_group, next.bank_in_group, next.row),
            (base.bank_group, base.bank_in_group, base.row)
        );
    }

    #[test]
    fn consecutive_regions_rotate_bank_groups() {
        let m = map();
        let region_bytes = 2048u64 * 6; // one row of one bank, across the interleave
        let groups: Vec<u16> = (0..4)
            .map(|i| m.decompose(i * region_bytes).bank_group)
            .collect();
        assert_eq!(groups, vec![0, 1, 2, 3]);
    }

    #[test]
    fn row_id_distinguishes_rows_and_matches_same_row() {
        let m = map();
        assert_eq!(m.row_id(0), m.row_id(128));
        assert_eq!(m.row_id(0), m.row_id(6 * 256 + 128)); // next chunk, same row
        assert_ne!(m.row_id(0), m.row_id(2048 * 6)); // next region
        assert_ne!(m.row_id(0), m.row_id(256)); // different channel
    }

    #[test]
    fn flat_bank_is_dense() {
        let m = map();
        let mut seen = std::collections::HashSet::new();
        let region_bytes = 2048u64 * 6;
        for i in 0..16u64 {
            let loc = m.decompose(i * region_bytes);
            seen.insert(loc.flat_bank(m.banks_per_group()));
        }
        assert_eq!(seen.len(), 16, "16 consecutive regions must cover all 16 banks");
    }

    proptest! {
        #[test]
        fn compose_decompose_roundtrip(addr in 0u64..(1 << 40)) {
            let m = map();
            let line = m.line_of(addr);
            let loc = m.decompose(addr);
            prop_assert_eq!(m.compose(loc), line);
        }

        #[test]
        fn decompose_is_line_invariant(addr in 0u64..(1 << 40), off in 0u64..128) {
            let m = map();
            let base = m.line_of(addr);
            prop_assert_eq!(m.decompose(base), m.decompose(base + off));
        }

        #[test]
        fn channel_of_matches_decompose(addr in 0u64..(1 << 40)) {
            let m = map();
            prop_assert_eq!(m.channel_of(addr), m.decompose(addr).channel as usize);
        }
    }
}
