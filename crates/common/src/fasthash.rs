//! A fast, non-cryptographic hasher for the simulator's hot maps.
//!
//! Simulation state is keyed by small integers (line addresses, request ids,
//! `(bank, row)` pairs). The default SipHash dominates profile time at tens
//! of lookups per simulated cycle; this Fibonacci-multiply hasher is a few
//! instructions per word. Keys are simulator-internal, so HashDoS resistance
//! is irrelevant.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher over little words (wyhash-style mixing).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher(u64);

const K: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        // Final avalanche (xorshift-multiply).
        let mut h = self.0;
        h ^= h >> 32;
        h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        h ^= h >> 32;
        h
    }

    fn write(&mut self, bytes: &[u8]) {
        // Rarely used (integer keys call the word methods), but correct.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = (self.0 ^ x).wrapping_mul(K).rotate_left(23);
    }

    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }

    fn write_u16(&mut self, x: u16) {
        self.write_u64(u64::from(x));
    }

    fn write_u8(&mut self, x: u8) {
        self.write_u64(u64::from(x));
    }

    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

/// A `HashMap` using [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` using [`FastHasher`].
pub type FastSet<K> = std::collections::HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 128, i as u32);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 128)), Some(&(i as u32)));
        }
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<FastHasher> = BuildHasherDefault::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            seen.insert(bh.hash_one(i * 128) >> 40); // top 24 bits
        }
        // With 2^24 buckets and 1e5 keys, expect ≈ 99.7k distinct values.
        assert!(seen.len() > 95_000, "{}", seen.len());
    }

    #[test]
    fn tuple_keys_work() {
        let mut m: FastMap<(usize, u32), u8> = FastMap::default();
        m.insert((3, 7), 1);
        m.insert((7, 3), 2);
        assert_eq!(m[&(3, 7)], 1);
        assert_eq!(m[&(7, 3)], 2);
    }
}
